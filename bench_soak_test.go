// Soak benchmarks: streaming trace replay throughput and peak live heap
// at soak scale. Unlike the other benchmarks, each op is itself a long
// averaged run (100k or 1M open-loop requests through the full cloudsim
// plant with faults on), so the intended invocation is -benchtime=1x:
// the interesting figures are the custom req/s and peak-heap-bytes
// metrics, not ns/op. BenchmarkSoak feeds BENCH_soak.json
// (make bench-soak); the 1M arm is the paper-scale endurance run and is
// skipped under -short.
package bench

import (
	"fmt"
	"testing"

	"affinitycluster/internal/experiments"
)

func BenchmarkSoak(b *testing.B) {
	arms := []struct {
		name     string
		requests int
		long     bool
	}{
		{"100k", 100_000, false},
		{"1M", 1_000_000, true},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			if arm.long && testing.Short() {
				b.Skip("1M-request soak skipped in -short")
			}
			cfg := experiments.DefaultSoakConfig()
			cfg.Requests = arm.requests
			var peak uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiments.Soak(2012, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Cloud.Served == 0 {
					b.Fatal("soak served nothing")
				}
				if res.PeakHeapBytes > peak {
					peak = res.PeakHeapBytes
				}
			}
			b.StopTimer()
			total := float64(arm.requests) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(peak), "peak-heap-bytes")
			b.Logf("%s: peak heap %.1f MiB", fmt.Sprintf("%d requests", arm.requests),
				float64(peak)/(1<<20))
		})
	}
}
