// Command vcplace computes an affinity-aware placement for one request
// from a JSON problem description and prints the allocation, its distance,
// and its central node. With -exact it also reports the provable optimum.
//
// Usage:
//
//	vcplace -in problem.json [-exact] [-strategy online|firstfit|roundrobin|pack]
//
// Input format:
//
//	{
//	  "clouds": 1, "racksPerCloud": 3, "nodesPerRack": 10,
//	  "capacities": [[2,1,0], ...],       // nodes × types (L)
//	  "request": [2, 4, 1]
//	}
//
// An omitted "capacities" gives every node one instance of each type.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
)

type problem struct {
	Clouds        int           `json:"clouds"`
	RacksPerCloud int           `json:"racksPerCloud"`
	NodesPerRack  int           `json:"nodesPerRack"`
	Capacities    [][]int       `json:"capacities"`
	Request       model.Request `json:"request"`
}

func main() {
	in := flag.String("in", "", "path to the JSON problem (default: stdin)")
	exact := flag.Bool("exact", false, "also solve the exact SD optimum")
	strategy := flag.String("strategy", "online", "placement strategy: online, firstfit, roundrobin, pack")
	flag.Parse()

	if err := run(*in, *exact, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "vcplace:", err)
		os.Exit(1)
	}
}

func run(in string, exact bool, strategy string) error {
	var data []byte
	var err error
	if in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	var p problem
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("parsing problem: %w", err)
	}
	if p.Clouds == 0 {
		p.Clouds = 1
	}
	topo, err := topology.Uniform(p.Clouds, p.RacksPerCloud, p.NodesPerRack, topology.DefaultDistances())
	if err != nil {
		return err
	}
	if p.Capacities == nil {
		p.Capacities = make([][]int, topo.Nodes())
		for i := range p.Capacities {
			p.Capacities[i] = make([]int, len(p.Request))
			for j := range p.Capacities[i] {
				p.Capacities[i][j] = 1
			}
		}
	}
	if len(p.Capacities) != topo.Nodes() {
		return fmt.Errorf("capacities has %d rows, plant has %d nodes", len(p.Capacities), topo.Nodes())
	}

	var placer placement.Placer
	switch strategy {
	case "online":
		placer = &placement.OnlineHeuristic{}
	case "firstfit":
		placer = placement.FirstFit{}
	case "roundrobin":
		placer = placement.RoundRobinStripe{}
	case "pack":
		placer = placement.PackBestFit{}
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	alloc, err := placer.Place(topo, p.Capacities, p.Request)
	if err != nil {
		return err
	}
	printAllocation(topo, strategy, alloc)

	if exact {
		res, err := sdexact.SolveSD(topo, p.Capacities, p.Request)
		if err != nil {
			return err
		}
		fmt.Println()
		printAllocation(topo, "exact-sd", res.Alloc)
	}
	return nil
}

func printAllocation(topo *topology.Topology, name string, alloc affinity.Allocation) {
	d, ctr := alloc.Distance(topo)
	fmt.Printf("%s: distance %.1f, central node %d\n", name, d, ctr)
	for _, node := range alloc.HostingNodes() {
		fmt.Printf("  node %2d (rack %d): %v\n", node, topo.RackOf(node), alloc[node])
	}
}
