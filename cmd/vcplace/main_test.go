package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProblem(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithDefaultCapacities(t *testing.T) {
	path := writeProblem(t, `{"racksPerCloud":2,"nodesPerRack":3,"request":[2,4,1]}`)
	for _, strategy := range []string{"online", "firstfit", "roundrobin", "pack"} {
		if err := run(path, false, strategy); err != nil {
			t.Errorf("%s: %v", strategy, err)
		}
	}
}

func TestRunWithExact(t *testing.T) {
	path := writeProblem(t, `{"racksPerCloud":2,"nodesPerRack":2,"request":[3]}`)
	if err := run(path, true, "online"); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitCapacities(t *testing.T) {
	path := writeProblem(t, `{
		"racksPerCloud":1,"nodesPerRack":2,
		"capacities":[[2],[2]],
		"request":[3]
	}`)
	if err := run(path, false, "online"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.json"), false, "online"); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeProblem(t, `{`)
	if err := run(bad, false, "online"); err == nil {
		t.Error("corrupt JSON accepted")
	}
	noPlant := writeProblem(t, `{"request":[1]}`)
	if err := run(noPlant, false, "online"); err == nil {
		t.Error("empty plant accepted")
	}
	wrongShape := writeProblem(t, `{"racksPerCloud":1,"nodesPerRack":2,"capacities":[[1]],"request":[1]}`)
	if err := run(wrongShape, false, "online"); err == nil {
		t.Error("mismatched capacities accepted")
	}
	ok := writeProblem(t, `{"racksPerCloud":1,"nodesPerRack":2,"request":[1]}`)
	if err := run(ok, false, "nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
	tooBig := writeProblem(t, `{"racksPerCloud":1,"nodesPerRack":2,"request":[99]}`)
	if err := run(tooBig, false, "online"); err == nil {
		t.Error("infeasible request accepted")
	}
}
