// Command paperrepro runs every experiment of the paper end to end —
// Tables I/II, Figs. 2–6 (simulation), Figs. 7–8 (MapReduce experiment,
// balanced and skewed variants), and the supplementary heuristic-vs-exact
// gap study — and prints a consolidated report. Figs. 5/6 improvements
// are additionally averaged over several seeds, since a single draw of
// 20 random requests is noisy.
//
// Usage:
//
//	paperrepro [-seed N] [-seeds M] [-json]
//
// -json emits a machine-readable report (schema in internal/report)
// instead of the human-readable figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"affinitycluster/internal/experiments"
	"affinitycluster/internal/report"
)

func main() {
	seed := flag.Int64("seed", 2012, "base random seed")
	seeds := flag.Int("seeds", 10, "number of seeds for the Fig 5/6 averages")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	flag.Parse()

	var err error
	if *jsonOut {
		err = runJSON(*seed)
	} else {
		err = run(*seed, *seeds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func runJSON(seed int64) error {
	r, err := report.Collect(seed, 100)
	if err != nil {
		return err
	}
	return r.WriteJSON(os.Stdout)
}

func run(seed int64, seeds int) error {
	fmt.Println("=== Table I — instance catalog ===")
	fmt.Println(experiments.TableI())
	fmt.Println("=== Table II — capacity relationship example ===")
	fmt.Println(experiments.TableII())

	f2, err := experiments.Fig2(seed)
	if err != nil {
		return err
	}
	fmt.Println(f2.Render())

	f3, err := experiments.Fig3(seed)
	if err != nil {
		return err
	}
	fmt.Println(f3.Render())

	f4, err := experiments.Fig4(seed)
	if err != nil {
		return err
	}
	fmt.Println(f4.Render())

	f5, err := experiments.Fig5(seed)
	if err != nil {
		return err
	}
	fmt.Println(f5.Render())

	f6, err := experiments.Fig6(seed)
	if err != nil {
		return err
	}
	fmt.Println(f6.Render())

	if seeds > 1 {
		normal, small, err := experiments.Fig56Averages(seed, seeds)
		if err != nil {
			return err
		}
		fmt.Printf("Fig 5/6 averages over %d seeds: normal −%.1f%%, small −%.1f%%\n\n",
			seeds, normal, small)
	}

	f78, err := experiments.Fig7and8(seed)
	if err != nil {
		return err
	}
	fmt.Println(f78.RenderFig7())
	fmt.Println(f78.RenderFig8())

	skew, err := experiments.Fig7and8Skewed(seed)
	if err != nil {
		return err
	}
	fmt.Println("--- skewed-input variant (reproduces the paper's Fig 7 anomaly) ---")
	fmt.Println(skew.RenderFig7())
	fmt.Println(skew.RenderFig8())
	if inv, slower, faster := skew.HasInversion(); inv {
		fmt.Printf("anomaly present: %s ran slower than %s despite its shorter distance\n\n", slower, faster)
	}

	gap, err := experiments.ExactGap(seed, 100)
	if err != nil {
		return err
	}
	fmt.Println("=== Supplementary: Algorithm 1 vs exact SD optimum ===")
	fmt.Println(gap.Render())

	base, err := experiments.BaselineComparison(seed)
	if err != nil {
		return err
	}
	fmt.Println("=== Supplementary: strategy comparison ===")
	fmt.Println(base.Render())

	sweep, err := experiments.SelectivitySweep(seed, nil)
	if err != nil {
		return err
	}
	fmt.Println(sweep.Render())
	return nil
}
