package main

import "testing"

func TestFullReproductionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction is slow")
	}
	if err := run(2012, 2); err != nil {
		t.Fatal(err)
	}
}
