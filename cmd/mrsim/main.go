// Command mrsim runs the paper's experimental evaluation (Figs. 7–8):
// simulated Hadoop WordCount on four equal-capability virtual clusters of
// increasing distance, reporting runtime and data/shuffle locality.
//
// Usage:
//
//	mrsim [-seed N] [-skewed]
//
// -skewed loads the input through a single writer, reproducing the
// paper's anomaly where a shorter-distance cluster runs slower because it
// loses data locality.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"affinitycluster/internal/experiments"
	"affinitycluster/internal/mapreduce"
)

func main() {
	seed := flag.Int64("seed", 2012, "random seed for replica placement")
	skewed := flag.Bool("skewed", false, "single-writer input (reproduces the Fig. 7 inversion)")
	job := flag.String("job", "wordcount", "workload: wordcount, terasort, grep, join")
	flag.Parse()

	if err := run(os.Stdout, *seed, *skewed, *job); err != nil {
		fmt.Fprintln(os.Stderr, "mrsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed int64, skewed bool, job string) error {
	var mk func(string) mapreduce.JobSpec
	switch job {
	case "wordcount":
		mk = mapreduce.WordCount
	case "terasort":
		mk = func(f string) mapreduce.JobSpec { return mapreduce.TeraSort(f, 4) }
	case "grep":
		mk = mapreduce.Grep
	case "join":
		mk = func(f string) mapreduce.JobSpec { return mapreduce.Join(f, 4) }
	default:
		return fmt.Errorf("unknown job %q", job)
	}
	cfg := experiments.DefaultMRExperimentConfig(seed)
	cfg.SingleWriterInput = skewed
	res, err := experiments.RunJobAcrossTopologies(cfg, mk)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.RenderFig7())
	fmt.Fprintln(w, res.RenderFig8())
	if inv, slower, faster := res.HasInversion(); inv {
		fmt.Fprintf(w, "anomaly: %s (shorter distance) ran slower than %s — see the locality counters above\n", slower, faster)
	}
	return nil
}
