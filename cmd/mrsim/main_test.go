package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBalanced(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2012, false, "wordcount"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 7", "Fig 8", "dist-24", "dist-48"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "anomaly") {
		t.Error("balanced run reported an anomaly")
	}
}

func TestRunSkewed(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2012, true, "wordcount"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "anomaly") {
		t.Error("skewed run did not report the inversion")
	}
}

func TestRunOtherJobs(t *testing.T) {
	for _, job := range []string{"terasort", "grep", "join"} {
		var buf bytes.Buffer
		if err := run(&buf, 2012, false, job); err != nil {
			t.Errorf("%s: %v", job, err)
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, 2012, false, "mystery"); err == nil {
		t.Error("unknown job accepted")
	}
}
