package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the self-hosting gate: the analyzer suite must come
// back empty on this repository. Any true positive introduced by a later
// PR fails here (and in `make lint`) before it can corrupt the
// byte-identical figure-output contract.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "..", "..")
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	findings, err := run([]string{"./..."})
	if err != nil {
		t.Fatalf("affinitylint failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s: %s", f.Posn, f.Analyzer, f.Message)
	}
}
