// Command affinitylint is the multichecker for this repo's custom
// analyzer suite: detrand (no wall clock / global rand / env reads in
// simulation packages), maporder (map iteration order must not reach
// ordered output), errdrop (no silently discarded errors from our own
// APIs), scratchpool (sync.Pool buffer discipline), aliasret (exported
// methods must not return views of unexported state uncopied),
// singlewriter (inventory mutation flows through annotated owners),
// hotpath (//lint:hotpath functions are statically allocation-free), and
// goexit (every go statement has a provable shutdown edge). It machine-
// enforces the same-seed ⇒ byte-identical contract of DESIGN.md §7–§10
// and the concurrency-era invariants of §12–§15.
//
// Usage:
//
//	affinitylint [-json] [-C dir] [-explain analyzer] [./...]
//
// The tool loads every package of the enclosing module (arguments other
// than ./... select subdirectories) and exits 1 when findings remain
// after //lint:allow suppression, 2 on load errors. -explain prints one
// analyzer's full invariant documentation and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"affinitycluster/internal/lint"
	"affinitycluster/internal/lint/aliasret"
	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/detrand"
	"affinitycluster/internal/lint/errdrop"
	"affinitycluster/internal/lint/goexit"
	"affinitycluster/internal/lint/hotpath"
	"affinitycluster/internal/lint/load"
	"affinitycluster/internal/lint/maporder"
	"affinitycluster/internal/lint/scratchpool"
	"affinitycluster/internal/lint/singlewriter"
)

// Suite is the full analyzer set, in report order.
var suite = []*analysis.Analyzer{
	aliasret.Analyzer,
	detrand.Analyzer,
	errdrop.Analyzer,
	goexit.Analyzer,
	hotpath.Analyzer,
	maporder.Analyzer,
	scratchpool.Analyzer,
	singlewriter.Analyzer,
}

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		listAll = flag.Bool("list", false, "list the analyzers and exit")
		explain = flag.String("explain", "", "print one analyzer's invariant documentation and exit")
		chdir   = flag.String("C", "", "change to dir before loading the module")
	)
	flag.Parse()
	if *listAll {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	if *explain != "" {
		for _, a := range suite {
			if a.Name != *explain {
				continue
			}
			if a.Explain != "" {
				fmt.Println(a.Explain)
			} else {
				fmt.Printf("%s — %s\n", a.Name, a.Doc)
			}
			return
		}
		fatal(fmt.Errorf("unknown analyzer %q (use -list)", *explain))
	}
	if *chdir != "" {
		if err := os.Chdir(*chdir); err != nil {
			fatal(err)
		}
	}
	findings, err := run(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Posn, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "affinitylint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// run loads the requested package directories and applies the suite.
// Patterns are module-relative directories; "" or "./..." means the whole
// module.
func run(patterns []string) ([]lint.Finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := load.ModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := load.Module(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) > 0 && !isWholeModule(patterns) {
		pkgs = filterPkgs(pkgs, root, patterns)
	}
	findings, err := lint.Run(pkgs, suite)
	if err != nil {
		return nil, err
	}
	// Report module-relative paths so output is stable across checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
			findings[i].Posn = findings[i].Pos.String()
		}
	}
	return findings, nil
}

func isWholeModule(patterns []string) bool {
	for _, p := range patterns {
		if p != "./..." && p != "..." && p != "." {
			return false
		}
	}
	return true
}

// filterPkgs keeps packages whose directory sits under one of the
// pattern directories ("./internal/obs", "internal/..." etc).
func filterPkgs(pkgs []*load.Package, root string, patterns []string) []*load.Package {
	var keep []*load.Package
	for _, p := range pkgs {
		rel, err := filepath.Rel(root, p.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
			recursive := false
			if rest, ok := strings.CutSuffix(pat, "/..."); ok {
				pat, recursive = rest, true
			}
			if rel == pat || (recursive && strings.HasPrefix(rel, pat+"/")) {
				keep = append(keep, p)
				break
			}
		}
	}
	return keep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "affinitylint:", err)
	os.Exit(2)
}
