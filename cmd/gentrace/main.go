// Command gentrace generates a seeded random request trace (the paper's
// simulation workload) on stdout or to a file, for replay with the
// library's trace package or external tooling. Two formats are
// supported: the whole-slice JSON document (-format json, the default)
// and the streaming JSONL format (-format jsonl), which writes one
// request per line and never holds the trace in memory — the openloop
// scenario pairs with it to emit multi-million-request traces in O(1)
// space.
//
// Usage:
//
//	gentrace [-seed N] [-count N] [-types N]
//	         [-scenario normal|small|openloop] [-format json|jsonl]
//	         [-interarrival S] [-hold S] [-out trace.json]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"affinitycluster/internal/model"
	"affinitycluster/internal/trace"
	"affinitycluster/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	count := flag.Int("count", 20, "number of requests")
	types := flag.Int("types", 3, "VM type count")
	scenario := flag.String("scenario", "normal", "request scenario: normal, small, or openloop (jsonl only)")
	format := flag.String("format", "json", "output format: json (whole-slice document) or jsonl (streaming)")
	out := flag.String("out", "", "output path (default stdout)")
	interarrival := flag.Float64("interarrival", 30, "mean interarrival seconds")
	hold := flag.Float64("hold", 300, "mean (openloop: median) hold seconds")
	flag.Parse()

	if err := run(*seed, *count, *types, *scenario, *format, *out, *interarrival, *hold); err != nil {
		fmt.Fprintln(os.Stderr, "gentrace:", err)
		os.Exit(1)
	}
}

func run(seed int64, count, types int, scenario, format, out string, interarrival, hold float64) error {
	// Validate the numeric flags up front: a bad value must exit non-zero
	// with a flag-shaped message, not surface as a downstream generator
	// error (or, worse, emit a half-written trace). !(x > 0) also catches
	// NaN, which every comparison is false for.
	if count <= 0 {
		return fmt.Errorf("-count must be positive, got %d", count)
	}
	if types <= 0 {
		return fmt.Errorf("-types must be positive, got %d", types)
	}
	if !(interarrival > 0) || math.IsInf(interarrival, 0) {
		return fmt.Errorf("-interarrival must be positive and finite, got %v", interarrival)
	}
	if !(hold > 0) || math.IsInf(hold, 0) {
		return fmt.Errorf("-hold must be positive and finite, got %v", hold)
	}
	if format != "json" && format != "jsonl" {
		return fmt.Errorf("unknown format %q (want json or jsonl)", format)
	}

	desc := fmt.Sprintf("seed %d, %s scenario, %d requests", seed, scenario, count)
	if scenario == "openloop" {
		if format != "jsonl" {
			return fmt.Errorf("the openloop scenario streams; use -format jsonl")
		}
		cfg := workload.DefaultOpenLoopConfig()
		cfg.BaseRate = 1 / interarrival
		cfg.Types = types
		cfg.HoldMedian = hold
		gen, err := workload.NewOpenLoop(seed, count, cfg)
		if err != nil {
			return err
		}
		return writeStream(out, desc, types, gen)
	}

	var sc workload.Scenario
	switch scenario {
	case "normal":
		sc = workload.Normal
	case "small":
		sc = workload.Small
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	reqs, err := workload.RandomRequests(seed, count, types, sc, workload.DefaultRequestConfig())
	if err != nil {
		return err
	}
	cfg := workload.DefaultArrivalConfig()
	cfg.MeanInterarrival = interarrival
	cfg.MeanHold = hold
	timed, err := workload.TimedRequests(seed+1, reqs, cfg)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		return writeStream(out, desc, types, model.NewSliceSource(timed))
	}
	tr, err := trace.New(desc, types, timed)
	if err != nil {
		return err
	}
	if out == "" {
		return trace.Save(os.Stdout, tr)
	}
	return trace.SaveFile(out, tr)
}

// writeStream drains src into a JSONL trace at path (stdout when empty).
func writeStream(out, desc string, types int, src model.RequestSource) error {
	if out == "" {
		w, err := trace.NewWriter(os.Stdout, desc, types)
		if err != nil {
			return err
		}
		if _, err := trace.CopySource(w, src); err != nil {
			return err
		}
		return w.Flush()
	}
	w, err := trace.CreateFile(out, desc, types)
	if err != nil {
		return err
	}
	if _, err := trace.CopySource(w, src); err != nil {
		_ = w.Close() // the copy error is the interesting one
		return err
	}
	return w.Close()
}
