// Command gentrace generates a seeded random request trace (the paper's
// simulation workload) as JSON on stdout or to a file, for replay with
// the library's trace package or external tooling.
//
// Usage:
//
//	gentrace [-seed N] [-count N] [-types N] [-scenario normal|small] [-out trace.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"affinitycluster/internal/trace"
	"affinitycluster/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	count := flag.Int("count", 20, "number of requests")
	types := flag.Int("types", 3, "VM type count")
	scenario := flag.String("scenario", "normal", "request scenario: normal or small")
	out := flag.String("out", "", "output path (default stdout)")
	interarrival := flag.Float64("interarrival", 30, "mean interarrival seconds")
	hold := flag.Float64("hold", 300, "mean hold seconds")
	flag.Parse()

	if err := run(*seed, *count, *types, *scenario, *out, *interarrival, *hold); err != nil {
		fmt.Fprintln(os.Stderr, "gentrace:", err)
		os.Exit(1)
	}
}

func run(seed int64, count, types int, scenario, out string, interarrival, hold float64) error {
	var sc workload.Scenario
	switch scenario {
	case "normal":
		sc = workload.Normal
	case "small":
		sc = workload.Small
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	reqs, err := workload.RandomRequests(seed, count, types, sc, workload.DefaultRequestConfig())
	if err != nil {
		return err
	}
	cfg := workload.DefaultArrivalConfig()
	cfg.MeanInterarrival = interarrival
	cfg.MeanHold = hold
	timed, err := workload.TimedRequests(seed+1, reqs, cfg)
	if err != nil {
		return err
	}
	tr, err := trace.New(
		fmt.Sprintf("seed %d, %s scenario, %d requests", seed, scenario, count),
		types, timed)
	if err != nil {
		return err
	}
	if out == "" {
		return trace.Save(os.Stdout, tr)
	}
	return trace.SaveFile(out, tr)
}
