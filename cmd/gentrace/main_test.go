package main

import (
	"path/filepath"
	"testing"

	"affinitycluster/internal/trace"
)

func TestGenerateToFileAndReload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run(5, 12, 3, "normal", out, 30, 300); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 12 || tr.Types != 3 {
		t.Errorf("trace shape: %d requests, %d types", len(tr.Requests), tr.Types)
	}
}

func TestGenerateSmallScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run(5, 8, 3, "small", out, 10, 100); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Requests {
		if r.Vector.TotalVMs() > 3 {
			t.Errorf("small request %d has %d VMs", i, r.Vector.TotalVMs())
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run(1, 5, 3, "weird", "", 30, 300); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(1, 0, 3, "normal", "", 30, 300); err == nil {
		t.Error("zero count accepted")
	}
	if err := run(1, 5, 3, "normal", "", -1, 300); err == nil {
		t.Error("negative interarrival accepted")
	}
}
