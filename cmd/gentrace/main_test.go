package main

import (
	"math"
	"path/filepath"
	"testing"

	"affinitycluster/internal/trace"
)

func TestGenerateToFileAndReload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run(5, 12, 3, "normal", "json", out, 30, 300); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 12 || tr.Types != 3 {
		t.Errorf("trace shape: %d requests, %d types", len(tr.Requests), tr.Types)
	}
}

func TestGenerateSmallScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run(5, 8, 3, "small", "json", out, 10, 100); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Requests {
		if r.Vector.TotalVMs() > 3 {
			t.Errorf("small request %d has %d VMs", i, r.Vector.TotalVMs())
		}
	}
}

// drainJSONL replays a streamed trace file and returns its request count.
func drainJSONL(t *testing.T, path string, wantTypes int) int {
	t.Helper()
	rd, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rd.Close() }()
	if rd.Types() != wantTypes {
		t.Errorf("streamed trace declares %d types, want %d", rd.Types(), wantTypes)
	}
	n := 0
	for {
		_, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return n
		}
		n++
	}
}

func TestGenerateStreamedNormal(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run(5, 15, 3, "normal", "jsonl", out, 30, 300); err != nil {
		t.Fatal(err)
	}
	if n := drainJSONL(t, out, 3); n != 15 {
		t.Errorf("streamed %d requests, want 15", n)
	}
}

func TestGenerateOpenLoopStreams(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run(5, 200, 4, "openloop", "jsonl", out, 2, 300); err != nil {
		t.Fatal(err)
	}
	if n := drainJSONL(t, out, 4); n != 200 {
		t.Errorf("streamed %d requests, want 200", n)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"unknown scenario", func() error { return run(1, 5, 3, "weird", "json", "", 30, 300) }},
		{"unknown format", func() error { return run(1, 5, 3, "normal", "xml", "", 30, 300) }},
		{"zero count", func() error { return run(1, 0, 3, "normal", "json", "", 30, 300) }},
		{"negative count", func() error { return run(1, -2, 3, "normal", "json", "", 30, 300) }},
		{"zero types", func() error { return run(1, 5, 0, "normal", "json", "", 30, 300) }},
		{"negative interarrival", func() error { return run(1, 5, 3, "normal", "json", "", -1, 300) }},
		{"NaN interarrival", func() error { return run(1, 5, 3, "normal", "json", "", math.NaN(), 300) }},
		{"Inf interarrival", func() error { return run(1, 5, 3, "normal", "json", "", math.Inf(1), 300) }},
		{"zero hold", func() error { return run(1, 5, 3, "normal", "json", "", 30, 0) }},
		{"NaN hold", func() error { return run(1, 5, 3, "normal", "json", "", 30, math.NaN()) }},
		{"Inf hold", func() error { return run(1, 5, 3, "normal", "json", "", 30, math.Inf(1)) }},
		{"openloop needs jsonl", func() error { return run(1, 5, 3, "openloop", "json", "", 30, 300) }},
	}
	for _, tc := range cases {
		if tc.call() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
