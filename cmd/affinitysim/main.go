// Command affinitysim runs the paper's simulation experiments (Figs. 2–6)
// on the 3-rack × 10-node cloud and prints figure-shaped terminal output.
//
// Usage:
//
//	affinitysim [-seed N] [-fig 2|3|4|5|6|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"affinitycluster/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2012, "random seed for capacities and requests")
	fig := flag.String("fig", "all", "figure to run: 2, 3, 4, 5, 6, or all")
	flag.Parse()

	if err := run(*seed, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "affinitysim:", err)
		os.Exit(1)
	}
}

func run(seed int64, fig string) error {
	want := func(f string) bool { return fig == "all" || fig == f }
	if want("2") {
		res, err := experiments.Fig2(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("3") {
		res, err := experiments.Fig3(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("4") {
		res, err := experiments.Fig4(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("5") {
		res, err := experiments.Fig5(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("6") {
		res, err := experiments.Fig6(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if fig != "all" && !contains([]string{"2", "3", "4", "5", "6"}, fig) {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
