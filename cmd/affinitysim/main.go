// Command affinitysim runs the paper's simulation experiments (Figs. 2–6)
// on the 3-rack × 10-node cloud and prints figure-shaped terminal output.
// The ops figure runs the instrumented operational scenario (cloud
// simulation + one MapReduce job) and is the producer for the -metrics
// and -trace exports.
//
// Usage:
//
//	affinitysim [-seed N] [-fig 2|3|4|5|6|ops|faults|service|soak|elastic|all]
//	            [-mtbf N] [-mttr N] [-requests N]
//	            [-metrics out.json] [-trace out.jsonl] [-pprof addr]
//
// The faults, service, soak, and elastic figures are their own
// -metrics/-trace producers; the soak figure streams its trace to the
// -trace file event by event instead of retaining it.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"affinitycluster/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2012, "random seed for capacities and requests")
	fig := flag.String("fig", "all", "figure to run: 2, 3, 4, 5, 6, ops, faults, service, soak, elastic, or all")
	mtbf := flag.Float64("mtbf", 0, "faults figure: mean time between failures (0 = scenario default)")
	mttr := flag.Float64("mttr", 0, "faults figure: mean time to repair (0 = scenario default)")
	requests := flag.Int("requests", 0, "soak figure: open-loop request count (0 = scenario default)")
	metricsPath := flag.String("metrics", "", "write the ops scenario's JSON metric snapshot to this file")
	tracePath := flag.String("trace", "", "write the ops scenario's JSONL event trace to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		//lint:allow goexit the pprof server intentionally lives for the process lifetime
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "affinitysim: pprof:", err)
			}
		}()
	}

	if err := run(os.Stdout, *seed, *fig, *metricsPath, *tracePath, *mtbf, *mttr, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "affinitysim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed int64, fig, metricsPath, tracePath string, mtbf, mttr float64, requests int) error {
	want := func(f string) bool { return fig == "all" || fig == f }
	if want("2") {
		res, err := experiments.Fig2(seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}
	if want("3") {
		res, err := experiments.Fig3(seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}
	if want("4") {
		res, err := experiments.Fig4(seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}
	if want("5") {
		res, err := experiments.Fig5(seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}
	if want("6") {
		res, err := experiments.Fig6(seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}
	// The ops scenario is the metrics/trace producer; force it when an
	// export was requested even if -fig selects only classic figures
	// (the faults figure is its own producer and takes over the exports).
	if want("ops") || (fig != "faults" && fig != "service" && fig != "soak" && fig != "elastic" && (metricsPath != "" || tracePath != "")) {
		res, err := experiments.Ops(seed, experiments.DefaultOpsConfig(seed))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
		if metricsPath != "" {
			if err := writeFile(metricsPath, res.WriteMetrics); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		if tracePath != "" {
			if err := writeFile(tracePath, res.WriteTrace); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
		}
	}
	// The faults figure is deliberately NOT part of -fig all: the classic
	// figures stay byte-identical to fault-free builds, and fault runs are
	// an explicit opt-in.
	if fig == "faults" {
		cfg := experiments.DefaultFaultsConfig(seed)
		if mtbf > 0 {
			cfg.Faults.MTBF = mtbf
		}
		if mttr > 0 {
			cfg.Faults.MTTR = mttr
		}
		res, err := experiments.Faults(seed, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
		if metricsPath != "" {
			if err := writeFile(metricsPath, res.WriteMetrics); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		if tracePath != "" {
			if err := writeFile(tracePath, res.WriteTrace); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
		}
	}
	// The service figure, like faults, is NOT part of -fig all: existing
	// figure output stays byte-identical and served runs are an explicit
	// opt-in.
	if fig == "service" {
		res, err := experiments.Serving(seed, experiments.DefaultServingConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
		if metricsPath != "" {
			if err := writeFile(metricsPath, res.WriteMetrics); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		if tracePath != "" {
			if err := writeFile(tracePath, res.WriteTrace); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
		}
	}
	// The soak figure, like faults and service, is NOT part of -fig all:
	// it is the streaming endurance scenario, sized for long runs, and an
	// explicit opt-in.
	if fig == "soak" {
		cfg := experiments.DefaultSoakConfig()
		if requests > 0 {
			cfg.Requests = requests
		}
		// The soak run streams its trace: the sink file must exist before
		// the replay starts, and nothing is retained for a later export.
		var traceFile *os.File
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				return fmt.Errorf("creating trace file: %w", err)
			}
			traceFile = f
			cfg.Trace = f
		}
		start := time.Now()
		res, err := experiments.Soak(seed, cfg)
		if traceFile != nil {
			if cerr := traceFile.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing trace file: %w", cerr)
			}
		}
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		fmt.Fprint(w, res.Render())
		// The wall-clock and heap lines are machine-dependent, so they
		// stay out of Render() — the report above is seed-deterministic.
		fmt.Fprintf(w, "replay: %.2fs wall (%.0f req/s), peak heap %.1f MiB\n\n",
			elapsed, float64(cfg.Requests)/elapsed, float64(res.PeakHeapBytes)/(1<<20))
		if metricsPath != "" {
			if err := writeFile(metricsPath, res.Reg.WriteMetricsJSON); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
	}
	// The elastic figure — static vs mid-job-resize on the same seed —
	// is, like faults, NOT part of -fig all: classic figure output stays
	// byte-identical and elastic runs are an explicit opt-in.
	if fig == "elastic" {
		res, err := experiments.Elastic(seed, experiments.DefaultElasticConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
		if metricsPath != "" {
			if err := writeFile(metricsPath, res.WriteMetrics); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		if tracePath != "" {
			if err := writeFile(tracePath, res.WriteTrace); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
		}
	}
	if fig != "all" && !contains([]string{"2", "3", "4", "5", "6", "ops", "faults", "service", "soak", "elastic"}, fig) {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// writeFile creates path and streams one export into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
