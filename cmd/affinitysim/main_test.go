package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	if err := run(io.Discard, 2012, "all", "", "", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"2", "3", "4", "5", "6"} {
		if err := run(io.Discard, 7, fig, "", "", 0, 0, 0); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(io.Discard, 7, "9", "", "", 0, 0, 0); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestOpsExportsAllMetricFamilies(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.jsonl")
	var out bytes.Buffer
	if err := run(&out, 2012, "ops", metrics, trace, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Ops scenario") {
		t.Errorf("ops render missing headline:\n%s", out.String())
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"Counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot is not JSON: %v", err)
	}
	// One representative metric per instrumented family.
	for _, name := range []string{
		"cloudsim.served",
		"queue.enqueued",
		"placement.place_calls",
		"migration.plans",
		"mapreduce.jobs",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}

	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"kind":"place"`, `"kind":"mr_job_done"`} {
		if !strings.Contains(string(tr), kind) {
			t.Errorf("trace missing event %s", kind)
		}
	}
}

// Two runs with the same seed must produce byte-identical exports.
func TestOpsExportsDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2][2]string{}
	for i := 0; i < 2; i++ {
		m := filepath.Join(dir, "m"+string(rune('0'+i))+".json")
		tr := filepath.Join(dir, "t"+string(rune('0'+i))+".jsonl")
		if err := run(io.Discard, 4242, "ops", m, tr, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		paths[i] = [2]string{m, tr}
	}
	for j, label := range []string{"metrics", "trace"} {
		a, err := os.ReadFile(paths[0][j])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(paths[1][j])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s snapshots differ between identical-seed runs", label)
		}
	}
}

// An export path forces the ops scenario even when -fig selects a
// classic figure.
func TestMetricsFlagForcesOps(t *testing.T) {
	metrics := filepath.Join(t.TempDir(), "m.json")
	if err := run(io.Discard, 7, "2", metrics, "", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Errorf("metrics file not written: %v", err)
	}
}

// The faults figure renders its headline, honours the MTBF/MTTR
// overrides, and takes over the exports from ops.
func TestRunFaultsFigure(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.jsonl")
	var out bytes.Buffer
	if err := run(&out, 2012, "faults", metrics, trace, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Faults scenario.") {
		t.Errorf("faults render missing headline:\n%s", out.String())
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"kind":"fault"`, `"kind":"repair"`, `"kind":"recover"`} {
		if !strings.Contains(string(tr), kind) {
			t.Errorf("faults trace missing event %s", kind)
		}
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Errorf("metrics file not written: %v", err)
	}

	// A huge MTBF relative to the horizon yields an empty schedule but a
	// still-valid run.
	out.Reset()
	if err := run(&out, 2012, "faults", "", "", 1e6, 5, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "injected 0 failures") {
		t.Errorf("quiet-MTBF run still injected failures:\n%s", out.String())
	}
}

// The soak figure renders its headline plus the machine-dependent replay
// line, and honours the -requests override.
func TestRunSoakFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2012, "soak", "", "", 0, 0, 3000); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Soak scenario.", "replayed 3000 open-loop requests", "replay:", "peak heap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("soak output missing %q:\n%s", want, out.String())
		}
	}
}
