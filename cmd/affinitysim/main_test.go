package main

import "testing"

func TestRunAllFigures(t *testing.T) {
	if err := run(2012, "all"); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"2", "3", "4", "5", "6"} {
		if err := run(7, fig); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(7, "9"); err == nil {
		t.Error("unknown figure accepted")
	}
}
