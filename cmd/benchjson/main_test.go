package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: affinitycluster
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPlaceScale/1x3x10/pruned-8         	      10	      9267 ns/op	    1916 B/op	       5 allocs/op
BenchmarkPlaceScale/1x3x10/exhaustive       	      10	     27382 ns/op
BenchmarkFig5-8                             	       3	   1234567 ns/op	      12.50 improvement-%
PASS
ok  	affinitycluster	0.031s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "affinitycluster" {
		t.Fatalf("bad header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("bad cpu: %q", rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	first := rep.Results[0]
	if first.Name != "BenchmarkPlaceScale/1x3x10/pruned" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Iterations != 10 || first.Metrics["ns/op"] != 9267 ||
		first.Metrics["B/op"] != 1916 || first.Metrics["allocs/op"] != 5 {
		t.Fatalf("bad metrics: %+v", first)
	}
	// No -benchmem columns is fine.
	if got := rep.Results[1].Metrics; len(got) != 1 || got["ns/op"] != 27382 {
		t.Fatalf("bad benchmem-less metrics: %v", got)
	}
	// Custom ReportMetric units come through.
	if got := rep.Results[2].Metrics["improvement-%"]; got != 12.50 {
		t.Fatalf("custom metric = %v", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken notanumber\n")); err == nil {
		t.Fatal("want error for malformed iteration count")
	}
	if _, err := parse(strings.NewReader("BenchmarkBroken 10 oops ns/op\n")); err == nil {
		t.Fatal("want error for malformed metric value")
	}
}

func TestParseRejectsSingleIteration(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkOnce-8 1 123456 ns/op\n"))
	if err == nil || !strings.Contains(err.Error(), "single iteration") {
		t.Fatalf("want single-iteration error, got %v", err)
	}
	// Stock -benchmem columns don't lift the rejection either.
	_, err = parse(strings.NewReader("BenchmarkOnce-8 1 123456 ns/op 99 B/op 3 allocs/op\n"))
	if err == nil || !strings.Contains(err.Error(), "single iteration") {
		t.Fatalf("want single-iteration error for benchmem-only line, got %v", err)
	}
}

// TestParseAcceptsSingleIterationWithCustomMetrics: soak benchmarks run
// once by design and report internally-averaged custom metrics; those
// lines must parse.
func TestParseAcceptsSingleIterationWithCustomMetrics(t *testing.T) {
	line := "BenchmarkSoak/1M-8 1 21500000000 ns/op 46500 req/s 17825792 peak-heap-bytes\n"
	rep, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rep.Results))
	}
	res := rep.Results[0]
	if res.Name != "BenchmarkSoak/1M" || res.Iterations != 1 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Metrics["req/s"] != 46500 || res.Metrics["peak-heap-bytes"] != 17825792 {
		t.Fatalf("custom metrics lost: %v", res.Metrics)
	}
}
