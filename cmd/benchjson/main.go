// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark runs can be checked in and
// diffed (BENCH_placement.json) or archived as CI artifacts without
// scraping free-form text downstream.
//
//	go test -run '^$' -bench BenchmarkPlaceScale -benchmem -benchtime=100x . | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics holds every "value unit" pair the
// line reported: ns/op and B/op and allocs/op when -benchmem is on, plus
// any custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole run: the environment header lines go test prints
// followed by the benchmark results in input order.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// parse consumes go test -bench output. Unrecognized lines (PASS, ok,
// test logs) are skipped; malformed Benchmark lines are an error so a
// truncated run cannot silently produce an empty report, and so are
// single-iteration results — one iteration means the run was invoked
// with -benchtime=1x (or an op outran the benchtime) and the figures
// are unaveraged noise that must not be checked in. Exception: a
// single-iteration result that reports custom metrics (anything beyond
// the stock ns/op, B/op, allocs/op, MB/s columns) is accepted — soak
// benchmarks run once by design, with each "iteration" internally
// averaging over a huge request count, and their req/s and
// peak-heap-bytes figures are the deliverable.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if res.Iterations == 1 && !hasCustomMetrics(res) {
				return nil, fmt.Errorf("benchjson: %s ran a single iteration — rerun with a real -benchtime so the figures are averaged", res.Name)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// hasCustomMetrics reports whether the result carries any b.ReportMetric
// unit beyond the testing package's stock columns.
func hasCustomMetrics(res Result) bool {
	for unit := range res.Metrics {
		switch unit {
		case "ns/op", "B/op", "allocs/op", "MB/s":
		default:
			return true
		}
	}
	return false
}

// parseLine splits "BenchmarkX-8  10  123 ns/op  45 B/op" into a Result.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("benchjson: short benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Strip the trailing -GOMAXPROCS suffix so names compare across machines.
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name = res.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("benchjson: bad metric value in %q: %v", line, err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, nil
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
