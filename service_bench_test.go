// Service benchmarks: sustained placement throughput through the
// concurrent placement front-end of internal/service at increasing client
// concurrency. Each client iteration is one place + one release round
// trip, so the plant stays at a small steady-state load and the figure
// isolates the serving pipeline (intake → batcher → single-writer apply)
// rather than queueing behaviour. BenchmarkService feeds
// BENCH_service.json (make bench-service).
package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/service"
	"affinitycluster/internal/topology"
)

// BenchmarkService measures end-to-end placements per second at 1, 8, and
// 64 concurrent clients against a 200-node plant. Every request fits the
// idle plant with room for all clients at once, so no placement ever
// waits in the queue and the figure is pure serving throughput.
func BenchmarkService(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			topo, err := topology.Uniform(4, 5, 10, topology.DefaultDistances())
			if err != nil {
				b.Fatal(err)
			}
			const types = 2
			caps := make([][]int, topo.Nodes())
			for i := range caps {
				caps[i] = []int{4, 4}
			}
			inv, err := inventory.NewFromMatrix(caps)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := service.New(service.Config{
				Topology:  topo,
				Inventory: inv,
				BatchSize: 32,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				iters := b.N / clients
				if w < b.N%clients {
					iters++
				}
				wg.Add(1)
				go func(w, iters int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < iters; i++ {
						r := model.Request{2 + rng.Intn(5), 2 + rng.Intn(5)}
						p, err := svc.Place(r)
						if err != nil {
							b.Error(err)
							return
						}
						if err := svc.Release(p.Entries); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, iters)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "places/s")
			if err := svc.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
