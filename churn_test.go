// Churn benchmarks and gates: steady-state place/release/fail cycles
// against a live inventory with an attached tier index — the operational
// regime the persistent aggregates exist for. BenchmarkChurn feeds
// BENCH_churn.json (make bench-churn); TestChurnSteadyStateZeroAllocs is
// the allocation-regression gate; TestChurnIncrementalLockstep is the
// correctness property tying the incremental index and the pruned scan to
// fresh rebuilds and the exhaustive oracle after every mutation kind.
package bench

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime/debug"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// churnRing is a FIFO of live clusters over one inventory: each slot holds
// the request vector and the committed sparse entries, so the steady-state
// step (release oldest, re-place the same vector, commit) conserves
// utilization exactly and reuses every backing array.
type churnRing struct {
	inv        *inventory.Inventory
	idx        *affinity.TierIndex
	h          *placement.OnlineHeuristic
	reqs       []model.Request
	ents       [][]affinity.VMEntry
	oldest     int
	sp         affinity.SparseAlloc
	allocTotal []int // VMs per node, for the fail arm's empty-victim scan
	cursor     int
}

// fillChurnRing builds an inventory + attached index over caps and places
// seeded random clusters until utilization reaches utilPct of the plant's
// VM slots.
func fillChurnRing(tb testing.TB, topo *topology.Topology, caps [][]int, nodesPerRack, utilPct int, seed int64) *churnRing {
	tb.Helper()
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		tb.Fatal(err)
	}
	idx, err := inv.AttachTierIndex(topo)
	if err != nil {
		tb.Fatal(err)
	}
	total := 0
	for i := range caps {
		total += model.Sum(caps[i])
	}
	r := &churnRing{
		inv:        inv,
		idx:        idx,
		h:          &placement.OnlineHeuristic{Policy: placement.ScanAllCenters},
		allocTotal: make([]int, topo.Nodes()),
	}
	rng := rand.New(rand.NewSource(seed))
	types := len(caps[0])
	used := 0
	for used*100 < total*utilPct {
		req := make(model.Request, types)
		for j := range req {
			req[j] = 1 + rng.Intn(nodesPerRack/2+1)
		}
		if _, _, err := r.h.PlaceSparse(r.idx, req, &r.sp); err != nil {
			tb.Fatalf("prefill placement at %d/%d VMs: %v", used, total, err)
		}
		if err := inv.AllocateList(r.sp.Entries); err != nil {
			tb.Fatalf("prefill commit: %v", err)
		}
		for _, e := range r.sp.Entries {
			r.allocTotal[e.Node] += e.Count
			used += e.Count
		}
		r.reqs = append(r.reqs, req)
		r.ents = append(r.ents, append([]affinity.VMEntry(nil), r.sp.Entries...))
	}
	return r
}

// step is one steady-state churn iteration: tear down the oldest cluster
// and re-place its exact request vector. The success path allocates
// nothing once the ring's entry slices have reached working size.
func (r *churnRing) step() error {
	s := r.oldest
	for _, e := range r.ents[s] {
		r.allocTotal[e.Node] -= e.Count
	}
	if err := r.inv.ReleaseList(r.ents[s]); err != nil {
		return err
	}
	if _, _, err := r.h.PlaceSparse(r.idx, r.reqs[s], &r.sp); err != nil {
		return err
	}
	if err := r.inv.AllocateList(r.sp.Entries); err != nil {
		return err
	}
	for _, e := range r.sp.Entries {
		r.allocTotal[e.Node] += e.Count
	}
	r.ents[s] = append(r.ents[s][:0], r.sp.Entries...)
	r.oldest = (s + 1) % len(r.ents)
	return nil
}

// failRestoreEmpty crashes and immediately repairs the next node hosting
// no VMs — exercising the whole-row index repair (rack/cloud max rescans)
// without destroying any live cluster's bookkeeping.
func (r *churnRing) failRestoreEmpty() error {
	n := len(r.allocTotal)
	for tries := 0; tries < n; tries++ {
		v := r.cursor
		r.cursor = (r.cursor + 1) % n
		if r.allocTotal[v] != 0 {
			continue
		}
		if _, err := r.inv.FailNode(topology.NodeID(v)); err != nil {
			return err
		}
		return r.inv.RestoreNode(topology.NodeID(v))
	}
	return errors.New("no empty node to fail")
}

// BenchmarkChurn measures the steady-state churn cost against a live
// inventory with the persistent tier index attached: release the oldest
// cluster, place an identical request, commit — at several utilizations,
// with a fail/restore mix arm, and at the million-node plant. The
// place-release arms are the zero-allocation steady state gated by
// TestChurnSteadyStateZeroAllocs.
func BenchmarkChurn(b *testing.B) {
	if testing.Short() {
		b.Skip("churn plants are too heavy for -short runs")
	}
	const types = 3
	run := func(name string, clouds, racks, nodesPerRack, utilPct int, failMix bool) {
		b.Run(name, func(b *testing.B) {
			topo, err := topology.Uniform(clouds, racks, nodesPerRack, topology.DefaultDistances())
			if err != nil {
				b.Fatal(err)
			}
			caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), types, workload.DefaultInventoryConfig())
			if err != nil {
				b.Fatal(err)
			}
			ring := fillChurnRing(b, topo, caps, nodesPerRack, utilPct, benchSeed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ring.step(); err != nil {
					b.Fatal(err)
				}
				if failMix {
					if err := ring.failRestoreEmpty(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	run("place-release/10x40x40/util30", 10, 40, 40, 30, false)
	run("place-release/10x40x40/util60", 10, 40, 40, 60, false)
	run("place-release/10x40x40/util90", 10, 40, 40, 90, false)
	run("fail-restore-mix/10x40x40/util60", 10, 40, 40, 60, true)
	run("place-release/100x100x100/util30", 100, 100, 100, 30, false)
}

// TestChurnSteadyStateZeroAllocs gates the allocation-free steady state:
// after warmup, a churn step (ReleaseList + PlaceSparse + AllocateList +
// ring bookkeeping) must not allocate. GC is disabled around the
// measurement so pool reclamation cannot flake the gate. The plant is
// small so the gate also runs in -short mode.
func TestChurnSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in non-race builds")
	}
	const types = 3
	topo, err := topology.Uniform(2, 10, 10, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), types, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	ring := fillChurnRing(t, topo, caps, 10, 30, benchSeed)
	for i := 0; i < 3*len(ring.ents); i++ { // warm pools and entry slices
		if err := ring.step(); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(100, func() {
		if err := ring.step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state churn step allocates %.2f times per op, want 0", avg)
	}
}

// churnPlant builds a small random multi-cloud plant.
func churnPlant(t *testing.T, rng *rand.Rand) *topology.Topology {
	t.Helper()
	bld := topology.NewBuilder(topology.DefaultDistances())
	clouds := 1 + rng.Intn(3)
	for c := 0; c < clouds; c++ {
		bld.AddCloud()
		racks := 1 + rng.Intn(4)
		for k := 0; k < racks; k++ {
			bld.AddRack()
			bld.AddNodes(1 + rng.Intn(5))
		}
	}
	topo, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestChurnIncrementalLockstep drives random place / release / fail /
// restore sequences through two parallel worlds: the incremental one (an
// inventory with an attached tier index, placements through the pruned
// PlaceSparse scan and sparse commits) and the oracle one (a plain
// inventory, placements through the exhaustive-center reference path on a
// cloned snapshot). After every step the attached index must match a fresh
// rebuild, the two inventories must agree cell for cell, and every
// placement must be identical — allocation, DC, feasibility — between the
// pruned and exhaustive paths.
func TestChurnIncrementalLockstep(t *testing.T) {
	trials := 20
	steps := 50
	if testing.Short() {
		trials, steps = 6, 30
	}
	rng := rand.New(rand.NewSource(2012))
	for trial := 0; trial < trials; trial++ {
		topo := churnPlant(t, rng)
		n := topo.Nodes()
		types := 1 + rng.Intn(3)
		caps := make([][]int, n)
		for i := range caps {
			caps[i] = make([]int, types)
			for j := range caps[i] {
				caps[i][j] = rng.Intn(5)
			}
		}
		invA, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := invA.AttachTierIndex(topo)
		if err != nil {
			t.Fatal(err)
		}
		invB, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		pruned := &placement.OnlineHeuristic{Policy: placement.ScanAllCenters}
		exhaustive := &placement.OnlineHeuristic{Policy: placement.ExhaustiveCenters}
		var sp affinity.SparseAlloc
		type cluster struct {
			ents  []affinity.VMEntry
			dense affinity.Allocation
		}
		var live []cluster
		failed := map[int]bool{}
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(6); {
			case op <= 2: // place
				req := make(model.Request, types)
				for j := range req {
					req[j] = rng.Intn(4)
				}
				dA, _, errA := pruned.PlaceSparse(idx, req, &sp)
				dense, errB := exhaustive.Place(topo, invB.Remaining(), req)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("trial %d step %d: pruned err %v, exhaustive err %v", trial, step, errA, errB)
				}
				if errA != nil {
					if !errors.Is(errA, placement.ErrInsufficient) {
						t.Fatalf("trial %d step %d: %v", trial, step, errA)
					}
					break
				}
				if got := sp.ToDense(); !reflect.DeepEqual(got, dense) {
					t.Fatalf("trial %d step %d: allocations differ\npruned:     %v\nexhaustive: %v", trial, step, got, dense)
				}
				dB, _ := dense.Distance(topo)
				if dA != dB {
					t.Fatalf("trial %d step %d: DC %v != %v", trial, step, dA, dB)
				}
				if err := invA.AllocateList(sp.Entries); err != nil {
					t.Fatalf("trial %d step %d: AllocateList: %v", trial, step, err)
				}
				if err := invB.Allocate([][]int(dense)); err != nil {
					t.Fatalf("trial %d step %d: Allocate: %v", trial, step, err)
				}
				live = append(live, cluster{
					ents:  append([]affinity.VMEntry(nil), sp.Entries...),
					dense: dense,
				})
			case op == 3 && len(live) > 0: // release
				k := rng.Intn(len(live))
				c := live[k]
				if err := invA.ReleaseList(c.ents); err != nil {
					t.Fatalf("trial %d step %d: ReleaseList: %v", trial, step, err)
				}
				if err := invB.Release([][]int(c.dense)); err != nil {
					t.Fatalf("trial %d step %d: Release: %v", trial, step, err)
				}
				live = append(live[:k], live[k+1:]...)
			case op == 4: // fail a node, dropping its VMs from live clusters
				v := rng.Intn(n)
				if failed[v] {
					break
				}
				lostA, errA := invA.FailNode(topology.NodeID(v))
				lostB, errB := invB.FailNode(topology.NodeID(v))
				if (errA == nil) != (errB == nil) {
					t.Fatalf("trial %d step %d: FailNode err %v vs %v", trial, step, errA, errB)
				}
				if errA != nil {
					break
				}
				if !reflect.DeepEqual(lostA, lostB) {
					t.Fatalf("trial %d step %d: lost %v vs %v", trial, step, lostA, lostB)
				}
				failed[v] = true
				for k := range live {
					kept := live[k].ents[:0]
					for _, e := range live[k].ents {
						if int(e.Node) != v {
							kept = append(kept, e)
						}
					}
					live[k].ents = kept
					for j := range live[k].dense[v] {
						live[k].dense[v][j] = 0
					}
				}
			default: // restore
				for v := range failed {
					if !failed[v] {
						continue
					}
					if err := invA.RestoreNode(topology.NodeID(v)); err != nil {
						t.Fatalf("trial %d step %d: RestoreNode: %v", trial, step, err)
					}
					if err := invB.RestoreNode(topology.NodeID(v)); err != nil {
						t.Fatalf("trial %d step %d: RestoreNode oracle: %v", trial, step, err)
					}
					delete(failed, v)
					break
				}
			}
			if err := idx.CheckConsistent(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if err := invA.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if idx.Version() != invA.Version() {
				t.Fatalf("trial %d step %d: index version %d != inventory %d", trial, step, idx.Version(), invA.Version())
			}
			if !reflect.DeepEqual(invA.Remaining(), invB.Remaining()) {
				t.Fatalf("trial %d step %d: remaining matrices diverged", trial, step)
			}
		}
	}
}
