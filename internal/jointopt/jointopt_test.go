package jointopt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func plant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 3, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestProfileValidation(t *testing.T) {
	if err := (Profile{ShuffleWeight: -0.1}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (Profile{ShuffleWeight: 1.1}).Validate(); err == nil {
		t.Error("weight > 1 accepted")
	}
	p := &Placer{Profile: Profile{ShuffleWeight: 2}}
	if _, err := p.Place(plant(t), nil, nil); err == nil {
		t.Error("Place with bad profile accepted")
	}
}

func TestProfileFor(t *testing.T) {
	cases := []struct {
		spec mapreduce.JobSpec
		want float64
	}{
		{mapreduce.Grep("f"), 0.01 / 1.01},
		{mapreduce.TeraSort("f", 2), 0.5},
		{mapreduce.Join("f", 2), 1.5 / 2.5},
	}
	for _, c := range cases {
		got := ProfileFor(c.spec).ShuffleWeight
		if got != c.want {
			t.Errorf("%s: weight = %v, want %v", c.spec.Name, got, c.want)
		}
	}
	// Negative selectivity clamps to 0.
	if got := ProfileFor(mapreduce.JobSpec{MapSelectivity: -3}).ShuffleWeight; got != 0 {
		t.Errorf("clamped weight = %v", got)
	}
}

func TestPlacerName(t *testing.T) {
	p := &Placer{Profile: Profile{ShuffleWeight: 0.25}}
	if p.Name() != "jointopt(w=0.25)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPlaceValidAndNeverWorseThanSeed(t *testing.T) {
	tp := plant(t)
	r := rand.New(rand.NewSource(5))
	online := &placement.OnlineHeuristic{}
	for trial := 0; trial < 30; trial++ {
		caps, err := workload.RandomCapacities(r.Int63(), tp.Nodes(), 2, workload.DefaultInventoryConfig())
		if err != nil {
			t.Fatal(err)
		}
		req := model.Request{2 + r.Intn(5), r.Intn(3)}
		w := float64(trial%5) / 4
		p := &Placer{Profile: Profile{ShuffleWeight: w}}
		alloc, err := p.Place(tp, caps, req)
		if err != nil {
			if errors.Is(err, placement.ErrInsufficient) {
				continue
			}
			t.Fatal(err)
		}
		if verr := alloc.Validate(req, caps); verr != nil {
			t.Fatalf("trial %d: %v", trial, verr)
		}
		seed, err := online.Place(tp, caps, req)
		if err != nil {
			t.Fatal(err)
		}
		if p.Score(tp, alloc) > p.Score(tp, seed)+1e-9 {
			t.Errorf("trial %d (w=%.2f): local search worsened score %.3f > %.3f",
				trial, w, p.Score(tp, alloc), p.Score(tp, seed))
		}
	}
}

// Property: with ShuffleWeight 1 the placer's pairwise affinity is never
// above the plain heuristic's; with weight 0 its DC is never above the
// plain heuristic's.
func TestQuickExtremesDominate(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	online := &placement.OnlineHeuristic{}
	f := func(seed int64, shuffle bool) bool {
		r := rand.New(rand.NewSource(seed))
		caps, err := workload.RandomCapacities(r.Int63(), tp.Nodes(), 1, workload.DefaultInventoryConfig())
		if err != nil {
			return false
		}
		req := model.Request{2 + r.Intn(5)}
		seedAlloc, err := online.Place(tp, caps, req)
		if err != nil {
			return true // infeasible draw
		}
		w := 0.0
		if shuffle {
			w = 1.0
		}
		p := &Placer{Profile: Profile{ShuffleWeight: w}}
		alloc, err := p.Place(tp, caps, req)
		if err != nil {
			return false
		}
		if shuffle {
			return alloc.PairwiseAffinity(tp) <= seedAlloc.PairwiseAffinity(tp)+1e-9
		}
		d1, _ := alloc.Distance(tp)
		d0, _ := seedAlloc.Distance(tp)
		return d1 <= d0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestShuffleWeightChangesPlacementShape(t *testing.T) {
	tp := plant(t)
	// Capacity: node 0 can host 4, nodes 1-3 (same rack) one each; a
	// second rack offers a 5-slot node 4 and a 2-slot node 5.
	caps := [][]int{
		{4}, {1}, {1}, {1},
		{5}, {2}, {0}, {0},
		{0}, {0}, {0}, {0},
	}
	req := model.Request{7}
	// DC-oriented (w=0) and shuffle-oriented (w=1) placements are both
	// valid; the shuffle-oriented one must have pairwise affinity no
	// worse.
	dcP := &Placer{Profile: Profile{ShuffleWeight: 0}}
	shP := &Placer{Profile: Profile{ShuffleWeight: 1}}
	a0, err := dcP.Place(tp, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := shP.Place(tp, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	if a1.PairwiseAffinity(tp) > a0.PairwiseAffinity(tp) {
		t.Errorf("shuffle-weighted affinity %v above DC-weighted %v",
			a1.PairwiseAffinity(tp), a0.PairwiseAffinity(tp))
	}
}

func TestPlaceForJob(t *testing.T) {
	tp := plant(t)
	caps, err := workload.RandomCapacities(9, tp.Nodes(), 1, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := model.Request{5}
	alloc, err := PlaceForJob(tp, caps, req, mapreduce.TeraSort("input", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Satisfies(req) {
		t.Error("job placement does not satisfy request")
	}
}
