// Package jointopt integrates virtual-cluster provisioning with MapReduce
// job characteristics — the paper's second future-work item: "the
// integration of more fine-grained virtual cluster provisioning methods
// and MapReduce scheduling strategies needs to be explored."
//
// The paper's DC metric measures distance to a central node, which models
// master-worker coordination; the experimental evaluation measures
// pairwise cluster affinity, which models the all-to-all shuffle. Real
// jobs sit between the extremes: a Grep-like job barely shuffles, a
// TeraSort moves every byte all-to-all. This package scores allocations
// with a job-profile-weighted blend of the two metrics
//
//	score(C) = w · PairwiseAffinity(C) + (1 − w) · DC(C)
//
// and places requests by seeding with the paper's online heuristic and
// then running a capacity-respecting single-VM local search on the
// blended score.
package jointopt

import (
	"fmt"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
)

// Profile characterizes the traffic mix of the job a cluster will run.
type Profile struct {
	// ShuffleWeight in [0, 1] is the relative importance of all-to-all
	// (shuffle) traffic versus master-coordination traffic.
	ShuffleWeight float64
}

// Validate rejects weights outside [0, 1].
func (p Profile) Validate() error {
	if p.ShuffleWeight < 0 || p.ShuffleWeight > 1 {
		return fmt.Errorf("jointopt: ShuffleWeight %v outside [0, 1]", p.ShuffleWeight)
	}
	return nil
}

// ProfileFor derives a profile from a MapReduce job spec: the heavier the
// intermediate data relative to the input, the more the shuffle
// dominates. MapSelectivity 0 → weight 0; selectivity 1 → ~0.5;
// selectivity → ∞ approaches 1.
func ProfileFor(spec mapreduce.JobSpec) Profile {
	s := spec.MapSelectivity
	if s < 0 {
		s = 0
	}
	return Profile{ShuffleWeight: s / (1 + s)}
}

// Placer is a placement.Placer optimizing the blended objective.
type Placer struct {
	Profile Profile
	// MaxIterations caps local-search moves (0 = 256).
	MaxIterations int
}

// Name implements placement.Placer.
func (p *Placer) Name() string {
	return fmt.Sprintf("jointopt(w=%.2f)", p.Profile.ShuffleWeight)
}

// Score evaluates the blended objective for an allocation. One evaluator
// serves both terms: DC through the tier aggregates and the pairwise
// affinity through its closed form, so scoring costs O(hosts) instead of
// two full scans of the allocation matrix.
func (p *Placer) Score(t *topology.Topology, a affinity.Allocation) float64 {
	w := p.Profile.ShuffleWeight
	ev := affinity.NewDistanceEvaluator(t, a)
	d, _ := ev.Distance()
	return w*ev.PairwiseAffinity() + (1-w)*d
}

// Place implements placement.Placer: seed with Algorithm 1, then improve
// the blended score by relocating single VMs into spare capacity. Candidate
// moves are priced through the incremental evaluator — the DC part via
// MovePreview, the shuffle part via the closed-form pairwise delta — and
// the allocation is only mutated when a move is accepted.
func (p *Placer) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	if err := p.Profile.Validate(); err != nil {
		return nil, err
	}
	seedPlacer := &placement.OnlineHeuristic{}
	alloc, err := seedPlacer.Place(t, l, r)
	if err != nil {
		return nil, err
	}
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 256
	}
	n := t.Nodes()
	m := len(r)
	w := p.Profile.ShuffleWeight
	ev := affinity.NewDistanceEvaluator(t, alloc)
	pair := ev.PairwiseAffinity()
	dc, _ := ev.Distance()
	score := w*pair + (1-w)*dc
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		for from := 0; from < n && !improved; from++ {
			for j := 0; j < m && !improved; j++ {
				if alloc[from][j] == 0 {
					continue
				}
				for to := 0; to < n; to++ {
					if to == from || alloc[to][j] >= l[to][j] {
						continue
					}
					dc1, _ := ev.MovePreview(topology.NodeID(from), topology.NodeID(to))
					pair1 := pair + ev.PairwiseMoveDelta(topology.NodeID(from), topology.NodeID(to))
					if s := w*pair1 + (1-w)*dc1; s < score-1e-12 {
						alloc.Remove(topology.NodeID(from), model.VMTypeID(j))
						alloc.Add(topology.NodeID(to), model.VMTypeID(j))
						ev.Move(topology.NodeID(from), topology.NodeID(to))
						pair, score = pair1, s
						improved = true
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return alloc, nil
}

// PlaceForJob is the convenience path: derive the profile from the job
// and place.
func PlaceForJob(t *topology.Topology, l [][]int, r model.Request, spec mapreduce.JobSpec) (affinity.Allocation, error) {
	p := &Placer{Profile: ProfileFor(spec)}
	return p.Place(t, l, r)
}
