// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x (≤ | = | ≥) b_i   for every constraint i
//	            x ≥ 0
//
// It exists because the paper formulates the shortest-distance (SD) and
// global shortest-distance (GSD) provisioning problems as integer linear
// programs, and the Go ecosystem offers no stdlib LP/ILP solver. Package
// mip builds a branch-and-bound integer solver on top of this one.
//
// The implementation is a textbook dense tableau simplex with Bland's rule
// (guaranteeing termination in the presence of degeneracy) and a Phase I
// artificial-variable start. It is written for correctness and clarity at
// the problem sizes of the paper's evaluation (tens of nodes, a few VM
// types), not for sparse industrial LPs.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the comparison operator of one constraint row.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // a·x ≤ b
	EQ                 // a·x = b
	GE                 // a·x ≥ b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// constraint is one row a·x (rel) b.
type constraint struct {
	coeffs []float64
	rel    Relation
	rhs    float64
}

// Problem is a linear program under construction. All variables are
// implicitly non-negative; use AddConstraint for upper bounds.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []constraint
}

// NewProblem creates a problem with n non-negative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	if n <= 0 {
		panic(fmt.Sprintf("lp: NewProblem(%d) needs at least one variable", n))
	}
	return &Problem{numVars: n, objective: make([]float64, n)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective installs the minimization objective c·x. The slice is
// copied; its length must equal NumVars.
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.numVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), p.numVars)
	}
	copy(p.objective, c)
	return nil
}

// SetObjectiveCoeff sets one objective coefficient.
func (p *Problem) SetObjectiveCoeff(v int, c float64) error {
	if v < 0 || v >= p.numVars {
		return fmt.Errorf("lp: variable %d out of range [0,%d)", v, p.numVars)
	}
	p.objective[v] = c
	return nil
}

// AddConstraint appends the row coeffs·x (rel) rhs. The slice is copied.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	p.constraints = append(p.constraints, constraint{
		coeffs: append([]float64(nil), coeffs...),
		rel:    rel,
		rhs:    rhs,
	})
	return nil
}

// AddSparseConstraint appends a row given as variable-index/coefficient
// pairs; unspecified coefficients are zero.
func (p *Problem) AddSparseConstraint(vars []int, coeffs []float64, rel Relation, rhs float64) error {
	if len(vars) != len(coeffs) {
		return fmt.Errorf("lp: sparse constraint has %d indices but %d coefficients", len(vars), len(coeffs))
	}
	row := make([]float64, p.numVars)
	for i, v := range vars {
		if v < 0 || v >= p.numVars {
			return fmt.Errorf("lp: variable %d out of range [0,%d)", v, p.numVars)
		}
		row[v] += coeffs[i]
	}
	p.constraints = append(p.constraints, constraint{coeffs: row, rel: rel, rhs: rhs})
	return nil
}

// Solution is the result of a successful Solve call.
type Solution struct {
	Status    Status
	X         []float64 // variable values; nil unless Status == Optimal
	Objective float64   // c·x at the optimum; meaningless otherwise
}

const (
	eps     = 1e-9
	maxIter = 200000
)

// ErrIterationLimit is returned when the simplex exceeds its iteration
// budget — with Bland's rule this indicates a numerically hostile model
// rather than cycling.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// Solve runs the two-phase simplex and returns the outcome. A non-nil
// error is reserved for internal failures (iteration limit); infeasibility
// and unboundedness are reported through Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	t := newTableau(p)
	// Phase I: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		t.installPhaseIObjective()
		if err := t.iterate(); err != nil {
			return nil, err
		}
		if t.objectiveValue() > eps {
			return &Solution{Status: Infeasible}, nil
		}
		if err := t.driveOutArtificials(); err != nil {
			return nil, err
		}
	}
	// Phase II: minimize the real objective.
	t.installPhaseIIObjective(p.objective)
	status, err := t.iteratePhaseII()
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := t.extract(p.numVars)
	obj := 0.0
	for i, c := range p.objective {
		obj += c * x[i]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau holds the simplex working state. Columns are laid out as:
// [0, numVars) structural variables, then slack/surplus, then artificials.
type tableau struct {
	rows          int // number of constraints
	cols          int // total variables
	numVars       int
	numArtificial int
	artStart      int         // column index of the first artificial
	a             [][]float64 // rows × cols constraint matrix
	b             []float64   // right-hand sides, kept ≥ 0
	cost          []float64   // current objective row
	costShift     float64     // constant subtracted from the objective
	basis         []int       // basis[r] = column basic in row r
	phaseII       bool
}

func newTableau(p *Problem) *tableau {
	rows := len(p.constraints)
	// Count extra columns.
	slack := 0
	art := 0
	for _, c := range p.constraints {
		rhs := c.rhs
		rel := c.rel
		if rhs < 0 {
			// Normalize to non-negative RHS by flipping the row.
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			slack++ // slack enters the basis directly
		case GE:
			slack++ // surplus
			art++
		case EQ:
			art++
		}
	}
	cols := p.numVars + slack + art
	t := &tableau{
		rows:          rows,
		cols:          cols,
		numVars:       p.numVars,
		numArtificial: art,
		artStart:      p.numVars + slack,
		a:             make([][]float64, rows),
		b:             make([]float64, rows),
		cost:          make([]float64, cols),
		basis:         make([]int, rows),
	}
	slackCol := p.numVars
	artCol := t.artStart
	for r, c := range p.constraints {
		row := make([]float64, cols)
		rhs := c.rhs
		rel := c.rel
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j, v := range c.coeffs {
			row[j] = sign * v
		}
		t.b[r] = rhs
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[r] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
		}
		t.a[r] = row
	}
	return t
}

// installPhaseIObjective sets cost = Σ artificials, reduced against the
// current (artificial) basis.
func (t *tableau) installPhaseIObjective() {
	for j := range t.cost {
		t.cost[j] = 0
	}
	t.costShift = 0
	for j := t.artStart; j < t.cols; j++ {
		t.cost[j] = 1
	}
	// Price out basic artificials: subtract their rows from the cost row.
	for r, bc := range t.basis {
		if bc >= t.artStart {
			for j := 0; j < t.cols; j++ {
				t.cost[j] -= t.a[r][j]
			}
			t.costShift -= t.b[r]
		}
	}
	t.phaseII = false
}

// installPhaseIIObjective sets the real objective, priced out against the
// current basis, and forbids artificials from re-entering by leaving their
// reduced costs untouched (they are excluded from pivoting in phase II).
func (t *tableau) installPhaseIIObjective(obj []float64) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	t.costShift = 0
	copy(t.cost, obj)
	for r, bc := range t.basis {
		if c := t.cost[bc]; c != 0 {
			for j := 0; j < t.cols; j++ {
				t.cost[j] -= c * t.a[r][j]
			}
			t.costShift -= c * t.b[r]
		}
	}
	t.phaseII = true
}

// objectiveValue returns the current objective (phase I: sum of
// artificials).
func (t *tableau) objectiveValue() float64 { return -t.costShift }

// pivotLimit returns the last pivot-eligible column (exclusive): phase II
// never re-admits artificial columns.
func (t *tableau) pivotLimit() int {
	if t.phaseII {
		return t.artStart
	}
	return t.cols
}

// iterate runs simplex pivots until optimality (phase I never reports
// unbounded: the artificial objective is bounded below by 0).
func (t *tableau) iterate() error {
	for it := 0; it < maxIter; it++ {
		col := t.chooseEntering()
		if col < 0 {
			return nil
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return errors.New("lp: phase I reported unbounded — internal error")
		}
		t.pivot(row, col)
	}
	return ErrIterationLimit
}

// iteratePhaseII runs pivots and can report Unbounded.
func (t *tableau) iteratePhaseII() (Status, error) {
	for it := 0; it < maxIter; it++ {
		col := t.chooseEntering()
		if col < 0 {
			return Optimal, nil
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return Unbounded, nil
		}
		t.pivot(row, col)
	}
	return Optimal, ErrIterationLimit
}

// chooseEntering applies Bland's rule: the lowest-indexed column with a
// negative reduced cost, or -1 at optimality.
func (t *tableau) chooseEntering() int {
	limit := t.pivotLimit()
	for j := 0; j < limit; j++ {
		if t.cost[j] < -eps {
			return j
		}
	}
	return -1
}

// chooseLeaving applies the minimum-ratio test with Bland's tie-break
// (lowest basis column index), or -1 if the column is unbounded.
func (t *tableau) chooseLeaving(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for r := 0; r < t.rows; r++ {
		if t.a[r][col] > eps {
			ratio := t.b[r] / t.a[r][col]
			if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (best < 0 || t.basis[r] < t.basis[best])) {
				best = r
				bestRatio = ratio
			}
		}
	}
	return best
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pv := t.a[row][col]
	inv := 1 / pv
	for j := 0; j < t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // kill residual rounding
	for r := 0; r < t.rows; r++ {
		if r == row {
			continue
		}
		f := t.a[r][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.a[r][j] -= f * t.a[row][j]
		}
		t.a[r][col] = 0
		t.b[r] -= f * t.b[row]
		if t.b[r] < 0 && t.b[r] > -eps {
			t.b[r] = 0
		}
	}
	f := t.cost[col]
	if f != 0 {
		for j := 0; j < t.cols; j++ {
			t.cost[j] -= f * t.a[row][j]
		}
		t.cost[col] = 0
		t.costShift -= f * t.b[row]
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial still basic at the end of
// phase I out of the basis (its value is 0). Rows that cannot be pivoted
// are redundant and are neutralized.
func (t *tableau) driveOutArtificials() error {
	for r := 0; r < t.rows; r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[r][j]) > eps {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: all structural coefficients are 0 and so is
			// b[r] (phase I optimum was 0). Leave it; it can never pivot.
			if t.b[r] > eps {
				return errors.New("lp: inconsistent redundant row after phase I — internal error")
			}
		}
	}
	return nil
}

// extract reads the values of the first n structural variables.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for r, bc := range t.basis {
		if bc < n {
			v := t.b[r]
			if v < 0 && v > -eps {
				v = 0
			}
			x[bc] = v
		}
	}
	return x
}
