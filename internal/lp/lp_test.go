package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func wantOptimal(t *testing.T, s *Solution, obj float64) {
	t.Helper()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Objective-obj) > 1e-6 {
		t.Fatalf("objective = %v, want %v", s.Objective, obj)
	}
}

func TestSimpleMinimization(t *testing.T) {
	// min x0 + 2 x1  s.t.  x0 + x1 >= 3, x0 <= 2  →  x0=2, x1=1, obj=4.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, GE, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, LE, 2); err != nil {
		t.Fatal(err)
	}
	s := solveOK(t, p)
	wantOptimal(t, s, 4)
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-1) > 1e-6 {
		t.Errorf("x = %v, want [2 1]", s.X)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
	// Optimum: x=2, y=6, objective 36.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{-3, -5})
	_ = p.AddConstraint([]float64{1, 0}, LE, 4)
	_ = p.AddConstraint([]float64{0, 2}, LE, 12)
	_ = p.AddConstraint([]float64{3, 2}, LE, 18)
	s := solveOK(t, p)
	wantOptimal(t, s, -36)
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want [2 6]", s.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x0 + x1 s.t. x0 + 2 x1 = 4, x0 - x1 = 1 → x0=2, x1=1, obj=3.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1})
	_ = p.AddConstraint([]float64{1, 2}, EQ, 4)
	_ = p.AddConstraint([]float64{1, -1}, EQ, 1)
	s := solveOK(t, p)
	wantOptimal(t, s, 3)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetObjective([]float64{1})
	_ = p.AddConstraint([]float64{1}, GE, 5)
	_ = p.AddConstraint([]float64{1}, LE, 3)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x0 with only x0 >= 1: drive x0 to infinity.
	p := NewProblem(1)
	_ = p.SetObjective([]float64{-1})
	_ = p.AddConstraint([]float64{1}, GE, 1)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x0 - x1 <= -2 is x1 - x0 >= 2. min x1 s.t. that and x0 >= 0 → x1=2.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{0, 1})
	_ = p.AddConstraint([]float64{1, -1}, LE, -2)
	s := solveOK(t, p)
	wantOptimal(t, s, 2)
}

func TestNegativeRHSEquality(t *testing.T) {
	// -x0 = -3 → x0 = 3.
	p := NewProblem(1)
	_ = p.SetObjective([]float64{1})
	_ = p.AddConstraint([]float64{-1}, EQ, -3)
	s := solveOK(t, p)
	wantOptimal(t, s, 3)
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Errorf("x = %v", s.X)
	}
}

func TestDegenerateLPTerminates(t *testing.T) {
	// Beale's classic cycling example (cycles under naive most-negative
	// pivoting); Bland's rule must terminate at objective -0.05.
	p := NewProblem(4)
	_ = p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	_ = p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	_ = p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	_ = p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	wantOptimal(t, s, -0.05)
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows leave a redundant row after phase I.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1})
	_ = p.AddConstraint([]float64{1, 1}, EQ, 2)
	_ = p.AddConstraint([]float64{1, 1}, EQ, 2)
	_ = p.AddConstraint([]float64{2, 2}, EQ, 4)
	s := solveOK(t, p)
	wantOptimal(t, s, 2)
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(5)
	_ = p.SetObjective([]float64{1, 0, 0, 0, 1})
	if err := p.AddSparseConstraint([]int{0, 4}, []float64{1, 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	s := solveOK(t, p)
	wantOptimal(t, s, 2)
	// Repeated indices accumulate.
	p2 := NewProblem(2)
	_ = p2.SetObjective([]float64{1, 0})
	_ = p2.AddSparseConstraint([]int{0, 0}, []float64{1, 1}, GE, 4) // 2 x0 >= 4
	s2 := solveOK(t, p2)
	wantOptimal(t, s2, 2)
}

func TestAPIErrors(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}); err == nil {
		t.Error("short objective accepted")
	}
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Error("out-of-range coeff accepted")
	}
	if err := p.AddConstraint([]float64{1}, LE, 0); err == nil {
		t.Error("short constraint accepted")
	}
	if err := p.AddSparseConstraint([]int{0}, []float64{1, 2}, LE, 0); err == nil {
		t.Error("mismatched sparse constraint accepted")
	}
	if err := p.AddSparseConstraint([]int{7}, []float64{1}, LE, 0); err == nil {
		t.Error("out-of-range sparse index accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewProblem(0) did not panic")
		}
	}()
	NewProblem(0)
}

func TestZeroObjectiveFeasibilityProblem(t *testing.T) {
	// Pure feasibility: objective 0 everywhere.
	p := NewProblem(2)
	_ = p.AddConstraint([]float64{1, 1}, EQ, 5)
	s := solveOK(t, p)
	wantOptimal(t, s, 0)
	if math.Abs(s.X[0]+s.X[1]-5) > 1e-6 {
		t.Errorf("x = %v does not satisfy x0+x1=5", s.X)
	}
}

// transportationInstance builds min Σ c_ij x_ij with row supplies and
// column demands — the structure of the paper's SD formulation for a fixed
// central node.
func transportationLP(cost [][]float64, supply, demand []float64) *Problem {
	rows, cols := len(cost), len(cost[0])
	p := NewProblem(rows * cols)
	obj := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			obj[i*cols+j] = cost[i][j]
		}
	}
	_ = p.SetObjective(obj)
	for i := 0; i < rows; i++ {
		idx := make([]int, cols)
		cf := make([]float64, cols)
		for j := 0; j < cols; j++ {
			idx[j] = i*cols + j
			cf[j] = 1
		}
		_ = p.AddSparseConstraint(idx, cf, LE, supply[i])
	}
	for j := 0; j < cols; j++ {
		idx := make([]int, rows)
		cf := make([]float64, rows)
		for i := 0; i < rows; i++ {
			idx[i] = i*cols + j
			cf[i] = 1
		}
		_ = p.AddSparseConstraint(idx, cf, EQ, demand[j])
	}
	return p
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers × 2 consumers; optimum assigns cheap edges first.
	cost := [][]float64{{1, 4}, {3, 2}}
	p := transportationLP(cost, []float64{3, 3}, []float64{2, 2})
	s := solveOK(t, p)
	// Cheapest: x00=2 (cost 2), x11=2 (cost 4) → 6.
	wantOptimal(t, s, 6)
}

// Property: on random feasible transportation instances the simplex
// optimum (a) satisfies every constraint and (b) is never beaten by a
// random feasible integral allocation (greedy check).
func TestQuickTransportationOptimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(3), 2+r.Intn(3)
		cost := make([][]float64, rows)
		supply := make([]float64, rows)
		total := 0
		for i := range cost {
			cost[i] = make([]float64, cols)
			for j := range cost[i] {
				cost[i][j] = float64(1 + r.Intn(9))
			}
			s := 1 + r.Intn(5)
			supply[i] = float64(s)
			total += s
		}
		demand := make([]float64, cols)
		remaining := total
		for j := 0; j < cols; j++ {
			d := r.Intn(remaining + 1)
			demand[j] = float64(d)
			remaining -= d
		}
		p := transportationLP(cost, supply, demand)
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		// Check feasibility of the reported solution.
		for i := 0; i < rows; i++ {
			sum := 0.0
			for j := 0; j < cols; j++ {
				x := s.X[i*cols+j]
				if x < -1e-7 {
					return false
				}
				sum += x
			}
			if sum > supply[i]+1e-6 {
				return false
			}
		}
		for j := 0; j < cols; j++ {
			sum := 0.0
			for i := 0; i < rows; i++ {
				sum += s.X[i*cols+j]
			}
			if math.Abs(sum-demand[j]) > 1e-6 {
				return false
			}
		}
		// Greedy feasible fill must not beat the optimum.
		greedy := 0.0
		left := append([]float64(nil), supply...)
		for j := 0; j < cols; j++ {
			need := demand[j]
			// Fill from cheapest available supplier.
			for need > 1e-9 {
				bi := -1
				for i := 0; i < rows; i++ {
					if left[i] > 1e-9 && (bi < 0 || cost[i][j] < cost[bi][j]) {
						bi = i
					}
				}
				if bi < 0 {
					return false // infeasible shouldn't happen
				}
				take := math.Min(left[bi], need)
				greedy += take * cost[bi][j]
				left[bi] -= take
				need -= take
			}
		}
		return s.Objective <= greedy+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: weak duality spot-check on random standard-form LPs
// min c·x, Ax >= b, x >= 0: any feasible dual y (y >= 0, yA <= c) has
// y·b <= optimum. We construct y from the solved LP's tight rows crudely —
// instead, simpler: the optimum of a GE-form LP must weakly exceed the
// optimum after dropping a constraint (relaxation can only lower the min).
func TestQuickRelaxationMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		rows := 2 + r.Intn(3)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = float64(1 + r.Intn(5)) // positive → bounded
		}
		type rowT struct {
			c   []float64
			rhs float64
		}
		var rowsData []rowT
		for k := 0; k < rows; k++ {
			c := make([]float64, n)
			for i := range c {
				c[i] = float64(r.Intn(4))
			}
			c[r.Intn(n)] += 1 // ensure the row is satisfiable
			rowsData = append(rowsData, rowT{c, float64(1 + r.Intn(6))})
		}
		full := NewProblem(n)
		_ = full.SetObjective(obj)
		for _, rw := range rowsData {
			_ = full.AddConstraint(rw.c, GE, rw.rhs)
		}
		sFull, err := full.Solve()
		if err != nil || sFull.Status != Optimal {
			return false
		}
		relaxed := NewProblem(n)
		_ = relaxed.SetObjective(obj)
		for i, rw := range rowsData {
			if i == 0 {
				continue // drop one constraint
			}
			_ = relaxed.AddConstraint(rw.c, GE, rw.rhs)
		}
		sRel, err := relaxed.Solve()
		if err != nil || sRel.Status != Optimal {
			return false
		}
		return sRel.Objective <= sFull.Objective+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Error("Relation strings wrong")
	}
	if Relation(9).String() != "Relation(9)" {
		t.Error("unknown relation string wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string wrong")
	}
}
