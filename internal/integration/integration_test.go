// Package integration ties the subsystems together end to end: the tests
// here cross module boundaries on purpose — provisioning through the core
// facade and executing MapReduce on the provisioned cluster, replaying
// recorded traces through the cloud simulator, and placing on topologies
// inferred from latency probes.
package integration

import (
	"bytes"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/core"
	"affinitycluster/internal/dfs"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/netmodel"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/probing"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/trace"
	"affinitycluster/internal/vcluster"
	"affinitycluster/internal/workload"
)

// runJobOn executes a WordCount on an allocation and returns its counters.
func runJobOn(t *testing.T, topo *topology.Topology, alloc affinity.Allocation) *mapreduce.Counters {
	t.Helper()
	cluster, err := vcluster.FromAllocation(topo, alloc)
	if err != nil {
		t.Fatal(err)
	}
	engine := eventsim.New()
	netCfg := netmodel.DefaultConfig()
	netCfg.RackUplinkMBps = 80
	net, err := netmodel.NewFlowSim(engine, topo, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := dfs.New(cluster, dfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.WriteRotating("input", 16*64); err != nil {
		t.Fatal(err)
	}
	sim, err := mapreduce.New(engine, net, cluster, fsys, mapreduce.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	counters, err := sim.Run(mapreduce.WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	return counters
}

// TestProvisionThenExecute is the full pipeline the paper envisions: a
// user requests a virtual cluster, the provider places it affinity-aware,
// and the MapReduce job on it beats the same job on an affinity-blind
// cluster of equal capability.
func TestProvisionThenExecute(t *testing.T) {
	topo, err := topology.Uniform(1, 4, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	caps := make([][]int, topo.Nodes())
	for i := range caps {
		caps[i] = []int{2}
	}
	req := model.Request{8}
	catalog := model.Catalog{{Name: "worker", MemoryGB: 4, ComputeUnits: 2, StorageGB: 100, Platform: "64-bit"}}

	provAffine, err := core.NewProvisioner(topo, caps, core.Options{Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	affine, err := provAffine.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	provBlind, err := core.NewProvisioner(topo, caps, core.Options{Strategy: core.RoundRobin, Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := provBlind.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	if affine.PairwiseAffinity() >= blind.PairwiseAffinity() {
		t.Fatalf("affinity-aware cluster not tighter: %v vs %v",
			affine.PairwiseAffinity(), blind.PairwiseAffinity())
	}
	cAffine := runJobOn(t, topo, affine.Alloc)
	cBlind := runJobOn(t, topo, blind.Alloc)
	if cAffine.Runtime >= cBlind.Runtime {
		t.Errorf("affinity-aware cluster not faster: %.2fs vs %.2fs", cAffine.Runtime, cBlind.Runtime)
	}
	if cAffine.ShuffleRemoteMB > cBlind.ShuffleRemoteMB {
		t.Errorf("affinity-aware cluster shuffles more cross-rack: %v vs %v",
			cAffine.ShuffleRemoteMB, cBlind.ShuffleRemoteMB)
	}
	if err := affine.Release(); err != nil {
		t.Fatal(err)
	}
	if err := blind.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceRecordReplay checks that a recorded trace replayed through the
// cloud simulator reproduces metrics exactly.
func TestTraceRecordReplay(t *testing.T) {
	topo := topology.PaperSimPlant()
	reqs, err := workload.RandomRequests(31, 25, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	timed, err := workload.TimedRequests(32, reqs, workload.DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.New("integration", 3, timed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(requests []model.TimedRequest) *cloudsim.Metrics {
		caps, err := workload.RandomCapacities(33, topo.Nodes(), 3, workload.DefaultInventoryConfig())
		if err != nil {
			t.Fatal(err)
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cloudsim.New(topo, inv, &placement.OnlineHeuristic{}, cloudsim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(requests)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	orig := run(timed)
	replay := run(replayed.Requests)
	if orig.Served != replay.Served || orig.TotalDistance != replay.TotalDistance ||
		orig.MakeSpan != replay.MakeSpan {
		t.Errorf("replay diverged: %+v vs %+v", orig, replay)
	}
}

// TestInferredTopologyPlacementMatchesTruth places the same request on
// the ground-truth topology and on the probe-inferred one; with clean
// inference the distances agree up to the measured tier values.
func TestInferredTopologyPlacementMatchesTruth(t *testing.T) {
	truth, err := topology.Uniform(1, 3, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := probing.NewSampler(truth, 51, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := probing.NewEstimator(truth.Nodes(), probing.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sampler.Campaign(est, 6); err != nil {
		t.Fatal(err)
	}
	inferred, err := est.InferTopology()
	if err != nil {
		t.Fatal(err)
	}
	caps, err := workload.RandomCapacities(52, truth.Nodes(), 2, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := model.Request{5, 2}
	h := &placement.OnlineHeuristic{}
	onTruth, err := h.Place(truth, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	onInferred, err := h.Place(inferred, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both allocations under the TRUE distances: placing on the
	// inferred topology must not be worse than a whole distance tier.
	dTruth, _ := onTruth.Distance(truth)
	dInferred, _ := onInferred.Distance(truth)
	if dInferred > dTruth+truth.Distances().SameRack {
		t.Errorf("placement on inferred topology much worse: %v vs %v", dInferred, dTruth)
	}
}

// TestExactSolverAgreementAtScale cross-checks the three exact SD paths
// on the full paper plant.
func TestExactSolverAgreementAtScale(t *testing.T) {
	topo := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(61, topo.Nodes(), 3, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := model.Request{4, 3, 2}
	greedy, err := sdexact.SolveSD(topo, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	flow, err := sdexact.SolveSDMCMF(topo, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Distance != flow.Distance {
		t.Errorf("greedy %v != mcmf %v", greedy.Distance, flow.Distance)
	}
	// The heuristic on the same instance is bounded below by the optimum.
	h := &placement.OnlineHeuristic{}
	alloc, err := h.Place(topo, caps, req)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := alloc.Distance(topo)
	if d < greedy.Distance-1e-9 {
		t.Errorf("heuristic %v below optimum %v", d, greedy.Distance)
	}
}
