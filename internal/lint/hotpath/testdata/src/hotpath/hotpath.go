// Fixture for the hotpath analyzer: //lint:hotpath functions must be
// statically allocation-free.
package hotpath

import "fmt"

type scratch struct {
	ids   []int
	resid []int
	n     int
}

type entry struct{ node, count int }

type alloc struct {
	Entries []entry
}

// --- good: the pooled-scratch idioms and plain arithmetic ---

// reset is the canonical self-append reuse shape.
//
//lint:hotpath
func (s *scratch) reset(src []int) {
	s.resid = s.resid[:0]
	s.resid = append(s.resid, src...)
	s.ids = append(s.ids[:0], src...)
}

// sup sizes its scratch lazily behind a grow-guard; the steady state
// never takes the make branch.
//
//lint:hotpath
func (s *scratch) sup(n int) []int {
	if len(s.ids) < n {
		s.ids = make([]int, n)
	}
	if cap(s.resid) < n {
		s.resid = make([]int, 0, n)
	}
	return s.ids[:n]
}

// add appends a by-value struct literal into its own backing array.
//
//lint:hotpath
func (a *alloc) add(node, count int) {
	a.Entries = append(a.Entries, entry{node: node, count: count})
}

// push is the heap idiom: self-append through a pointer receiver deref.
//
//lint:hotpath
func push(h *[]int, v int) {
	*h = append(*h, v)
}

// score touches only existing storage.
//
//lint:hotpath
func (s *scratch) score(w []int) int {
	t := 0
	for i, v := range w {
		if i < len(s.resid) {
			t += v * s.resid[i]
		}
	}
	s.n = t
	return t
}

// arrayLit is a stack value, not an allocation.
//
//lint:hotpath
func arrayLit(i int) int {
	tab := [4]int{1, 2, 4, 8}
	return tab[i&3]
}

// unannotated may allocate freely.
func unannotated() []int {
	return []int{1, 2, 3}
}

// --- bad: every allocating shape ---

//lint:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//lint:hotpath
func mapLit() map[string]int {
	return map[string]int{} // want "map literal allocates"
}

//lint:hotpath
func ptrLit() *entry {
	return &entry{node: 1} // want "&composite literal allocates"
}

//lint:hotpath
func bareMake(n int) []int {
	return make([]int, n) // want "make outside a len/cap grow-guard allocates"
}

//lint:hotpath
func wrongGuard(s *scratch, n int) {
	if s.n < n { // guard does not re-check the target's len/cap
		s.ids = make([]int, n) // want "make outside a len/cap grow-guard allocates"
	}
}

//lint:hotpath
func bareNew() *entry {
	return new(entry) // want "new allocates"
}

//lint:hotpath
func appendFresh(src []int) []int {
	var out []int
	out = append(out, src...) // self-append of a nil local is still the blessed shape
	return out
}

//lint:hotpath
func appendCross(s *scratch, src []int) {
	s.ids = append(s.resid, src...) // want "append beyond the self-append scratch shape"
}

//lint:hotpath
func appendExpr(s *scratch, v int) int {
	return len(append(s.ids, v)) // want "append beyond the self-append scratch shape"
}

//lint:hotpath
func closure(n int) func() int {
	return func() int { return n } // want "closure allocates"
}

//lint:hotpath
func spawn(ch chan int) {
	go drain(ch) // want "go statement allocates"
}

func drain(ch chan int) {
	for range ch {
	}
}

//lint:hotpath
func format(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
}

//lint:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//lint:hotpath
func constConcat() string {
	return "a" + "b" // folded at compile time: no finding
}

//lint:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want "string conversion allocates"
}

//lint:hotpath
func box(n int) any {
	return n // want "interface conversion of non-pointer value allocates"
}

//lint:hotpath
func boxArg(n int) {
	sink(n) // want "interface conversion of non-pointer value allocates"
}

func sink(v any) { _ = v }

// pointerShaped values fit the interface word: no boxing.
//
//lint:hotpath
func boxPtr(e *entry) any {
	return e
}

//lint:hotpath
func methodVal(s *scratch) func(int) []int {
	return s.sup // want "method value allocates"
}
