// Package hotpath makes the steady-state zero-allocation contract a
// compile-time check: a function annotated `//lint:hotpath` must be
// statically allocation-free. TestChurnSteadyStateZeroAllocs pins the
// churn loop at 0 allocs/op, but a benchmark only covers the paths it
// drives and only fails after the regression lands; this analyzer points
// at the exact expression that would allocate.
//
// Flagged inside an annotated function:
//
//   - slice and map composite literals, &T{...} literals
//   - make/new — except make in the pooled-scratch grow-guard shape
//     `if len(x) < n { x = make(..., n) }` (scanScratch's lazy sizing)
//   - append that is not a self-append — the only blessed shape is
//     `x = append(x, ...)` / `x = append(x[:0], ...)`, the pooled
//     scratch idiom that reuses the backing array it grows
//   - function literals (closure capture) and method values
//   - go statements
//   - fmt calls, non-constant string concatenation, string<->[]byte/rune
//     conversions
//   - interface conversions of non-pointer-shaped values (assignments,
//     call arguments, returns) — boxing allocates
//
// The check is per-function: callees are not followed, so every function
// on a hot path carries its own annotation, and cold helpers (error
// formatting on invalid input) deliberately stay unannotated.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/directive"
)

// Analyzer is the hotpath rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "//lint:hotpath functions must be statically allocation-free " +
		"(no literals/make/new/append-to-new/closures/boxing/fmt)",
	Explain: `hotpath — annotated functions provably allocate nothing.

"//lint:hotpath" in a function's doc comment asserts the function is on
the steady-state placement path (tierscan's scan, TierIndex.Apply,
AllocateList/ReleaseList, Quantile.Observe, eventsim push/pop) and must
not allocate. The analyzer flags every expression whose lowering can
heap-allocate: slice/map/&struct literals, make and new, non-self
append, closures and method values, go statements, fmt calls, string
concatenation and string<->[]byte conversions, and interface boxing of
non-pointer values.

Two pooled-scratch idioms are recognized as allocation-free steady
state: the grow-guard "if len(x) < n { x = make([]T, n) }" (amortized to
zero by sync.Pool reuse) and the self-append "x = append(x, v)" /
"x = append(x[:0], v)" which reuses the backing array it grows.

The contract is per-function: annotate every function on the hot path
individually (the benchmark gate TestChurnSteadyStateZeroAllocs remains
the end-to-end truth), and leave cold error helpers unannotated rather
than suppressing findings inside them.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive.Has(fd.Doc, "hotpath") {
				continue
			}
			c := &checker{pass: pass, fd: fd, okAppend: map[*ast.CallExpr]bool{}, okMake: map[*ast.CallExpr]bool{}}
			c.walk(fd.Body)
		}
	}
	return nil, nil
}

// checker walks one annotated function keeping the ancestor path, which
// the grow-guard and self-append rules need.
type checker struct {
	pass     *analysis.Pass
	fd       *ast.FuncDecl
	path     []ast.Node
	okAppend map[*ast.CallExpr]bool // append calls blessed as self-appends
	okMake   map[*ast.CallExpr]bool // make calls blessed as grow-guarded
}

func (c *checker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			c.path = c.path[:len(c.path)-1]
			return false
		}
		descend := c.handle(n)
		if descend {
			c.path = append(c.path, n)
		}
		return descend
	})
}

func (c *checker) handle(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.AssignStmt:
		c.blessAssign(x)
		c.checkAssignBoxing(x)
	case *ast.CompositeLit:
		c.compositeLit(x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
				c.pass.Reportf(x.Pos(), "&composite literal allocates in //lint:hotpath %s", c.fd.Name.Name)
			}
		}
	case *ast.CallExpr:
		c.call(x)
	case *ast.FuncLit:
		c.pass.Reportf(x.Pos(), "closure allocates in //lint:hotpath %s", c.fd.Name.Name)
		return false
	case *ast.GoStmt:
		c.pass.Reportf(x.Pos(), "go statement allocates in //lint:hotpath %s", c.fd.Name.Name)
	case *ast.BinaryExpr:
		if x.Op == token.ADD && c.isString(x) && !c.isConst(x) {
			c.pass.Reportf(x.Pos(), "string concatenation allocates in //lint:hotpath %s", c.fd.Name.Name)
		}
	case *ast.ReturnStmt:
		c.checkReturnBoxing(x)
	case *ast.SelectorExpr:
		c.methodValue(x)
	}
	return true
}

// compositeLit flags slice and map literals; plain struct/array value
// literals are stack values (append(s.Entries, VMEntry{...}) is fine).
func (c *checker) compositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates in //lint:hotpath %s", c.fd.Name.Name)
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in //lint:hotpath %s", c.fd.Name.Name)
	}
}

// blessAssign records append/make calls on the RHS that match the two
// blessed pooled-scratch shapes, before the walker reaches them.
func (c *checker) blessAssign(s *ast.AssignStmt) {
	for i, rhs := range s.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(s.Lhs) {
			continue
		}
		switch c.builtinName(call) {
		case "append":
			if len(call.Args) > 0 && s.Tok == token.ASSIGN &&
				exprString(s.Lhs[i]) == exprString(appendBase(call.Args[0])) {
				c.okAppend[call] = true
			}
		case "make":
			if c.growGuarded(s.Lhs[i]) {
				c.okMake[call] = true
			}
		}
	}
}

// growGuarded reports whether the enclosing if-condition re-checks
// len/cap of the assignment target — the lazy-sizing shape whose steady
// state never takes the make branch.
func (c *checker) growGuarded(lhs ast.Expr) bool {
	want := exprString(lhs)
	for i := len(c.path) - 1; i >= 0; i-- {
		ifs, ok := c.path[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := c.builtinName(call)
			if (name == "len" || name == "cap") && len(call.Args) == 1 &&
				exprString(call.Args[0]) == want {
				guarded = true
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func (c *checker) call(call *ast.CallExpr) {
	switch c.builtinName(call) {
	case "append":
		if !c.okAppend[call] {
			c.pass.Reportf(call.Pos(), "append beyond the self-append scratch shape (x = append(x, ...)) "+
				"allocates in //lint:hotpath %s", c.fd.Name.Name)
		}
		return
	case "make":
		if !c.okMake[call] {
			c.pass.Reportf(call.Pos(), "make outside a len/cap grow-guard allocates in //lint:hotpath %s", c.fd.Name.Name)
		}
		return
	case "new":
		c.pass.Reportf(call.Pos(), "new allocates in //lint:hotpath %s", c.fd.Name.Name)
		return
	case "":
	default:
		return // other builtins (len, cap, copy, min, max, delete...) are free
	}

	// Conversions: string<->[]byte/[]rune allocate; other conversions are
	// representation-free.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, c.pass.TypeOf(call.Args[0])
		if isStringBytesConv(dst, src) {
			c.pass.Reportf(call.Pos(), "string conversion allocates in //lint:hotpath %s", c.fd.Name.Name)
		}
		return
	}

	// fmt is never allocation-free.
	if fn := c.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.pass.Reportf(call.Pos(), "%s.%s allocates in //lint:hotpath %s", fn.Pkg().Name(), fn.Name(), c.fd.Name.Name)
		return
	}

	// Boxing at the call boundary: concrete non-pointer argument passed
	// as an interface parameter.
	sig, _ := c.calleeSignature(call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if pt := paramType(sig, i, call.Ellipsis != token.NoPos); pt != nil {
			c.checkBoxing(pt, arg)
		}
	}
}

// paramType resolves the parameter type receiving argument i, unpacking
// the variadic element type for spread-free calls.
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if hasEllipsis {
			if i == n-1 {
				return last
			}
			return nil
		}
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

func (c *checker) checkAssignBoxing(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		var dst types.Type
		if id, ok := unparen(s.Lhs[i]).(*ast.Ident); ok && s.Tok == token.DEFINE {
			if obj := c.pass.ObjectOf(id); obj != nil {
				dst = obj.Type()
			}
		} else {
			dst = c.pass.TypeOf(s.Lhs[i])
		}
		if dst != nil {
			c.checkBoxing(dst, rhs)
		}
	}
}

func (c *checker) checkReturnBoxing(s *ast.ReturnStmt) {
	fn, ok := c.pass.TypesInfo.Defs[c.fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if len(s.Results) != results.Len() {
		return // multi-value call passthrough: the callee's contract
	}
	for i, r := range s.Results {
		c.checkBoxing(results.At(i).Type(), r)
	}
}

// checkBoxing flags storing a concrete non-pointer-shaped value into an
// interface destination — the conversion heap-allocates the box.
func (c *checker) checkBoxing(dst types.Type, src ast.Expr) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok || tv.IsNil() {
		return
	}
	st := tv.Type
	if st == nil {
		return
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return // already boxed
	}
	if pointerShaped(st) {
		return
	}
	c.pass.Reportf(src.Pos(), "interface conversion of non-pointer value allocates in //lint:hotpath %s", c.fd.Name.Name)
}

// methodValue flags x.m used as a value (not called): binding the
// receiver allocates.
func (c *checker) methodValue(sel *ast.SelectorExpr) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if len(c.path) > 0 {
		if call, ok := c.path[len(c.path)-1].(*ast.CallExpr); ok && unparen(call.Fun) == sel {
			return
		}
	}
	c.pass.Reportf(sel.Pos(), "method value allocates in //lint:hotpath %s", c.fd.Name.Name)
}

// --- small helpers ---

func (c *checker) builtinName(call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := c.pass.ObjectOf(id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch x := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.ObjectOf(x).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.ObjectOf(x.Sel).(*types.Func)
		return fn
	}
	return nil
}

func (c *checker) calleeSignature(call *ast.CallExpr) (*types.Signature, bool) {
	t := c.pass.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// appendBase strips a reslice from append's first argument: x and x[:0]
// share a backing array.
func appendBase(e ast.Expr) ast.Expr {
	if s, ok := unparen(e).(*ast.SliceExpr); ok {
		return s.X
	}
	return unparen(e)
}

// isStringBytesConv reports a string <-> []byte/[]rune conversion.
func isStringBytesConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped types fit in an interface word without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// exprString renders an expression for shape comparison (self-append and
// grow-guard matching); it covers the lvalue forms those idioms use.
func exprString(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	}
	return "?"
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
