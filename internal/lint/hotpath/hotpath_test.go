package hotpath_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"affinitycluster/internal/lint"
	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/hotpath"
	"affinitycluster/internal/lint/load"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "hotpath")
}

// TestRealScanScratchIsClean runs the analyzer against the repo's actual
// internal/placement package — the pooled scanScratch machinery whose
// zero-alloc contract the churn benchmark gate enforces dynamically. The
// static check must agree: every //lint:hotpath function there is
// allocation-free, and the annotations must actually be present (an empty
// hot set would make this test vacuous).
func TestRealScanScratchIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := load.ModuleRoot(cwd)
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	dir := filepath.Join(root, "internal", "placement")
	pkgs, err := load.NewLoader().LoadDir(dir, "affinitycluster/internal/placement")
	if err != nil {
		t.Fatalf("load internal/placement: %v", err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{hotpath.Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s: %s", f.Posn, f.Message)
	}
	src, err := os.ReadFile(filepath.Join(dir, "tierscan.go"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(src), "//lint:hotpath"); n < 20 {
		t.Fatalf("tierscan.go carries %d //lint:hotpath annotations, want >= 20 (hot set eroded?)", n)
	}
}
