package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"affinitycluster/internal/lint/callgraph"
)

const src = `package p

type table struct {
	fn func(int) int
}

func target(n int) int { return n }

func direct() int { return target(1) }

func viaDefer() {
	defer direct()
}

func viaGo() {
	go direct()
}

type recv struct{}

func (recv) method() { target(2) }

func methodCall() {
	var r recv
	r.method()
}

func methodValue() func() {
	var r recv
	return r.method
}

// fieldStore references target when storing it; calling through the
// field later needs no edge of its own.
func fieldStore(t *table) {
	t.fn = target
}

func fieldCall(t *table) int {
	return t.fn(3) // no edge: the target was linked at the storing site
}

func viaClosure() {
	f := func() { target(4) }
	f()
}

func isolated() int { return 42 }
`

func build(t *testing.T) (*callgraph.Graph, map[string]*types.Func) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	g := callgraph.Build(pkg, info, []*ast.File{f})
	byName := map[string]*types.Func{}
	for _, fn := range g.Funcs() {
		byName[fn.Name()] = fn
	}
	return g, byName
}

func hasEdge(g *callgraph.Graph, from, to *types.Func) bool {
	for _, c := range g.Callees(from) {
		if c == to {
			return true
		}
	}
	return false
}

func TestEdges(t *testing.T) {
	g, fns := build(t)
	edges := []struct {
		from, to string
		want     bool
	}{
		{"direct", "target", true},
		{"viaDefer", "direct", true},
		{"viaGo", "direct", true},
		{"method", "target", true},
		{"methodCall", "method", true},
		{"methodValue", "method", true}, // method value counts as may-call
		{"fieldStore", "target", true},  // storing into a func field counts
		{"fieldCall", "target", false},  // call through the field: no direct edge
		{"viaClosure", "target", true},  // closure body attributed to encloser
		{"isolated", "target", false},
		{"direct", "isolated", false},
	}
	for _, e := range edges {
		from, to := fns[e.from], fns[e.to]
		if from == nil || to == nil {
			t.Fatalf("missing function %q or %q", e.from, e.to)
		}
		if got := hasEdge(g, from, to); got != e.want {
			t.Errorf("edge %s -> %s: got %v, want %v", e.from, e.to, got, e.want)
		}
	}
}

func TestDecls(t *testing.T) {
	g, fns := build(t)
	for name, fn := range fns {
		decl := g.Decl(fn)
		if decl == nil {
			t.Fatalf("no decl for %s", name)
		}
		if decl.Name.Name != name {
			t.Errorf("decl for %s is %s", name, decl.Name.Name)
		}
	}
}

func TestReachable(t *testing.T) {
	g, fns := build(t)
	reach := g.Reachable([]*types.Func{fns["viaDefer"]})
	for _, want := range []string{"viaDefer", "direct", "target"} {
		if !reach[fns[want]] {
			t.Errorf("%s not reachable from viaDefer", want)
		}
	}
	for _, not := range []string{"isolated", "methodCall", "method"} {
		if reach[fns[not]] {
			t.Errorf("%s unexpectedly reachable from viaDefer", not)
		}
	}
	if len(g.Reachable(nil)) != 0 {
		t.Errorf("Reachable(nil) should be empty")
	}
	// Roots are included even without self-edges.
	if !g.Reachable([]*types.Func{fns["isolated"]})[fns["isolated"]] {
		t.Errorf("root not in its own reachable set")
	}
}
