// Package callgraph builds a package-level call graph for the lint
// analyzers that reason about reachability (singlewriter, goexit).
//
// The graph is deliberately conservative in the may-call direction: a
// function F has an edge to every same-package function or method G that
// F's body *references* anywhere — direct calls, method calls, deferred
// and go'd calls, method values, and assignments of G into variables or
// struct fields all create the edge. Function literals are attributed to
// their enclosing declaration, so a closure built inside F that calls G
// contributes an F→G edge even when the closure itself runs later on
// another goroutine.
//
// Treating "references" as "may call" over-approximates real call paths
// (storing a function in a table counts as calling it) but never misses
// one within the package: a call through a function-typed field needs no
// edge of its own, because the only way the target got into the field was
// a reference that already produced the edge at the storing site.
// Cross-package references carry no edges — the analyzers that use this
// graph treat package boundaries as annotation boundaries.
package callgraph

import (
	"go/ast"
	"go/types"
	"slices"
)

// Graph is the package-level may-call graph.
type Graph struct {
	funcs []*types.Func                     // declared functions, file order
	decls map[*types.Func]*ast.FuncDecl     // declaration of each function
	edges map[*types.Func][]*types.Func     // F -> same-package functions F references
	eset  map[*types.Func]map[*types.Func]bool
}

// Build constructs the graph for one package from its parsed files and
// type information. Only functions with bodies contribute edges.
func Build(pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		decls: map[*types.Func]*ast.FuncDecl{},
		edges: map[*types.Func][]*types.Func{},
		eset:  map[*types.Func]map[*types.Func]bool{},
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.funcs = append(g.funcs, fn)
			g.decls[fn] = fd
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				callee, ok := info.Uses[id].(*types.Func)
				if !ok || callee.Pkg() != pkg {
					return true
				}
				g.addEdge(fn, callee)
				return true
			})
		}
	}
	return g
}

func (g *Graph) addEdge(from, to *types.Func) {
	set := g.eset[from]
	if set == nil {
		set = map[*types.Func]bool{}
		g.eset[from] = set
	}
	if set[to] {
		return
	}
	set[to] = true
	g.edges[from] = append(g.edges[from], to)
}

// Funcs returns every declared function in file order.
func (g *Graph) Funcs() []*types.Func { return slices.Clone(g.funcs) }

// Decl returns the declaration of fn, or nil if fn is not declared in
// this package's files.
//
//lint:shared AST nodes are shared with the pass by design; the graph never mutates them
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callees returns the functions fn references, in first-reference order.
func (g *Graph) Callees(fn *types.Func) []*types.Func { return slices.Clone(g.edges[fn]) }

// Reachable returns the set of functions reachable from any root,
// including the roots themselves.
func (g *Graph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		work = append(work, g.edges[fn]...)
	}
	return seen
}
