// Package goexit requires every `go` statement in non-test code to have
// a provable shutdown edge: some statically visible way for the spawned
// goroutine to learn it should exit. The service layer's goroutine count
// must stay bounded as batch modes and background sweeps grow — a
// goroutine without a shutdown edge is a leak waiting for the first
// long-lived process that constructs more than one of its owner.
//
// Accepted evidence, looked for in the spawned function's body and in
// every same-package function reachable from it (see
// internal/lint/callgraph):
//
//   - a comma-ok channel receive (v, ok := <-ch) — the close-protocol
//     read used by the service batcher;
//   - a range loop over a channel — terminates when the channel closes;
//   - a call (usually deferred) to (*sync.WaitGroup).Done — the bounded
//     fan-out shape of experiments' worker pools;
//   - a select with a receive case whose body returns — the done-channel
//     / ctx.Done() shape.
//
// Spawns that cannot be resolved to a function declared in the same
// package (function-typed variables, external functions) are reported:
// their shutdown behavior is not provable here. Genuinely process-lifetime
// goroutines (a pprof listener) are declared with
// //lint:allow goexit <reason> at the go statement.
package goexit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/callgraph"
)

// Analyzer is the goexit rule.
var Analyzer = &analysis.Analyzer{
	Name: "goexit",
	Doc: "every go statement in non-test code needs a provable shutdown edge " +
		"(WaitGroup.Done, done-channel receive, channel range, or select-with-return)",
	Explain: `goexit — no goroutine without a shutdown edge.

Every "go" statement in non-test code must spawn a function that can
provably learn it should exit. The analyzer resolves the spawned
function (literal, same-package function, or method), walks everything
reachable from it in the package's may-call graph, and accepts any of:

  - v, ok := <-ch        (close-protocol receive)
  - for v := range ch    (drains until close)
  - wg.Done()            (bounded fan-out joined by the spawner)
  - select { case <-done: ... return }   (done-channel / ctx.Done shape)

Spawning something unresolvable — a function value, another package's
function — is reported too: if the shutdown edge lives elsewhere, wrap
the spawn in a named local function that exhibits it.

Escape hatch: a deliberate process-lifetime goroutine gets
"//lint:allow goexit <reason>" on the go statement. The reason is
mandatory and audited for staleness by the driver.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	graph := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, graph, g)
			return true
		})
	}
	return nil, nil
}

func checkSpawn(pass *analysis.Pass, graph *callgraph.Graph, g *ast.GoStmt) {
	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if litHasShutdownEdge(pass, graph, fun) {
			return
		}
		report(pass, g.Pos(), "goroutine literal")
	default:
		fn := calleeFunc(pass, fun)
		if fn == nil || fn.Pkg() != pass.Pkg {
			pass.Reportf(g.Pos(), "go statement spawns a function not declared in this package; "+
				"its shutdown edge is unprovable here — wrap it in a local function with one, "+
				"or annotate //lint:allow goexit <reason> if it is process-lifetime")
			return
		}
		if funcHasShutdownEdge(pass, graph, fn) {
			return
		}
		report(pass, g.Pos(), fn.Name())
	}
}

func report(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Reportf(pos, "%s has no provable shutdown edge (no WaitGroup.Done, comma-ok receive, "+
		"channel range, or select-with-return); add one or annotate //lint:allow goexit <reason>", what)
}

// calleeFunc resolves the spawned expression to a function object.
func calleeFunc(pass *analysis.Pass, fun ast.Expr) *types.Func {
	switch x := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(x).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(x.Sel).(*types.Func)
		return fn
	}
	return nil
}

// funcHasShutdownEdge checks fn's body and everything reachable from it.
func funcHasShutdownEdge(pass *analysis.Pass, graph *callgraph.Graph, fn *types.Func) bool {
	for reached := range graph.Reachable([]*types.Func{fn}) {
		decl := graph.Decl(reached)
		if decl != nil && decl.Body != nil && bodyHasShutdownEdge(pass, decl.Body) {
			return true
		}
	}
	return false
}

// litHasShutdownEdge checks the literal's own body plus every
// same-package function the literal references.
func litHasShutdownEdge(pass *analysis.Pass, graph *callgraph.Graph, lit *ast.FuncLit) bool {
	if bodyHasShutdownEdge(pass, lit.Body) {
		return true
	}
	var roots []*types.Func
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			roots = append(roots, fn)
		}
		return true
	})
	for reached := range graph.Reachable(roots) {
		decl := graph.Decl(reached)
		if decl != nil && decl.Body != nil && bodyHasShutdownEdge(pass, decl.Body) {
			return true
		}
	}
	return false
}

// bodyHasShutdownEdge scans one function body for accepted evidence.
func bodyHasShutdownEdge(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			// v, ok := <-ch
			if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					found = true
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok &&
					fn.FullName() == "(*sync.WaitGroup).Done" {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, clause := range s.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil || !isReceive(cc.Comm) {
					continue
				}
				for _, st := range cc.Body {
					if containsReturn(st) {
						found = true
						break
					}
				}
			}
		}
		return !found
	})
	return found
}

// isReceive reports whether a select comm clause is a channel receive.
func isReceive(comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

func containsReturn(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.FuncLit:
			return false // a return inside a nested closure is not ours
		}
		return !found
	})
	return found
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
