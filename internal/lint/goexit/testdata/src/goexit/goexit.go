// Fixture for the goexit analyzer: go statements with and without
// provable shutdown edges.
package goexit

import (
	"fmt"
	"sync"
)

type server struct {
	intake chan int
	applyC chan []int
	done   chan struct{}
}

// --- good: the four accepted evidence shapes ---

func waitGroupJoin(wg *sync.WaitGroup, work []int) {
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func rangeDrain(s *server) {
	go func() {
		for v := range s.applyC {
			_ = v
		}
	}()
}

func commaOkLoop(s *server) {
	go func() {
		for {
			v, ok := <-s.intake
			if !ok {
				return
			}
			_ = v
		}
	}()
}

func selectDone(s *server) {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.intake:
				_ = v
			}
		}
	}()
}

// batcher carries its own evidence; spawning the method is fine.
func (s *server) batcher() {
	for {
		o, ok := <-s.intake
		if !ok {
			return
		}
		_ = o
	}
}

func (s *server) start() {
	go s.batcher()
}

// transitive: the evidence lives one call away.
func drainAll(s *server) {
	for v := range s.applyC {
		_ = v
	}
}

func runDrainer(s *server) {
	go func() {
		drainAll(s)
	}()
}

// --- bad: leaks and unprovable spawns ---

func spin() {
	for {
	}
}

func leakSpin() {
	go spin() // want "spin has no provable shutdown edge"
}

func leakLit(s *server) {
	go func() { // want "goroutine literal has no provable shutdown edge"
		for {
			s.applyC <- nil
		}
	}()
}

func leakVar(handler func()) {
	go handler() // want "not declared in this package"
}

func leakExternal() {
	go fmt.Println("spawned") // want "not declared in this package"
}

// A select that never returns is not a shutdown edge.
func leakSelectNoReturn(s *server) {
	go func() { // want "goroutine literal has no provable shutdown edge"
		for {
			select {
			case v := <-s.intake:
				_ = v
			}
		}
	}()
}
