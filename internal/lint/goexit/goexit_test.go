package goexit_test

import (
	"testing"

	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/goexit"
)

func TestGoexit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goexit.Analyzer, "goexit")
}
