// Package analysistest runs an analyzer against fixture packages under
// testdata/src and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest with
// only the standard library.
//
// A fixture line may carry several want patterns:
//
//	keys = append(keys, k) // want "never sorted" "second diagnostic"
//
// Every diagnostic on a line must match one unclaimed want pattern on
// that line, and every want pattern must be claimed by exactly one
// diagnostic; anything unmatched fails the test. Fixture packages may
// import only the standard library (they type-check through the stdlib
// source importer, with no module resolution).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"affinitycluster/internal/lint/analysis"
)

// TestData returns the absolute testdata directory of the caller's
// package, conventionally <pkg>/testdata.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package testdata/src/<name>, applies the
// analyzer, and verifies the want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		name := name
		t.Run(name, func(t *testing.T) {
			runOne(t, filepath.Join(testdata, "src", name), name, a)
		})
	}
}

type wantPattern struct {
	re      *regexp.Regexp
	raw     string
	claimed bool
}

// Want patterns may be double-quoted or backquoted (the latter avoids
// double-escaping regex metacharacters), as in x/tools analysistest.
var wantRe = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)\\s*$")
var wantStrRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func runOne(t *testing.T, dir, pkgName string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []*ast.File
	wants := map[string]map[int][]*wantPattern{} // file -> line -> patterns
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		byLine := map[int][]*wantPattern{}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, qm := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
				pat := qm[1]
				if qm[2] != "" {
					pat = qm[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				byLine[i+1] = append(byLine[i+1], &wantPattern{re: re, raw: pat})
			}
		}
		wants[path] = byLine
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", pkgName, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants[posn.Filename][posn.Line] {
			if !w.claimed && w.re.MatchString(d.Message) {
				w.claimed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	var paths []string
	for p := range wants {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		var lines []int
		for l := range wants[p] {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			for _, w := range wants[p][l] {
				if !w.claimed {
					t.Errorf("%s: no diagnostic matched want %q", fmt.Sprintf("%s:%d", p, l), w.raw)
				}
			}
		}
	}
}
