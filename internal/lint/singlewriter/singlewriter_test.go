package singlewriter_test

import (
	"testing"

	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/singlewriter"
)

func TestSinglewriter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), singlewriter.Analyzer, "inventory")
}
