// Fixture for the singlewriter analyzer. The directory is named
// "inventory" so the guarded type resolves exactly like the real
// internal/inventory package.
package inventory

// Inventory is the guarded type.
type Inventory struct {
	remain [][]int
}

func (inv *Inventory) Allocate(node, typ, n int) error { return nil }

func (inv *Inventory) Release(node, typ, n int) error { return nil }

func (inv *Inventory) AttachTierIndex() error { return nil }

// Clone is Inventory plumbing: calling a mutator on the copy is exempt.
func (inv *Inventory) Clone() *Inventory {
	out := &Inventory{}
	_ = out.AttachTierIndex()
	return out
}

// applyLoop is the audited mutation root.
//
//lint:owner singlewriter
func applyLoop(inv *Inventory) {
	_ = inv.Allocate(0, 0, 1)
	commitRelease(inv)
	fn := func() { _ = inv.Allocate(1, 0, 1) } // closure still owned by applyLoop
	fn()
	deferred(inv)
}

// commitRelease is reachable from the owner: no annotation needed.
func commitRelease(inv *Inventory) {
	_ = inv.Release(0, 0, 1)
}

// deferred is referenced (hence reachable) via applyLoop.
func deferred(inv *Inventory) {
	defer inv.Release(1, 0, 1)
}

// rogue mutates with no ownership chain.
func rogue(inv *Inventory) {
	_ = inv.Allocate(2, 0, 1) // want "Inventory.Allocate referenced outside a single-writer owner"
}

// smuggle hands the mutator out as a method value without calling it.
func smuggle(inv *Inventory) func(int, int, int) error {
	return inv.Release // want "Inventory.Release referenced outside a single-writer owner"
}

// misowner declares an unknown ownership class.
//
//lint:owner batchwriter
func misowner(inv *Inventory) { // want "unknown //lint:owner argument \"batchwriter\""
	_ = inv.Allocate(3, 0, 1) // want "Inventory.Allocate referenced outside a single-writer owner"
}

// reader only reads; no finding.
func reader(inv *Inventory) int {
	return len(inv.remain)
}
