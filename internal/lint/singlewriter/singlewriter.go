// Package singlewriter enforces the inventory mutation-ownership
// discipline structurally: the mutating methods of inventory.Inventory
// (Allocate, AllocateList, Release, ReleaseList, Move, FailNode,
// RestoreNode, AttachTierIndex, SetCapacity) may only be called from
// functions reachable from an audited mutation root — a function
// annotated `//lint:owner singlewriter`.
//
// Why: once a TierIndex is attached, RemainingView and the index alias
// the live capacity matrices, and their coherence holds only between
// mutations on the goroutine that performs them. PR 7 made internal/
// service's apply loop the single writer and enforced the rule with a
// race-mode hammer test; this analyzer makes the discipline visible in
// the source, so a new call site in a random goroutine fails lint before
// it flakes under -race.
//
// Mechanics: per package, a conservative may-call graph (see
// internal/lint/callgraph) is built, the `//lint:owner singlewriter`
// roots are collected, and every mutator call site whose enclosing
// function is not reachable from a root is reported. Call sites in
// _test.go files and inside Inventory's own methods are exempt; an
// owner annotation with a trailing word other than "singlewriter" is a
// finding, so the annotation space stays closed.
package singlewriter

import (
	"go/ast"
	"go/types"
	"strings"

	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/callgraph"
	"affinitycluster/internal/lint/directive"
)

// Mutators are the Inventory methods under the ownership rule.
var Mutators = map[string]bool{
	"Allocate":        true,
	"AllocateList":    true,
	"Release":         true,
	"ReleaseList":     true,
	"Move":            true,
	"FailNode":        true,
	"RestoreNode":     true,
	"AttachTierIndex": true,
	"SetCapacity":     true,
}

// Analyzer is the singlewriter rule.
var Analyzer = &analysis.Analyzer{
	Name: "singlewriter",
	Doc: "inventory.Inventory mutators may only be called from functions reachable " +
		"from a //lint:owner singlewriter annotated mutation root",
	Explain: `singlewriter — all inventory mutation flows through audited roots.

Inventory's mutating methods (Allocate*, Release*, Move, FailNode,
RestoreNode, AttachTierIndex, SetCapacity) update the live capacity
matrices and, when a TierIndex is attached, the aggregates that
RemainingView and the index expose zero-copy. That sharing is only
coherent on the goroutine that mutates — the single-writer discipline
internal/service's apply loop established in PR 7.

The analyzer computes a package-level may-call graph (a function
"may call" everything it references, including through closures and
function-typed fields) and requires every mutator call site to be
reachable from a function annotated "//lint:owner singlewriter" in its
doc comment. Annotate the entry point that owns the mutation — the
service apply loop, a single-threaded simulation driver, a provisioner
API that commits under the inventory's own lock — not every helper on
the path; reachability covers the helpers.

Exempt: _test.go files, and Inventory's own methods (intra-type
plumbing such as Clone rebuilding an attached index).`,
	Run: run,
}

// pkgSegment is the final path segment with the loader's external-test
// suffix stripped.
func pkgSegment(path string) string {
	path = strings.TrimSuffix(path, ".test")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// isInventoryMutator reports whether fn is one of the guarded methods of
// inventory.Inventory.
func isInventoryMutator(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !Mutators[fn.Name()] {
		return false
	}
	if pkgSegment(fn.Pkg().Path()) != "inventory" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Inventory"
}

// onInventory reports whether decl is itself a method of Inventory in the
// inventory package (intra-type plumbing is exempt).
func onInventory(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || pkgSegment(pass.Pkg.Path()) != "inventory" {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Inventory"
}

func run(pass *analysis.Pass) (any, error) {
	graph := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)

	// Collect owner roots, validating the annotation argument.
	var owners []*types.Func
	for _, fn := range graph.Funcs() {
		decl := graph.Decl(fn)
		arg, ok := directive.Find(decl.Doc, "owner")
		if !ok {
			continue
		}
		if arg != "singlewriter" {
			pass.Reportf(decl.Pos(), "unknown //lint:owner argument %q: want //lint:owner singlewriter", arg)
			continue
		}
		owners = append(owners, fn)
	}
	reach := graph.Reachable(owners)

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if onInventory(pass, decl) {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if fn != nil && reach[fn] {
				continue
			}
			// Flag any reference to a mutator, not just direct calls:
			// a method value stored from a non-owner is a mutation
			// smuggled past the ownership audit just the same.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				callee, _ := pass.ObjectOf(sel.Sel).(*types.Func)
				if !isInventoryMutator(callee) {
					return true
				}
				pass.Reportf(sel.Pos(), "Inventory.%s referenced outside a single-writer owner; "+
					"reach it from a //lint:owner singlewriter function or annotate this mutation root", callee.Name())
				return true
			})
		}
	}
	return nil, nil
}
