// Fixture: a package outside the simulation set; detrand must stay quiet
// even on calls it would flag elsewhere.
package notsim

import (
	"math/rand"
	"time"
)

func wallClockOK() time.Time { return time.Now() }

func globalRandOK() int { return rand.Intn(10) }
