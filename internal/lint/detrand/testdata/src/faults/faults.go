// Fixture: the fault-injection package is a simulation package — its
// schedules feed the same byte-identical trace contract, so ambient
// randomness and wall clocks are banned there too.
package faults

import (
	"math/rand"
	"time"
)

func scheduleDrift() time.Time {
	return time.Now() // want `time\.Now in simulation package`
}

func ambientVictim(nodes int) int {
	return rand.Intn(nodes) // want `global math/rand\.Intn in simulation package`
}

func seededPlanOK(seed int64, nodes int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(nodes) // method on an injected *rand.Rand: allowed
}
