// Fixture: a package whose final path segment ("placement") puts it under
// the determinism contract.
package placement

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want `time\.Now in simulation package`
	return time.Since(start) // want `time\.Since in simulation package`
}

func sleeper() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in simulation package`
}

func globalRand() int {
	n := rand.Intn(10) // want `global math/rand\.Intn in simulation package`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle in simulation package`
	return n
}

func seededRandOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10) // method on an injected *rand.Rand: allowed
}

func envDriven() string {
	return os.Getenv("SIM_MODE") // want `os\.Getenv in simulation package`
}

func fileIOOK() error {
	// Non-env os calls are out of detrand's scope.
	return os.Remove("scratch")
}

func durationMathOK(d time.Duration) float64 {
	// Pure duration arithmetic carries no wall-clock reads.
	return d.Seconds()
}
