package detrand_test

import (
	"testing"

	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detrand.Analyzer, "placement", "faults", "notsim")
}
