// Package detrand forbids wall-clock, ambient-randomness, and
// environment-driven behavior in the simulation packages, where the
// reproduction's same-seed ⇒ byte-identical contract lives (DESIGN.md
// §7–§9). Simulation code must consume virtual time (eventsim) and an
// injected, seeded *rand.Rand; a single stray time.Now or global
// rand.Intn silently breaks figure-output determinism, which hand-written
// equivalence tests only catch on the paths they happen to cover.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"affinitycluster/internal/lint/analysis"
)

// SimPackages names the packages (by final import-path segment) under the
// determinism contract. External test packages ("<seg>.test" paths) are
// included: test helpers feed the same golden-output assertions.
var SimPackages = map[string]bool{
	"placement":   true,
	"affinity":    true,
	"anneal":      true,
	"jointopt":    true,
	"queue":       true,
	"cloudsim":    true,
	"faults":      true,
	"mapreduce":   true,
	"migration":   true,
	"experiments": true,
	"eventsim":    true,
	"obs":         true,
	"report":      true,
}

// banned maps package path -> function name -> short reason. Only
// package-level functions are listed; methods on injected values
// (e.g. (*rand.Rand).Intn) are fine by construction.
var banned = map[string]map[string]string{
	"time": {
		"Now":       "wall clock; use eventsim virtual time",
		"Since":     "wall clock; use eventsim virtual time",
		"Until":     "wall clock; use eventsim virtual time",
		"Sleep":     "wall-clock delay; advance virtual time instead",
		"Tick":      "wall-clock ticker; schedule eventsim events instead",
		"After":     "wall-clock timer; schedule eventsim events instead",
		"AfterFunc": "wall-clock timer; schedule eventsim events instead",
		"NewTicker": "wall-clock ticker; schedule eventsim events instead",
		"NewTimer":  "wall-clock timer; schedule eventsim events instead",
	},
	"os": {
		"Getenv":    "environment-driven behavior; thread configuration explicitly",
		"LookupEnv": "environment-driven behavior; thread configuration explicitly",
		"Environ":   "environment-driven behavior; thread configuration explicitly",
		"ExpandEnv": "environment-driven behavior; thread configuration explicitly",
	},
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than touching the shared global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
	"NewZipf":   true, // takes an explicit *Rand
}

// Analyzer is the detrand rule.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now/time.Since, global math/rand functions, and os.Getenv " +
		"in simulation packages; determinism requires virtual time and injected RNGs",
	Run: run,
}

// pkgSegment is the final path segment with the loader's external-test
// suffix stripped, so "affinitycluster/internal/obs.test" gates like obs.
func pkgSegment(path string) string {
	path = strings.TrimSuffix(path, ".test")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) (any, error) {
	if !SimPackages[pkgSegment(pass.Pkg.Path())] {
		return nil, nil
	}
	pass.Preorder(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		// Skip methods: only package-level functions carry ambient state.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		pkgPath, name := fn.Pkg().Path(), fn.Name()
		if reason, ok := banned[pkgPath][name]; ok {
			pass.Reportf(sel.Pos(), "%s.%s in simulation package: %s", pkgPath, name, reason)
			return true
		}
		if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
			pass.Reportf(sel.Pos(), "global %s.%s in simulation package: use an injected seeded *rand.Rand", pkgPath, name)
		}
		return true
	})
	return nil, nil
}
