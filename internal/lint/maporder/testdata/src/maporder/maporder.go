// Fixture for the maporder analyzer: every way map iteration order can
// leak into deterministic-output paths, plus the sanctioned
// collect-then-sort idioms that must stay clean.
package maporder

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys, which is never sorted`
	}
	return keys
}

func sortedAppendOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func leakDerived(m map[string]int) []string {
	var out []string
	for k := range m {
		s := k + "!"
		out = append(out, s) // want `slice out, which is never sorted`
	}
	return out
}

func leakBuilder(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		sb.WriteString(fmt.Sprintf("%s=%d;", k, v)) // want `escapes through sb\.WriteString`
	}
}

func leakFprintf(m map[string]int, sb *strings.Builder) {
	for k := range m {
		fmt.Fprintf(sb, "%s\n", k) // want `escapes through fmt\.Fprintf`
	}
}

func leakChan(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `escapes into a channel send`
	}
}

func leakEncoder(m map[string]int, enc *json.Encoder) {
	for k := range m {
		_ = enc.Encode(k) // want `escapes through enc\.Encode`
	}
}

func leakFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration order`
	}
	return sum
}

func intSumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition commutes; order cannot show
	}
	return total
}

func mapToMapOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func constantWriteOK(m map[string]int, sb *strings.Builder) {
	for range m {
		sb.WriteString(".") // order-independent: same bytes every iteration
	}
}

func sliceRangeOK(xs []string, sb *strings.Builder) {
	for _, x := range xs {
		sb.WriteString(x) // slice iteration is ordered; not a map
	}
}
