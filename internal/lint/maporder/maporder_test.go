package maporder_test

import (
	"testing"

	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "maporder")
}
