// Package maporder flags `range` statements over maps whose iteration
// order escapes into order-sensitive sinks — append-built slices that are
// never sorted, string/byte writers, channels, JSON encoders, and
// floating-point accumulators. Go randomizes map iteration order per run,
// so any such leak in an export path (report, obs, experiments) breaks
// the same-seed ⇒ byte-identical output contract the paper comparison
// rests on.
//
// The check is a single forward taint pass per loop body: the loop
// variables are tainted, assignments propagate taint, and sinks fire on
// tainted values. An append sink is forgiven when the destination slice
// is later passed to a sort.*/slices.* sort call inside the same
// function (the collect-then-sort idiom of obs.sortedKeys and
// Registry.MetricNames).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"affinitycluster/internal/lint/analysis"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order escapes into slices, writers, channels, " +
		"JSON output, or float accumulators without an intervening sort",
	Run: run,
}

// writeMethods are receiver methods that emit bytes in call order.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true, // json.Encoder / gob.Encoder style
}

// fmtWriters are fmt package functions that emit to a stream.
var fmtWriters = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

// sortCalls recognizes the sanctioned sort entry points by package path.
var sortCalls = map[string]bool{"sort": true, "slices": true}

func run(pass *analysis.Pass) (any, error) {
	pass.Preorder(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		checkFunc(pass, body)
		return true
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals are delivered to checkFunc by their own
		// Preorder visit; descending here would double-report them.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// pendingAppend is an append of tainted data awaiting a later sort.
type pendingAppend struct {
	dest string // canonical expression string of the destination
	pos  token.Pos
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	tainted := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		// Bare `for range m` bodies see neither key nor value; nothing
		// order-dependent can leak.
		return
	}

	isTainted := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tainted[pass.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return found
	}

	var pending []pendingAppend
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			if isTainted(s.Value) {
				pass.Reportf(s.Pos(), "map iteration order escapes into a channel send")
			}
		case *ast.AssignStmt:
			checkAssign(pass, s, tainted, isTainted, &pending)
		case *ast.CallExpr:
			checkCall(pass, s, isTainted)
		}
		return true
	})

	for _, p := range pending {
		if !sortedAfter(pass, fnBody, rng.End(), p.dest) {
			pass.Reportf(p.pos, "map iteration order escapes into slice %s, which is never sorted in this function", p.dest)
		}
	}
}

// checkAssign propagates taint through assignments, records tainted
// appends, and flags floating-point accumulation over map order.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt, tainted map[types.Object]bool, isTainted func(ast.Expr) bool, pending *[]pendingAppend) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Only a loop-invariant accumulator sees every element in map
		// order; a tainted destination (e.g. v.field -= x inside the
		// loop) touches distinct per-entry storage and commutes.
		if len(s.Lhs) == 1 && isTainted(s.Rhs[0]) && !isTainted(s.Lhs[0]) && isFloat(pass.TypeOf(s.Lhs[0])) {
			pass.Reportf(s.Pos(), "floating-point accumulation over map iteration order is not associative; accumulate over sorted keys")
		}
		return
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			taintedArg := false
			for _, a := range call.Args[1:] {
				if isTainted(a) {
					taintedArg = true
					break
				}
			}
			if taintedArg {
				*pending = append(*pending, pendingAppend{dest: types.ExprString(s.Lhs[i]), pos: s.Pos()})
			}
			continue
		}
		if isTainted(rhs) {
			if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
}

// checkCall flags order-sensitive emit calls with tainted arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, isTainted func(ast.Expr) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	anyTainted := false
	for _, a := range call.Args {
		if isTainted(a) {
			anyTainted = true
			break
		}
	}
	if !anyTainted {
		return
	}
	if sig.Recv() != nil && writeMethods[fn.Name()] {
		pass.Reportf(call.Pos(), "map iteration order escapes through %s.%s", types.ExprString(sel.X), fn.Name())
		return
	}
	if sig.Recv() == nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtWriters[fn.Name()] {
		pass.Reportf(call.Pos(), "map iteration order escapes through fmt.%s", fn.Name())
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = pass.ObjectOf(id).(*types.Builtin)
	return ok && len(call.Args) >= 2
}

// sortedAfter reports whether some call after pos in the function passes
// dest to a sort.* or slices.* sorting function.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, pos token.Pos, dest string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || !sortCalls[fn.Pkg().Path()] {
			return true
		}
		name := fn.Name()
		isSortName := strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "Slice") ||
			name == "Strings" || name == "Ints" || name == "Float64s" || name == "Stable"
		if !isSortName {
			return true
		}
		for _, a := range call.Args {
			if types.ExprString(a) == dest {
				found = true
			}
		}
		return true
	})
	return found
}
