// Fixture for the scratchpool analyzer: slice Puts without length reset
// and pooled buffers retained beyond the call fire; the sanctioned
// reset-then-Put and return-handoff shapes stay clean.
package scratchpool

import "sync"

var pool sync.Pool

var global []byte

type cache struct{ buf []byte }

func putNoReset(buf []byte) {
	pool.Put(buf) // want `slice buf returned to sync\.Pool without a length reset`
}

func putResetOK(buf []byte) {
	buf = buf[:0]
	pool.Put(buf)
}

func putInlineOK(buf []byte) {
	pool.Put(buf[:0])
}

func putPtrNoReset(buf *[]byte) {
	pool.Put(buf) // want `slice buf returned to sync\.Pool without a length reset`
}

func putStructOK(c *cache) {
	// Non-slice values own their reset discipline; not scratchpool's call.
	pool.Put(c)
}

func retainField(c *cache) {
	b := pool.Get().([]byte)
	c.buf = b // want `pooled buffer retained in field c\.buf`
}

func retainGlobal() {
	b := pool.Get().([]byte)
	global = b // want `pooled buffer retained in package variable global`
}

func retainCollection(m map[string][]byte) {
	b := pool.Get().([]byte)
	m["k"] = b // want `pooled buffer retained in collection m`
}

func retainChan(ch chan []byte) {
	b := pool.Get().([]byte)
	ch <- b // want `pooled buffer sent over a channel`
}

func aliasRetain(c *cache) {
	v := pool.Get()
	b := v.([]byte)
	c.buf = b // want `pooled buffer retained in field c\.buf`
}

func handoffOK() []byte {
	// Returning transfers ownership to the caller (placement.getBuffer).
	b := pool.Get().([]byte)
	return b
}

func localUseOK() int {
	b := pool.Get().([]byte)
	n := len(b)
	b = append(b[:0], 1, 2, 3)
	pool.Put(b[:0])
	return n
}
