// Package scratchpool protects the placer's sync.Pool scratch-buffer
// discipline (the PR-3 pooling work in internal/placement):
//
//  1. A raw slice handed to Pool.Put must have its length reset first
//     (`buf = buf[:0]` or `Put(buf[:0])`), otherwise the next Get
//     observes stale elements — data corruption that only shows under
//     pool reuse, which the race detector cannot see.
//  2. A value obtained from Pool.Get must not be retained beyond the
//     call: storing it into a struct field, package variable, map/slice
//     element, or sending it over a channel aliases a buffer that a later
//     Put hands to an unrelated goroutine. Returning a pooled value to
//     the caller is allowed — that is exactly how placement's getBuffer
//     helper works — because ownership transfers with the return.
package scratchpool

import (
	"go/ast"
	"go/token"
	"go/types"

	"affinitycluster/internal/lint/analysis"
)

// Analyzer is the scratchpool rule.
var Analyzer = &analysis.Analyzer{
	Name: "scratchpool",
	Doc: "flag sync.Pool.Put of slices without a length reset and pooled " +
		"buffers retained in fields, globals, collections, or channels",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Preorder(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		checkPuts(pass, body)
		checkRetention(pass, body)
		return true
	})
	return nil, nil
}

// poolMethod reports whether call is (*sync.Pool).<name>.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil
}

// checkPuts enforces the length-reset rule for slice-typed Put arguments.
func checkPuts(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals get their own top-level visit.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !poolMethod(pass, call, "Put") || len(call.Args) != 1 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// &x where x is a slice: the pointer indirection is the
		// recommended shape (avoids the interface allocation), but the
		// pointee still needs its length reset.
		if u, ok := arg.(*ast.UnaryExpr); ok {
			arg = ast.Unparen(u.X)
		}
		if _, ok := arg.(*ast.SliceExpr); ok {
			// Put(buf[:0]) resets inline.
			return true
		}
		t := pass.TypeOf(arg)
		if t == nil {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if _, ok := t.Underlying().(*types.Slice); !ok {
			return true
		}
		dest := types.ExprString(arg)
		if !resetBefore(body, call.Pos(), dest) {
			pass.Reportf(call.Pos(), "slice %s returned to sync.Pool without a length reset (%s = %s[:0])", dest, dest, dest)
		}
		return true
	})
}

// resetBefore reports whether `dest = dest[:0]` (or a re-slice of dest to
// zero length) appears before pos in the function body.
func resetBefore(body *ast.BlockStmt, pos token.Pos, dest string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) || types.ExprString(lhs) != dest {
				continue
			}
			if sl, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr); ok {
				if types.ExprString(sl.X) == dest && isZeroLit(sl.High) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// checkRetention flags pooled values stored anywhere that outlives the
// function call.
func checkRetention(pass *analysis.Pass, body *ast.BlockStmt) {
	pooled := map[types.Object]bool{}
	// First pass (preorder = source order): find `x := pool.Get()`,
	// `x := pool.Get().(*T)`, and aliases `b := x.(*T)` of pooled values.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isPoolGet(pass, rhs) && !isPooledAlias(pass, pooled, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil {
					pooled[obj] = true
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}
	refsPooled := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pooled[pass.ObjectOf(id)] {
				hit = true
			}
			return !hit
		})
		return hit
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			if refsPooled(s.Value) {
				pass.Reportf(s.Pos(), "pooled buffer sent over a channel; it may be reused after Put")
			}
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) || !refsPooled(s.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					pass.Reportf(s.Pos(), "pooled buffer retained in field %s; it may be reused after Put", types.ExprString(l))
				case *ast.IndexExpr:
					pass.Reportf(s.Pos(), "pooled buffer retained in collection %s; it may be reused after Put", types.ExprString(l.X))
				case *ast.Ident:
					if obj := pass.ObjectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(s.Pos(), "pooled buffer retained in package variable %s; it may be reused after Put", l.Name)
					}
				}
			}
		}
		return true
	})
}

// isPoolGet matches pool.Get() optionally wrapped in a type assertion.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return poolMethod(pass, call, "Get")
}

// isPooledAlias matches `x.(*T)` (or bare x) where x is already pooled.
func isPooledAlias(pass *analysis.Pass, pooled map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && pooled[pass.ObjectOf(id)]
}
