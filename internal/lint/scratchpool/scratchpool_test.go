package scratchpool_test

import (
	"testing"

	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/scratchpool"
)

func TestScratchpool(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), scratchpool.Analyzer, "scratchpool")
}
