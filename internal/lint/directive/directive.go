// Package directive parses the function-level lint annotations shared by
// the concurrency-era analyzers:
//
//	//lint:shared <reason>      (aliasret: method intentionally returns a view)
//	//lint:owner singlewriter   (singlewriter: audited mutation root)
//	//lint:hotpath              (hotpath: must be statically allocation-free)
//
// A directive must sit in the doc comment attached to the function
// declaration (no blank line between comment and func), mirroring how
// //go:build and //go:noinline bind to what they precede.
package directive

import (
	"go/ast"
	"strings"
)

const prefix = "//lint:"

// Find returns the argument text of the named directive in doc, and
// whether the directive is present at all. A bare directive returns
// ("", true); an absent one returns ("", false).
func Find(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	want := prefix + name
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(c.Text, want)
		if !found {
			continue
		}
		// Reject prefix collisions: //lint:sharedfoo is not //lint:shared.
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// Has reports whether the named directive is present in doc.
func Has(doc *ast.CommentGroup, name string) bool {
	_, ok := Find(doc, name)
	return ok
}
