package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"affinitycluster/internal/lint"
	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/detrand"
	"affinitycluster/internal/lint/load"
)

// writeModule materializes a throwaway single-package module so the real
// loader pipeline (module discovery, source-importer type-check) is under
// test, not a mock.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module linttest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "placement")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "code.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runDetrand(t *testing.T, root string) []lint.Finding {
	t.Helper()
	pkgs, err := load.Module(root)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{detrand.Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return findings
}

func TestRunReportsFinding(t *testing.T) {
	root := writeModule(t, `package placement

import "time"

func now() time.Time { return time.Now() }
`)
	findings := runDetrand(t, root)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %d: %+v", len(findings), findings)
	}
	if findings[0].Analyzer != "detrand" {
		t.Fatalf("finding analyzer = %q, want detrand", findings[0].Analyzer)
	}
}

func TestAllowSameLineSuppresses(t *testing.T) {
	root := writeModule(t, `package placement

import "time"

func now() time.Time { return time.Now() } //lint:allow detrand wall clock needed for operator-facing log banner
`)
	if findings := runDetrand(t, root); len(findings) != 0 {
		t.Fatalf("want suppression, got %+v", findings)
	}
}

func TestAllowLineAboveSuppresses(t *testing.T) {
	root := writeModule(t, `package placement

import "time"

func now() time.Time {
	//lint:allow detrand wall clock needed for operator-facing log banner
	return time.Now()
}
`)
	if findings := runDetrand(t, root); len(findings) != 0 {
		t.Fatalf("want suppression, got %+v", findings)
	}
}

func TestAllowWrongAnalyzerDoesNotSuppress(t *testing.T) {
	root := writeModule(t, `package placement

import "time"

func now() time.Time {
	//lint:allow maporder reason that names the wrong analyzer
	return time.Now()
}
`)
	if findings := runDetrand(t, root); len(findings) != 1 {
		t.Fatalf("want 1 finding despite mismatched allow, got %+v", findings)
	}
}

func TestStaleAllowIsReported(t *testing.T) {
	root := writeModule(t, `package placement

//lint:allow detrand the time.Now this excused was removed in a refactor
func ok() int { return 1 }
`)
	findings := runDetrand(t, root)
	if len(findings) != 1 || findings[0].Analyzer != "lintallow" {
		t.Fatalf("want one lintallow stale finding, got %+v", findings)
	}
	if got := findings[0].Message; !strings.Contains(got, "stale suppression") || !strings.Contains(got, "detrand") {
		t.Fatalf("stale message = %q", got)
	}
}

func TestUsedAllowIsNotStale(t *testing.T) {
	// One used directive, one stale: only the stale one is reported, at
	// its own line.
	root := writeModule(t, `package placement

import "time"

func now() time.Time { return time.Now() } //lint:allow detrand wall clock for an operator banner

//lint:allow detrand nothing left to excuse here
func ok() int { return 1 }
`)
	findings := runDetrand(t, root)
	if len(findings) != 1 || findings[0].Analyzer != "lintallow" {
		t.Fatalf("want exactly the stale finding, got %+v", findings)
	}
	if findings[0].Pos.Line != 7 {
		t.Fatalf("stale finding at line %d, want 7", findings[0].Pos.Line)
	}
}

func TestAllowForUnrunAnalyzerIsNotAudited(t *testing.T) {
	// The directive names maporder, which does not run here; with no
	// maporder pass there is no evidence the allow is stale.
	root := writeModule(t, `package placement

//lint:allow maporder iteration order justified elsewhere
func ok() int { return 1 }
`)
	if findings := runDetrand(t, root); len(findings) != 0 {
		t.Fatalf("want no findings for un-run analyzer's allow, got %+v", findings)
	}
}

func TestMalformedAllowIsReported(t *testing.T) {
	root := writeModule(t, `package placement

//lint:allow detrand
func ok() {}
`)
	findings := runDetrand(t, root)
	if len(findings) != 1 || findings[0].Analyzer != "lintallow" {
		t.Fatalf("want one lintallow finding for reason-less allow, got %+v", findings)
	}
}
