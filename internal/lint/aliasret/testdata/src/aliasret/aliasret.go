// Fixture for the aliasret analyzer: exported methods returning
// references into unexported receiver state.
package aliasret

import (
	"maps"
	"slices"
)

type item struct{ n int }

type box struct {
	data  []int
	rows  [][]int
	m     map[string][]int
	ptrs  []*item
	idx   *item
	count int
	cache []int
	Pub   []int
}

// --- bad: direct and derived views of state ---

func (b *box) Data() []int { return b.data } // want "returns a reference into unexported receiver state"

func (b *box) Index() *item { return b.idx } // want "returns a reference into unexported receiver state"

func (b *box) Mapping() map[string][]int { return b.m } // want "returns a reference into unexported receiver state"

func (b *box) Head(n int) []int { return b.data[:n] } // want "returns a reference into unexported receiver state"

func (b *box) CountPtr() *int { return &b.count } // want "returns a reference into unexported receiver state"

func (b *box) ViaLocal() []int {
	x := b.data
	return x // want "returns a reference into unexported receiver state"
}

func (b *box) Row(k string) []int {
	v, ok := b.m[k]
	if !ok {
		return nil
	}
	return v // want "returns a reference into unexported receiver state"
}

func (b *box) FirstRow() []int {
	for _, row := range b.rows {
		if len(row) > 0 {
			return row // want "returns a reference into unexported receiver state"
		}
	}
	return nil
}

type intList []int

func (b *box) Converted() intList { return intList(b.data) } // want "returns a reference into unexported receiver state"

// StoreThenReturn builds a value, parks it in receiver state, and hands
// it out — the AttachTierIndex shape: caller and receiver now share it.
func (b *box) StoreThenReturn() []int {
	out := make([]int, len(b.data))
	copy(out, b.data)
	b.cache = out
	return out // want "returns a reference into unexported receiver state"
}

// SharedElems copies the slice header but the elements are pointers into
// the same objects the receiver keeps.
func (b *box) SharedElems() []*item {
	out := make([]*item, len(b.ptrs))
	copy(out, b.ptrs)
	return out // want "returns a reference into unexported receiver state"
}

func (b *box) AppendTainted() []int {
	x := b.data
	x = append(x, 1)
	return x // want "returns a reference into unexported receiver state"
}

func (b *box) NamedResult() (out []int) {
	out = b.data
	return // want "returns a reference into unexported receiver state"
}

// --- good: copies, call results, and non-state returns ---

func (b *box) DataCopy() []int { return append([]int(nil), b.data...) }

func (b *box) DataClone() []int { return slices.Clone(b.data) }

func (b *box) MapClone() map[string][]int { return maps.Clone(b.m) }

func (b *box) ExplicitCopy() []int {
	out := make([]int, len(b.data))
	copy(out, b.data)
	return out
}

func (b *box) ordered() []int { return slices.Clone(b.data) }

// Delegated returns a call result: the callee owns its copy contract.
func (b *box) Delegated() []int { return b.ordered() }

// Self returns the receiver — the caller already holds it.
func (b *box) Self() *box { return b }

// Public returns an exported field, visible to the caller anyway.
func (b *box) Public() []int { return b.Pub }

func (b *box) Count() int { return b.count }

func (b *box) Reassigned() []int {
	x := b.data
	x = nil
	return x
}

type block struct {
	ID       int
	Replicas []int
}

type twinRef struct {
	A []int
	B []int
}

type store struct {
	blocks []block
	twins  []twinRef
}

// BlockCopy re-clones the sole reference field of a struct value copy:
// the copy is clean afterwards.
func (s *store) BlockCopy(i int) block {
	b := s.blocks[i]
	b.Replicas = append([]int(nil), b.Replicas...)
	return b
}

// TwinCopy cleans only one of two reference fields; the other still
// aliases storage.
func (s *store) TwinCopy(i int) twinRef {
	t := s.twins[i]
	t.A = append([]int(nil), t.A...)
	return t // want "returns a reference into unexported receiver state"
}

// View is an intentional zero-copy view, declared as such.
//
//lint:shared single-writer view; callers must not retain across mutations
func (b *box) View() []int { return b.data }

//lint:shared
func (b *box) BareShared() []int { return b.data } // want "needs a reason"

// plain has no unexported reference state; nothing to alias.
type plain struct {
	Pub []int
	n   int
}

func (p *plain) All() []int { return p.Pub }
