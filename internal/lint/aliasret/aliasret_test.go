package aliasret_test

import (
	"testing"

	"affinitycluster/internal/lint/aliasret"
	"affinitycluster/internal/lint/analysistest"
)

func TestAliasret(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), aliasret.Analyzer, "aliasret")
}
