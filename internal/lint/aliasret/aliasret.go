// Package aliasret flags exported methods that hand out references into
// their receiver's unexported state — the bug class behind PR 7's
// Inventory.Clone dropping the attached tier index and the queue
// Peek/GetRequests aliasing audit: once a caller holds a slice, map, or
// pointer that is reachable from internal storage, every later mutation
// of that storage silently invalidates the caller's copy (or worse, the
// caller's writes corrupt the invariant the type maintains).
//
// The check is a per-method forward taint pass, deliberately shallow so
// its verdicts are explainable:
//
//   - selecting an unexported reference-carrying field of the receiver
//     taints the expression; indexing, slicing, dereferencing, and
//     address-taking propagate taint; so does assigning a local into
//     receiver state (the AttachTierIndex "store it, then return it"
//     shape).
//   - function and method call results are clean — the callee owns its
//     own contract (this is what lets queue.Peek return q.ordered()
//     untouched: ordered's copy is its own audited behavior). append to
//     a nil or clean base is clean; append to a tainted base stays
//     tainted; copy(dst, tainted) taints dst only when the element type
//     itself carries references.
//   - returning the receiver itself is clean: the caller already holds
//     that value, so no new aliasing is exposed.
//
// Intentionally shared views are declared, not silenced: annotate the
// method's doc comment with `//lint:shared <reason>` (RemainingView's
// single-writer contract is the canonical example). A bare //lint:shared
// with no reason is itself a finding, so shares stay auditable.
package aliasret

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/directive"
)

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Analyzer is the aliasret rule.
var Analyzer = &analysis.Analyzer{
	Name: "aliasret",
	Doc: "exported methods must not return references into unexported receiver " +
		"state without copying; declare intentional views with //lint:shared <reason>",
	Explain: `aliasret — no accidental views of internal state.

An exported method on a type whose struct carries unexported slice, map,
or pointer state must not return a value that aliases that state. A
returned alias couples the caller to every later mutation of the
receiver: PR 7 hit exactly this twice (Inventory.Clone silently sharing
the attached TierIndex, and the queue Peek/GetRequests audit).

Clean ways to return data: build a fresh slice/map, slices.Clone or
maps.Clone, append([]T(nil), src...), an explicit copy into a new
allocation, or delegate to a helper (call results are trusted — the
callee owns its own contract).

Escape hatch: some views are the point (Inventory.RemainingView is a
zero-copy single-writer view by design). Put "//lint:shared <reason>" in
the method's doc comment; the reason is mandatory and the directive only
binds when the comment is attached to the declaration.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if reason, shared := directive.Find(fd.Doc, "shared"); shared {
				if reason == "" {
					pass.Reportf(fd.Pos(), "//lint:shared needs a reason: //lint:shared <why this view is safe>")
				}
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil, nil
}

// checkMethod runs the taint pass over one exported method.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverVar(pass, fd)
	if recv == nil {
		return
	}
	named := receiverNamed(recv.Type())
	if named == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !hasUnexportedRefState(st) {
		return
	}
	if fd.Type.Results == nil {
		return
	}
	m := &method{pass: pass, name: fd.Name.Name, recv: recv, tainted: map[types.Object]bool{}}
	m.resultObjs(fd)
	ast.Inspect(fd.Body, m.visit)
}

// method is the per-method taint state.
type method struct {
	pass    *analysis.Pass
	name    string
	recv    *types.Var
	tainted map[types.Object]bool
	results map[types.Object]bool // named result variables, for bare returns
}

func (m *method) resultObjs(fd *ast.FuncDecl) {
	m.results = map[types.Object]bool{}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := m.pass.ObjectOf(name); obj != nil {
				m.results[obj] = true
			}
		}
	}
}

func (m *method) visit(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		m.assign(s)
	case *ast.RangeStmt:
		m.rangeStmt(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			m.copyCall(call)
		}
	case *ast.ReturnStmt:
		m.returnStmt(s)
	case *ast.FuncLit:
		// A closure gets its own locals; taint inside it cannot flow to
		// this method's return statements except through captured
		// variables, which the outer pass already tracks. Skipping the
		// body keeps the pass single-scope and predictable.
		return false
	}
	return true
}

// assign propagates taint through one assignment statement.
func (m *method) assign(s *ast.AssignStmt) {
	// Multi-value forms: x, ok := r.m[k] (comma-ok index) keeps the
	// element taint on x; x, y := f() is a call, hence clean.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		t := m.taintedExpr(s.Rhs[0])
		m.setTaint(s.Lhs[0], t)
		for _, lhs := range s.Lhs[1:] {
			m.setTaint(lhs, false)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		rhs := s.Rhs[i]
		m.setTaint(lhs, m.taintedExpr(rhs))
		// Storing a local into receiver state makes the local an alias
		// of state from here on (the store-then-return shape).
		if m.isStateLvalue(lhs) {
			if id, ok := unparen(rhs).(*ast.Ident); ok {
				if obj := m.pass.ObjectOf(id); obj != nil && obj != m.recv {
					m.tainted[obj] = true
				}
			}
		}
		// Cleansing a struct copy: overwriting the sole reference-
		// carrying field of a tainted local struct value with a clean
		// value makes the copy clean — the "b := fs.blocks[id];
		// b.Replicas = append([]T(nil), b.Replicas...)" idiom. Pointer
		// locals don't qualify: writing through them mutates state.
		if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok && !m.taintedExpr(rhs) {
			if id, ok := unparen(sel.X).(*ast.Ident); ok {
				if obj := m.pass.ObjectOf(id); obj != nil && m.tainted[obj] {
					if st, ok := obj.Type().Underlying().(*types.Struct); ok && soleRefField(st, sel.Sel.Name) {
						delete(m.tainted, obj)
					}
				}
			}
		}
	}
}

// rangeStmt taints the value variable when ranging over tainted storage
// whose elements themselves carry references ([][]int rows alias; []int
// elements are copies).
func (m *method) rangeStmt(s *ast.RangeStmt) {
	t := m.taintedExpr(s.X)
	if s.Key != nil {
		m.setTaint(s.Key, false)
	}
	if s.Value != nil {
		// The value ident is a definition, so its type lives on its
		// object rather than in the Types map.
		var elem types.Type
		if id, ok := unparen(s.Value).(*ast.Ident); ok {
			if obj := m.pass.ObjectOf(id); obj != nil {
				elem = obj.Type()
			}
		} else {
			elem = m.pass.TypeOf(s.Value)
		}
		m.setTaint(s.Value, t && elem != nil && carriesRefs(elem))
	}
}

// copyCall handles copy(dst, src): dst becomes tainted only when src is
// tainted and the element type carries references — copying []int out of
// state is a real copy, copying []*node shares the pointees.
func (m *method) copyCall(call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" || len(call.Args) != 2 {
		return
	}
	if b, ok := m.pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "copy" {
		return
	}
	if !m.taintedExpr(call.Args[1]) {
		return
	}
	if dt := m.pass.TypeOf(call.Args[0]); dt != nil {
		if sl, ok := dt.Underlying().(*types.Slice); ok && carriesRefs(sl.Elem()) {
			m.setTaint(call.Args[0], true)
		}
	}
}

func (m *method) returnStmt(s *ast.ReturnStmt) {
	if len(s.Results) == 0 {
		// Bare return: named results carry whatever taint they hold.
		for obj := range m.results {
			if m.tainted[obj] && carriesRefs(obj.Type()) {
				m.report(s.Pos())
				return
			}
		}
		return
	}
	for _, r := range s.Results {
		t := m.pass.TypeOf(r)
		if t != nil && carriesRefs(t) && m.taintedExpr(r) {
			m.report(r.Pos())
		}
	}
}

func (m *method) report(pos token.Pos) {
	m.pass.Reportf(pos, "%s returns a reference into unexported receiver state; "+
		"copy it (slices.Clone, append to nil, explicit copy) or declare the view with //lint:shared <reason>", m.name)
}

// taintedExpr reports whether e aliases unexported receiver state.
func (m *method) taintedExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := m.pass.ObjectOf(x)
		// The receiver itself is clean — the caller already holds it.
		return obj != nil && obj != m.recv && m.tainted[obj]
	case *ast.SelectorExpr:
		return m.taintedSelector(x)
	case *ast.IndexExpr:
		if !m.taintedExpr(x.X) {
			return false
		}
		// Element type comes from the container: TypeOf on the index
		// expression itself would yield a (elem, bool) tuple in the
		// comma-ok form.
		elem := elemType(m.pass.TypeOf(x.X))
		return elem != nil && carriesRefs(elem)
	case *ast.SliceExpr:
		return m.taintedExpr(x.X)
	case *ast.StarExpr:
		return m.taintedExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return m.taintedExpr(x.X) || m.isStateLvalue(x.X)
		}
		return false
	case *ast.CallExpr:
		return m.taintedCall(x)
	}
	return false
}

// taintedSelector: recv.unexportedRefField is the taint source; a field
// of any tainted expression stays tainted when it's an unexported
// reference carrier. Exported fields are caller-visible anyway and add
// no new aliasing.
func (m *method) taintedSelector(sel *ast.SelectorExpr) bool {
	fieldObj := m.pass.ObjectOf(sel.Sel)
	fv, isField := fieldObj.(*types.Var)
	if !isField || !fv.IsField() {
		// Method value / qualified name: not a state reference.
		return false
	}
	if fv.Exported() || !carriesRefs(fv.Type()) {
		return false
	}
	base := unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok && m.pass.ObjectOf(id) == m.recv {
		return true
	}
	return m.taintedExpr(sel.X)
}

// taintedCall: call results are clean (the callee owns its contract),
// with two exceptions — append propagates its base's taint, and a type
// conversion of a tainted reference is still the same reference.
func (m *method) taintedCall(call *ast.CallExpr) bool {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := m.pass.ObjectOf(id).(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				return m.taintedExpr(call.Args[0])
			}
			return false
		}
	}
	// Conversion, e.g. NodeList(inv.nodes): same backing store.
	if tv, ok := m.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return m.taintedExpr(call.Args[0])
	}
	return false
}

// isStateLvalue reports whether e denotes a location inside unexported
// receiver state (recv.field, recv.field[i], ...).
func (m *method) isStateLvalue(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		fv, ok := m.pass.ObjectOf(x.Sel).(*types.Var)
		if !ok || !fv.IsField() || fv.Exported() {
			return false
		}
		if id, ok := unparen(x.X).(*ast.Ident); ok && m.pass.ObjectOf(id) == m.recv {
			return true
		}
		return m.isStateLvalue(x.X)
	case *ast.IndexExpr:
		return m.isStateLvalue(x.X)
	case *ast.StarExpr:
		return m.isStateLvalue(x.X)
	}
	return false
}

// setTaint records the taint of the variable behind an lvalue, if it is
// a plain local identifier.
func (m *method) setTaint(lhs ast.Expr, t bool) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := m.pass.ObjectOf(id)
	if obj == nil || obj == m.recv {
		return
	}
	if t {
		m.tainted[obj] = true
	} else {
		delete(m.tainted, obj)
	}
}

// soleRefField reports whether name is the only reference-carrying field
// of st.
func soleRefField(st *types.Struct, name string) bool {
	refs := 0
	match := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !carriesRefs(f.Type()) {
			continue
		}
		refs++
		if f.Name() == name {
			match = true
		}
	}
	return refs == 1 && match
}

// elemType returns the element type of a slice, array, map, or pointer
// container, or nil.
func elemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Pointer:
		return elemType(u.Elem())
	}
	return nil
}

// receiverVar returns the *types.Var of the (named) receiver.
func receiverVar(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	v, _ := pass.ObjectOf(name).(*types.Var)
	return v
}

// receiverNamed unwraps a (possibly pointer) receiver type to its Named.
func receiverNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// hasUnexportedRefState reports whether the struct has at least one
// unexported field whose type carries references.
func hasUnexportedRefState(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && carriesRefs(f.Type()) {
			return true
		}
	}
	return false
}

// carriesRefs reports whether values of t can alias shared storage:
// slices, maps, and pointers, directly or through struct/array elements.
// Strings are immutable and channels/funcs/interfaces are out of scope
// ("slice/map/pointer-graph state").
func carriesRefs(t types.Type) bool {
	return carriesRefsDepth(t, 0)
}

func carriesRefsDepth(t types.Type, depth int) bool {
	if depth > 8 {
		return true // deep generic nesting: assume the worst
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	case *types.Array:
		return carriesRefsDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRefsDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
