package load

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// writeModule lays out a throwaway single-package module so LoadDir can be
// exercised against real files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// A //go:build race file and its !race twin declare the same name; the
// loader must pick exactly the default-build side or type-checking
// reports a redeclaration. This is the real layout of the repo's
// raceEnabled gate.
func TestLoadDirSkipsBuildExcludedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p.go":        "package p\n\nvar _ = raceEnabled\n",
		"race_on.go":  "//go:build race\n\npackage p\n\nconst raceEnabled = true\n",
		"race_off.go": "//go:build !race\n\npackage p\n\nconst raceEnabled = false\n",
	})
	pkgs, err := NewLoader().LoadDir(dir, "scratch")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	names := map[string]bool{}
	for _, f := range pkgs[0].Files {
		names[filepath.Base(pkgs[0].Fset.File(f.Pos()).Name())] = true
	}
	if !names["race_off.go"] || names["race_on.go"] {
		t.Fatalf("loaded files %v, want race_off.go kept and race_on.go skipped", names)
	}
	c := pkgs[0].Types.Scope().Lookup("raceEnabled")
	if c == nil {
		t.Fatal("raceEnabled not in package scope")
	}
}

// Default-configuration tags (host GOOS/GOARCH, gc, go1.x) must keep a
// file in; constraints naming only foreign platforms must drop it.
func TestLoadDirHonorsPlatformTags(t *testing.T) {
	other := "windows"
	if runtime.GOOS == "windows" {
		other = "linux"
	}
	dir := writeModule(t, map[string]string{
		"p.go":       "package p\n\nvar _ = hostOnly\n",
		"host.go":    "//go:build " + runtime.GOOS + " && " + runtime.GOARCH + " && gc && go1.22\n\npackage p\n\nconst hostOnly = 1\n",
		"foreign.go": "//go:build " + other + "\n\npackage p\n\nconst hostOnly = 2\n",
	})
	pkgs, err := NewLoader().LoadDir(dir, "scratch")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, f := range pkgs[0].Files {
		if filepath.Base(pkgs[0].Fset.File(f.Pos()).Name()) == "foreign.go" {
			t.Fatalf("foreign-GOOS file was loaded")
		}
	}
}
