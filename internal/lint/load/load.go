// Package load enumerates and type-checks every package of this module
// using only the standard library: go/parser for syntax and go/types with
// the "source" compiler importer (go/importer) for type information. It is
// the package-loading half of the affinitylint driver, replacing
// golang.org/x/tools/go/packages, which cannot be vendored in this
// offline build environment.
//
// In-package _test.go files are checked together with their package, the
// way `go test` compiles them, so test helpers are linted too. External
// test packages (package foo_test) are loaded as their own unit with the
// import path "<pkgpath>.test".
//
// Files carry build constraints: a //go:build race file and its !race
// twin declare the same names, so loading both would be a redeclaration
// error. LoadDir evaluates each file's //go:build line against the
// default build configuration (GOOS, GOARCH, gc, go1.x; optional tags
// like "race" unset) and skips excluded files, matching what a plain
// `go build` would compile.
package load

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked compilation unit.
type Package struct {
	// PkgPath is the import path ("affinitycluster/internal/obs"); external
	// test packages get the synthetic suffix ".test".
	PkgPath string
	// Dir is the absolute directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot walks up from dir to the nearest directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s/go.mod", root)
}

// Dirs lists every directory under root that contains .go files, skipping
// testdata, hidden directories, and the examples tree's per-example
// modules if any. Paths come back sorted for deterministic driver output.
func Dirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Loader type-checks packages with one shared FileSet and importer so the
// transitive standard library is checked at most once per process.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader backed by the stdlib source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir parses and type-checks the package in dir (plus its in-package
// test files) and, when present, the external test package. pkgPath is the
// import path to assign the primary package.
func (ld *Loader) LoadDir(dir, pkgPath string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Group files by declared package name: the primary package (which
	// absorbs same-name _test.go files) and at most one foo_test package.
	byName := map[string][]*ast.File{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if buildExcluded(f) {
			continue
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	var out []*Package
	for _, name := range names {
		path := pkgPath
		if strings.HasSuffix(name, "_test") {
			path += ".test"
		}
		pkg, err := ld.check(path, dir, byName[name])
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// buildExcluded reports whether f's //go:build line (the modern form;
// gofmt keeps legacy // +build lines in sync with it) rules the file out
// of the default build configuration. Only comments before the package
// clause count, per the constraint placement rule.
func buildExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// An unparseable constraint is the build system's problem,
				// not the linter's; keep the file so type errors surface.
				return false
			}
			return !expr.Eval(defaultBuildTag)
		}
	}
	return false
}

// defaultBuildTag is the tag environment of an ordinary `go build`:
// the host GOOS/GOARCH, the gc compiler, every released go1.x version,
// and "unix" on the platforms that define it. Optional tags such as
// "race", "integration", or custom gates are false.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return runtime.GOOS == "linux" || runtime.GOOS == "darwin" ||
			strings.HasSuffix(runtime.GOOS, "bsd") || runtime.GOOS == "solaris" ||
			runtime.GOOS == "illumos" || runtime.GOOS == "aix"
	}
	return strings.HasPrefix(tag, "go1.")
}

func (ld *Loader) check(pkgPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: ld.imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(strings.TrimSuffix(pkgPath, ".test"), ld.Fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: ld.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// Module loads every package of the module rooted at root. The import
// path of each directory is modulePath + the slash-relative directory.
func Module(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := Dirs(root)
	if err != nil {
		return nil, err
	}
	ld := NewLoader()
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := ld.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}
