// Package analysis is a self-contained, stdlib-only subset of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) to write type-aware analyzers without a network dependency.
// The container that builds this repo has no module proxy access, so the
// x/tools module cannot be fetched; the shim keeps the same shape so the
// analyzers can migrate to the real framework by swapping one import.
//
// Differences from x/tools kept deliberately small:
//
//   - No Facts, no Requires/ResultOf plumbing — each analyzer is
//     independent and re-inspects the AST itself.
//   - Packages are loaded by internal/lint/load (go/parser + go/types with
//     the stdlib source importer) instead of go/packages.
//   - Suppression comments (//lint:allow <analyzer> <reason>) are handled
//     by the driver, not here.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by -list.
	Doc string
	// Explain is the long-form description shown by -explain: the
	// invariant the analyzer encodes, its escape hatches, and the bug
	// class it exists to prevent. Optional; -explain falls back to Doc.
	Explain string
	// Run executes the check against one package and reports diagnostics
	// through the pass. The non-error return value is unused (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the pass in depth-first preorder, calling
// fn for each node. The common inspection loop of every analyzer here.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}
