// Package errdrop flags error returns from this module's own APIs that
// are silently discarded — a call used as a bare statement (or behind
// go/defer) whose callee returns an error. It is a targeted errcheck:
// standard-library and third-party calls are out of scope, and the
// explicit `_ = f()` form is treated as a deliberate, reviewable
// acknowledgment rather than a drop.
//
// The obs layer's nil-safe handles (Counter.Inc, Gauge.Set, Emit, …)
// return no error at all, so they are structurally exempt — the analyzer
// only considers callees whose signature actually includes an error
// result, which is what lets it run over instrumented hot paths without
// false positives.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"affinitycluster/internal/lint/analysis"
)

// Analyzer is the errdrop rule.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error returns from this module's own APIs " +
		"(bare statement, go, or defer calls)",
	Run: run,
}

// firstSegment returns the leading path element, the module identity used
// to decide whether a callee is "ours".
func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return strings.TrimSuffix(path, ".test")
}

func run(pass *analysis.Pass) (any, error) {
	module := firstSegment(pass.Pkg.Path())
	check := func(call *ast.CallExpr, how string) {
		fn := callee(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if firstSegment(fn.Pkg().Path()) != module {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !returnsError(sig) {
			return
		}
		pass.Reportf(call.Pos(), "discarded error from %s.%s%s; handle it or assign to _ explicitly", fn.Pkg().Name(), fn.Name(), how)
	}
	pass.Preorder(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				check(call, "")
			}
		case *ast.GoStmt:
			check(s.Call, " (go statement)")
		case *ast.DeferStmt:
			check(s.Call, " (deferred)")
		}
		return true
	})
	return nil, nil
}

// callee resolves the called function or method, including interface
// methods (whose *types.Func belongs to the package declaring the
// interface, e.g. placement.Placer.Place).
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t.String() == "error" && types.IsInterface(t)
}
