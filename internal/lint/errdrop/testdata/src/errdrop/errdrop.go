// Fixture for the errdrop analyzer: dropped errors from same-module
// APIs fire; handled errors, explicit `_ =` acknowledgments, stdlib
// calls, and obs-style nil-safe handles (no error result) stay clean.
package errdrop

import (
	"errors"
	"os"
)

func mightFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("x") }

type widget struct{}

func (widget) Close() error { return nil }

// handle mimics an obs nil-safe metric handle: methods return nothing
// (or a plain value), so there is no error to drop.
type handle struct{}

func (*handle) Inc()         {}
func (*handle) Value() int64 { return 0 }

type closer interface {
	Shutdown() error
}

func drops(c closer) {
	mightFail()    // want `discarded error from errdrop\.mightFail`
	go mightFail() // want `discarded error from errdrop\.mightFail \(go statement\)`
	var w widget
	w.Close()    // want `discarded error from errdrop\.Close`
	c.Shutdown() // want `discarded error from errdrop\.Shutdown`
}

func deferred() {
	defer mightFail() // want `discarded error from errdrop\.mightFail \(deferred\)`
}

func handledOK(h *handle) error {
	if err := mightFail(); err != nil {
		return err
	}
	_ = mightFail() // explicit, reviewable acknowledgment
	n, err := twoResults()
	_, _ = n, err
	os.Remove("x") // stdlib call: outside errdrop's targeted scope
	h.Inc()        // nil-safe handle, no error result
	_ = h.Value()
	return nil
}
