package errdrop_test

import (
	"testing"

	"affinitycluster/internal/lint/analysistest"
	"affinitycluster/internal/lint/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errdrop.Analyzer, "errdrop")
}
