// Package lint runs the affinitylint analyzer suite over loaded packages
// and filters findings through //lint:allow suppression comments. It is
// the shared driver core behind cmd/affinitylint and the suite's own
// tests.
//
// Suppression syntax, checked on the finding's line or the line directly
// above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow with no justification is reported as
// a finding itself, so suppressions stay auditable. So is relevance: an
// allow that suppresses nothing in the run (because the code it excused
// was fixed or moved) is reported as stale, provided the analyzer it
// names actually ran — suppressions cannot quietly outlive their bug.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"affinitycluster/internal/lint/analysis"
	"affinitycluster/internal/lint/load"
)

// Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Posn     string         `json:"posn"` // file:line:col, module-relative when possible
	Message  string         `json:"message"`
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive of a file, keyed by
// the line the directive sits on.
func parseAllows(fset *token.FileSet, f *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			d := allowDirective{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
			if len(fields) > 0 {
				d.analyzer = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// allowEntry tracks whether a well-formed directive suppressed anything.
type allowEntry struct {
	d    allowDirective
	used bool
}

// Run executes every analyzer over every package and returns the
// non-suppressed findings sorted by position then analyzer. Malformed
// suppression directives (missing analyzer or reason) surface as findings
// from the synthetic "lintallow" analyzer, as do stale directives that
// suppressed no finding of an analyzer that ran.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		// allowed[file][line] -> analyzer name -> directive entry.
		allowed := map[string]map[int]map[string]*allowEntry{}
		var entries []*allowEntry
		for _, f := range pkg.Files {
			for _, d := range parseAllows(pkg.Fset, f) {
				posn := pkg.Fset.Position(d.pos)
				if d.analyzer == "" || d.reason == "" {
					findings = append(findings, Finding{
						Analyzer: "lintallow",
						Pos:      posn,
						Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				byLine := allowed[posn.Filename]
				if byLine == nil {
					byLine = map[int]map[string]*allowEntry{}
					allowed[posn.Filename] = byLine
				}
				if byLine[d.line] == nil {
					byLine[d.line] = map[string]*allowEntry{}
				}
				e := &allowEntry{d: d}
				byLine[d.line][d.analyzer] = e
				entries = append(entries, e)
			}
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				if byLine := allowed[posn.Filename]; byLine != nil {
					for _, line := range []int{posn.Line, posn.Line - 1} {
						if e := byLine[line][a.Name]; e != nil {
							e.used = true
							return
						}
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		// Stale audit: a directive naming an analyzer that ran but
		// suppressed nothing has outlived whatever it excused.
		for _, e := range entries {
			if e.used || !ran[e.d.analyzer] {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: "lintallow",
				Pos:      pkg.Fset.Position(e.d.pos),
				Message: fmt.Sprintf("stale suppression: //lint:allow %s matched no %s finding; remove it",
					e.d.analyzer, e.d.analyzer),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for i := range findings {
		findings[i].Posn = findings[i].Pos.String()
	}
	return findings, nil
}
