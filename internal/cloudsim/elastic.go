// Elastic mid-job resizing: the hybrid job-driven extension where a
// served MapReduce cluster grows for its map phase and shrinks into the
// shuffle, driven by the phase boundary estimated from the job spec
// (internal/mapreduce's PhaseSplit feeds ElasticConfig.MapFrac).
//
// Every commission requests a grow of ceil(GrowFactor·v_j) VMs per
// requested type, placed near the cluster's current center with
// placement.PlaceDelta so the merged DC(C) stays tight. Admission is
// deadline-aware: the grown VMs must serve at least MinPayoff seconds
// before the shrink boundary at arrival + MapFrac·Hold, or the grow is
// rejected outright; grows that do not currently fit — or that would
// starve requests waiting in the queue — are deferred with a fixed
// backoff and expire once retrying can no longer pay off. A served grow
// schedules the shrink at the boundary: placement.ReleaseSubset picks
// the DC-minimizing victims (not necessarily the VMs the grow added),
// returns them to the inventory, and offers the freed capacity to the
// wait queue like any departure.
//
// Accounting mirrors the request identity (Served + Rejected + Unplaced
// == requests): every grow op terminates in exactly one of Grows,
// GrowRejected, or Deferred, checked at the end of each run, so mid-job
// deltas can never double-count — including grows still deferred when a
// fault tears their parent down.
package cloudsim

import (
	"errors"
	"fmt"
	"math"

	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
)

// ElasticConfig enables map/shuffle-driven resizing of every served
// cluster. Elastic mode requires the indexed online heuristic and
// per-request service (no Serve, Batch, Migrate, or BatchWindow); fault
// injection composes with it.
type ElasticConfig struct {
	// Enabled turns elastic resizing on; the zero value leaves every
	// code path of the static simulation untouched.
	Enabled bool
	// GrowFactor sizes the map-phase boost: each served request grows by
	// ceil(GrowFactor·v_j) VMs of every type j it requested. Required in
	// (0, ∞).
	GrowFactor float64
	// MapFrac is the map phase's share of each job's hold time, in
	// (0, 1): the shrink fires at commission + MapFrac·Hold. Derive it
	// from a representative job spec with mapreduce.JobSpec.PhaseSplit.
	MapFrac float64
	// MinPayoff is the minimum seconds the grown VMs must serve before
	// the shrink boundary for a grow to be worth its churn; grows that
	// cannot meet it are rejected at admission, and deferred grows
	// expire once no retry can meet it. 0 = 1.
	MinPayoff float64
	// DeferBackoff is the retry delay, in simulation seconds, for grows
	// deferred because the plant is full or the wait queue is busy.
	// 0 = 5.
	DeferBackoff float64
}

func (c ElasticConfig) withDefaults() ElasticConfig {
	if c.MinPayoff <= 0 {
		c.MinPayoff = 1
	}
	if c.DeferBackoff <= 0 {
		c.DeferBackoff = 5
	}
	return c
}

func (c ElasticConfig) validate() error {
	if !(c.GrowFactor > 0) || math.IsInf(c.GrowFactor, 0) {
		return fmt.Errorf("cloudsim: Elastic.GrowFactor must be positive and finite, got %v", c.GrowFactor)
	}
	if !(c.MapFrac > 0 && c.MapFrac < 1) {
		return fmt.Errorf("cloudsim: Elastic.MapFrac must be in (0, 1), got %v", c.MapFrac)
	}
	for _, v := range []float64{c.MinPayoff, c.DeferBackoff} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("cloudsim: Elastic.MinPayoff/DeferBackoff must be finite and non-negative")
		}
	}
	return nil
}

// elasticState tracks one running cluster's resize lifecycle. It exists
// only between the grow request at commission and its resolution (the
// shrink for served grows, expiry for deferred ones); depart and
// teardown cancel whatever is still scheduled.
type elasticState struct {
	growVec  model.Request   // per-type delta requested for the map phase
	deadline float64         // shrink boundary: commission + MapFrac·Hold
	grown    bool            // the grow was served (shrink owed)
	retryEv  *eventsim.Event // pending deferred-grow retry
	shrinkEv *eventsim.Event // pending shrink at the boundary
}

// requestGrow opens the resize lifecycle of a freshly commissioned
// cluster: size the delta, run deadline admission, and attempt the grow.
func (s *Simulator) requestGrow(id int, r model.TimedRequest, now float64) {
	g := make(model.Request, len(r.Vector))
	total := 0
	for j, v := range r.Vector {
		if v > 0 {
			g[j] = int(math.Ceil(s.ecfg.GrowFactor * float64(v)))
			total += g[j]
		}
	}
	if total == 0 {
		return
	}
	s.metrics.GrowRequests++
	window := s.ecfg.MapFrac * r.Hold
	if window < s.ecfg.MinPayoff {
		s.rejectGrow(id, r.ID, now, "deadline")
		return
	}
	if !s.inv.CanEverSatisfy(g) {
		s.rejectGrow(id, r.ID, now, "oversized")
		return
	}
	s.elastic[id] = &elasticState{growVec: g, deadline: now + window}
	s.tryGrow(id, now)
}

// rejectGrow terminates a grow op at admission.
func (s *Simulator) rejectGrow(id int, req model.RequestID, now float64, reason string) {
	s.metrics.GrowRejected++
	s.om.growRejected.Inc()
	s.cfg.Obs.Emit("resize_reject", now,
		obs.F("req", int(req)),
		obs.F("cluster", id),
		obs.F("reason", reason))
}

// tryGrow attempts to place the cluster's pending delta near its current
// center. A grow never jumps the wait queue: while requests are waiting,
// or the delta does not fit, it is deferred instead.
func (s *Simulator) tryGrow(id int, now float64) {
	st := s.elastic[id]
	alloc := s.running[id]
	r := s.reqOf[id]
	if s.queue.Len() == 0 {
		dc, center, err := s.online.PlaceDeltaSparse(s.tidx, alloc.Sparse(), st.growVec, &s.spd)
		if err == nil {
			if aerr := s.inv.AllocateList(s.spd.Entries); aerr != nil {
				if !errors.Is(aerr, inventory.ErrInsufficient) {
					s.fail(fmt.Errorf("cloudsim: allocating grow of cluster %d: %w", id, aerr))
					return
				}
				err = aerr
			}
		}
		if err == nil {
			added := 0
			for _, e := range s.spd.Entries {
				alloc[e.Node][e.Type] += e.Count
				added += e.Count
			}
			s.sampleUtilization(now)
			s.usedSlots += added
			st.grown = true
			s.metrics.Grows++
			s.metrics.GrowVMs += added
			s.om.grows.Inc()
			s.om.usedSlots.Set(float64(s.usedSlots))
			s.cfg.Obs.Emit("resize_grow", now,
				obs.F("req", int(r.ID)),
				obs.F("cluster", id),
				obs.F("vms", added),
				obs.F("center", int(center)),
				obs.F("dc", dc))
			ev, serr := s.engine.At(st.deadline, func(at float64) { s.shrink(id, at) })
			if serr != nil {
				s.fail(fmt.Errorf("cloudsim: scheduling shrink of cluster %d: %w", id, serr))
				return
			}
			st.shrinkEv = ev
			return
		}
		if !errors.Is(err, placement.ErrInsufficient) {
			s.fail(fmt.Errorf("cloudsim: growing cluster %d: %w", id, err))
			return
		}
	}
	s.deferGrow(id, now)
}

// deferGrow schedules a retry, or expires the grow when no retry can
// still serve MinPayoff seconds before the boundary.
func (s *Simulator) deferGrow(id int, now float64) {
	st := s.elastic[id]
	retryAt := now + s.ecfg.DeferBackoff
	if retryAt+s.ecfg.MinPayoff > st.deadline {
		s.expireGrow(id, now, "deadline")
		return
	}
	s.cfg.Obs.Emit("resize_defer", now,
		obs.F("req", int(s.reqOf[id].ID)),
		obs.F("cluster", id),
		obs.F("retry", retryAt))
	ev, err := s.engine.At(retryAt, func(at float64) {
		st.retryEv = nil
		s.tryGrow(id, at)
	})
	if err != nil {
		s.fail(fmt.Errorf("cloudsim: scheduling grow retry for cluster %d: %w", id, err))
		return
	}
	st.retryEv = ev
}

// expireGrow terminates a deferred grow that never served; the cluster
// carries on at its base size.
func (s *Simulator) expireGrow(id int, now float64, reason string) {
	s.metrics.Deferred++
	s.om.growDeferred.Inc()
	s.cfg.Obs.Emit("resize_expire", now,
		obs.F("req", int(s.reqOf[id].ID)),
		obs.F("cluster", id),
		obs.F("reason", reason))
	delete(s.elastic, id)
}

// shrink fires at the map/shuffle boundary of a grown cluster: give back
// exactly the grow's per-type delta, choosing the DC(C)-minimizing
// victims from the merged cluster, and offer the freed capacity to the
// wait queue like a departure would.
func (s *Simulator) shrink(id int, now float64) {
	if s.failed != nil {
		return
	}
	st := s.elastic[id]
	st.shrinkEv = nil
	alloc := s.running[id]
	victims, err := placement.ReleaseSubset(s.topo, alloc, st.growVec)
	if err != nil {
		s.fail(fmt.Errorf("cloudsim: shrinking cluster %d at t=%v: %w", id, now, err))
		return
	}
	if err := s.inv.ReleaseList(victims); err != nil {
		s.om.releaseFailures.Inc()
		s.cfg.Obs.Emit("release_failure", now, obs.F("cluster", id), obs.F("error", err.Error()))
		s.fail(fmt.Errorf("cloudsim: releasing shrink of cluster %d at t=%v: %w", id, now, err))
		return
	}
	removed := 0
	for _, e := range victims {
		removed += e.Count
	}
	s.sampleUtilization(now)
	s.usedSlots -= removed
	s.metrics.Shrinks++
	s.om.shrinks.Inc()
	s.om.usedSlots.Set(float64(s.usedSlots))
	d, _ := alloc.Distance(s.topo)
	s.cfg.Obs.Emit("resize_shrink", now,
		obs.F("req", int(s.reqOf[id].ID)),
		obs.F("cluster", id),
		obs.F("vms", removed),
		obs.F("dc", d))
	delete(s.elastic, id)
	s.drain(now)
}

// cancelElastic resolves a cluster's resize state when the cluster
// itself goes away (departure, or teardown by a fault). A still-deferred
// grow terminates as Deferred; a pending shrink is simply dropped — the
// grown VMs are part of the cluster's allocation and leave with it.
func (s *Simulator) cancelElastic(id int, now float64, reason string) {
	if s.elastic == nil {
		return
	}
	st := s.elastic[id]
	if st == nil {
		return
	}
	if st.retryEv != nil {
		s.engine.Cancel(st.retryEv)
		st.retryEv = nil
		s.expireGrow(id, now, reason)
	}
	if st.shrinkEv != nil {
		s.engine.Cancel(st.shrinkEv)
		st.shrinkEv = nil
	}
	delete(s.elastic, id)
}
