package cloudsim

import (
	"bytes"
	"reflect"
	"testing"

	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/service"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func plant(t *testing.T) (*topology.Topology, *inventory.Inventory) {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	caps := make([][]int, tp.Nodes())
	for i := range caps {
		caps[i] = []int{2, 2}
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		t.Fatal(err)
	}
	return tp, inv
}

func timed(id int, vec model.Request, at, hold float64) model.TimedRequest {
	return model.TimedRequest{ID: model.RequestID(id), Vector: vec, Arrival: at, Hold: hold}
}

func TestNewValidation(t *testing.T) {
	tp, inv := plant(t)
	if _, err := New(tp, inv, nil, Config{}); err == nil {
		t.Error("nil placer accepted")
	}
	smallInv, _ := inventory.NewFromMatrix([][]int{{1, 1}})
	if _, err := New(tp, smallInv, &placement.OnlineHeuristic{}, Config{}); err == nil {
		t.Error("mismatched inventory accepted")
	}
	zeroInv := inventory.New(tp.Nodes(), 2)
	if _, err := New(tp, zeroInv, &placement.OnlineHeuristic{}, Config{}); err == nil {
		t.Error("zero-capacity inventory accepted")
	}
}

func TestImmediateServiceAndRelease(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{RetainSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{2, 1}, 1, 10),
		timed(1, model.Request{1, 0}, 2, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 2)
	if m.Served != 2 || m.Rejected != 0 || m.Unplaced != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Waits[0] != 0 || m.Waits[1] != 0 {
		t.Errorf("waits = %v, want zeros", m.Waits)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if inv.Allocated(0, 0) != 0 {
		t.Error("resources not fully released")
	}
	if m.MakeSpan != 11 {
		t.Errorf("makespan = %v, want 11", m.MakeSpan)
	}
}

func TestOversizedRequestRejected(t *testing.T) {
	tp, inv := plant(t)
	sim, _ := New(tp, inv, &placement.OnlineHeuristic{}, Config{})
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{100, 0}, 1, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 1)
	if m.Rejected != 1 || m.Served != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestQueueingAndDrain(t *testing.T) {
	tp, inv := plant(t)
	sim, _ := New(tp, inv, &placement.OnlineHeuristic{}, Config{RetainSamples: true})
	// Request 0 takes the whole plant for 10s; request 1 arrives at t=2
	// and must wait until t=11.
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{12, 12}, 1, 10),
		timed(1, model.Request{6, 0}, 2, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 2)
	if m.Served != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Waits[1] != 9 { // 11 − 2
		t.Errorf("wait = %v, want 9", m.Waits[1])
	}
	if m.MakeSpan != 16 {
		t.Errorf("makespan = %v, want 16", m.MakeSpan)
	}
}

func TestQueueCapRejects(t *testing.T) {
	tp, inv := plant(t)
	sim, _ := New(tp, inv, &placement.OnlineHeuristic{}, Config{QueueCap: 1})
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{12, 12}, 1, 100),
		timed(1, model.Request{6, 0}, 2, 5), // queues
		timed(2, model.Request{6, 0}, 3, 5), // queue full → rejected
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 3)
	if m.Rejected != 1 || m.Served != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestUtilizationBounds(t *testing.T) {
	tp, inv := plant(t)
	sim, _ := New(tp, inv, &placement.OnlineHeuristic{}, Config{})
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{12, 12}, 0.0001, 10), // whole plant
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.UtilizationAvg <= 0.9 || m.UtilizationAvg > 1.0 {
		t.Errorf("utilization = %v, want ≈1", m.UtilizationAvg)
	}
}

func TestBatchModeServesBacklog(t *testing.T) {
	tp, inv := plant(t)
	sim, _ := New(tp, inv, &placement.OnlineHeuristic{}, Config{Batch: true})
	// Whole-plant request followed by three small ones that drain as one
	// batch when it departs.
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{12, 12}, 1, 10),
		timed(1, model.Request{2, 0}, 2, 5),
		timed(2, model.Request{2, 0}, 3, 5),
		timed(3, model.Request{0, 2}, 4, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 4)
	if m.Served != 4 || m.Unplaced != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStrictModeHeadBlocks(t *testing.T) {
	tp, inv := plant(t)
	sim, _ := New(tp, inv, &placement.OnlineHeuristic{}, Config{Strict: true, RetainSamples: true})
	// After the big request departs at t=11 only 12+12 slots exist; the
	// queued head wants everything, the small one behind it must wait
	// despite fitting — strict mode blocks it until the head is served.
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{12, 12}, 1, 10),
		timed(1, model.Request{12, 12}, 2, 5),
		timed(2, model.Request{1, 0}, 3, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 3)
	if m.Served != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	// Head served at 11 (wait 9); small at 11 too? No: strict lets both
	// pass once the head fits. Head departs at 16, but small fit at 11
	// right after the head? Budget: head took everything at 11, so small
	// waits until 16.
	if m.Waits[2] != 13 { // 16 − 3
		t.Errorf("strict wait = %v, want 13", m.Waits[2])
	}
}

func TestEndToEndRandomWorkload(t *testing.T) {
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(3, tp.Nodes(), 3, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.RandomRequests(4, 20, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	timedReqs, err := workload.TimedRequests(5, reqs, workload.DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Policy: queue.FIFO, RetainSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(timedReqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Rejected+m.Unplaced != 20 {
		t.Fatalf("request accounting wrong: %+v", m)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Served > 0 && len(m.Distances) != m.Served {
		t.Error("distance sample count mismatch")
	}
	if m.UtilizationAvg < 0 || m.UtilizationAvg > 1 {
		t.Errorf("utilization = %v", m.UtilizationAvg)
	}
}

func TestBatchWindowTradesWaitForDistance(t *testing.T) {
	tp, _ := plant(t)
	// Contended fine-grained capacity like the global sub-opt examples:
	// nodes 0/1 in rack 0 offer 0 and 1 slot, rack 1 offers 3+3.
	caps := [][]int{
		{0, 0}, {1, 0}, {0, 0},
		{3, 0}, {3, 0}, {0, 0},
	}
	reqs := []model.TimedRequest{
		timed(0, model.Request{4, 0}, 1, 50),
		timed(1, model.Request{3, 0}, 1.5, 50),
	}
	run := func(window float64) *Metrics {
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Batch: true, BatchWindow: window, RetainSamples: true})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Served != 2 {
			t.Fatalf("served = %d", m.Served)
		}
		return m
	}
	immediate := run(0)
	windowed := run(5)
	// The windowed run serves both requests as one batch: the exchange
	// phase untangles them (total 2 vs 3 — same instance as the
	// GlobalSubOpt example).
	if windowed.TotalDistance >= immediate.TotalDistance {
		t.Errorf("window did not improve distance: %v vs %v",
			windowed.TotalDistance, immediate.TotalDistance)
	}
	// The price is waiting: windowed requests wait ≥ 0 with at least one
	// strictly positive wait; the immediate run serves request 0 at once.
	if immediate.Waits[0] != 0 {
		t.Errorf("immediate wait = %v", immediate.Waits[0])
	}
	maxWait := 0.0
	for _, w := range windowed.Waits {
		if w > maxWait {
			maxWait = w
		}
	}
	if maxWait <= 0 {
		t.Error("windowed run shows no waiting")
	}
}

func TestMigrationTightensRunningClusters(t *testing.T) {
	tp, _ := plant(t)
	run := func(migrate bool) *Metrics {
		// Capacity (single VM type that matters): node 0 holds 4, node 1
		// holds 1 (rack 0); node 4 holds 1 (rack 1). Request 0 takes one
		// slot of node 0; request 1 (5 VMs) is then forced to straddle
		// racks with a stray VM on node 3. When request 0 departs, its
		// freed node-0 slot lets migration pull the stray home.
		caps := [][]int{
			{4, 0}, {1, 0}, {0, 0},
			{0, 0}, {1, 0}, {0, 0},
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Migrate: migrate})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run([]model.TimedRequest{
			timed(0, model.Request{1, 0}, 1, 10),
			timed(1, model.Request{5, 0}, 2, 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := inv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	with := run(true)
	without := run(false)
	if with.Served != without.Served {
		t.Fatalf("served differ: %d vs %d", with.Served, without.Served)
	}
	if with.Migrations == 0 {
		t.Error("no migrations happened in the crafted scenario")
	}
	if with.MigrationGain <= 0 {
		t.Error("migrations reported no gain")
	}
	if with.FinalDistanceSum >= without.FinalDistanceSum {
		t.Errorf("migration did not reduce final distances: %v vs %v",
			with.FinalDistanceSum, without.FinalDistanceSum)
	}
	if without.Migrations != 0 {
		t.Error("migrations counted while disabled")
	}
}

// TestSoakLongHorizon runs a long, heavily loaded scenario through every
// feature at once — batching, migration, priorities — and checks global
// accounting invariants at the end.
func TestSoakLongHorizon(t *testing.T) {
	topo := topology.PaperSimPlant()
	const n = 300
	reqs, err := workload.RandomRequests(71, n, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.DefaultArrivalConfig()
	arrivals.MeanInterarrival = 4
	arrivals.MeanHold = 250
	arrivals.PriorityLevels = 3
	timed, err := workload.TimedRequests(72, reqs, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := workload.RandomCapacities(73, topo.Nodes(), 3, workload.InventoryConfig{MaxPerType: 2})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(topo, inv, &placement.OnlineHeuristic{}, Config{
		Policy:        queue.PriorityPolicy,
		Batch:         true,
		Migrate:       true,
		RetainSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(timed)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Rejected+m.Unplaced != n {
		t.Fatalf("request accounting broken: served %d + rejected %d + unplaced %d != %d",
			m.Served, m.Rejected, m.Unplaced, n)
	}
	if m.Served < n/2 {
		t.Errorf("suspiciously few served: %d", m.Served)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All served clusters departed: everything must be released.
	allocated := inv.AllocatedMatrix()
	for i := range allocated {
		for j, k := range allocated[i] {
			if k != 0 {
				t.Fatalf("leaked %d VMs of type %d on node %d", k, j, i)
			}
		}
	}
	if len(m.Distances) != m.Served || len(m.Waits) != m.Served {
		t.Error("metric sample counts inconsistent")
	}
	for _, w := range m.Waits {
		if w < 0 {
			t.Fatal("negative wait")
		}
	}
	if m.UtilizationAvg <= 0 || m.UtilizationAvg > 1 {
		t.Errorf("utilization %v out of range", m.UtilizationAvg)
	}
}

// TestCorruptedReleaseReturnsError is the regression test for the old
// panic in depart(): when a departure's release no longer matches the
// inventory (bookkeeping corrupted out from under the simulator), Run
// must return an error — not crash the process — and count the failure.
func TestCorruptedReleaseReturnsError(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the bookkeeping mid-run: at t=5 (after the cluster is
	// placed, before its departure at t=11) release the running cluster's
	// resources behind the simulator's back, so the departure's own
	// release no longer fits.
	if _, err := sim.engine.At(5, func(float64) {
		for _, alloc := range sim.running {
			if err := sim.inv.Release([][]int(alloc)); err != nil {
				t.Errorf("test corruption release: %v", err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run([]model.TimedRequest{
		timed(0, model.Request{2, 1}, 1, 10),
	})
	if err == nil {
		t.Fatal("corrupted release did not surface an error")
	}
	if reg.Snapshot().Counters["cloudsim.release_failures"] != 1 {
		t.Error("release failure not counted")
	}
}

// TestInstrumentedRunRecordsAllFamilies drives an instrumented simulation
// (queueing + migration) and checks the queue, cloudsim, placement, and
// migration metric families plus the event trace all populate — and that
// the same seed yields a byte-identical snapshot.
func TestInstrumentedRunRecordsAllFamilies(t *testing.T) {
	run := func() *obs.Registry {
		tp, _ := plant(t)
		caps := [][]int{
			{4, 0}, {1, 0}, {0, 0},
			{0, 0}, {1, 0}, {0, 0},
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		sim, err := New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, Config{Migrate: true, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run([]model.TimedRequest{
			timed(0, model.Request{1, 0}, 1, 10),
			timed(1, model.Request{5, 0}, 2, 100),
			timed(2, model.Request{6, 0}, 3, 5), // must queue behind 0+1
		}); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	reg := run()
	snap := reg.Snapshot()
	for _, name := range []string{"cloudsim.served", "queue.enqueued", "placement.place_calls", "migration.plans"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s missing; have %v", name, reg.MetricNames())
		}
	}
	if snap.Counters["cloudsim.migration_moves"] == 0 {
		t.Error("no migration moves recorded in the crafted scenario")
	}
	if snap.Histograms["cloudsim.wait_seconds"].N != 3 {
		t.Errorf("wait histogram N = %d, want 3", snap.Histograms["cloudsim.wait_seconds"].N)
	}
	kinds := map[string]bool{}
	for _, e := range reg.Events() {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"place", "depart", "queue_admit", "migrate"} {
		if !kinds[k] {
			t.Errorf("trace missing %q events; have %v", k, kinds)
		}
	}
	var one, two bytes.Buffer
	if err := reg.WriteMetricsJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := run().WriteMetricsJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("instrumented snapshots differ across identical runs")
	}
}

func TestAffinityPlacerYieldsShorterDistancesThanRandom(t *testing.T) {
	run := func(p placement.Placer) float64 {
		tp := topology.PaperSimPlant()
		caps, _ := workload.RandomCapacities(3, tp.Nodes(), 3, workload.DefaultInventoryConfig())
		inv, _ := inventory.NewFromMatrix(caps)
		reqs, _ := workload.RandomRequests(4, 20, 3, workload.Normal, workload.DefaultRequestConfig())
		timedReqs, _ := workload.TimedRequests(5, reqs, workload.DefaultArrivalConfig())
		sim, err := New(tp, inv, p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(timedReqs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Served == 0 {
			t.Fatal("nothing served")
		}
		return m.TotalDistance / float64(m.Served)
	}
	affine := run(&placement.OnlineHeuristic{})
	striped := run(placement.RoundRobinStripe{})
	if affine >= striped {
		t.Errorf("affinity-aware mean distance %.2f not below round-robin %.2f", affine, striped)
	}
}

// TestServeParity pins the Serve wiring's byte-identity guarantee: the
// same seeded workload run directly and through the placement service
// must produce equal Metrics and byte-identical registry snapshots and
// event traces — the service changes who commits, never what is
// committed.
func TestServeParity(t *testing.T) {
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(3, tp.Nodes(), 3, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.RandomRequests(4, 40, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	arr := workload.DefaultArrivalConfig()
	arr.MeanInterarrival = 4 // saturate the plant so the queue and drain work too
	timedReqs, err := workload.TimedRequests(5, reqs, arr)
	if err != nil {
		t.Fatal(err)
	}
	run := func(serve *service.Config) (*Metrics, []byte) {
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		sim, err := New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, Config{
			Policy: queue.FIFO,
			Serve:  serve,
			Obs:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(timedReqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := inv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteTraceJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return m, buf.Bytes()
	}
	direct, directReg := run(nil)
	served, servedReg := run(&service.Config{BatchSize: 4})
	if direct.Served == 0 || direct.Served+direct.Rejected+direct.Unplaced != 40 {
		t.Fatalf("degenerate workload: %+v", direct)
	}
	if !reflect.DeepEqual(direct, served) {
		t.Errorf("metrics diverge:\ndirect: %+v\nserved: %+v", direct, served)
	}
	if !bytes.Equal(directReg, servedReg) {
		t.Errorf("registry diverges between direct and served runs")
	}
}

// TestServeModeRestrictions pins the Serve validation: batch, migration,
// batch-window, and fault modes are refused, as are non-indexed placers.
func TestServeModeRestrictions(t *testing.T) {
	tp, inv := plant(t)
	sc := &service.Config{}
	for name, cfg := range map[string]Config{
		"batch":   {Serve: sc, Batch: true},
		"migrate": {Serve: sc, Migrate: true},
		"window":  {Serve: sc, BatchWindow: 10},
	} {
		if _, err := New(tp, inv, &placement.OnlineHeuristic{}, cfg); err == nil {
			t.Errorf("New with Serve+%s succeeded", name)
		}
	}
	if _, err := New(tp, inv, &placement.OnlineHeuristic{Policy: placement.ExhaustiveCenters}, Config{Serve: sc}); err == nil {
		t.Errorf("New with Serve and exhaustive placer succeeded")
	}
}
