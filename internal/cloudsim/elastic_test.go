package cloudsim

import (
	"bytes"
	"reflect"
	"testing"

	"affinitycluster/internal/faults"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/workload"
)

// elasticConserve asserts the resize-extended conservation identity: the
// request identity of PR 5 plus the grow-op identity, so no mid-job
// delta is double-counted — every grow terminates as exactly one of
// served, rejected, or deferred.
func elasticConserve(t *testing.T, m *Metrics, n int) {
	t.Helper()
	conserve(t, m, n)
	if got := m.Grows + m.GrowRejected + m.Deferred; got != m.GrowRequests {
		t.Errorf("resize conservation broken: grown %d + rejected %d + deferred %d = %d, want %d",
			m.Grows, m.GrowRejected, m.Deferred, got, m.GrowRequests)
	}
}

func elasticCfg() ElasticConfig {
	return ElasticConfig{Enabled: true, GrowFactor: 0.5, MapFrac: 0.4, MinPayoff: 1, DeferBackoff: 5}
}

func TestElasticValidation(t *testing.T) {
	tp, inv := plant(t)
	bad := []Config{
		{Elastic: ElasticConfig{Enabled: true, MapFrac: 0.4}},                                  // GrowFactor unset
		{Elastic: ElasticConfig{Enabled: true, GrowFactor: 0.5}},                               // MapFrac unset
		{Elastic: ElasticConfig{Enabled: true, GrowFactor: 0.5, MapFrac: 1}},                   // boundary at departure
		{Elastic: elasticCfg(), Batch: true},                                                   // per-request only
		{Elastic: elasticCfg(), Migrate: true},                                                 // per-request only
		{Elastic: elasticCfg(), BatchWindow: 3},                                                // per-request only
	}
	for i, cfg := range bad {
		if _, err := New(tp, inv, &placement.OnlineHeuristic{}, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(tp, inv, &placement.OnlineHeuristic{Policy: placement.RandomCenter}, Config{Elastic: elasticCfg()}); err == nil {
		t.Error("elastic with non-indexed placer accepted")
	}
}

// One request on a half-empty plant: the grow is served at commission,
// the shrink fires at arrival + MapFrac·Hold, and the plant is clean
// after departure.
func TestElasticGrowShrinkLifecycle(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Elastic: elasticCfg(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run([]model.TimedRequest{timed(0, model.Request{4, 2}, 1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	elasticConserve(t, m, 1)
	if m.Served != 1 || m.GrowRequests != 1 || m.Grows != 1 || m.Shrinks != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// ceil(0.5·4) + ceil(0.5·2) = 2 + 1.
	if m.GrowVMs != 3 {
		t.Errorf("grow VMs = %d, want 3", m.GrowVMs)
	}
	if m.MakeSpan != 11 {
		t.Errorf("makespan = %v, want 11", m.MakeSpan)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	alloc := inv.AllocatedMatrix()
	for i := range alloc {
		for j, k := range alloc[i] {
			if k != 0 {
				t.Fatalf("leaked %d VMs of type %d on node %d", k, j, i)
			}
		}
	}
	var growAt, shrinkAt float64 = -1, -1
	for _, e := range reg.Events() {
		switch e.Kind {
		case "resize_grow":
			growAt = e.Time
		case "resize_shrink":
			shrinkAt = e.Time
		}
	}
	if growAt != 1 {
		t.Errorf("grow at t=%v, want 1", growAt)
	}
	if shrinkAt != 5 { // 1 + 0.4·10
		t.Errorf("shrink at t=%v, want 5", shrinkAt)
	}
}

// A job too short to repay the resize churn is rejected at admission and
// never grows.
func TestElasticDeadlineRejectsShortJob(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Elastic: elasticCfg()})
	if err != nil {
		t.Fatal(err)
	}
	// MapFrac·Hold = 0.8 < MinPayoff 1.
	m, err := sim.Run([]model.TimedRequest{timed(0, model.Request{2, 0}, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	elasticConserve(t, m, 1)
	if m.GrowRequests != 1 || m.GrowRejected != 1 || m.Grows != 0 || m.Shrinks != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// A grow with no capacity defers with backoff and expires once no retry
// can pay off before the boundary; the cluster runs at base size.
func TestElasticDeferExpires(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Elastic: elasticCfg(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// {6,6} fills half the plant; its grow {3,3} needs 6 more slots of a
	// plant whose free half is taken by the second {6,6} at the same
	// instant... simpler: one request taking the whole plant.
	m, err := sim.Run([]model.TimedRequest{timed(0, model.Request{12, 12}, 1, 100)})
	if err != nil {
		t.Fatal(err)
	}
	elasticConserve(t, m, 1)
	if m.GrowRequests != 1 || m.Deferred != 1 || m.Grows != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	kinds := map[string]int{}
	for _, e := range reg.Events() {
		kinds[e.Kind]++
	}
	if kinds["resize_defer"] == 0 || kinds["resize_expire"] != 1 {
		t.Errorf("trace kinds = %v, want defers and one expiry", kinds)
	}
}

// A deferred grow is served once a departure frees capacity inside the
// payoff window, and a boundary shrink's freed capacity serves the wait
// queue like a departure would.
func TestElasticDeferredGrowServedAfterDeparture(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Elastic: elasticCfg(), RetainSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	// Request 0 takes half the plant at t=0 and grows immediately (its
	// shrink fires at 0 + 0.4·4 = 1.6). Request 1 arrives at t=1 needing
	// the other half, which the grow is holding — it queues until the
	// shrink's drain at t=1.6. Its own grow then defers (plant full)
	// until request 0 departs at t=4 frees capacity; the retry at t=6.6
	// serves it.
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{6, 6}, 0, 4),
		timed(1, model.Request{6, 6}, 1, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	elasticConserve(t, m, 2)
	if m.Served != 2 || m.GrowRequests != 2 || m.Grows != 2 || m.Shrinks != 2 || m.Deferred != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if len(m.Waits) != 2 || m.Waits[1] != 0.6000000000000001 { // 1.6 − 1
		t.Errorf("waits = %v, want second ≈ 0.6", m.Waits)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A fault that tears down a grown cluster cancels its pending shrink and
// releases the grown VMs with the cluster; the re-served request opens a
// fresh resize lifecycle. Conservation holds throughout.
func TestElasticTeardownCancelsPendingShrink(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Elastic: elasticCfg(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	inject(sim, pair(5, 8, 0, 0, 1, 2)...)
	// {4,0} sits on nodes 0–1, its grow {2,0} lands on node 2 (rack 0
	// peers first); the crash at t=5 kills all three nodes before the
	// shrink boundary at t=9, so the whole cluster dies and is re-placed
	// on the surviving rack — where its fresh grow fits again.
	m, err := sim.Run([]model.TimedRequest{timed(0, model.Request{4, 0}, 1, 20)})
	if err != nil {
		t.Fatal(err)
	}
	elasticConserve(t, m, 1)
	if m.Requeued != 1 || m.Served != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.GrowRequests != 2 || m.Grows != 2 || m.Shrinks != 1 {
		t.Errorf("grow requests=%d grows=%d shrinks=%d, want 2/2/1 (first shrink cancelled by teardown)",
			m.GrowRequests, m.Grows, m.Shrinks)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	alloc := inv.AllocatedMatrix()
	for i := range alloc {
		for j, k := range alloc[i] {
			if k != 0 {
				t.Fatalf("leaked %d VMs of type %d on node %d", k, j, i)
			}
		}
	}
}

func elasticWorkload(t *testing.T, seed int64, n int) []model.TimedRequest {
	t.Helper()
	reqs, err := workload.RandomRequests(seed, n, 2, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	timedReqs, err := workload.TimedRequests(seed+1, reqs, workload.DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	return timedReqs
}

// Randomized sweep: elastic resizing under churn (and, on odd seeds,
// fault injection) must conserve requests and grow ops, leave the
// inventory clean, and keep its invariants.
func TestElasticRandomizedConservation(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tp, inv := plant(t)
		cfg := Config{Elastic: elasticCfg()}
		if seed%2 == 1 {
			cfg.Faults = faults.Config{MTBF: 300, MTTR: 60, Horizon: 2000}
			cfg.FaultSeed = seed
		}
		sim, err := New(tp, inv, &placement.OnlineHeuristic{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := elasticWorkload(t, seed*31, 40)
		m, err := sim.Run(reqs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		elasticConserve(t, m, len(reqs))
		if err := inv.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		alloc := inv.AllocatedMatrix()
		for i := range alloc {
			for j, k := range alloc[i] {
				if k != 0 {
					t.Fatalf("seed %d: leaked %d VMs of type %d on node %d", seed, k, j, i)
				}
			}
		}
	}
}

// Same seed, same config → byte-identical trace and identical metrics.
func TestElasticSameSeedByteIdentical(t *testing.T) {
	run := func() (*Metrics, []byte) {
		tp, inv := plant(t)
		reg := obs.NewRegistry()
		sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Elastic: elasticCfg(), Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(elasticWorkload(t, 17, 60))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteTraceJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return m, buf.Bytes()
	}
	m1, tr1 := run()
	m2, tr2 := run()
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("metrics differ across identical runs:\n%+v\n%+v", m1, m2)
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("traces differ across identical runs")
	}
}

// Elastic mode must never reject a request that static mode would have
// served on the same seed: grows defer while the queue is busy and the
// boundary shrink returns its VMs, so with an unbounded queue the reject
// set (oversized/invalid admission only) is exactly the static one.
func TestElasticNeverWorseAdmission(t *testing.T) {
	rejects := func(elastic bool) (*Metrics, map[int]bool) {
		tp, inv := plant(t)
		reg := obs.NewRegistry()
		cfg := Config{Obs: reg}
		if elastic {
			cfg.Elastic = elasticCfg()
		}
		sim, err := New(tp, inv, &placement.OnlineHeuristic{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(elasticWorkload(t, 23, 80))
		if err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, e := range reg.Events() {
			if e.Kind != "queue_reject" {
				continue
			}
			for _, f := range e.Fields {
				if f.Key == "req" {
					set[f.Val.(int)] = true
				}
			}
		}
		return m, set
	}
	ms, staticSet := rejects(false)
	me, elasticSet := rejects(true)
	for id := range elasticSet {
		if !staticSet[id] {
			t.Errorf("elastic mode rejected request %d that static mode served", id)
		}
	}
	if me.Rejected != ms.Rejected {
		t.Errorf("rejected: elastic %d, static %d", me.Rejected, ms.Rejected)
	}
	if me.Served != ms.Served {
		t.Errorf("served: elastic %d, static %d", me.Served, ms.Served)
	}
}
