// Package cloudsim simulates a cloud serving a stream of virtual-cluster
// requests over time — the paper's operational setting where "requests
// will arrive and their job will finish randomly" (Section V.A). Arrivals
// try to provision immediately through a pluggable placement strategy;
// requests that do not fit wait in the queue of package queue and are
// re-examined whenever a departing cluster releases resources.
//
// Two service modes are supported: per-request (each admitted request is
// placed alone, the paper's online setting) and batch (all admissible
// queued requests are placed together with the global sub-optimization
// algorithm whenever resources free up).
package cloudsim

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/faults"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/migration"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/service"
	"affinitycluster/internal/stats"
	"affinitycluster/internal/topology"
)

// arrivalClass orders lazily scheduled stream arrivals below every other
// event at the same timestamp. Run gets the "arrivals first on ties"
// determinism contract for free by scheduling all arrivals before any
// runtime event; RunStream schedules them one at a time, so the class
// restores the identical pop order.
const arrivalClass = -1

// Config selects queueing and service behaviour.
type Config struct {
	// Policy orders the wait queue.
	Policy queue.Policy
	// QueueCap bounds the wait queue (0 = unbounded); arrivals beyond it
	// are rejected.
	QueueCap int
	// Strict uses head-blocking admission (strict fairness) instead of
	// the paper's take-what-fits getRequests.
	Strict bool
	// Batch places drained queue batches with the global sub-optimization
	// algorithm instead of one-by-one online placement.
	Batch bool
	// Migrate runs the affinity-aware migration planner over the running
	// clusters after every departure, tightening them into freed
	// capacity.
	Migrate bool
	// Migration tunes the planner when Migrate is set.
	Migration migration.Config
	// BatchWindow > 0 delays admission: arrivals queue, and a drain fires
	// BatchWindow seconds after the first queued request, trading wait
	// time for larger batches — the paper notes global optimization
	// becomes possible when users reserve ("tell the cloud provider how
	// long the resources will be occupied") instead of demanding
	// immediate service. Usually combined with Batch.
	BatchWindow float64
	// Faults, when enabled, injects the deterministic crash/repair
	// schedule of package faults into the run: failed nodes lose their
	// capacity and the VMs they host, and affected clusters are
	// recovered by evacuation or requeue (see internal/cloudsim/faults.go).
	// The zero value disables injection and leaves every code path of
	// the fault-free simulation untouched.
	Faults faults.Config
	// FaultSeed seeds the fault schedule, independent of workload seeds.
	FaultSeed int64
	// Recovery tunes the requeue-with-backoff policy for clusters that
	// cannot be evacuated after a failure.
	Recovery RecoveryConfig
	// Serve, when non-nil, routes every placement commit and release
	// through a concurrent placement service (internal/service) instead
	// of mutating the inventory directly: the service's apply loop
	// becomes the inventory's single writer. Only per-request mode is
	// supported (no Batch, Migrate, BatchWindow, or Faults), the placer
	// must be the indexed online heuristic, and the simulator keeps its
	// own wait queue — Topology, Inventory, Online, QueueCap, Ordered,
	// GlobalOpt, and Obs in the supplied config are overridden, so only
	// the batching knobs (BatchSize, MaxWait, IntakeCap) matter here. A
	// served run is byte-identical to a direct one: metrics, registry
	// snapshot, and event trace all match (pinned by TestServeParity).
	Serve *service.Config
	// Elastic, when enabled, resizes every served cluster across its
	// map/shuffle boundary: grow for the map phase, shrink into the
	// shuffle, with deadline-aware admission (see
	// internal/cloudsim/elastic.go). Requires the indexed online
	// heuristic in direct per-request mode; composes with Faults. The
	// zero value leaves the static simulation untouched.
	Elastic ElasticConfig
	// RetainSamples keeps the exact per-request Distances and Waits
	// slices on Metrics — O(served requests) memory, required for exact
	// percentiles and the paper figures' byte-identical sample order. The
	// default (false) populates only the constant-memory streaming
	// sketches, which is what multi-million-request soak replays need.
	RetainSamples bool
	// Sketch bounds the streaming quantile sketches (zero fields take
	// defaults; see SketchConfig).
	Sketch SketchConfig
	// Obs, when non-nil, receives per-decision telemetry: placement
	// events with chosen center and DC, queue admit/reject/wait,
	// migration moves with gain and traffic, plus counters, gauges, and
	// wait/DC histograms. All timestamps are eventsim virtual time, so
	// instrumented runs stay deterministic. Nil costs nothing.
	Obs *obs.Registry
}

// SketchConfig bounds the streaming distance/wait quantile sketches.
// Samples beyond a max are clamped to the top bucket (counted, with the
// quantile pinned at the bound); the bounds only need to cover the range
// where quantile resolution matters.
type SketchConfig struct {
	// DistanceMax is the upper bound of the DC sketch (0 = 200, matching
	// the obs placement histogram's range).
	DistanceMax float64
	// WaitMax is the upper bound of the wait sketch, seconds (0 = 3600).
	WaitMax float64
	// Buckets is the bucket count of both sketches (0 = 400); the
	// worst-case quantile error is one bucket width.
	Buckets int
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.DistanceMax <= 0 {
		c.DistanceMax = 200
	}
	if c.WaitMax <= 0 {
		c.WaitMax = 3600
	}
	if c.Buckets <= 0 {
		c.Buckets = 400
	}
	return c
}

// RecoveryConfig tunes how a cluster torn down by a failure is re-placed
// when in-place evacuation is impossible: direct placement is retried
// with exponential backoff, and once attempts are exhausted the victim is
// parked at the head of the wait queue (keeping its original arrival
// time) so a later drain — typically after the repair — can still serve
// it.
type RecoveryConfig struct {
	// MaxAttempts caps direct re-placement attempts (0 = 4).
	MaxAttempts int
	// Backoff is the delay before the first retry, simulation seconds
	// (0 = 30).
	Backoff float64
	// Factor multiplies the delay after each failed attempt (0 = 2).
	Factor float64
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 30
	}
	if c.Factor <= 0 {
		c.Factor = 2
	}
	return c
}

// Metrics aggregates one simulation run.
type Metrics struct {
	Served   int
	Rejected int // exceeded total plant capacity or queue full
	Unplaced int // admitted but never placed before the run ended
	// Distances and Waits are the exact per-request samples in service
	// order — populated only with Config.RetainSamples (they are
	// O(served) memory).
	Distances []float64 // DC of each served cluster, in service order
	Waits     []float64 // queueing delay of each served request
	// DistanceSketch and WaitSketch summarize the same samples in O(1)
	// memory (fixed-bucket streaming quantiles, always populated); their
	// Value(p) is within ErrorBound of the exact percentile for in-range
	// samples.
	DistanceSketch *stats.Quantile
	WaitSketch     *stats.Quantile
	// UtilizationAvg is the time-weighted mean fraction of plant VM slots
	// occupied between the first arrival and the last departure.
	UtilizationAvg float64
	// TotalDistance sums Distances.
	TotalDistance float64
	// MakeSpan is the virtual time of the last departure.
	MakeSpan float64
	// Migrations counts applied migration moves; MigrationMB is the
	// traffic they generated; MigrationGain is the summed DC reduction.
	Migrations    int
	MigrationMB   float64
	MigrationGain float64
	// FinalDistanceSum is Σ DC over clusters at their departure — with
	// migration enabled it reflects post-migration placements.
	FinalDistanceSum float64
	// Failures counts injected crash/outage events; LostVMs the VMs they
	// destroyed. Evacuations counts degraded clusters rebuilt in place,
	// Requeued clusters torn down for whole-cluster re-placement,
	// Replacements the requeued clusters eventually re-served, and
	// RetriesExhausted victims whose direct re-placement attempts all
	// failed (they fall back to the wait queue). All zero when fault
	// injection is disabled.
	Failures         int
	LostVMs          int
	Evacuations      int
	Requeued         int
	Replacements     int
	RetriesExhausted int
	// Elastic resize accounting, all zero unless Config.Elastic is
	// enabled. Every grow op terminates in exactly one of Grows,
	// GrowRejected, or Deferred, so GrowRequests == Grows + GrowRejected
	// + Deferred at the end of every run (checked, like the request
	// identity Served + Rejected + Unplaced == requests) — mid-job
	// deltas never double-count.
	GrowRequests int // grow ops opened at commission
	Grows        int // grow ops served (VMs added near the center)
	GrowVMs      int // VMs added across all served grows
	Shrinks      int // boundary shrinks executed
	GrowRejected int // grows refused by deadline/oversize admission
	Deferred     int // grows deferred and never served (expired or cluster gone)
}

// Simulator runs one scenario.
type Simulator struct {
	topo   *topology.Topology
	inv    *inventory.Inventory
	placer placement.Placer
	cfg    Config

	engine *eventsim.Engine
	queue  *queue.Queue
	global *placement.GlobalSubOpt
	mig    *migration.Planner

	// Sparse fast path: when the placer is the online heuristic with the
	// pruned-scan policy, a persistent tier index is attached to the
	// inventory at construction and each placement goes through
	// PlaceSparse + AllocateList instead of clone-plan-commit. The results
	// are bitwise identical; only the per-request O(n·m) copies disappear.
	online *placement.OnlineHeuristic
	tidx   *affinity.TierIndex
	sp     affinity.SparseAlloc
	spd    affinity.SparseAlloc // grow-delta scratch, distinct from sp

	// Elastic resize state: resolved config and the per-cluster resize
	// lifecycle records (nil map when elastic mode is off).
	ecfg    ElasticConfig
	elastic map[int]*elasticState

	// serve, when Config.Serve is set, owns the inventory: place and
	// depart go through it and never touch inv's mutators directly.
	serve *service.Service

	arrivals map[model.RequestID]float64
	running  map[int]affinity.Allocation // live clusters by registry ID
	reqOf    map[int]model.TimedRequest  // registry ID → original request
	departEv map[int]*eventsim.Event     // registry ID → scheduled departure
	slot     map[int]int                 // registry ID → index into Distances/Waits (RetainSamples only)
	samples  map[int]servedSample        // registry ID → rollback record, O(active)
	nextRun  int
	metrics  Metrics

	// Stream-replay validation state: the last accepted request ID and
	// arrival time, so RunStream enforces the RequestSource contract in
	// O(1) instead of a seen-ID map.
	streamLastID model.RequestID
	streamLastAt float64

	// Fault state: the precomputed schedule and, per torn-down request,
	// the failure time — consumed when the victim is re-served so
	// time-to-recovery can be observed.
	faultPlan       []faults.Event
	pendingRecovery map[model.RequestID]float64

	drainPending bool // a BatchWindow drain is already scheduled

	// failed aborts the event loop: a release failure means the simulator
	// corrupted its own bookkeeping, so Run stops and surfaces the error
	// instead of panicking mid-callback.
	failed error

	totalSlots int
	usedSlots  int
	lastSample float64
	utilArea   float64

	om simMetrics
}

// simMetrics are the resolved obs handles of one simulator; the zero
// value (uninstrumented) no-ops everywhere.
type simMetrics struct {
	served           *obs.Counter
	rejected         *obs.Counter
	releaseFailures  *obs.Counter
	migrationMoves   *obs.Counter
	migrationAborts  *obs.Counter
	faults           *obs.Counter
	evacuations      *obs.Counter
	replacements     *obs.Counter
	retriesExhausted *obs.Counter
	grows            *obs.Counter
	shrinks          *obs.Counter
	growRejected     *obs.Counter
	growDeferred     *obs.Counter
	running          *obs.Gauge
	usedSlots        *obs.Gauge
	waitSeconds      *obs.Histogram
	placementDC      *obs.Histogram
	recoverySeconds  *obs.Histogram
}

// New builds a simulator over a topology, a live inventory, and a
// placement strategy.
//
//lint:owner singlewriter
func New(tp *topology.Topology, inv *inventory.Inventory, placer placement.Placer, cfg Config) (*Simulator, error) {
	if tp.Nodes() != inv.Nodes() {
		return nil, fmt.Errorf("cloudsim: topology has %d nodes, inventory %d", tp.Nodes(), inv.Nodes())
	}
	if placer == nil {
		return nil, errors.New("cloudsim: nil placer")
	}
	s := &Simulator{
		topo:            tp,
		inv:             inv,
		placer:          placer,
		cfg:             cfg,
		engine:          eventsim.New(),
		queue:           queue.New(cfg.Policy, cfg.QueueCap),
		global:          &placement.GlobalSubOpt{Obs: cfg.Obs},
		mig:             &migration.Planner{Config: cfg.Migration, Obs: cfg.Obs},
		arrivals:        make(map[model.RequestID]float64),
		running:         make(map[int]affinity.Allocation),
		reqOf:           make(map[int]model.TimedRequest),
		departEv:        make(map[int]*eventsim.Event),
		slot:            make(map[int]int),
		samples:         make(map[int]servedSample),
		pendingRecovery: make(map[model.RequestID]float64),
	}
	sk := cfg.Sketch.withDefaults()
	s.metrics.DistanceSketch = stats.NewQuantile(0, sk.DistanceMax, sk.Buckets)
	s.metrics.WaitSketch = stats.NewQuantile(0, sk.WaitMax, sk.Buckets)
	if cfg.Faults.Enabled() {
		plan, err := faults.Plan(cfg.FaultSeed, tp, cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("cloudsim: fault schedule: %w", err)
		}
		s.faultPlan = plan
	}
	s.queue.Instrument(cfg.Obs)
	if cfg.Obs != nil {
		s.om = simMetrics{
			served:           cfg.Obs.Counter("cloudsim.served"),
			rejected:         cfg.Obs.Counter("cloudsim.rejected"),
			releaseFailures:  cfg.Obs.Counter("cloudsim.release_failures"),
			migrationMoves:   cfg.Obs.Counter("cloudsim.migration_moves"),
			migrationAborts:  cfg.Obs.Counter("cloudsim.migration_aborted"),
			running:          cfg.Obs.Gauge("cloudsim.running_clusters"),
			usedSlots:        cfg.Obs.Gauge("cloudsim.used_slots"),
			waitSeconds:      cfg.Obs.Histogram("cloudsim.wait_seconds", 0, 200, 20),
			placementDC:      cfg.Obs.Histogram("cloudsim.placement_dc", 0, 200, 20),
		}
		if cfg.Faults.Enabled() {
			// Fault metrics are registered only for fault scenarios so
			// fault-free runs keep their exact metric snapshots (the
			// handles are nil-safe either way).
			s.om.faults = cfg.Obs.Counter("cloudsim.faults")
			s.om.evacuations = cfg.Obs.Counter("cloudsim.fault_evacuations")
			s.om.replacements = cfg.Obs.Counter("cloudsim.fault_replacements")
			s.om.retriesExhausted = cfg.Obs.Counter("cloudsim.fault_retries_exhausted")
			s.om.recoverySeconds = cfg.Obs.Histogram("cloudsim.recovery_seconds", 0, 1000, 20)
		}
		if cfg.Elastic.Enabled {
			// Same deal for elastic runs: static scenarios keep their
			// exact metric snapshots.
			s.om.grows = cfg.Obs.Counter("cloudsim.resize_grows")
			s.om.shrinks = cfg.Obs.Counter("cloudsim.resize_shrinks")
			s.om.growRejected = cfg.Obs.Counter("cloudsim.resize_rejected")
			s.om.growDeferred = cfg.Obs.Counter("cloudsim.resize_deferred")
		}
	}
	caps := inv.CapacityMatrix()
	for i := range caps {
		s.totalSlots += model.Sum(caps[i])
	}
	if s.totalSlots == 0 {
		return nil, errors.New("cloudsim: inventory has zero capacity")
	}
	if cfg.Serve != nil {
		if cfg.Batch || cfg.Migrate || cfg.BatchWindow > 0 || cfg.Faults.Enabled() || cfg.Elastic.Enabled {
			return nil, errors.New("cloudsim: Serve supports per-request mode only (no Batch, Migrate, BatchWindow, Faults, or Elastic)")
		}
		oh, ok := placer.(*placement.OnlineHeuristic)
		if !ok || oh.Policy != placement.ScanAllCenters {
			return nil, fmt.Errorf("cloudsim: Serve requires the indexed online heuristic, got %q", placer.Name())
		}
		sc := *cfg.Serve
		sc.Topology, sc.Inventory, sc.Online = tp, inv, oh
		// The simulator's own queue does the waiting (its drain is driven
		// by virtual time); the service answers non-fitting placements
		// immediately. Telemetry stays with the simulator so a served run's
		// registry matches a direct run's byte for byte.
		sc.QueueCap = -1
		sc.Ordered, sc.GlobalOpt = false, false
		sc.Obs = nil
		svc, err := service.New(sc)
		if err != nil {
			return nil, fmt.Errorf("cloudsim: starting placement service: %w", err)
		}
		s.serve = svc
		return s, nil
	}
	if oh, ok := placer.(*placement.OnlineHeuristic); ok && oh.Policy == placement.ScanAllCenters {
		idx, err := inv.AttachTierIndex(tp)
		if err != nil {
			return nil, fmt.Errorf("cloudsim: attaching tier index: %w", err)
		}
		s.online, s.tidx = oh, idx
	}
	if cfg.Elastic.Enabled {
		if cfg.Batch || cfg.Migrate || cfg.BatchWindow > 0 {
			return nil, errors.New("cloudsim: Elastic supports direct per-request mode only (no Batch, Migrate, or BatchWindow)")
		}
		if err := cfg.Elastic.validate(); err != nil {
			return nil, err
		}
		if s.tidx == nil {
			return nil, fmt.Errorf("cloudsim: Elastic requires the indexed online heuristic, got %q", placer.Name())
		}
		s.ecfg = cfg.Elastic.withDefaults()
		s.elastic = make(map[int]*elasticState)
	}
	return s, nil
}

// ServiceStats returns the placement service's activity counters and
// whether Serve mode is active. The counters are valid during and after
// Run (they are atomics owned by the service).
func (s *Simulator) ServiceStats() (service.Stats, bool) {
	if s.serve == nil {
		return service.Stats{}, false
	}
	return s.serve.Stats(), true
}

// Run feeds the timed requests through the simulated cloud and returns
// the aggregate metrics once all work has drained. A bookkeeping failure
// (a departure whose release does not fit the inventory) aborts the run
// and is returned as an error instead of panicking.
//
//lint:owner singlewriter
func (s *Simulator) Run(reqs []model.TimedRequest) (m *Metrics, err error) {
	if s.serve != nil {
		// The simulator owns the service's lifetime: stop its goroutines
		// on every exit path. A Close failure on an otherwise clean run
		// is surfaced; ErrClosed just means a prior Run already stopped it.
		defer func() {
			if cerr := s.serve.Close(); cerr != nil && !errors.Is(cerr, service.ErrClosed) && err == nil {
				m, err = nil, fmt.Errorf("cloudsim: closing placement service: %w", cerr)
			}
		}()
	}
	seen := make(map[model.RequestID]bool, len(reqs))
	for _, r := range reqs {
		r := r
		if !validRequest(r) || seen[r.ID] {
			// Malformed or duplicate input is accounted for, not silently
			// dropped, so conservation still holds over the input slice.
			s.reject(r, 0, "invalid")
			continue
		}
		seen[r.ID] = true
		if _, err := s.engine.At(r.Arrival, func(now float64) { s.arrive(r, now) }); err != nil {
			return nil, fmt.Errorf("cloudsim: scheduling arrival of request %d: %w", r.ID, err)
		}
	}
	// Fault events are scheduled after all arrivals so that, at equal
	// timestamps, arrivals are processed first — part of the determinism
	// contract.
	if err := s.scheduleFaults(); err != nil {
		return nil, err
	}
	return s.finish()
}

// servedSample is the per-active-cluster record needed to roll a served
// cluster back out of the metrics when a fault tears it down. Unlike the
// retained slices it is deleted at departure, so fault recovery stays
// O(active) at any trace length.
type servedSample struct{ d, wait float64 }

// RunStream replays requests pulled lazily from src — a trace.Reader, a
// workload.OpenLoop, or any model.RequestSource — holding exactly one
// pending arrival in the event heap instead of all of them, so a
// multi-million-request replay runs in O(active clusters) memory. The
// source must honor the RequestSource contract (strictly increasing IDs,
// non-decreasing arrivals); violating requests are counted as rejected,
// the same accounting Run applies to malformed slice entries. On a valid
// sorted input, RunStream and Run produce identical metrics: stream
// arrivals are scheduled at arrivalClass, which reproduces Run's
// "arrivals first at equal timestamps" pop order (pinned by
// TestRunStreamMatchesRun).
//
//lint:owner singlewriter
func (s *Simulator) RunStream(src model.RequestSource) (m *Metrics, err error) {
	if s.serve != nil {
		defer func() {
			if cerr := s.serve.Close(); cerr != nil && !errors.Is(cerr, service.ErrClosed) && err == nil {
				m, err = nil, fmt.Errorf("cloudsim: closing placement service: %w", cerr)
			}
		}()
	}
	if err := s.scheduleFaults(); err != nil {
		return nil, err
	}
	s.streamLastID, s.streamLastAt = -1, 0
	if err := s.scheduleNextArrival(src); err != nil {
		return nil, err
	}
	return s.finish()
}

// scheduleNextArrival pulls one request from the stream and schedules
// its arrival; the arrival callback processes the request and then pulls
// the next one. Contract-violating requests are rejected and skipped
// here, so the engine only ever sees schedulable arrivals.
func (s *Simulator) scheduleNextArrival(src model.RequestSource) error {
	for {
		r, ok, err := src.Next()
		if err != nil {
			return fmt.Errorf("cloudsim: pulling next arrival: %w", err)
		}
		if !ok {
			return nil
		}
		if !validRequest(r) || r.ID <= s.streamLastID || r.Arrival < s.streamLastAt {
			s.reject(r, s.engine.Now(), "invalid")
			continue
		}
		s.streamLastID, s.streamLastAt = r.ID, r.Arrival
		_, err = s.engine.AtClass(r.Arrival, arrivalClass, func(now float64) {
			s.arrive(r, now)
			if err := s.scheduleNextArrival(src); err != nil {
				s.fail(err)
			}
		})
		if err != nil {
			return fmt.Errorf("cloudsim: scheduling arrival of request %d: %w", r.ID, err)
		}
		return nil
	}
}

// scheduleFaults enqueues the precomputed fault plan. Faults run at
// class 0, so they lose timestamp ties against pre-scheduled arrivals
// (Run, by seq) and stream arrivals (RunStream, by class) alike.
func (s *Simulator) scheduleFaults() error {
	for _, ev := range s.faultPlan {
		ev := ev
		var err error
		if ev.Kind == faults.Repair {
			_, err = s.engine.At(ev.Time, func(now float64) { s.repair(ev, now) })
		} else {
			_, err = s.engine.At(ev.Time, func(now float64) { s.crash(ev, now) })
		}
		if err != nil {
			return fmt.Errorf("cloudsim: scheduling fault %d: %w", ev.FailureID, err)
		}
	}
	return nil
}

// finish drives the event loop to completion and closes out the metrics
// — the shared epilogue of Run and RunStream.
func (s *Simulator) finish() (*Metrics, error) {
	for s.failed == nil && s.engine.Step() {
	}
	if s.failed != nil {
		return nil, s.failed
	}
	s.sampleUtilization(s.engine.Now())
	s.metrics.MakeSpan = s.engine.Now()
	if s.metrics.MakeSpan > 0 {
		s.metrics.UtilizationAvg = s.utilArea / (s.metrics.MakeSpan * float64(s.totalSlots))
	}
	s.metrics.Unplaced = s.queue.Len()
	// Every admitted request must end up served, rejected, or still
	// queued; a leftover arrival entry would mean one was silently lost.
	if len(s.arrivals) != s.metrics.Unplaced {
		return nil, fmt.Errorf("cloudsim: accounting leak: %d pending arrival entries, %d unplaced requests",
			len(s.arrivals), s.metrics.Unplaced)
	}
	// The matching identity for mid-job deltas: every grow op must have
	// terminated, and in exactly one way.
	if s.elastic != nil {
		if len(s.elastic) != 0 {
			return nil, fmt.Errorf("cloudsim: accounting leak: %d clusters hold unresolved resize state", len(s.elastic))
		}
		m := &s.metrics
		if m.Grows+m.GrowRejected+m.Deferred != m.GrowRequests {
			return nil, fmt.Errorf("cloudsim: resize accounting leak: %d grown + %d rejected + %d deferred != %d requested",
				m.Grows, m.GrowRejected, m.Deferred, m.GrowRequests)
		}
	}
	return &s.metrics, nil
}

// validRequest filters inputs the engine or the accounting cannot
// represent: non-finite or negative times and negative demand entries.
func validRequest(r model.TimedRequest) bool {
	for _, t := range []float64{r.Arrival, r.Hold} {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return false
		}
	}
	for _, v := range r.Vector {
		if v < 0 {
			return false
		}
	}
	return true
}

// sampleUtilization integrates slot usage up to now.
func (s *Simulator) sampleUtilization(now float64) {
	dt := now - s.lastSample
	if dt > 0 {
		s.utilArea += float64(s.usedSlots) * dt
		s.lastSample = now
	}
}

func (s *Simulator) arrive(r model.TimedRequest, now float64) {
	s.arrivals[r.ID] = now
	if !s.inv.CanEverSatisfy(r.Vector) {
		s.reject(r, now, "oversized")
		return
	}
	if s.cfg.BatchWindow > 0 {
		// Reservation-style admission: accumulate a batch, drain later.
		if err := s.queue.Enqueue(r); err != nil {
			s.reject(r, now, "queue_full")
			return
		}
		s.cfg.Obs.Emit("queue_admit", now, obs.F("req", int(r.ID)))
		if !s.drainPending {
			s.drainPending = true
			_, err := s.engine.After(s.cfg.BatchWindow, func(at float64) {
				s.drainPending = false
				s.drain(at)
			})
			if err != nil {
				s.fail(fmt.Errorf("cloudsim: scheduling batch-window drain: %w", err))
			}
		}
		return
	}
	if s.inv.CanSatisfy(r.Vector) && s.queue.Len() == 0 {
		if s.place(r, now) {
			return
		}
	}
	if err := s.queue.Enqueue(r); err != nil {
		s.reject(r, now, "queue_full")
		return
	}
	s.cfg.Obs.Emit("queue_admit", now, obs.F("req", int(r.ID)))
}

// fail aborts the run at the next event-loop step, keeping the first
// error.
func (s *Simulator) fail(err error) {
	if s.failed == nil {
		s.failed = err
	}
}

// reject records one turned-away arrival.
func (s *Simulator) reject(r model.TimedRequest, now float64, reason string) {
	delete(s.arrivals, r.ID)
	s.metrics.Rejected++
	s.om.rejected.Inc()
	s.cfg.Obs.Emit("queue_reject", now, obs.F("req", int(r.ID)), obs.F("reason", reason))
}

// place provisions a single request right now; returns false if the
// placer could not fit it (so it should queue instead). Only the
// ErrInsufficient sentinels mean "does not fit" — any other placer or
// inventory error is a bug and aborts the run instead of being
// misread as a full cloud.
func (s *Simulator) place(r model.TimedRequest, now float64) bool {
	if s.serve != nil {
		pl, err := s.serve.Place(r.Vector)
		if err != nil {
			if !errors.Is(err, placement.ErrInsufficient) {
				s.fail(fmt.Errorf("cloudsim: service placement of request %d: %w", r.ID, err))
			}
			return false
		}
		sp := affinity.SparseAlloc{NumNodes: s.topo.Nodes(), NumTypes: len(r.Vector), Entries: pl.Entries}
		s.commission(r, sp.ToDense(), pl.DC, pl.Center, now)
		return true
	}
	if s.tidx != nil && len(r.Vector) == s.tidx.Types() {
		d, center, err := s.online.PlaceSparse(s.tidx, r.Vector, &s.sp)
		if err != nil {
			if !errors.Is(err, placement.ErrInsufficient) {
				s.fail(fmt.Errorf("cloudsim: placer %s on request %d: %w", s.placer.Name(), r.ID, err))
			}
			return false
		}
		if err := s.inv.AllocateList(s.sp.Entries); err != nil {
			if !errors.Is(err, inventory.ErrInsufficient) {
				s.fail(fmt.Errorf("cloudsim: allocating request %d: %w", r.ID, err))
			}
			return false
		}
		s.commission(r, s.sp.ToDense(), d, center, now)
		return true
	}
	alloc, err := s.placer.Place(s.topo, s.inv.Remaining(), r.Vector)
	if err != nil {
		if !errors.Is(err, placement.ErrInsufficient) {
			s.fail(fmt.Errorf("cloudsim: placer %s on request %d: %w", s.placer.Name(), r.ID, err))
		}
		return false
	}
	if err := s.inv.Allocate([][]int(alloc)); err != nil {
		if !errors.Is(err, inventory.ErrInsufficient) {
			s.fail(fmt.Errorf("cloudsim: allocating request %d: %w", r.ID, err))
		}
		return false
	}
	d, center := alloc.Distance(s.topo)
	s.commission(r, alloc, d, center, now)
	return true
}

// commission records a served cluster and schedules its departure. The
// caller supplies the cluster's data center distance and central node —
// the sparse path gets them from the placement itself instead of
// recomputing over the dense matrix.
func (s *Simulator) commission(r model.TimedRequest, alloc affinity.Allocation, d float64, center topology.NodeID, now float64) {
	s.sampleUtilization(now)
	s.usedSlots += alloc.TotalVMs()
	wait := now - s.arrivals[r.ID]
	delete(s.arrivals, r.ID)
	s.metrics.Served++
	id := s.nextRun
	s.nextRun++
	s.running[id] = alloc
	s.reqOf[id] = r
	s.samples[id] = servedSample{d: d, wait: wait}
	s.metrics.DistanceSketch.Observe(d)
	s.metrics.WaitSketch.Observe(wait)
	if s.cfg.RetainSamples {
		s.slot[id] = len(s.metrics.Distances)
		s.metrics.Distances = append(s.metrics.Distances, d)
		s.metrics.Waits = append(s.metrics.Waits, wait)
	}
	s.metrics.TotalDistance += d
	s.om.served.Inc()
	s.om.waitSeconds.Observe(wait)
	s.om.placementDC.Observe(d)
	s.om.running.Set(float64(len(s.running)))
	s.om.usedSlots.Set(float64(s.usedSlots))
	s.cfg.Obs.Emit("place", now,
		obs.F("req", int(r.ID)),
		obs.F("center", int(center)),
		obs.F("dc", d),
		obs.F("vms", alloc.TotalVMs()),
		obs.F("wait", wait))
	if failAt, ok := s.pendingRecovery[r.ID]; ok {
		// A cluster torn down by a failure is back in service.
		delete(s.pendingRecovery, r.ID)
		s.metrics.Replacements++
		s.om.replacements.Inc()
		s.om.recoverySeconds.Observe(now - failAt)
		s.cfg.Obs.Emit("recover", now,
			obs.F("req", int(r.ID)),
			obs.F("method", "requeue"),
			obs.F("delay", now-failAt))
	}
	ev, err := s.engine.After(r.Hold, func(at float64) { s.depart(id, at) })
	if err != nil {
		s.fail(fmt.Errorf("cloudsim: scheduling departure of cluster %d: %w", id, err))
		return
	}
	s.departEv[id] = ev
	if s.elastic != nil {
		// The map phase starts now: open the cluster's resize lifecycle.
		s.requestGrow(id, r, now)
	}
}

func (s *Simulator) depart(id int, now float64) {
	s.cancelElastic(id, now, "departed")
	alloc := s.running[id]
	delete(s.running, id)
	delete(s.departEv, id)
	delete(s.slot, id)
	delete(s.samples, id)
	s.sampleUtilization(now)
	s.usedSlots -= alloc.TotalVMs()
	d, _ := alloc.Distance(s.topo)
	s.metrics.FinalDistanceSum += d
	s.om.running.Set(float64(len(s.running)))
	s.om.usedSlots.Set(float64(s.usedSlots))
	s.cfg.Obs.Emit("depart", now, obs.F("req", int(s.reqOf[id].ID)), obs.F("dc", d))
	delete(s.reqOf, id)
	var err error
	if s.serve != nil {
		err = s.serve.Release(alloc.Sparse())
	} else {
		err = s.inv.Release([][]int(alloc))
	}
	if err != nil {
		// A release failure means the simulator corrupted its own
		// bookkeeping. Surface it through Run's error return (and the
		// obs counter) instead of panicking the whole process; Run's
		// event loop stops at the next step.
		s.om.releaseFailures.Inc()
		s.cfg.Obs.Emit("release_failure", now, obs.F("cluster", id), obs.F("error", err.Error()))
		if s.failed == nil {
			s.failed = fmt.Errorf("cloudsim: release of cluster %d at t=%v failed: %w", id, now, err)
		}
		return
	}
	s.drain(now)
	if s.cfg.Migrate {
		s.migrate(now)
	}
}

// migrate tightens the running clusters into freed capacity. Relocations
// are reflected in the inventory with Move; swaps are capacity-neutral
// and need no inventory change.
func (s *Simulator) migrate(now float64) {
	if len(s.running) == 0 {
		return
	}
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	// Deterministic order for reproducibility.
	slices.Sort(ids)
	clusters := make([]affinity.Allocation, len(ids))
	for i, id := range ids {
		clusters[i] = s.running[id]
	}
	plan, err := s.mig.Plan(s.topo, s.inv.RemainingView(), clusters)
	if err != nil || len(plan.Moves) == 0 {
		return
	}
	// The plan was computed against the current (single-threaded) state,
	// so it applies cleanly: relocations go through the inventory (which
	// tracks per-node occupancy), swaps are capacity-neutral.
	for _, mv := range plan.Moves {
		c := clusters[mv.Cluster]
		switch mv.Kind {
		case migration.Relocate:
			if err := s.inv.Move(mv.From, mv.To, mv.Type); err != nil {
				s.om.migrationAborts.Inc()
				s.cfg.Obs.Emit("migration_abort", now,
					obs.F("cluster", ids[mv.Cluster]),
					obs.F("error", err.Error()))
				return
			}
			c.Remove(mv.From, mv.Type)
			c.Add(mv.To, mv.Type)
		case migration.Swap:
			peer := clusters[mv.Peer]
			c.Remove(mv.From, mv.Type)
			c.Add(mv.To, mv.Type)
			peer.Remove(mv.To, mv.Type)
			peer.Add(mv.From, mv.Type)
		}
		s.metrics.Migrations++
		s.metrics.MigrationMB += mv.CostMB
		s.metrics.MigrationGain += mv.Gain
		s.om.migrationMoves.Inc()
		s.cfg.Obs.Emit("migrate", now,
			obs.F("move", mv.Kind.String()),
			obs.F("from", int(mv.From)),
			obs.F("to", int(mv.To)),
			obs.F("type", int(mv.Type)),
			obs.F("gain", mv.Gain),
			obs.F("cost_mb", mv.CostMB))
	}
}

// drain admits whatever the queue can serve with the freed resources.
func (s *Simulator) drain(now float64) {
	var taken []model.TimedRequest
	if s.cfg.Strict {
		taken = s.queue.GetRequestsStrict(s.inv.Available())
	} else {
		taken = s.queue.GetRequests(s.inv.Available())
	}
	if len(taken) == 0 {
		return
	}
	if s.cfg.Batch && len(taken) > 1 {
		vecs := make([]model.Request, len(taken))
		for i, r := range taken {
			vecs[i] = r.Vector
		}
		res, err := s.global.PlaceBatch(s.topo, s.inv.RemainingView(), vecs)
		if err == nil {
			for i, alloc := range res.Allocs {
				if alloc == nil {
					// Lost a race against capacity; requeue.
					s.requeue(taken[i], now)
					continue
				}
				if err := s.inv.Allocate([][]int(alloc)); err != nil {
					s.requeue(taken[i], now)
					continue
				}
				d, center := alloc.Distance(s.topo)
				s.commission(taken[i], alloc, d, center, now)
			}
			return
		}
	}
	for _, r := range taken {
		if !s.place(r, now) {
			s.requeue(r, now)
		}
	}
}

// requeue returns a not-served request to the tail of the wait queue. A
// bounded queue can refuse it (capacity was consumed between the take
// and the put-back); that request is then counted as rejected instead
// of silently vanishing from the accounting.
func (s *Simulator) requeue(r model.TimedRequest, now float64) {
	if err := s.queue.Enqueue(r); err != nil {
		delete(s.pendingRecovery, r.ID)
		s.reject(r, now, "requeue_full")
	}
}
