// Package cloudsim simulates a cloud serving a stream of virtual-cluster
// requests over time — the paper's operational setting where "requests
// will arrive and their job will finish randomly" (Section V.A). Arrivals
// try to provision immediately through a pluggable placement strategy;
// requests that do not fit wait in the queue of package queue and are
// re-examined whenever a departing cluster releases resources.
//
// Two service modes are supported: per-request (each admitted request is
// placed alone, the paper's online setting) and batch (all admissible
// queued requests are placed together with the global sub-optimization
// algorithm whenever resources free up).
package cloudsim

import (
	"errors"
	"fmt"
	"slices"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/migration"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
)

// Config selects queueing and service behaviour.
type Config struct {
	// Policy orders the wait queue.
	Policy queue.Policy
	// QueueCap bounds the wait queue (0 = unbounded); arrivals beyond it
	// are rejected.
	QueueCap int
	// Strict uses head-blocking admission (strict fairness) instead of
	// the paper's take-what-fits getRequests.
	Strict bool
	// Batch places drained queue batches with the global sub-optimization
	// algorithm instead of one-by-one online placement.
	Batch bool
	// Migrate runs the affinity-aware migration planner over the running
	// clusters after every departure, tightening them into freed
	// capacity.
	Migrate bool
	// Migration tunes the planner when Migrate is set.
	Migration migration.Config
	// BatchWindow > 0 delays admission: arrivals queue, and a drain fires
	// BatchWindow seconds after the first queued request, trading wait
	// time for larger batches — the paper notes global optimization
	// becomes possible when users reserve ("tell the cloud provider how
	// long the resources will be occupied") instead of demanding
	// immediate service. Usually combined with Batch.
	BatchWindow float64
	// Obs, when non-nil, receives per-decision telemetry: placement
	// events with chosen center and DC, queue admit/reject/wait,
	// migration moves with gain and traffic, plus counters, gauges, and
	// wait/DC histograms. All timestamps are eventsim virtual time, so
	// instrumented runs stay deterministic. Nil costs nothing.
	Obs *obs.Registry
}

// Metrics aggregates one simulation run.
type Metrics struct {
	Served    int
	Rejected  int       // exceeded total plant capacity or queue full
	Unplaced  int       // admitted but never placed before the run ended
	Distances []float64 // DC of each served cluster, in service order
	Waits     []float64 // queueing delay of each served request
	// UtilizationAvg is the time-weighted mean fraction of plant VM slots
	// occupied between the first arrival and the last departure.
	UtilizationAvg float64
	// TotalDistance sums Distances.
	TotalDistance float64
	// MakeSpan is the virtual time of the last departure.
	MakeSpan float64
	// Migrations counts applied migration moves; MigrationMB is the
	// traffic they generated; MigrationGain is the summed DC reduction.
	Migrations    int
	MigrationMB   float64
	MigrationGain float64
	// FinalDistanceSum is Σ DC over clusters at their departure — with
	// migration enabled it reflects post-migration placements.
	FinalDistanceSum float64
}

// Simulator runs one scenario.
type Simulator struct {
	topo   *topology.Topology
	inv    *inventory.Inventory
	placer placement.Placer
	cfg    Config

	engine *eventsim.Engine
	queue  *queue.Queue
	global *placement.GlobalSubOpt
	mig    *migration.Planner

	arrivals map[model.RequestID]float64
	running  map[int]affinity.Allocation // live clusters by registry ID
	reqOf    map[int]model.RequestID     // registry ID → original request
	nextRun  int
	metrics  Metrics

	drainPending bool // a BatchWindow drain is already scheduled

	// failed aborts the event loop: a release failure means the simulator
	// corrupted its own bookkeeping, so Run stops and surfaces the error
	// instead of panicking mid-callback.
	failed error

	totalSlots int
	usedSlots  int
	lastSample float64
	utilArea   float64

	om simMetrics
}

// simMetrics are the resolved obs handles of one simulator; the zero
// value (uninstrumented) no-ops everywhere.
type simMetrics struct {
	served          *obs.Counter
	rejected        *obs.Counter
	releaseFailures *obs.Counter
	migrationMoves  *obs.Counter
	migrationAborts *obs.Counter
	running         *obs.Gauge
	usedSlots       *obs.Gauge
	waitSeconds     *obs.Histogram
	placementDC     *obs.Histogram
}

// New builds a simulator over a topology, a live inventory, and a
// placement strategy.
func New(tp *topology.Topology, inv *inventory.Inventory, placer placement.Placer, cfg Config) (*Simulator, error) {
	if tp.Nodes() != inv.Nodes() {
		return nil, fmt.Errorf("cloudsim: topology has %d nodes, inventory %d", tp.Nodes(), inv.Nodes())
	}
	if placer == nil {
		return nil, errors.New("cloudsim: nil placer")
	}
	s := &Simulator{
		topo:     tp,
		inv:      inv,
		placer:   placer,
		cfg:      cfg,
		engine:   eventsim.New(),
		queue:    queue.New(cfg.Policy, cfg.QueueCap),
		global:   &placement.GlobalSubOpt{Obs: cfg.Obs},
		mig:      &migration.Planner{Config: cfg.Migration, Obs: cfg.Obs},
		arrivals: make(map[model.RequestID]float64),
		running:  make(map[int]affinity.Allocation),
		reqOf:    make(map[int]model.RequestID),
	}
	s.queue.Instrument(cfg.Obs)
	if cfg.Obs != nil {
		s.om = simMetrics{
			served:          cfg.Obs.Counter("cloudsim.served"),
			rejected:        cfg.Obs.Counter("cloudsim.rejected"),
			releaseFailures: cfg.Obs.Counter("cloudsim.release_failures"),
			migrationMoves:  cfg.Obs.Counter("cloudsim.migration_moves"),
			migrationAborts: cfg.Obs.Counter("cloudsim.migration_aborted"),
			running:         cfg.Obs.Gauge("cloudsim.running_clusters"),
			usedSlots:       cfg.Obs.Gauge("cloudsim.used_slots"),
			waitSeconds:     cfg.Obs.Histogram("cloudsim.wait_seconds", 0, 200, 20),
			placementDC:     cfg.Obs.Histogram("cloudsim.placement_dc", 0, 200, 20),
		}
	}
	caps := inv.CapacityMatrix()
	for i := range caps {
		s.totalSlots += model.Sum(caps[i])
	}
	if s.totalSlots == 0 {
		return nil, errors.New("cloudsim: inventory has zero capacity")
	}
	return s, nil
}

// Run feeds the timed requests through the simulated cloud and returns
// the aggregate metrics once all work has drained. A bookkeeping failure
// (a departure whose release does not fit the inventory) aborts the run
// and is returned as an error instead of panicking.
func (s *Simulator) Run(reqs []model.TimedRequest) (*Metrics, error) {
	for _, r := range reqs {
		r := r
		if _, err := s.engine.At(r.Arrival, func(now float64) { s.arrive(r, now) }); err != nil {
			return nil, fmt.Errorf("cloudsim: scheduling arrival of request %d: %w", r.ID, err)
		}
	}
	for s.failed == nil && s.engine.Step() {
	}
	if s.failed != nil {
		return nil, s.failed
	}
	s.sampleUtilization(s.engine.Now())
	s.metrics.MakeSpan = s.engine.Now()
	if s.metrics.MakeSpan > 0 {
		s.metrics.UtilizationAvg = s.utilArea / (s.metrics.MakeSpan * float64(s.totalSlots))
	}
	s.metrics.Unplaced = s.queue.Len()
	return &s.metrics, nil
}

// sampleUtilization integrates slot usage up to now.
func (s *Simulator) sampleUtilization(now float64) {
	dt := now - s.lastSample
	if dt > 0 {
		s.utilArea += float64(s.usedSlots) * dt
		s.lastSample = now
	}
}

func (s *Simulator) arrive(r model.TimedRequest, now float64) {
	s.arrivals[r.ID] = now
	if !s.inv.CanEverSatisfy(r.Vector) {
		s.reject(r, now, "oversized")
		return
	}
	if s.cfg.BatchWindow > 0 {
		// Reservation-style admission: accumulate a batch, drain later.
		if err := s.queue.Enqueue(r); err != nil {
			s.reject(r, now, "queue_full")
			return
		}
		s.cfg.Obs.Emit("queue_admit", now, obs.F("req", int(r.ID)))
		if !s.drainPending {
			s.drainPending = true
			_, _ = s.engine.After(s.cfg.BatchWindow, func(at float64) {
				s.drainPending = false
				s.drain(at)
			})
		}
		return
	}
	if s.inv.CanSatisfy(r.Vector) && s.queue.Len() == 0 {
		if s.place(r, now) {
			return
		}
	}
	if err := s.queue.Enqueue(r); err != nil {
		s.reject(r, now, "queue_full")
		return
	}
	s.cfg.Obs.Emit("queue_admit", now, obs.F("req", int(r.ID)))
}

// reject records one turned-away arrival.
func (s *Simulator) reject(r model.TimedRequest, now float64, reason string) {
	s.metrics.Rejected++
	s.om.rejected.Inc()
	s.cfg.Obs.Emit("queue_reject", now, obs.F("req", int(r.ID)), obs.F("reason", reason))
}

// place provisions a single request right now; returns false if the
// placer could not fit it (so it should queue instead).
func (s *Simulator) place(r model.TimedRequest, now float64) bool {
	alloc, err := s.placer.Place(s.topo, s.inv.Remaining(), r.Vector)
	if err != nil {
		return false
	}
	if err := s.inv.Allocate([][]int(alloc)); err != nil {
		return false
	}
	s.commission(r, alloc, now)
	return true
}

// commission records a served cluster and schedules its departure.
func (s *Simulator) commission(r model.TimedRequest, alloc affinity.Allocation, now float64) {
	s.sampleUtilization(now)
	s.usedSlots += alloc.TotalVMs()
	d, center := alloc.Distance(s.topo)
	wait := now - s.arrivals[r.ID]
	s.metrics.Served++
	s.metrics.Distances = append(s.metrics.Distances, d)
	s.metrics.TotalDistance += d
	s.metrics.Waits = append(s.metrics.Waits, wait)
	id := s.nextRun
	s.nextRun++
	s.running[id] = alloc
	s.reqOf[id] = r.ID
	s.om.served.Inc()
	s.om.waitSeconds.Observe(wait)
	s.om.placementDC.Observe(d)
	s.om.running.Set(float64(len(s.running)))
	s.om.usedSlots.Set(float64(s.usedSlots))
	s.cfg.Obs.Emit("place", now,
		obs.F("req", int(r.ID)),
		obs.F("center", int(center)),
		obs.F("dc", d),
		obs.F("vms", alloc.TotalVMs()),
		obs.F("wait", wait))
	_, _ = s.engine.After(r.Hold, func(at float64) { s.depart(id, at) })
}

func (s *Simulator) depart(id int, now float64) {
	alloc := s.running[id]
	delete(s.running, id)
	s.sampleUtilization(now)
	s.usedSlots -= alloc.TotalVMs()
	d, _ := alloc.Distance(s.topo)
	s.metrics.FinalDistanceSum += d
	s.om.running.Set(float64(len(s.running)))
	s.om.usedSlots.Set(float64(s.usedSlots))
	s.cfg.Obs.Emit("depart", now, obs.F("req", int(s.reqOf[id])), obs.F("dc", d))
	delete(s.reqOf, id)
	if err := s.inv.Release([][]int(alloc)); err != nil {
		// A release failure means the simulator corrupted its own
		// bookkeeping. Surface it through Run's error return (and the
		// obs counter) instead of panicking the whole process; Run's
		// event loop stops at the next step.
		s.om.releaseFailures.Inc()
		s.cfg.Obs.Emit("release_failure", now, obs.F("cluster", id), obs.F("error", err.Error()))
		if s.failed == nil {
			s.failed = fmt.Errorf("cloudsim: release of cluster %d at t=%v failed: %w", id, now, err)
		}
		return
	}
	s.drain(now)
	if s.cfg.Migrate {
		s.migrate(now)
	}
}

// migrate tightens the running clusters into freed capacity. Relocations
// are reflected in the inventory with Move; swaps are capacity-neutral
// and need no inventory change.
func (s *Simulator) migrate(now float64) {
	if len(s.running) == 0 {
		return
	}
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	// Deterministic order for reproducibility.
	slices.Sort(ids)
	clusters := make([]affinity.Allocation, len(ids))
	for i, id := range ids {
		clusters[i] = s.running[id]
	}
	plan, err := s.mig.Plan(s.topo, s.inv.Remaining(), clusters)
	if err != nil || len(plan.Moves) == 0 {
		return
	}
	// The plan was computed against the current (single-threaded) state,
	// so it applies cleanly: relocations go through the inventory (which
	// tracks per-node occupancy), swaps are capacity-neutral.
	for _, mv := range plan.Moves {
		c := clusters[mv.Cluster]
		switch mv.Kind {
		case migration.Relocate:
			if err := s.inv.Move(mv.From, mv.To, mv.Type); err != nil {
				s.om.migrationAborts.Inc()
				return
			}
			c.Remove(mv.From, mv.Type)
			c.Add(mv.To, mv.Type)
		case migration.Swap:
			peer := clusters[mv.Peer]
			c.Remove(mv.From, mv.Type)
			c.Add(mv.To, mv.Type)
			peer.Remove(mv.To, mv.Type)
			peer.Add(mv.From, mv.Type)
		}
		s.metrics.Migrations++
		s.metrics.MigrationMB += mv.CostMB
		s.metrics.MigrationGain += mv.Gain
		s.om.migrationMoves.Inc()
		s.cfg.Obs.Emit("migrate", now,
			obs.F("move", mv.Kind.String()),
			obs.F("from", int(mv.From)),
			obs.F("to", int(mv.To)),
			obs.F("type", int(mv.Type)),
			obs.F("gain", mv.Gain),
			obs.F("cost_mb", mv.CostMB))
	}
}

// drain admits whatever the queue can serve with the freed resources.
func (s *Simulator) drain(now float64) {
	var taken []model.TimedRequest
	if s.cfg.Strict {
		taken = s.queue.GetRequestsStrict(s.inv.Available())
	} else {
		taken = s.queue.GetRequests(s.inv.Available())
	}
	if len(taken) == 0 {
		return
	}
	if s.cfg.Batch && len(taken) > 1 {
		vecs := make([]model.Request, len(taken))
		for i, r := range taken {
			vecs[i] = r.Vector
		}
		res, err := s.global.PlaceBatch(s.topo, s.inv.Remaining(), vecs)
		if err == nil {
			for i, alloc := range res.Allocs {
				if alloc == nil {
					// Lost a race against capacity; requeue.
					_ = s.queue.Enqueue(taken[i])
					continue
				}
				if err := s.inv.Allocate([][]int(alloc)); err != nil {
					_ = s.queue.Enqueue(taken[i])
					continue
				}
				s.commission(taken[i], alloc, now)
			}
			return
		}
	}
	for _, r := range taken {
		if !s.place(r, now) {
			_ = s.queue.Enqueue(r)
		}
	}
}
