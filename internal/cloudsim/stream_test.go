package cloudsim

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"affinitycluster/internal/faults"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/stats"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// streamWorkload is a saturating seeded scenario: enough contention that
// queueing, draining, and (injected) faults all fire.
func streamWorkload(t *testing.T, n int) []model.TimedRequest {
	t.Helper()
	reqs, err := workload.RandomRequests(12, n, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	arr := workload.DefaultArrivalConfig()
	arr.MeanInterarrival = 5
	timedReqs, err := workload.TimedRequests(13, reqs, arr)
	if err != nil {
		t.Fatal(err)
	}
	return timedReqs
}

// TestRunStreamMatchesRun pins the lazy-arrival determinism contract:
// the same sorted workload fed eagerly through Run and lazily through
// RunStream (including an active fault schedule, batching, and
// migration) must produce equal Metrics and byte-identical registry
// snapshots and event traces.
func TestRunStreamMatchesRun(t *testing.T) {
	tp := topology.PaperSimPlant()
	timedReqs := streamWorkload(t, 30)
	run := func(stream bool) (*Metrics, []byte) {
		caps, err := workload.RandomCapacities(11, tp.Nodes(), 3, workload.InventoryConfig{MaxPerType: 2})
		if err != nil {
			t.Fatal(err)
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		sim, err := New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, Config{
			Policy:        queue.FIFO,
			Batch:         true,
			Migrate:       true,
			Faults:        faults.Config{MTBF: 40, MTTR: 60, Horizon: 250, RackEvery: 2},
			FaultSeed:     14,
			Obs:           reg,
			RetainSamples: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var m *Metrics
		if stream {
			m, err = sim.RunStream(model.NewSliceSource(timedReqs))
		} else {
			m, err = sim.Run(timedReqs)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := inv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteTraceJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return m, buf.Bytes()
	}
	eager, eagerReg := run(false)
	lazy, lazyReg := run(true)
	if eager.Failures == 0 || eager.Served == 0 {
		t.Fatalf("degenerate scenario: %+v", eager)
	}
	if !reflect.DeepEqual(eager, lazy) {
		t.Errorf("metrics diverge:\neager: %+v\nlazy:  %+v", eager, lazy)
	}
	if !bytes.Equal(eagerReg, lazyReg) {
		t.Error("registry snapshot/trace diverge between Run and RunStream")
	}
}

// TestStreamingMetricsParity compares the default streaming-sketch mode
// against retained mode on the same workload: every counter is
// identical, the retained slices exist only when asked for, and the
// sketch quantiles land within the documented ErrorBound of the exact
// retained percentiles.
func TestStreamingMetricsParity(t *testing.T) {
	tp := topology.PaperSimPlant()
	timedReqs := streamWorkload(t, 40)
	run := func(retain bool) *Metrics {
		caps, err := workload.RandomCapacities(11, tp.Nodes(), 3, workload.DefaultInventoryConfig())
		if err != nil {
			t.Fatal(err)
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{RetainSamples: retain})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.RunStream(model.NewSliceSource(timedReqs))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	retained := run(true)
	streaming := run(false)
	if retained.Served == 0 {
		t.Fatal("nothing served")
	}
	if streaming.Distances != nil || streaming.Waits != nil {
		t.Error("streaming mode retained exact samples")
	}
	if len(retained.Distances) != retained.Served || len(retained.Waits) != retained.Served {
		t.Fatalf("retained sample counts: %d distances, %d waits, served %d",
			len(retained.Distances), len(retained.Waits), retained.Served)
	}
	// Counters must not depend on the sample mode.
	if streaming.Served != retained.Served || streaming.Rejected != retained.Rejected ||
		streaming.Unplaced != retained.Unplaced || streaming.TotalDistance != retained.TotalDistance ||
		streaming.MakeSpan != retained.MakeSpan || streaming.UtilizationAvg != retained.UtilizationAvg {
		t.Errorf("counters diverge:\nretained:  %+v\nstreaming: %+v", retained, streaming)
	}
	// Both modes carry the same sketches...
	if !reflect.DeepEqual(retained.DistanceSketch, streaming.DistanceSketch) ||
		!reflect.DeepEqual(retained.WaitSketch, streaming.WaitSketch) {
		t.Error("sketches diverge between modes")
	}
	// ...and the sketches agree with the exact samples within ErrorBound.
	for _, tc := range []struct {
		name    string
		sketch  *stats.Quantile
		samples []float64
	}{
		{"distance", streaming.DistanceSketch, retained.Distances},
		{"wait", streaming.WaitSketch, retained.Waits},
	} {
		if got, want := tc.sketch.Count(), int64(len(tc.samples)); got != want {
			t.Errorf("%s sketch holds %d samples, want %d", tc.name, got, want)
		}
		sorted := append([]float64(nil), tc.samples...)
		sort.Float64s(sorted)
		for _, p := range []float64{10, 50, 90, 99} {
			exact := stats.Percentile(sorted, p)
			got := tc.sketch.Value(p)
			if math.Abs(got-exact) > tc.sketch.ErrorBound()+1e-9 {
				t.Errorf("%s p%.0f: sketch %.4f, exact %.4f, bound %.4f",
					tc.name, p, got, exact, tc.sketch.ErrorBound())
			}
		}
	}
}

// TestRunStreamRejectsContractViolations: a source that breaks the
// strictly-increasing-ID / non-decreasing-arrival contract has those
// requests counted as rejected — conservation still holds over the whole
// stream.
func TestRunStreamRejectsContractViolations(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.RunStream(model.NewSliceSource([]model.TimedRequest{
		timed(0, model.Request{1, 0}, 1, 10),
		timed(0, model.Request{1, 0}, 2, 10),            // duplicate ID
		timed(1, model.Request{1, 0}, 1.5, 10),          // OK (arrival ≥ previous accepted)
		timed(2, model.Request{1, 0}, 0.5, 10),          // goes back in time
		timed(3, model.Request{1, 0}, math.NaN(), 10),   // invalid time
		timed(4, model.Request{-1, 0}, 3, 10),           // negative demand
		timed(5, model.Request{1, 0}, 3, 10),            // OK
	}))
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 7)
	if m.Served != 3 || m.Rejected != 4 {
		t.Errorf("served=%d rejected=%d, want 3/4", m.Served, m.Rejected)
	}
}

// TestRunStreamSourceErrorAborts: a failing source surfaces its error
// instead of truncating the run silently.
func TestRunStreamSourceErrorAborts(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunStream(failingSource{}); err == nil {
		t.Fatal("source error did not abort the run")
	}
}

type failingSource struct{}

func (failingSource) Next() (model.TimedRequest, bool, error) {
	return model.TimedRequest{}, false, errTestBroken
}
