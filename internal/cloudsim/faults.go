// Fault handling: the crash/repair callbacks the simulator schedules
// from a faults.Plan, and the recovery machinery they trigger.
//
// A crash zeroes the failed nodes' capacity in the inventory (dropping
// the VMs they hosted) and degrades every running cluster with VMs on
// them. A degraded cluster with survivors is first offered in-place
// evacuation — replacement VMs placed by the migration planner to
// minimize the resulting DC. If no capacity exists (or the whole
// cluster died), the cluster is torn down and its original request
// re-placed from scratch: immediate attempt, then exponential backoff
// retries, and finally a park at the head of the wait queue so the
// next drain — typically fired by the repair — serves it first. A
// repair restores the nodes' capacity and triggers a drain (and
// migration pass when enabled).
package cloudsim

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/faults"
	"affinitycluster/internal/migration"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/topology"
)

func nodeInts(nodes []topology.NodeID) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n)
	}
	return out
}

// crash applies one failure event: capacity loss, cluster degradation,
// and recovery. Clusters are visited in ascending registry order so the
// recovery sequence is deterministic.
func (s *Simulator) crash(ev faults.Event, now float64) {
	if s.failed != nil {
		return
	}
	s.sampleUtilization(now)
	s.metrics.Failures++
	s.om.faults.Inc()
	for _, n := range ev.Nodes {
		if _, err := s.inv.FailNode(n); err != nil {
			s.fail(fmt.Errorf("cloudsim: failing node %d at t=%v: %w", n, now, err))
			return
		}
	}
	s.cfg.Obs.Emit("fault", now,
		obs.F("kind", ev.Kind.String()),
		obs.F("id", ev.FailureID),
		obs.F("nodes", nodeInts(ev.Nodes)),
		obs.F("rack", ev.Rack))
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		if s.failed != nil {
			return
		}
		s.degrade(id, ev.Nodes, now)
	}
	s.om.usedSlots.Set(float64(s.usedSlots))
	s.om.running.Set(float64(len(s.running)))
}

// degrade strips one cluster's VMs on the dead nodes and recovers it:
// evacuation when the survivors can be topped up from residual
// capacity, whole-cluster re-placement otherwise.
func (s *Simulator) degrade(id int, dead []topology.NodeID, now float64) {
	alloc := s.running[id]
	lostVec := make(model.Request, len(alloc[0]))
	lostVMs := 0
	for _, n := range dead {
		for j, c := range alloc[n] {
			lostVec[j] += c
			lostVMs += c
		}
	}
	if lostVMs == 0 {
		return
	}
	for _, n := range dead {
		for j := range alloc[n] {
			alloc[n][j] = 0
		}
	}
	s.usedSlots -= lostVMs
	s.metrics.LostVMs += lostVMs
	survivors := alloc.TotalVMs()
	r := s.reqOf[id]
	s.cfg.Obs.Emit("degraded", now,
		obs.F("req", int(r.ID)),
		obs.F("cluster", id),
		obs.F("lost", lostVMs),
		obs.F("survivors", survivors))
	if survivors > 0 {
		repl, err := migration.PlanReplacement(s.topo, s.inv.RemainingView(), alloc, lostVec)
		if err == nil {
			s.evacuate(id, alloc, repl, lostVMs, now)
			return
		}
		if !errors.Is(err, migration.ErrNoCapacity) {
			s.fail(fmt.Errorf("cloudsim: planning evacuation of cluster %d: %w", id, err))
			return
		}
	}
	s.teardown(id, now)
}

// evacuate commits a replacement plan: the new VMs are allocated and
// merged into the running cluster, which keeps its identity, departure
// time, and served sample.
func (s *Simulator) evacuate(id int, alloc, repl affinity.Allocation, lostVMs int, now float64) {
	if err := s.inv.Allocate([][]int(repl)); err != nil {
		s.fail(fmt.Errorf("cloudsim: allocating evacuation of cluster %d: %w", id, err))
		return
	}
	for n := range repl {
		for j, c := range repl[n] {
			alloc[n][j] += c
		}
	}
	s.usedSlots += lostVMs
	s.metrics.Evacuations++
	s.om.evacuations.Inc()
	s.om.recoverySeconds.Observe(0)
	s.cfg.Obs.Emit("recover", now,
		obs.F("req", int(s.reqOf[id].ID)),
		obs.F("method", "evacuate"),
		obs.F("delay", 0.0))
}

// teardown removes a cluster that cannot be recovered in place,
// releases its surviving VMs, rolls back its served sample, and starts
// whole-cluster re-placement for its original request (which keeps its
// arrival time, so a re-serve reports the true total wait).
func (s *Simulator) teardown(id int, now float64) {
	s.cancelElastic(id, now, "teardown")
	alloc := s.running[id]
	r := s.reqOf[id]
	s.engine.Cancel(s.departEv[id])
	delete(s.departEv, id)
	delete(s.running, id)
	delete(s.reqOf, id)
	s.usedSlots -= alloc.TotalVMs()
	if err := s.inv.Release([][]int(alloc)); err != nil {
		s.om.releaseFailures.Inc()
		s.cfg.Obs.Emit("release_failure", now, obs.F("cluster", id), obs.F("error", err.Error()))
		s.fail(fmt.Errorf("cloudsim: release of torn-down cluster %d at t=%v failed: %w", id, now, err))
		return
	}
	// Roll back the served sample: Metrics counts clusters that ran (or
	// are running) to completion. The obs counters deliberately keep
	// counting commissions instead. The per-active record carries the
	// exact floats observed at commission, so the rollback is O(active)
	// with or without retained slices (and the retained-slice surgery,
	// which touches every later slot, only runs in retained mode).
	rec := s.samples[id]
	delete(s.samples, id)
	s.metrics.Served--
	s.metrics.TotalDistance -= rec.d
	s.metrics.DistanceSketch.Remove(rec.d)
	s.metrics.WaitSketch.Remove(rec.wait)
	if s.cfg.RetainSamples {
		idx := s.slot[id]
		delete(s.slot, id)
		s.metrics.Distances = slices.Delete(s.metrics.Distances, idx, idx+1)
		s.metrics.Waits = slices.Delete(s.metrics.Waits, idx, idx+1)
		for cid, sl := range s.slot {
			if sl > idx {
				s.slot[cid] = sl - 1
			}
		}
	}
	s.om.running.Set(float64(len(s.running)))
	s.om.usedSlots.Set(float64(s.usedSlots))
	s.arrivals[r.ID] = r.Arrival
	s.pendingRecovery[r.ID] = now
	s.metrics.Requeued++
	s.cfg.Obs.Emit("requeue", now, obs.F("req", int(r.ID)), obs.F("cluster", id))
	s.retryPlace(r, 0, now)
}

// retryPlace attempts direct re-placement of a torn-down request, with
// exponential backoff between attempts. Once attempts are exhausted the
// request is parked at the head of the wait queue — it keeps first
// claim on whatever capacity the repair brings back.
func (s *Simulator) retryPlace(r model.TimedRequest, attempt int, now float64) {
	if s.failed != nil {
		return
	}
	if s.place(r, now) {
		return
	}
	if s.failed != nil {
		return
	}
	attempt++
	rc := s.cfg.Recovery.withDefaults()
	if attempt >= rc.MaxAttempts {
		s.metrics.RetriesExhausted++
		s.om.retriesExhausted.Inc()
		s.cfg.Obs.Emit("retries_exhausted", now,
			obs.F("req", int(r.ID)),
			obs.F("attempts", attempt))
		if err := s.queue.EnqueueFront(r); err != nil {
			delete(s.pendingRecovery, r.ID)
			s.reject(r, now, "requeue_full")
			return
		}
		s.cfg.Obs.Emit("queue_admit", now, obs.F("req", int(r.ID)))
		return
	}
	delay := rc.Backoff * math.Pow(rc.Factor, float64(attempt-1))
	if _, err := s.engine.After(delay, func(at float64) { s.retryPlace(r, attempt, at) }); err != nil {
		s.fail(fmt.Errorf("cloudsim: scheduling recovery retry for request %d: %w", r.ID, err))
	}
}

// repair restores the failed nodes' capacity and immediately offers it
// to the queue (and the migration planner, when enabled) — exactly like
// a departure frees capacity.
func (s *Simulator) repair(ev faults.Event, now float64) {
	if s.failed != nil {
		return
	}
	for _, n := range ev.Nodes {
		if err := s.inv.RestoreNode(n); err != nil {
			s.fail(fmt.Errorf("cloudsim: restoring node %d at t=%v: %w", n, now, err))
			return
		}
	}
	s.cfg.Obs.Emit("repair", now,
		obs.F("id", ev.FailureID),
		obs.F("nodes", nodeInts(ev.Nodes)))
	s.drain(now)
	if s.cfg.Migrate {
		s.migrate(now)
	}
}
