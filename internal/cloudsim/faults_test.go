package cloudsim

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/faults"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// conserve asserts the request-conservation invariant: every input
// request is served, rejected, or still queued — never silently lost.
func conserve(t *testing.T, m *Metrics, n int) {
	t.Helper()
	if got := m.Served + m.Rejected + m.Unplaced; got != n {
		t.Errorf("conservation broken: served %d + rejected %d + unplaced %d = %d, want %d",
			m.Served, m.Rejected, m.Unplaced, got, n)
	}
}

// crash injects crafted fault events into a simulator; tests use it to
// pin exact failure scenarios instead of searching seeds.
func inject(sim *Simulator, evs ...faults.Event) { sim.faultPlan = evs }

func pair(at, repairAt float64, id int, nodes ...topology.NodeID) []faults.Event {
	return []faults.Event{
		{Time: at, Kind: faults.NodeCrash, FailureID: id, Nodes: nodes, Rack: -1},
		{Time: repairAt, Kind: faults.Repair, FailureID: id, Nodes: nodes, Rack: -1},
	}
}

// A crash that kills part of a cluster while spare capacity exists must
// recover it in place: replacement VMs allocated, the cluster keeps its
// departure, and the repair restores the plant to full capacity.
func TestCrashEvacuatesDegradedCluster(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	inject(sim, pair(5, 8, 0, 1)...)
	// {4,0} spreads over two nodes (per-node cap 2); node 1 dies at t=5.
	m, err := sim.Run([]model.TimedRequest{timed(0, model.Request{4, 0}, 1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 1)
	if m.Failures != 1 || m.LostVMs != 2 {
		t.Errorf("failures=%d lost=%d, want 1/2", m.Failures, m.LostVMs)
	}
	if m.Evacuations != 1 || m.Requeued != 0 || m.Replacements != 0 {
		t.Errorf("evac=%d requeued=%d repl=%d, want evacuation only", m.Evacuations, m.Requeued, m.Replacements)
	}
	if m.Served != 1 {
		t.Errorf("served = %d", m.Served)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	alloc := inv.AllocatedMatrix()
	for i := range alloc {
		for j, k := range alloc[i] {
			if k != 0 {
				t.Fatalf("leaked %d VMs of type %d on node %d", k, j, i)
			}
		}
	}
	kinds := map[string]bool{}
	for _, e := range reg.Events() {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"fault", "degraded", "recover", "repair", "depart"} {
		if !kinds[k] {
			t.Errorf("trace missing %q events; have %v", k, kinds)
		}
	}
}

// A crash that leaves no residual capacity tears the cluster down; the
// victim retries, exhausts its budget, parks at the queue head, and is
// served by the drain the repair fires — with its original arrival
// time, so the recorded wait spans the whole outage.
func TestCrashTeardownRequeueServedAfterRepair(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{
		Obs:           reg,
		Recovery:      RecoveryConfig{MaxAttempts: 2, Backoff: 1, Factor: 2},
		RetainSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	inject(sim, pair(5, 30, 0, 0)...)
	// The request needs the whole plant, so losing any node forces a
	// teardown, and no retry can succeed until the repair.
	m, err := sim.Run([]model.TimedRequest{timed(0, model.Request{12, 12}, 1, 20)})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 1)
	if m.Requeued != 1 || m.Replacements != 1 || m.RetriesExhausted != 1 {
		t.Errorf("requeued=%d repl=%d exhausted=%d, want 1/1/1", m.Requeued, m.Replacements, m.RetriesExhausted)
	}
	if m.Evacuations != 0 {
		t.Errorf("evacuations = %d, want 0", m.Evacuations)
	}
	if m.Served != 1 || m.Unplaced != 0 {
		t.Errorf("served=%d unplaced=%d", m.Served, m.Unplaced)
	}
	if len(m.Waits) != 1 || m.Waits[0] != 29 { // re-served at the t=30 repair, arrived at 1
		t.Errorf("waits = %v, want [29]", m.Waits)
	}
	if m.MakeSpan != 50 {
		t.Errorf("makespan = %v, want 50", m.MakeSpan)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// When the queue is full, a victim whose retries are exhausted is
// rejected as requeue_full instead of vanishing.
func TestTeardownVictimRejectedWhenQueueFull(t *testing.T) {
	tp, inv := plant(t)
	reg := obs.NewRegistry()
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{
		QueueCap: 1,
		Obs:      reg,
		Recovery: RecoveryConfig{MaxAttempts: 1, Backoff: 1, Factor: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	inject(sim, pair(5, 10, 0, 0)...)
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{12, 12}, 1, 100), // whole plant, torn down at t=5
		timed(1, model.Request{12, 12}, 2, 5),   // fills the 1-slot queue
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 2)
	if m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1 (requeue_full)", m.Rejected)
	}
	found := false
	for _, e := range reg.Events() {
		if e.Kind == "queue_reject" {
			for _, f := range e.Fields {
				if f.Key == "reason" && f.Val == "requeue_full" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no requeue_full rejection in trace")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Malformed requests are rejected up front and still counted.
func TestInvalidRequestsRejectedUpFront(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, &placement.OnlineHeuristic{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run([]model.TimedRequest{
		timed(0, model.Request{1, 0}, 1, 10),
		timed(1, model.Request{1, 0}, math.NaN(), 10),
		timed(2, model.Request{1, 0}, 2, -5),
		timed(3, model.Request{-1, 0}, 3, 10),
		timed(0, model.Request{1, 0}, 4, 10), // duplicate ID
		timed(4, model.Request{1, 0}, math.Inf(1), 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, m, 6)
	if m.Served != 1 || m.Rejected != 5 {
		t.Errorf("served=%d rejected=%d, want 1/5", m.Served, m.Rejected)
	}
}

// A placer returning a non-sentinel error must abort the run instead of
// being misread as "does not fit".
type brokenPlacer struct{}

func (brokenPlacer) Name() string { return "broken" }
func (brokenPlacer) Place(*topology.Topology, [][]int, model.Request) (affinity.Allocation, error) {
	return nil, errTestBroken
}

var errTestBroken = errors.New("placer exploded")

func TestHardPlacerErrorAbortsRun(t *testing.T) {
	tp, inv := plant(t)
	sim, err := New(tp, inv, brokenPlacer{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run([]model.TimedRequest{timed(0, model.Request{1, 0}, 1, 10)})
	if !errors.Is(err, errTestBroken) {
		t.Fatalf("err = %v, want wrapped placer error", err)
	}
}

// Full seeded fault pipeline: same seed and config twice must produce
// byte-identical metric snapshots and traces.
func TestSeededFaultRunDeterministic(t *testing.T) {
	run := func() (*Metrics, *obs.Registry) {
		tp := topology.PaperSimPlant()
		caps, err := workload.RandomCapacities(11, tp.Nodes(), 3, workload.InventoryConfig{MaxPerType: 2})
		if err != nil {
			t.Fatal(err)
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.RandomRequests(12, 30, 3, workload.Normal, workload.DefaultRequestConfig())
		if err != nil {
			t.Fatal(err)
		}
		arr := workload.DefaultArrivalConfig()
		arr.MeanInterarrival = 5
		timedReqs, err := workload.TimedRequests(13, reqs, arr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		sim, err := New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, Config{
			Policy:    queue.FIFO,
			Batch:     true,
			Migrate:   true,
			Faults:    faults.Config{MTBF: 40, MTTR: 60, Horizon: 250, RackEvery: 2},
			FaultSeed: 14,
			Obs:       reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run(timedReqs)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, m, 30)
		if err := inv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return m, reg
	}
	m1, reg1 := run()
	m2, reg2 := run()
	if m1.Failures == 0 {
		t.Fatal("seeded scenario injected no failures")
	}
	if m1.Failures != m2.Failures || m1.Served != m2.Served || m1.Requeued != m2.Requeued {
		t.Errorf("metrics differ: %+v vs %+v", m1, m2)
	}
	var a, b, ta, tb bytes.Buffer
	if err := reg1.WriteMetricsJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("metric snapshots differ between identical seeded fault runs")
	}
	if err := reg1.WriteTraceJSONL(&ta); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteTraceJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("traces differ between identical seeded fault runs")
	}
}

// Property: replaying a fault plan against an idle inventory conserves
// capacity exactly — every VM slot a crash frees comes back with its
// repair, and the plant ends at its original capacity.
func TestQuickCrashRepairCapacityConservation(t *testing.T) {
	tp := topology.PaperSimPlant()
	f := func(seed int64) bool {
		caps := make([][]int, tp.Nodes())
		for i := range caps {
			caps[i] = []int{2, 2}
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			return false
		}
		total := func() int {
			s := 0
			for _, a := range inv.Available() {
				s += a
			}
			return s
		}
		full := total()
		plan, err := faults.Plan(seed, tp, faults.Config{MTBF: 30, MTTR: 40, Horizon: 400, RackEvery: 3})
		if err != nil {
			return false
		}
		freed := map[int]int{}
		for _, ev := range plan {
			before := total()
			if ev.Kind == faults.Repair {
				for _, n := range ev.Nodes {
					if err := inv.RestoreNode(n); err != nil {
						return false
					}
				}
				if total()-before != freed[ev.FailureID] {
					return false
				}
			} else {
				for _, n := range ev.Nodes {
					if _, err := inv.FailNode(n); err != nil {
						return false
					}
				}
				freed[ev.FailureID] = before - total()
			}
			if inv.CheckInvariants() != nil {
				return false
			}
		}
		return total() == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
