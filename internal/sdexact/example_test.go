package sdexact_test

import (
	"fmt"

	"affinitycluster/internal/model"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
)

// Solve the Shortest Distance problem exactly: 5 VMs on a plant where no
// single node fits them, so the optimum packs one rack.
func ExampleSolveSD() {
	plant, _ := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	remaining := [][]int{
		{3}, // node 0, rack 0
		{2}, // node 1, rack 0
		{4}, // node 2, rack 1
		{0}, // node 3, rack 1
	}
	res, _ := sdexact.SolveSD(plant, remaining, model.Request{5})
	fmt.Printf("optimal distance %.0f with center N%d\n", res.Distance, res.Center)
	fmt.Printf("allocation: %v\n", res.Alloc)
	// Output:
	// optimal distance 2 with center N0
	// allocation: n0:[3] n1:[2]
}
