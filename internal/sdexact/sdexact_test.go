package sdexact

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

func twoRacks(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestSolveSDSingleNodeFits(t *testing.T) {
	tp := twoRacks(t)
	l := [][]int{
		{5, 5, 5},
		{0, 0, 0},
		{0, 0, 0},
		{0, 0, 0},
	}
	res, err := SolveSD(tp, l, model.Request{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Errorf("distance = %v, want 0 (all on one node)", res.Distance)
	}
	if res.Center != 0 {
		t.Errorf("center = %d, want 0", res.Center)
	}
	if !res.Alloc.Satisfies(model.Request{2, 2, 1}) {
		t.Error("allocation does not satisfy request")
	}
}

func TestSolveSDPrefersSameRack(t *testing.T) {
	tp := twoRacks(t)
	// Node 0 can host 3, node 1 (same rack) 2, node 2 (other rack) 5.
	l := [][]int{
		{3, 0},
		{2, 0},
		{5, 0},
		{0, 0},
	}
	res, err := SolveSD(tp, l, model.Request{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: 3 on node 0 + 2 on node 1 → center 0: 2·d1 = 2.
	// Alternative: 5 on node 2 → 0! Node 2 alone can host all 5.
	if res.Distance != 0 {
		t.Errorf("distance = %v, want 0 (node 2 fits all)", res.Distance)
	}
	if res.Center != 2 {
		t.Errorf("center = %d, want 2", res.Center)
	}
}

func TestSolveSDSplitAcrossRack(t *testing.T) {
	tp := twoRacks(t)
	l := [][]int{
		{3, 0},
		{2, 0},
		{4, 0},
		{0, 0},
	}
	res, err := SolveSD(tp, l, model.Request{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	// No single node fits 5. Rack 0: 3+2 → 2·d1 = 2 (center node 0).
	// Rack 1 only has 4. Mixed: 4 on node 2 + 1 on node 0 → 1·d2 = 2.
	// Both give 2; tie-break picks... either allocation is fine, value 2.
	if res.Distance != 2 {
		t.Errorf("distance = %v, want 2", res.Distance)
	}
}

func TestSolveSDInfeasible(t *testing.T) {
	tp := twoRacks(t)
	l := [][]int{{1, 0}, {0, 0}, {0, 0}, {0, 0}}
	_, err := SolveSD(tp, l, model.Request{2, 0})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveSDBadShape(t *testing.T) {
	tp := twoRacks(t)
	if _, err := SolveSD(tp, [][]int{{1, 0}}, model.Request{1, 0}); err == nil {
		t.Error("short capacity matrix accepted")
	}
}

func randInstance(r *rand.Rand, tp *topology.Topology, m int) ([][]int, model.Request) {
	n := tp.Nodes()
	l := make([][]int, n)
	avail := make([]int, m)
	for i := range l {
		l[i] = make([]int, m)
		for j := range l[i] {
			l[i][j] = r.Intn(4)
			avail[j] += l[i][j]
		}
	}
	req := make(model.Request, m)
	for j := range req {
		if avail[j] > 0 {
			req[j] = r.Intn(avail[j] + 1)
		}
	}
	if model.Sum(req) == 0 {
		// Force at least one VM if anything is available anywhere.
		for j := range req {
			if avail[j] > 0 {
				req[j] = 1
				break
			}
		}
	}
	return l, req
}

// bruteForceSD enumerates all allocations for tiny instances.
func bruteForceSD(tp *topology.Topology, l [][]int, req model.Request) float64 {
	n := tp.Nodes()
	m := len(req)
	best := math.Inf(1)
	alloc := affinity.NewAllocation(n, m)
	var rec func(j int)
	var fill func(j, i, left int)
	fill = func(j, i, left int) {
		if i == n {
			if left == 0 {
				rec(j + 1)
			}
			return
		}
		maxTake := l[i][j]
		if left < maxTake {
			maxTake = left
		}
		for take := 0; take <= maxTake; take++ {
			alloc[i][j] = take
			fill(j, i+1, left-take)
		}
		alloc[i][j] = 0
	}
	rec = func(j int) {
		if j == m {
			if d, _ := alloc.Distance(tp); d < best {
				best = d
			}
			return
		}
		fill(j, 0, req[j])
	}
	rec(0)
	return best
}

// Property: the greedy per-center solver matches brute force on tiny
// instances.
func TestQuickSolveSDMatchesBruteForce(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, req := randInstance(r, tp, 2)
		if model.Sum(req) == 0 {
			return true // nothing available anywhere: skip
		}
		res, err := SolveSD(tp, l, req)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if err := res.Alloc.Validate(req, l); err != nil {
			return false
		}
		want := bruteForceSD(tp, l, req)
		return math.Abs(res.Distance-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the specialized solver agrees with the paper-faithful MIP
// formulation.
func TestQuickSolveSDMatchesMIP(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, req := randInstance(r, tp, 2)
		if model.Sum(req) == 0 {
			return true
		}
		fast, errFast := SolveSD(tp, l, req)
		slow, errSlow := SolveSDMIP(tp, l, req)
		if errFast != nil || errSlow != nil {
			return errors.Is(errFast, ErrInfeasible) && errors.Is(errSlow, ErrInfeasible)
		}
		if err := slow.Alloc.Validate(req, l); err != nil {
			return false
		}
		return math.Abs(fast.Distance-slow.Distance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: all three exact SD paths — transportation greedy, min-cost
// flow, and branch-and-bound ILP — agree on the optimum.
func TestQuickThreeExactSolversAgree(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, req := randInstance(r, tp, 2)
		if model.Sum(req) == 0 {
			return true
		}
		greedy, e1 := SolveSD(tp, l, req)
		flow, e2 := SolveSDMCMF(tp, l, req)
		if e1 != nil || e2 != nil {
			return errors.Is(e1, ErrInfeasible) && errors.Is(e2, ErrInfeasible)
		}
		if err := flow.Alloc.Validate(req, l); err != nil {
			return false
		}
		return math.Abs(greedy.Distance-flow.Distance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSolveSDMCMFBadShapeAndInfeasible(t *testing.T) {
	tp := twoRacks(t)
	if _, err := SolveSDMCMF(tp, [][]int{{1}}, model.Request{1}); err == nil {
		t.Error("short matrix accepted")
	}
	l := [][]int{{1, 0}, {0, 0}, {0, 0}, {0, 0}}
	if _, err := SolveSDMCMF(tp, l, model.Request{5, 0}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// Property: the min-cost-flow and LP transportation backends of the GSD
// leaf solver produce the same total.
func TestQuickGSDTransportationBackendsAgree(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := tp.Nodes()
		l := make([][]int, n)
		totalCap := 0
		for i := range l {
			l[i] = []int{1 + r.Intn(3)}
			totalCap += l[i][0]
		}
		reqs := []model.Request{{1 + r.Intn(3)}, {1 + r.Intn(3)}}
		if reqs[0][0]+reqs[1][0] > totalCap {
			return true
		}
		centers := []topology.NodeID{
			topology.NodeID(r.Intn(n)),
			topology.NodeID(r.Intn(n)),
		}
		a1, t1, ok1 := solveTransportation(tp, l, reqs, centers)
		a2, t2, ok2 := solveTransportationLP(tp, l, reqs, centers)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		// Alternative optima can differ in their re-minimized DC totals,
		// but the fixed-center transportation objective must agree.
		fixedCost := func(allocs []affinity.Allocation) float64 {
			total := 0.0
			for q, a := range allocs {
				total += a.DistanceFrom(tp, centers[q])
			}
			return total
		}
		if math.Abs(fixedCost(a1)-fixedCost(a2)) > 1e-6 {
			return false
		}
		// And each backend's reported DC total must not exceed its own
		// fixed-center cost.
		if t1 > fixedCost(a1)+1e-9 || t2 > fixedCost(a2)+1e-9 {
			return false
		}
		for q := range a1 {
			if !a1[q].Satisfies(reqs[q]) || !a2[q].Satisfies(reqs[q]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSolveGSDEmptyAndInfeasible(t *testing.T) {
	tp := twoRacks(t)
	res, err := SolveGSD(tp, [][]int{{1}, {0}, {0}, {0}}, nil, GSDOptions{})
	if err != nil || res.Total != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	l := [][]int{{1, 0}, {0, 0}, {0, 0}, {0, 0}}
	_, err = SolveGSD(tp, l, []model.Request{{1, 0}, {1, 0}}, GSDOptions{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveGSDPacksBothRequests(t *testing.T) {
	tp := twoRacks(t)
	// Two nodes in each rack with 2 slots each; two requests of 2 VMs.
	l := [][]int{
		{2, 0},
		{2, 0},
		{2, 0},
		{2, 0},
	}
	reqs := []model.Request{{2, 0}, {2, 0}}
	res, err := SolveGSD(tp, l, reqs, GSDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Each request fits on a single node → total distance 0.
	if res.Total != 0 {
		t.Errorf("GSD total = %v, want 0", res.Total)
	}
	for q, a := range res.Allocs {
		if !a.Satisfies(reqs[q]) {
			t.Errorf("request %d not satisfied: %v", q, a)
		}
	}
}

func TestSolveGSDBeatsGreedySequential(t *testing.T) {
	tp := twoRacks(t)
	// Crafted contention: sequential greedy for request A would grab the
	// big node and force B to straddle racks; the global optimum avoids it.
	// Node 0: 3 slots, node 1: 1 slot (rack 0); node 2: 2, node 3: 2 (rack 1).
	l := [][]int{
		{3, 0},
		{1, 0},
		{2, 0},
		{2, 0},
	}
	reqs := []model.Request{{4, 0}, {4, 0}}
	res, err := SolveGSD(tp, l, reqs, GSDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: A = 3+1 in rack 0 (distance d1 = 1), B = 2+2 in rack 1
	// (distance 2·d1 = 2). Total 3.
	if res.Total != 3 {
		t.Errorf("GSD total = %v, want 3", res.Total)
	}
	// Combined usage must respect capacities.
	for i := 0; i < tp.Nodes(); i++ {
		used := 0
		for _, a := range res.Allocs {
			used += a.VMsOnNode(topology.NodeID(i))
		}
		if used > model.Sum(l[i]) {
			t.Errorf("node %d over-used: %d > %d", i, used, model.Sum(l[i]))
		}
	}
}

// Property: the GSD optimum is never worse than solving the requests
// sequentially with the exact single-request solver.
func TestQuickGSDDominatesSequential(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := tp.Nodes()
		l := make([][]int, n)
		for i := range l {
			l[i] = []int{2 + r.Intn(3)}
		}
		reqs := []model.Request{
			{1 + r.Intn(3)},
			{1 + r.Intn(3)},
		}
		agg := model.Add(reqs[0], reqs[1])
		total := 0
		for i := range l {
			total += l[i][0]
		}
		if agg[0] > total {
			return true // infeasible batch: skip
		}
		gsd, err := SolveGSD(tp, l, reqs, GSDOptions{})
		if err != nil {
			return false
		}
		// Sequential: solve req0, deduct, solve req1.
		seqTotal := 0.0
		work := make([][]int, n)
		for i := range l {
			work[i] = append([]int(nil), l[i]...)
		}
		for _, req := range reqs {
			res, err := SolveSD(tp, work, req)
			if err != nil {
				return false // aggregate was feasible so sequential must be too
			}
			seqTotal += res.Distance
			for i := range work {
				work[i][0] -= res.Alloc[i][0]
			}
		}
		return gsd.Total <= seqTotal+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveGSDTruncation(t *testing.T) {
	tp, err := topology.Uniform(1, 3, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	n := tp.Nodes()
	l := make([][]int, n)
	for i := range l {
		l[i] = []int{1}
	}
	reqs := []model.Request{{2}, {2}, {2}}
	res, err := SolveGSD(tp, l, reqs, GSDOptions{MaxLeaves: 1})
	// With a single-leaf budget we must either finish trivially or report
	// truncation with a usable incumbent.
	if err != nil && !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	if res == nil {
		t.Fatal("no incumbent returned")
	}
	if len(res.Allocs) != 3 {
		t.Fatalf("incumbent has %d allocations", len(res.Allocs))
	}
}
