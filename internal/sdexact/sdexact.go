// Package sdexact solves the paper's Shortest Distance (SD, Definition 2)
// and Global Shortest Distance (GSD, Definition 4) problems exactly.
//
// # SD
//
// The paper formulates SD as an integer program (Section III.B). For a
// fixed central node N_k the objective Σ_i (Σ_j x_ij)·D_ik decomposes per
// VM type, and the feasible region {Σ_i x_ij = R_j, 0 ≤ x_ij ≤ L_ij} is a
// transportation polytope whose vertices are integral. Placing each type's
// VMs on nodes in ascending order of D_ik is therefore exactly optimal (an
// exchange argument — Theorem 1 of the paper — shows any other allocation
// can be improved by moving a VM to a closer node with spare capacity).
// SolveSD scans every candidate center and takes the minimum, which equals
// the ILP optimum: min_C min_k = min_k min_C.
//
// SolveSDMIP solves the same instance through the general branch-and-bound
// ILP of package mip, one model per candidate center, exactly mirroring the
// paper's formulation. It exists to cross-validate SolveSD and to
// demonstrate the ILP path; it is orders of magnitude slower.
//
// # GSD
//
// With the central node of every request fixed, GSD also decomposes per VM
// type into transportation problems (requests demand, nodes supply, cost
// D_i,center(req)), solved exactly via LP with integral vertices. SolveGSD
// searches the space of center tuples by depth-first branch and bound with
// admissible per-request lower bounds. It is exponential in the number of
// requests in the worst case and intended for the small instances used to
// validate the heuristics.
package sdexact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/lp"
	"affinitycluster/internal/mcmf"
	"affinitycluster/internal/mip"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// ErrInfeasible is returned when a request exceeds the available resources
// (R_j > A_j for some type j).
var ErrInfeasible = errors.New("sdexact: request exceeds available resources")

// SDResult is an optimal answer to the SD problem.
type SDResult struct {
	Alloc    affinity.Allocation
	Distance float64         // DC of the allocation — the SD(R) optimum
	Center   topology.NodeID // minimizing central node
}

// feasible reports whether R_j ≤ Σ_i L_ij for all j.
func feasible(l [][]int, r model.Request) bool {
	for j := range r {
		total := 0
		for i := range l {
			total += l[i][j]
		}
		if r[j] > total {
			return false
		}
	}
	return true
}

// SolveSD returns the exact shortest-distance allocation for request r
// against remaining capacity l on topology t.
func SolveSD(t *topology.Topology, l [][]int, r model.Request) (*SDResult, error) {
	n := t.Nodes()
	if len(l) != n {
		return nil, fmt.Errorf("sdexact: capacity matrix has %d rows, topology has %d nodes", len(l), n)
	}
	if !feasible(l, r) {
		return nil, ErrInfeasible
	}
	m := len(r)
	var best *SDResult
	// Node order by ascending distance from each center is recomputed per
	// center; ties resolve to lower IDs for determinism.
	for k := 0; k < n; k++ {
		center := topology.NodeID(k)
		order := make([]topology.NodeID, n)
		for i := range order {
			order[i] = topology.NodeID(i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			da := t.Distance(order[a], center)
			db := t.Distance(order[b], center)
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		alloc := affinity.NewAllocation(n, m)
		cost := 0.0
		ok := true
		for j := 0; j < m && ok; j++ {
			need := r[j]
			for _, i := range order {
				if need == 0 {
					break
				}
				take := l[i][j]
				if take > need {
					take = need
				}
				if take > 0 {
					alloc[i][model.VMTypeID(j)] += take
					cost += float64(take) * t.Distance(i, center)
					need -= take
				}
			}
			if need > 0 {
				ok = false // cannot happen when feasible() held, defensive
			}
		}
		if !ok {
			continue
		}
		if best == nil || cost < best.Distance {
			best = &SDResult{Alloc: alloc, Distance: cost, Center: center}
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	// The DC of the chosen allocation can only equal the scanned minimum
	// (see package comment); recompute for the canonical tie-broken center.
	d, ctr := best.Alloc.Distance(t)
	best.Distance = d
	best.Center = ctr
	return best, nil
}

// SolveSDMIP solves SD through the paper's integer-programming formulation
// using the branch-and-bound solver, one model per candidate central node.
// Exposed for cross-validation and for the exactness ablation benchmark.
func SolveSDMIP(t *topology.Topology, l [][]int, r model.Request) (*SDResult, error) {
	n := t.Nodes()
	if !feasible(l, r) {
		return nil, ErrInfeasible
	}
	m := len(r)
	var best *SDResult
	for k := 0; k < n; k++ {
		center := topology.NodeID(k)
		mod := mip.NewModel(n * m)
		obj := make([]float64, n*m)
		for i := 0; i < n; i++ {
			d := t.Distance(topology.NodeID(i), center)
			for j := 0; j < m; j++ {
				v := i*m + j
				obj[v] = d
				if err := mod.SetUpperBound(v, float64(l[i][j])); err != nil {
					return nil, err
				}
				if err := mod.SetInteger(v); err != nil {
					return nil, err
				}
			}
		}
		if err := mod.SetObjective(obj); err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			vars := make([]int, n)
			coef := make([]float64, n)
			for i := 0; i < n; i++ {
				vars[i] = i*m + j
				coef[i] = 1
			}
			if err := mod.AddSparseConstraint(vars, coef, lp.EQ, float64(r[j])); err != nil {
				return nil, err
			}
		}
		sol, err := mod.Solve()
		if err != nil {
			return nil, err
		}
		if sol.Status != mip.Optimal {
			continue
		}
		if best == nil || sol.Objective < best.Distance-1e-9 {
			alloc := affinity.NewAllocation(n, m)
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					x, err := sol.IntValue(i*m + j)
					if err != nil {
						return nil, err
					}
					alloc[i][j] = x
				}
			}
			best = &SDResult{Alloc: alloc, Distance: sol.Objective, Center: center}
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	d, ctr := best.Alloc.Distance(t)
	best.Distance = d
	best.Center = ctr
	return best, nil
}

// SolveSDMCMF solves SD through min-cost flow: for each candidate center
// the per-type subproblem is a transportation instance (nodes supply,
// the request demands). A third independent exact path, used to
// cross-validate SolveSD and SolveSDMIP.
func SolveSDMCMF(t *topology.Topology, l [][]int, r model.Request) (*SDResult, error) {
	n := t.Nodes()
	if len(l) != n {
		return nil, fmt.Errorf("sdexact: capacity matrix has %d rows, topology has %d nodes", len(l), n)
	}
	if !feasible(l, r) {
		return nil, ErrInfeasible
	}
	m := len(r)
	var best *SDResult
	for k := 0; k < n; k++ {
		center := topology.NodeID(k)
		alloc := affinity.NewAllocation(n, m)
		total := 0.0
		ok := true
		for j := 0; j < m && ok; j++ {
			if r[j] == 0 {
				continue
			}
			cost := make([][]float64, n)
			supply := make([]int, n)
			for i := 0; i < n; i++ {
				cost[i] = []float64{t.Distance(topology.NodeID(i), center)}
				supply[i] = l[i][j]
			}
			ship, c, err := mcmf.Transportation(cost, supply, []int{r[j]})
			if err != nil {
				ok = false
				break
			}
			for i := 0; i < n; i++ {
				alloc[i][j] += ship[i][0]
			}
			total += c
		}
		if !ok {
			continue
		}
		if best == nil || total < best.Distance {
			best = &SDResult{Alloc: alloc, Distance: total, Center: center}
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	d, ctr := best.Alloc.Distance(t)
	best.Distance = d
	best.Center = ctr
	return best, nil
}

// GSDResult is an exact answer to the global shortest-distance problem.
type GSDResult struct {
	Allocs  []affinity.Allocation
	Centers []topology.NodeID
	Total   float64 // Σ DC over all requests — the GSD optimum
	Leaves  int     // complete center tuples evaluated
}

// GSDOptions tunes the exponential center-tuple search.
type GSDOptions struct {
	// MaxLeaves caps the number of complete center assignments evaluated
	// (0 = 100000). If exceeded, SolveGSD returns the best found so far
	// with Truncated set in the error — callers validating heuristics on
	// small instances never hit it.
	MaxLeaves int
}

// ErrTruncated reports that the GSD search hit its leaf budget; the
// returned result is the best incumbent, not a proven optimum.
var ErrTruncated = errors.New("sdexact: GSD search truncated")

// SolveGSD computes the exact global optimum for a batch of requests
// sharing the capacity matrix l. Exponential in len(reqs); intended for
// validation-sized instances.
func SolveGSD(t *topology.Topology, l [][]int, reqs []model.Request, opt GSDOptions) (*GSDResult, error) {
	if len(reqs) == 0 {
		return &GSDResult{}, nil
	}
	n := t.Nodes()
	m := len(reqs[0])
	// Aggregate feasibility.
	agg := make(model.Request, m)
	for _, r := range reqs {
		if len(r) != m {
			return nil, fmt.Errorf("sdexact: inconsistent request lengths")
		}
		agg = model.Request(model.Add(agg, r))
	}
	if !feasible(l, agg) {
		return nil, ErrInfeasible
	}
	maxLeaves := opt.MaxLeaves
	if maxLeaves <= 0 {
		maxLeaves = 100000
	}

	// Per-request, per-center relaxed lower bound: optimal cost of serving
	// the request alone from center k on the full capacity matrix.
	p := len(reqs)
	lb := make([][]float64, p)
	lbBest := make([]float64, p)
	for q, r := range reqs {
		lb[q] = make([]float64, n)
		lbBest[q] = math.Inf(1)
		for k := 0; k < n; k++ {
			cost, ok := relaxedCost(t, l, r, topology.NodeID(k))
			if !ok {
				lb[q][k] = math.Inf(1)
				continue
			}
			lb[q][k] = cost
			if cost < lbBest[q] {
				lbBest[q] = cost
			}
		}
	}
	// Suffix sums of per-request best bounds for pruning.
	suffix := make([]float64, p+1)
	for q := p - 1; q >= 0; q-- {
		suffix[q] = suffix[q+1] + lbBest[q]
	}

	best := &GSDResult{Total: math.Inf(1)}
	centers := make([]topology.NodeID, p)
	leaves := 0
	truncated := false

	var dfs func(q int, partial float64)
	dfs = func(q int, partial float64) {
		if truncated {
			return
		}
		if q == p {
			leaves++
			if leaves > maxLeaves {
				truncated = true
				return
			}
			allocs, total, ok := solveTransportation(t, l, reqs, centers)
			if ok && total < best.Total-1e-9 {
				best.Allocs = allocs
				best.Centers = append([]topology.NodeID(nil), centers...)
				best.Total = total
			}
			return
		}
		// Order candidate centers by the request's relaxed bound so good
		// tuples are found early and pruning bites.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return lb[q][order[a]] < lb[q][order[b]] })
		for _, k := range order {
			if math.IsInf(lb[q][k], 1) {
				break
			}
			if partial+lb[q][k]+suffix[q+1] >= best.Total-1e-9 {
				break // bounds are sorted: no later center can help
			}
			centers[q] = topology.NodeID(k)
			dfs(q+1, partial+lb[q][k])
		}
	}
	dfs(0, 0)

	if math.IsInf(best.Total, 1) {
		if truncated {
			return nil, ErrTruncated
		}
		return nil, ErrInfeasible
	}
	best.Leaves = leaves
	if truncated {
		return best, ErrTruncated
	}
	return best, nil
}

// relaxedCost is the optimal single-request cost from a fixed center on
// the full capacity matrix (greedy over the transportation polytope).
func relaxedCost(t *topology.Topology, l [][]int, r model.Request, center topology.NodeID) (float64, bool) {
	n := t.Nodes()
	order := make([]topology.NodeID, n)
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := t.Distance(order[a], center), t.Distance(order[b], center)
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	cost := 0.0
	for j := range r {
		need := r[j]
		for _, i := range order {
			if need == 0 {
				break
			}
			take := l[i][j]
			if take > need {
				take = need
			}
			cost += float64(take) * t.Distance(i, center)
			need -= take
		}
		if need > 0 {
			return 0, false
		}
	}
	return cost, true
}

// solveTransportation solves the fixed-centers GSD exactly: per VM type,
// a transportation problem with nodes as suppliers, requests as consumers,
// and cost D_i,center(req), solved by min-cost flow (exactly integral).
// solveTransportationLP is the simplex-based reference used by the test
// suite to cross-validate this path.
func solveTransportation(t *topology.Topology, l [][]int, reqs []model.Request, centers []topology.NodeID) ([]affinity.Allocation, float64, bool) {
	n := t.Nodes()
	p := len(reqs)
	m := len(reqs[0])
	allocs := make([]affinity.Allocation, p)
	for q := range allocs {
		allocs[q] = affinity.NewAllocation(n, m)
	}
	for j := 0; j < m; j++ {
		demand := make([]int, p)
		demandTotal := 0
		for q, r := range reqs {
			demand[q] = r[j]
			demandTotal += r[j]
		}
		if demandTotal == 0 {
			continue
		}
		cost := make([][]float64, n)
		supply := make([]int, n)
		for i := 0; i < n; i++ {
			cost[i] = make([]float64, p)
			for q := 0; q < p; q++ {
				cost[i][q] = t.Distance(topology.NodeID(i), centers[q])
			}
			supply[i] = l[i][j]
		}
		ship, _, err := mcmf.Transportation(cost, supply, demand)
		if err != nil {
			return nil, 0, false
		}
		for i := 0; i < n; i++ {
			for q := 0; q < p; q++ {
				allocs[q][i][j] += ship[i][q]
			}
		}
	}
	// Report the true Σ DC(C^q): the transportation objective fixes each
	// request's center, but DC takes the best center, which can only be
	// ≤. Using the true DC keeps the result comparable with the
	// heuristics.
	trueTotal := 0.0
	for q := range allocs {
		d, _ := allocs[q].Distance(t)
		trueTotal += d
	}
	return allocs, trueTotal, true
}

// solveTransportationLP is the simplex-based reference implementation of
// solveTransportation, retained for cross-validation: transportation
// polytopes have integral vertices, so rounding the LP optimum is exact.
func solveTransportationLP(t *topology.Topology, l [][]int, reqs []model.Request, centers []topology.NodeID) ([]affinity.Allocation, float64, bool) {
	n := t.Nodes()
	p := len(reqs)
	m := len(reqs[0])
	allocs := make([]affinity.Allocation, p)
	for q := range allocs {
		allocs[q] = affinity.NewAllocation(n, m)
	}
	for j := 0; j < m; j++ {
		demandTotal := 0
		for _, r := range reqs {
			demandTotal += r[j]
		}
		if demandTotal == 0 {
			continue
		}
		// Variables x[q][i] laid out as q*n + i.
		prob := lp.NewProblem(p * n)
		obj := make([]float64, p*n)
		for q := 0; q < p; q++ {
			for i := 0; i < n; i++ {
				obj[q*n+i] = t.Distance(topology.NodeID(i), centers[q])
			}
		}
		if err := prob.SetObjective(obj); err != nil {
			return nil, 0, false
		}
		for q := 0; q < p; q++ {
			vars := make([]int, n)
			coef := make([]float64, n)
			for i := 0; i < n; i++ {
				vars[i] = q*n + i
				coef[i] = 1
			}
			if err := prob.AddSparseConstraint(vars, coef, lp.EQ, float64(reqs[q][j])); err != nil {
				return nil, 0, false
			}
		}
		for i := 0; i < n; i++ {
			vars := make([]int, p)
			coef := make([]float64, p)
			for q := 0; q < p; q++ {
				vars[q] = q*n + i
				coef[q] = 1
			}
			if err := prob.AddSparseConstraint(vars, coef, lp.LE, float64(l[i][j])); err != nil {
				return nil, 0, false
			}
		}
		sol, err := prob.Solve()
		if err != nil || sol.Status != lp.Optimal {
			return nil, 0, false
		}
		for q := 0; q < p; q++ {
			for i := 0; i < n; i++ {
				x := sol.X[q*n+i]
				xi := int(math.Round(x))
				if math.Abs(x-float64(xi)) > 1e-4 {
					return nil, 0, false // non-integral vertex: numerical trouble
				}
				allocs[q][i][j] += xi
			}
		}
	}
	trueTotal := 0.0
	for q := range allocs {
		d, _ := allocs[q].Distance(t)
		trueTotal += d
	}
	return allocs, trueTotal, true
}
