// Package netmodel provides the network substrate for the MapReduce
// experiment simulator: a flow-level model of a hierarchical datacenter
// network (node access links, rack uplinks, a non-blocking core) with
// max-min fair bandwidth sharing among concurrent flows.
//
// The paper's experiments run Hadoop on physical clusters whose network
// latency hierarchy is exactly what the distance tiers abstract. This
// model reproduces the behaviour the experiments measure: transfers
// between VMs on one node are (nearly) free, intra-rack transfers ride the
// access links, and cross-rack transfers additionally contend on
// oversubscribed rack uplinks — which is why the shuffle phase dominates
// for low-affinity clusters.
//
// FlowSim is event-driven: starting or finishing a flow triggers a global
// max-min re-fair-share (progressive filling) and the completion events
// are rescheduled accordingly. The model is exact for max-min sharing,
// piecewise-constant between flow arrivals/departures.
package netmodel

import (
	"fmt"
	"math"
	"sort"

	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/topology"
)

// Config fixes link capacities and per-tier latencies. Capacities are in
// MB/s, latencies in seconds.
type Config struct {
	// LocalMBps bounds transfers between two VMs on the same node
	// (memory/disk copy, no network).
	LocalMBps float64
	// AccessMBps is each node's NIC / access-link capacity.
	AccessMBps float64
	// RackUplinkMBps is the ToR-to-core uplink shared by a whole rack;
	// values below nodesPerRack × AccessMBps model oversubscription.
	RackUplinkMBps float64
	// CloudUplinkMBps bounds traffic leaving one cloud.
	CloudUplinkMBps float64
	// LatencySameRack / LatencyCrossRack / LatencyCrossCloud are one-way
	// propagation+protocol latencies added to every transfer.
	LatencySameRack   float64
	LatencyCrossRack  float64
	LatencyCrossCloud float64
}

// DefaultConfig models a 2012-era cluster: GbE access (120 MB/s), 4:1
// oversubscribed rack uplinks, fast local copies.
func DefaultConfig() Config {
	return Config{
		LocalMBps:         400,
		AccessMBps:        120,
		RackUplinkMBps:    300,
		CloudUplinkMBps:   150,
		LatencySameRack:   0.0005,
		LatencyCrossRack:  0.002,
		LatencyCrossCloud: 0.05,
	}
}

// Validate rejects non-positive capacities and negative latencies.
func (c Config) Validate() error {
	if c.LocalMBps <= 0 || c.AccessMBps <= 0 || c.RackUplinkMBps <= 0 || c.CloudUplinkMBps <= 0 {
		return fmt.Errorf("netmodel: capacities must be positive: %+v", c)
	}
	if c.LatencySameRack < 0 || c.LatencyCrossRack < 0 || c.LatencyCrossCloud < 0 {
		return fmt.Errorf("netmodel: latencies must be non-negative: %+v", c)
	}
	return nil
}

// linkID identifies one capacity-constrained resource.
type linkID struct {
	kind int // 0 = node access, 1 = rack uplink, 2 = cloud uplink, 3 = node local
	id   int
}

const (
	kindAccess = iota
	kindRackUp
	kindCloudUp
	kindLocal
)

// Flow is one in-flight transfer.
type Flow struct {
	ID        int
	Src, Dst  topology.NodeID
	remaining float64 // MB
	rate      float64 // MB/s, current fair share
	links     []linkID
	done      func(now float64)
	event     *eventsim.Event
	started   float64
	lastTouch float64
}

// FlowSim simulates concurrent flows over the hierarchical network.
type FlowSim struct {
	engine *eventsim.Engine
	topo   *topology.Topology
	cfg    Config
	flows  map[int]*Flow
	nextID int
}

// NewFlowSim binds a simulator to an engine and a topology.
func NewFlowSim(e *eventsim.Engine, t *topology.Topology, cfg Config) (*FlowSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FlowSim{engine: e, topo: t, cfg: cfg, flows: make(map[int]*Flow)}, nil
}

// latency returns the one-way latency for a src→dst transfer.
func (fs *FlowSim) latency(src, dst topology.NodeID) float64 {
	switch {
	case src == dst:
		return 0
	case fs.topo.CloudOf(src) != fs.topo.CloudOf(dst):
		return fs.cfg.LatencyCrossCloud
	case fs.topo.RackOf(src) != fs.topo.RackOf(dst):
		return fs.cfg.LatencyCrossRack
	default:
		return fs.cfg.LatencySameRack
	}
}

// path enumerates the capacity constraints a flow traverses.
func (fs *FlowSim) path(src, dst topology.NodeID) []linkID {
	if src == dst {
		return []linkID{{kindLocal, int(src)}}
	}
	links := []linkID{{kindAccess, int(src)}, {kindAccess, int(dst)}}
	if fs.topo.RackOf(src) != fs.topo.RackOf(dst) {
		links = append(links, linkID{kindRackUp, fs.topo.RackOf(src)}, linkID{kindRackUp, fs.topo.RackOf(dst)})
	}
	if fs.topo.CloudOf(src) != fs.topo.CloudOf(dst) {
		links = append(links, linkID{kindCloudUp, fs.topo.CloudOf(src)}, linkID{kindCloudUp, fs.topo.CloudOf(dst)})
	}
	return links
}

// capacity returns a link's capacity in MB/s.
func (fs *FlowSim) capacity(l linkID) float64 {
	switch l.kind {
	case kindLocal:
		return fs.cfg.LocalMBps
	case kindAccess:
		return fs.cfg.AccessMBps
	case kindRackUp:
		return fs.cfg.RackUplinkMBps
	default:
		return fs.cfg.CloudUplinkMBps
	}
}

// Active returns the number of in-flight flows.
func (fs *FlowSim) Active() int { return len(fs.flows) }

// StartFlow launches a transfer of sizeMB from src to dst; done fires on
// the engine when the last byte lands. Zero-size transfers complete after
// the path latency alone.
func (fs *FlowSim) StartFlow(src, dst topology.NodeID, sizeMB float64, done func(now float64)) (*Flow, error) {
	if sizeMB < 0 {
		return nil, fmt.Errorf("netmodel: negative flow size %v", sizeMB)
	}
	lat := fs.latency(src, dst)
	if sizeMB == 0 {
		_, err := fs.engine.After(lat, done)
		return nil, err
	}
	f := &Flow{
		ID:        fs.nextID,
		Src:       src,
		Dst:       dst,
		remaining: sizeMB,
		links:     fs.path(src, dst),
		done:      done,
		started:   fs.engine.Now(),
		lastTouch: fs.engine.Now() + lat,
	}
	fs.nextID++
	// The flow's bytes begin moving after the path latency; model the
	// latency by delaying activation.
	if lat > 0 {
		_, err := fs.engine.After(lat, func(float64) { fs.activate(f) })
		if err != nil {
			return nil, err
		}
		return f, nil
	}
	fs.activate(f)
	return f, nil
}

func (fs *FlowSim) activate(f *Flow) {
	f.lastTouch = fs.engine.Now()
	fs.flows[f.ID] = f
	fs.reshare()
}

// progress advances every active flow's remaining bytes to the current
// instant under its last rate assignment.
func (fs *FlowSim) progress() {
	now := fs.engine.Now()
	for _, f := range fs.flows {
		dt := now - f.lastTouch
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
			f.lastTouch = now
		}
	}
}

// reshare recomputes max-min fair rates (progressive filling) and
// reschedules completion events. Called after any flow set change. All
// iteration is over explicitly sorted slices: with ties in the fair-share
// computation, map iteration order would otherwise leak nondeterminism
// into completion times and break reproducible simulations.
func (fs *FlowSim) reshare() {
	fs.progress()
	// Deterministic flow order.
	flowIDs := make([]int, 0, len(fs.flows))
	for id := range fs.flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Ints(flowIDs)
	// Progressive filling.
	type linkState struct {
		id    linkID
		cap   float64
		flows []*Flow
	}
	links := make(map[linkID]*linkState)
	var linkOrder []*linkState
	for _, id := range flowIDs {
		f := fs.flows[id]
		f.rate = -1 // unfrozen
		for _, l := range f.links {
			st := links[l]
			if st == nil {
				st = &linkState{id: l, cap: fs.capacity(l)}
				links[l] = st
				linkOrder = append(linkOrder, st)
			}
			st.flows = append(st.flows, f)
		}
	}
	sort.Slice(linkOrder, func(a, b int) bool {
		if linkOrder[a].id.kind != linkOrder[b].id.kind {
			return linkOrder[a].id.kind < linkOrder[b].id.kind
		}
		return linkOrder[a].id.id < linkOrder[b].id.id
	})
	unfrozen := len(fs.flows)
	for unfrozen > 0 {
		// Find the bottleneck: the link with the smallest fair share among
		// its unfrozen flows. Ties resolve to the first link in the fixed
		// (kind, id) order.
		var bottleneck *linkState
		share := math.Inf(1)
		for _, st := range linkOrder {
			n := 0
			for _, f := range st.flows {
				if f.rate < 0 {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if s := st.cap / float64(n); s < share {
				share = s
				bottleneck = st
			}
		}
		if bottleneck == nil {
			break // all remaining flows unconstrained (cannot happen: every flow has links)
		}
		// Freeze that link's unfrozen flows at the fair share and charge
		// their rate to every other link they cross.
		for _, f := range bottleneck.flows {
			if f.rate >= 0 {
				continue
			}
			f.rate = share
			unfrozen--
			for _, l := range f.links {
				if st := links[l]; st != bottleneck {
					st.cap -= share
					if st.cap < 0 {
						st.cap = 0
					}
				}
			}
		}
		bottleneck.cap = 0
	}
	// Reschedule completions in flow-ID order so equal ETAs enqueue
	// deterministically.
	now := fs.engine.Now()
	for _, id := range flowIDs {
		f := fs.flows[id]
		if f.event != nil {
			fs.engine.Cancel(f.event)
			f.event = nil
		}
		if f.rate <= 0 {
			continue // starved; will be rescheduled on the next reshare
		}
		eta := f.remaining / f.rate
		flow := f
		ev, err := fs.engine.At(now+eta, func(nowAt float64) { fs.finish(flow, nowAt) })
		if err == nil {
			f.event = ev
		}
	}
}

func (fs *FlowSim) finish(f *Flow, now float64) {
	f.remaining = 0
	f.event = nil
	delete(fs.flows, f.ID)
	done := f.done
	fs.reshare()
	if done != nil {
		done(now)
	}
}

// UncontendedTime estimates a transfer's duration with no competing
// traffic: latency + size over the path's narrowest link.
func (fs *FlowSim) UncontendedTime(src, dst topology.NodeID, sizeMB float64) float64 {
	lat := fs.latency(src, dst)
	if sizeMB == 0 {
		return lat
	}
	bw := math.Inf(1)
	for _, l := range fs.path(src, dst) {
		if c := fs.capacity(l); c < bw {
			bw = c
		}
	}
	return lat + sizeMB/bw
}
