package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/topology"
)

func plant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(2, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func sim(t *testing.T, tp *topology.Topology) (*eventsim.Engine, *FlowSim) {
	t.Helper()
	e := eventsim.New()
	fs, err := NewFlowSim(e, tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, fs
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.AccessMBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero access capacity accepted")
	}
	bad = DefaultConfig()
	bad.LatencyCrossRack = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	e := eventsim.New()
	if _, err := NewFlowSim(e, plant(t), bad); err == nil {
		t.Error("NewFlowSim accepted bad config")
	}
}

func TestSingleFlowIntraRack(t *testing.T) {
	tp := plant(t)
	e, fs := sim(t, tp)
	cfg := DefaultConfig()
	var finished float64
	if _, err := fs.StartFlow(0, 1, 120, func(now float64) { finished = now }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// 120 MB over a 120 MB/s access link + same-rack latency.
	want := cfg.LatencySameRack + 1.0
	if math.Abs(finished-want) > 1e-6 {
		t.Errorf("finished at %v, want %v", finished, want)
	}
}

func TestSameNodeFlowUsesLocalRate(t *testing.T) {
	tp := plant(t)
	e, fs := sim(t, tp)
	cfg := DefaultConfig()
	var finished float64
	_, _ = fs.StartFlow(2, 2, 400, func(now float64) { finished = now })
	e.Run()
	want := 400 / cfg.LocalMBps // no latency for same node
	if math.Abs(finished-want) > 1e-6 {
		t.Errorf("finished at %v, want %v", finished, want)
	}
}

func TestZeroSizeFlowIsLatencyOnly(t *testing.T) {
	tp := plant(t)
	e, fs := sim(t, tp)
	cfg := DefaultConfig()
	var finished float64
	_, _ = fs.StartFlow(0, 3, 0, func(now float64) { finished = now })
	e.Run()
	if math.Abs(finished-cfg.LatencyCrossRack) > 1e-9 {
		t.Errorf("finished at %v, want latency %v", finished, cfg.LatencyCrossRack)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	tp := plant(t)
	_, fs := sim(t, tp)
	if _, err := fs.StartFlow(0, 1, -5, nil); err == nil {
		t.Error("negative size accepted")
	}
}

func TestTwoFlowsShareAccessLink(t *testing.T) {
	// Two flows out of the same source node share its access link and
	// each should get half the bandwidth.
	tp := plant(t)
	e, fs := sim(t, tp)
	var f1, f2 float64
	_, _ = fs.StartFlow(0, 1, 60, func(now float64) { f1 = now })
	_, _ = fs.StartFlow(0, 2, 60, func(now float64) { f2 = now })
	e.Run()
	// Each gets 60 MB/s until one finishes; both 60 MB → both ≈ 1 s (plus
	// latency). Without sharing they would take 0.5 s.
	if f1 < 0.9 || f2 < 0.9 {
		t.Errorf("flows finished at %v and %v; sharing not applied", f1, f2)
	}
	if f1 > 1.1 || f2 > 1.1 {
		t.Errorf("flows finished at %v and %v; too slow", f1, f2)
	}
}

func TestBandwidthFreesUpWhenFlowEnds(t *testing.T) {
	tp := plant(t)
	e, fs := sim(t, tp)
	var short, long float64
	// Short flow shares with long flow; after it ends, the long flow
	// speeds up.
	_, _ = fs.StartFlow(0, 1, 30, func(now float64) { short = now })
	_, _ = fs.StartFlow(0, 2, 90, func(now float64) { long = now })
	e.Run()
	// Phase 1: both at 60 MB/s. Short (30 MB) done at ≈0.5s; long has
	// 60 MB left, now at 120 MB/s → +0.5s ⇒ ≈1.0s total.
	if math.Abs(short-0.5) > 0.01 {
		t.Errorf("short finished at %v, want ≈0.5", short)
	}
	if math.Abs(long-1.0) > 0.02 {
		t.Errorf("long finished at %v, want ≈1.0", long)
	}
}

func TestCrossRackUplinkContention(t *testing.T) {
	// Three cross-rack flows from distinct sources into distinct
	// destinations share the 300 MB/s rack uplink: 100 MB/s each, slower
	// than their 120 MB/s access links.
	tp := plant(t)
	e, fs := sim(t, tp)
	var done [3]float64
	for i := 0; i < 3; i++ {
		i := i
		// Sources 0,1,2 in rack 0 → destinations 3,4,5 in rack 1.
		_, _ = fs.StartFlow(topology.NodeID(i), topology.NodeID(3+i), 100, func(now float64) { done[i] = now })
	}
	e.Run()
	for i, d := range done {
		if math.Abs(d-1.0) > 0.02 { // 100 MB at 100 MB/s
			t.Errorf("flow %d finished at %v, want ≈1.0", i, d)
		}
	}
}

func TestIntraRackAvoidsUplink(t *testing.T) {
	// Three intra-rack flows between disjoint node pairs never touch the
	// uplink: each runs at full access speed.
	tp, err := topology.Uniform(1, 1, 6, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	e := eventsim.New()
	fs, err := NewFlowSim(e, tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var done [3]float64
	for i := 0; i < 3; i++ {
		i := i
		_, _ = fs.StartFlow(topology.NodeID(2*i), topology.NodeID(2*i+1), 120, func(now float64) { done[i] = now })
	}
	e.Run()
	for i, d := range done {
		if math.Abs(d-1.0) > 0.01 {
			t.Errorf("flow %d finished at %v, want ≈1.0 (no contention)", i, d)
		}
	}
}

func TestAllToOneIncast(t *testing.T) {
	// Five senders into one receiver: the receiver's access link is the
	// bottleneck (120/5 = 24 MB/s each) — the shuffle incast pattern that
	// makes single-reducer jobs network-bound.
	tp, err := topology.Uniform(1, 1, 6, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	e := eventsim.New()
	fs, err := NewFlowSim(e, tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 1; i <= 5; i++ {
		_, _ = fs.StartFlow(topology.NodeID(i), 0, 24, func(now float64) { last = now })
	}
	e.Run()
	if math.Abs(last-1.0) > 0.02 {
		t.Errorf("incast finished at %v, want ≈1.0", last)
	}
}

func TestCrossCloudPath(t *testing.T) {
	tp := plant(t)
	e, fs := sim(t, tp)
	cfg := DefaultConfig()
	var finished float64
	// Node 0 (cloud 0) → node 6 (cloud 1): the 120 MB/s access links are
	// narrower than the 150 MB/s cloud uplink.
	_, _ = fs.StartFlow(0, 6, 150, func(now float64) { finished = now })
	e.Run()
	want := cfg.LatencyCrossCloud + 150.0/120.0
	if math.Abs(finished-want) > 0.01 {
		t.Errorf("finished at %v, want %v", finished, want)
	}
}

func TestUncontendedTime(t *testing.T) {
	tp := plant(t)
	_, fs := sim(t, tp)
	cfg := DefaultConfig()
	cases := []struct {
		src, dst topology.NodeID
		mb       float64
		want     float64
	}{
		{0, 0, 400, 1.0},                                 // local 400 MB/s
		{0, 1, 120, cfg.LatencySameRack + 1.0},           // access-bound
		{0, 3, 120, cfg.LatencyCrossRack + 1.0},          // uplink 300 > access 120
		{0, 6, 150, cfg.LatencyCrossCloud + 150.0/120.0}, // access-bound even cross-cloud
		{0, 5, 0, cfg.LatencyCrossRack},                  // latency only
	}
	for _, c := range cases {
		if got := fs.UncontendedTime(c.src, c.dst, c.mb); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("UncontendedTime(%d,%d,%v) = %v, want %v", c.src, c.dst, c.mb, got, c.want)
		}
	}
}

func TestActiveCount(t *testing.T) {
	tp := plant(t)
	e, fs := sim(t, tp)
	_, _ = fs.StartFlow(0, 1, 120, nil)
	_, _ = fs.StartFlow(1, 2, 120, nil)
	// Flows activate after latency; run a hair forward.
	e.RunUntil(0.001)
	if fs.Active() != 2 {
		t.Errorf("Active = %d, want 2", fs.Active())
	}
	e.Run()
	if fs.Active() != 0 {
		t.Errorf("Active after drain = %d", fs.Active())
	}
}

// Property: every flow eventually completes, completion times are
// positive, and no flow beats its own uncontended lower bound.
func TestQuickFlowsRespectUncontendedBound(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := eventsim.New()
		fs, err := NewFlowSim(e, tp, DefaultConfig())
		if err != nil {
			return false
		}
		type rec struct {
			bound float64
			done  float64
		}
		n := 2 + r.Intn(10)
		recs := make([]*rec, n)
		for i := 0; i < n; i++ {
			src := topology.NodeID(r.Intn(tp.Nodes()))
			dst := topology.NodeID(r.Intn(tp.Nodes()))
			size := 1 + r.Float64()*200
			rc := &rec{bound: fs.UncontendedTime(src, dst, size)}
			recs[i] = rc
			if _, err := fs.StartFlow(src, dst, size, func(now float64) { rc.done = now }); err != nil {
				return false
			}
		}
		e.Run()
		if fs.Active() != 0 {
			return false
		}
		for _, rc := range recs {
			if rc.done <= 0 {
				return false // never completed
			}
			if rc.done < rc.bound-1e-6 {
				return false // faster than physics allows
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestManyFlowsConservation(t *testing.T) {
	// Throughput sanity: 12 concurrent same-rack flows from 6 distinct
	// sources to 6 distinct destinations cannot finish faster than the
	// aggregate access capacity allows.
	tp, err := topology.Uniform(1, 1, 12, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	e := eventsim.New()
	fs, err := NewFlowSim(e, tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	totalMB := 0.0
	var last float64
	for i := 0; i < 6; i++ {
		size := 60.0
		totalMB += size
		_, _ = fs.StartFlow(topology.NodeID(i), topology.NodeID(6+i), size, func(now float64) { last = now })
	}
	e.Run()
	// Each pair is independent: 60 MB at 120 MB/s = 0.5 s.
	if math.Abs(last-0.5) > 0.01 {
		t.Errorf("last finished at %v, want ≈0.5", last)
	}
	_ = totalMB
}
