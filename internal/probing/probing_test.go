package probing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"affinitycluster/internal/topology"
)

func groundTruth(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(2, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0, Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
	e, err := NewEstimator(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Coverage() != 0 {
		t.Errorf("fresh coverage = %v", e.Coverage())
	}
}

func TestObserveAndEstimate(t *testing.T) {
	e, _ := NewEstimator(4, Config{Alpha: 0.5})
	if _, ok := e.Estimate(0, 1); ok {
		t.Error("estimate before any sample")
	}
	if err := e.Observe(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Estimate(0, 1); !ok || got != 10 {
		t.Errorf("estimate = %v, %v", got, ok)
	}
	// Symmetric access.
	if got, ok := e.Estimate(1, 0); !ok || got != 10 {
		t.Errorf("symmetric estimate = %v, %v", got, ok)
	}
	// EWMA with alpha 0.5: 10 then 20 → 15.
	if err := e.Observe(1, 0, 20); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Estimate(0, 1); got != 15 {
		t.Errorf("EWMA = %v, want 15", got)
	}
}

func TestObserveRejectsBadInput(t *testing.T) {
	e, _ := NewEstimator(3, Config{})
	if err := e.Observe(0, 0, 1); err == nil {
		t.Error("self pair accepted")
	}
	if err := e.Observe(0, 9, 1); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := e.Observe(0, 1, -1); err == nil {
		t.Error("negative latency accepted")
	}
	if err := e.Observe(0, 1, math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	if err := e.Timeout(9); err == nil {
		t.Error("out-of-range timeout accepted")
	}
}

func TestDownDetectionAndRecovery(t *testing.T) {
	e, _ := NewEstimator(3, Config{DownAfter: 2})
	_ = e.Timeout(1)
	if e.IsDown(1) {
		t.Error("down after one timeout")
	}
	_ = e.Timeout(1)
	if !e.IsDown(1) {
		t.Error("not down after DownAfter timeouts")
	}
	if got := e.DownNodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("DownNodes = %v", got)
	}
	// A successful probe revives the node.
	if err := e.Observe(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if e.IsDown(1) {
		t.Error("still down after successful probe")
	}
	if e.IsDown(99) {
		t.Error("out-of-range IsDown true")
	}
}

func TestFilterCapacities(t *testing.T) {
	e, _ := NewEstimator(3, Config{DownAfter: 1})
	_ = e.Timeout(1)
	caps := [][]int{{2, 1}, {3, 3}, {1, 0}}
	filtered, err := e.FilterCapacities(caps)
	if err != nil {
		t.Fatal(err)
	}
	if filtered[1][0] != 0 || filtered[1][1] != 0 {
		t.Errorf("down node not zeroed: %v", filtered[1])
	}
	if filtered[0][0] != 2 || filtered[2][0] != 1 {
		t.Error("healthy rows changed")
	}
	if caps[1][0] != 3 {
		t.Error("input mutated")
	}
	if _, err := e.FilterCapacities([][]int{{1}}); err == nil {
		t.Error("wrong-shape capacities accepted")
	}
}

func TestSamplerValidation(t *testing.T) {
	tp := groundTruth(t)
	if _, err := NewSampler(tp, 1, -0.1); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NewSampler(tp, 1, 1.0); err == nil {
		t.Error("noise 1.0 accepted")
	}
}

func TestSamplerNoiseAndDowns(t *testing.T) {
	tp := groundTruth(t)
	s, err := NewSampler(tp, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	lat, ok := s.Sample(0, 1)
	if !ok {
		t.Fatal("probe failed")
	}
	base := tp.Distance(0, 1)
	if lat < base*0.9-1e-9 || lat > base*1.1+1e-9 {
		t.Errorf("latency %v outside ±10%% of %v", lat, base)
	}
	s.SetDown(1, true)
	if _, ok := s.Sample(0, 1); ok {
		t.Error("probe to down node succeeded")
	}
	s.SetDown(1, false)
	if _, ok := s.Sample(0, 1); !ok {
		t.Error("probe after revival failed")
	}
}

func TestInferTopologyRecoversGroundTruth(t *testing.T) {
	tp := groundTruth(t) // 2 clouds × 2 racks × 3 nodes
	s, err := NewSampler(tp, 7, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(tp.Nodes(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Campaign(e, 8); err != nil {
		t.Fatal(err)
	}
	if e.Coverage() != 1 {
		t.Fatalf("coverage = %v", e.Coverage())
	}
	inferred, err := e.InferTopology()
	if err != nil {
		t.Fatal(err)
	}
	if inferred.Nodes() != tp.Nodes() {
		t.Fatalf("nodes = %d", inferred.Nodes())
	}
	if inferred.Racks() != tp.Racks() {
		t.Errorf("racks = %d, want %d", inferred.Racks(), tp.Racks())
	}
	if inferred.Clouds() != tp.Clouds() {
		t.Errorf("clouds = %d, want %d", inferred.Clouds(), tp.Clouds())
	}
	// Groupings match exactly.
	for i := 0; i < tp.Nodes(); i++ {
		for j := i + 1; j < tp.Nodes(); j++ {
			a, b := topology.NodeID(i), topology.NodeID(j)
			if tp.SameRack(a, b) != inferred.SameRack(a, b) {
				t.Errorf("rack co-membership (%d,%d) wrong", i, j)
			}
			if (tp.CloudOf(a) == tp.CloudOf(b)) != (inferred.CloudOf(a) == inferred.CloudOf(b)) {
				t.Errorf("cloud co-membership (%d,%d) wrong", i, j)
			}
		}
	}
	// Distances are valid and near the true tiers.
	if err := inferred.Distances().Validate(); err != nil {
		t.Fatal(err)
	}
	d := inferred.Distances()
	truth := tp.Distances()
	if math.Abs(d.SameRack-truth.SameRack) > 0.2*truth.SameRack {
		t.Errorf("inferred d1 = %v, truth %v", d.SameRack, truth.SameRack)
	}
	if math.Abs(d.CrossRack-truth.CrossRack) > 0.2*truth.CrossRack {
		t.Errorf("inferred d2 = %v, truth %v", d.CrossRack, truth.CrossRack)
	}
}

func TestInferTopologySingleRack(t *testing.T) {
	tp, err := topology.Uniform(1, 1, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSampler(tp, 3, 0.1)
	e, _ := NewEstimator(tp.Nodes(), Config{})
	if err := s.Campaign(e, 5); err != nil {
		t.Fatal(err)
	}
	inferred, err := e.InferTopology()
	if err != nil {
		t.Fatal(err)
	}
	if inferred.Racks() != 1 || inferred.Clouds() != 1 {
		t.Errorf("single-rack inference: %d racks, %d clouds", inferred.Racks(), inferred.Clouds())
	}
}

func TestInferTopologySingleNode(t *testing.T) {
	e, _ := NewEstimator(1, Config{})
	inferred, err := e.InferTopology()
	if err != nil {
		t.Fatal(err)
	}
	if inferred.Nodes() != 1 {
		t.Error("single node inference wrong")
	}
}

func TestInferTopologyIncomplete(t *testing.T) {
	e, _ := NewEstimator(3, Config{})
	_ = e.Observe(0, 1, 1)
	if _, err := e.InferTopology(); !errors.Is(err, ErrIncomplete) {
		t.Errorf("err = %v, want ErrIncomplete", err)
	}
}

func TestCampaignWithDownNode(t *testing.T) {
	tp := groundTruth(t)
	s, _ := NewSampler(tp, 5, 0.1)
	s.SetDown(2, true)
	e, _ := NewEstimator(tp.Nodes(), Config{DownAfter: 3})
	if err := s.Campaign(e, 4); err != nil {
		t.Fatal(err)
	}
	if !e.IsDown(2) {
		t.Error("down node not detected")
	}
	// Healthy pairs still fully covered.
	if _, ok := e.Estimate(0, 1); !ok {
		t.Error("healthy pair unsampled")
	}
}

// Property: topology inference is robust to noise amplitude up to 20% on
// the paper's two-tier plant.
func TestQuickInferenceNoiseRobust(t *testing.T) {
	tp, err := topology.Uniform(1, 3, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, noiseRaw uint8) bool {
		noise := float64(noiseRaw%21) / 100 // 0 … 0.20
		s, err := NewSampler(tp, seed, noise)
		if err != nil {
			return false
		}
		e, err := NewEstimator(tp.Nodes(), Config{})
		if err != nil {
			return false
		}
		if err := s.Campaign(e, 6); err != nil {
			return false
		}
		inferred, err := e.InferTopology()
		if err != nil {
			return false
		}
		for i := 0; i < tp.Nodes(); i++ {
			for j := i + 1; j < tp.Nodes(); j++ {
				if tp.SameRack(topology.NodeID(i), topology.NodeID(j)) !=
					inferred.SameRack(topology.NodeID(i), topology.NodeID(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
