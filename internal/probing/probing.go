// Package probing implements dynamic distance measurement — the paper's
// first future-work item: "the distance between physical nodes ... is
// measured and configured statically in this paper. How to compute their
// values when some VMs are down or reconfigured is critical for the VM
// placement policy."
//
// An Estimator ingests noisy pairwise latency observations (from real
// pings in production; from the seeded Sampler in tests and simulations),
// smooths them with an exponentially weighted moving average, tracks node
// health from probe timeouts, and can re-derive the placement inputs:
//
//   - InferTopology clusters the smoothed latencies into distance tiers
//     (same rack / cross rack / cross cloud) and reconstructs a
//     topology.Topology with rack/cloud groupings, so the placement
//     algorithms can run on *measured* distances instead of static
//     configuration.
//   - FilterCapacities zeroes out the capacity rows of nodes considered
//     down, steering new placements away from them.
package probing

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"affinitycluster/internal/topology"
)

// Config tunes the estimator.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher weights new
	// samples more. Default 0.3.
	Alpha float64
	// DownAfter marks a node down after this many consecutive probe
	// timeouts. Default 3.
	DownAfter int
	// TierGapRatio is the minimum multiplicative gap between consecutive
	// sorted latencies that can separate two distance tiers; among gaps
	// above it, the largest (up to two) become tier boundaries. The
	// default 1.3 separates ×2-apart tiers under ±20% probe noise while
	// tolerating within-tier spread. Default 1.3.
	TierGapRatio float64
}

func (c *Config) fill() {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.TierGapRatio <= 1 {
		c.TierGapRatio = 1.3
	}
}

// Estimator accumulates latency observations for n nodes.
type Estimator struct {
	cfg      Config
	n        int
	ewma     []float64 // packed upper triangle, -1 = no sample yet
	timeouts []int     // consecutive timeouts per node
	down     []bool
}

// NewEstimator creates an estimator for n nodes.
func NewEstimator(n int, cfg Config) (*Estimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("probing: NewEstimator(%d) needs at least one node", n)
	}
	cfg.fill()
	e := &Estimator{
		cfg:      cfg,
		n:        n,
		ewma:     make([]float64, n*(n-1)/2),
		timeouts: make([]int, n),
		down:     make([]bool, n),
	}
	for i := range e.ewma {
		e.ewma[i] = -1
	}
	return e, nil
}

// idx maps an unordered pair to its triangle slot.
func (e *Estimator) idx(a, b topology.NodeID) (int, error) {
	i, j := int(a), int(b)
	if i < 0 || i >= e.n || j < 0 || j >= e.n || i == j {
		return 0, fmt.Errorf("probing: bad node pair (%d, %d)", a, b)
	}
	if i > j {
		i, j = j, i
	}
	// Row-major upper triangle without the diagonal.
	return i*e.n - i*(i+1)/2 + (j - i - 1), nil
}

// Observe records a successful latency probe between two nodes and
// clears their timeout counters.
func (e *Estimator) Observe(a, b topology.NodeID, latency float64) error {
	if latency < 0 || math.IsNaN(latency) || math.IsInf(latency, 0) {
		return fmt.Errorf("probing: bad latency %v", latency)
	}
	k, err := e.idx(a, b)
	if err != nil {
		return err
	}
	if e.ewma[k] < 0 {
		e.ewma[k] = latency
	} else {
		e.ewma[k] = e.cfg.Alpha*latency + (1-e.cfg.Alpha)*e.ewma[k]
	}
	for _, id := range []topology.NodeID{a, b} {
		e.timeouts[id] = 0
		if e.down[id] {
			e.down[id] = false
		}
	}
	return nil
}

// Timeout records a failed probe toward a node; DownAfter consecutive
// timeouts mark it down.
func (e *Estimator) Timeout(node topology.NodeID) error {
	if int(node) < 0 || int(node) >= e.n {
		return fmt.Errorf("probing: node %d out of range", node)
	}
	e.timeouts[node]++
	if e.timeouts[node] >= e.cfg.DownAfter {
		e.down[node] = true
	}
	return nil
}

// IsDown reports whether a node is currently considered down.
func (e *Estimator) IsDown(node topology.NodeID) bool {
	return int(node) >= 0 && int(node) < e.n && e.down[int(node)]
}

// DownNodes returns the down set in ID order.
func (e *Estimator) DownNodes() []topology.NodeID {
	var out []topology.NodeID
	for i, d := range e.down {
		if d {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// Estimate returns the smoothed latency for a pair and whether any sample
// exists.
func (e *Estimator) Estimate(a, b topology.NodeID) (float64, bool) {
	k, err := e.idx(a, b)
	if err != nil {
		return 0, false
	}
	if e.ewma[k] < 0 {
		return 0, false
	}
	return e.ewma[k], true
}

// Coverage returns the fraction of pairs with at least one sample.
func (e *Estimator) Coverage() float64 {
	if len(e.ewma) == 0 {
		return 1
	}
	have := 0
	for _, v := range e.ewma {
		if v >= 0 {
			have++
		}
	}
	return float64(have) / float64(len(e.ewma))
}

// FilterCapacities returns a copy of caps with down nodes' rows zeroed,
// so placement never lands on unreachable hardware.
func (e *Estimator) FilterCapacities(caps [][]int) ([][]int, error) {
	if len(caps) != e.n {
		return nil, fmt.Errorf("probing: capacities have %d rows, estimator tracks %d nodes", len(caps), e.n)
	}
	out := make([][]int, e.n)
	for i := range caps {
		out[i] = append([]int(nil), caps[i]...)
		if e.down[i] {
			for j := range out[i] {
				out[i][j] = 0
			}
		}
	}
	return out, nil
}

// ErrIncomplete is returned by InferTopology when some pair has never
// been observed; inference needs full coverage.
var ErrIncomplete = errors.New("probing: latency matrix incomplete")

// InferTopology reconstructs the hierarchical topology from the smoothed
// latencies: latencies are clustered into tiers by multiplicative gaps,
// the lowest tier defines rack co-membership (transitively closed), the
// highest tier — when three tiers appear — defines cloud boundaries. The
// returned topology's Distances are the tier medians (with the paper's
// convention SameNode = 0), so placement on it optimizes measured
// distance.
func (e *Estimator) InferTopology() (*topology.Topology, error) {
	if e.n == 1 {
		b := topology.NewBuilder(topology.DefaultDistances())
		b.AddNode("")
		return b.Build()
	}
	all := make([]float64, 0, len(e.ewma))
	for _, v := range e.ewma {
		if v < 0 {
			return nil, ErrIncomplete
		}
		all = append(all, v)
	}
	sort.Float64s(all)
	// Tier boundaries: among adjacent multiplicative gaps exceeding
	// TierGapRatio, keep the (up to two) largest — the hierarchy has at
	// most three inter-node tiers, and picking by gap size instead of
	// first occurrence keeps noise-induced small gaps from splitting a
	// tier.
	type gap struct {
		ratio float64
		mid   float64
	}
	var gaps []gap
	for i := 1; i < len(all); i++ {
		prev := all[i-1]
		if prev <= 0 {
			prev = 1e-12
		}
		if r := all[i] / prev; r >= e.cfg.TierGapRatio {
			gaps = append(gaps, gap{ratio: r, mid: (all[i-1] + all[i]) / 2})
		}
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].ratio > gaps[b].ratio })
	if len(gaps) > 2 {
		gaps = gaps[:2]
	}
	boundaries := make([]float64, 0, 2)
	for _, g := range gaps {
		boundaries = append(boundaries, g.mid)
	}
	sort.Float64s(boundaries)
	tierOf := func(lat float64) int {
		t := 0
		for _, b := range boundaries {
			if lat > b {
				t++
			}
		}
		return t
	}
	// Union-find over the lowest tier → racks.
	rackParent := make([]int, e.n)
	for i := range rackParent {
		rackParent[i] = i
	}
	union := func(parent []int, a, b int) {
		ra, rb := find2(parent, a), find2(parent, b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	cloudParent := make([]int, e.n)
	for i := range cloudParent {
		cloudParent[i] = i
	}
	threeTiers := len(boundaries) == 2
	for i := 0; i < e.n; i++ {
		for j := i + 1; j < e.n; j++ {
			k, _ := e.idx(topology.NodeID(i), topology.NodeID(j))
			t := tierOf(e.ewma[k])
			if t == 0 {
				union(rackParent, i, j)
			}
			if !threeTiers || t <= 1 {
				union(cloudParent, i, j)
			}
		}
	}
	// Tier medians → distances.
	med := func(t int) float64 {
		var vals []float64
		for _, v := range e.ewma {
			if tierOf(v) == t {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return 0
		}
		sort.Float64s(vals)
		return vals[len(vals)/2]
	}
	d1 := med(0)
	d2 := d1 * 2
	d3 := d1 * 4
	if len(boundaries) >= 1 {
		d2 = med(1)
	}
	if threeTiers {
		d3 = med(2)
	}
	// Enforce the strict ordering the model requires.
	if d1 <= 0 {
		d1 = 1e-6
	}
	if d2 <= d1 {
		d2 = d1 * 2
	}
	if d3 <= d2 {
		d3 = d2 * 2
	}
	dist := topology.Distances{SameNode: 0, SameRack: d1, CrossRack: d2, CrossCloud: d3}

	// Group nodes by (cloud root, rack root) and emit in node-ID order so
	// IDs stay dense and deterministic. Topology node IDs must equal the
	// estimator's node IDs, so nodes are emitted grouped but the builder
	// assigns IDs in emission order — we therefore need rack groups that
	// are contiguous in ID order. Real plants satisfy this; for arbitrary
	// estimates we remap: build rack buckets, then emit bucket by bucket
	// and return an ID permutation error if the order would change.
	type key struct{ cloud, rack int }
	buckets := make(map[key][]int)
	var order []key
	seen := make(map[key]bool)
	for i := 0; i < e.n; i++ {
		k := key{find2(cloudParent, i), find2(rackParent, i)}
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], i)
	}
	// Verify contiguity so inferred node IDs match the estimator's.
	next := 0
	for _, k := range order {
		for _, node := range buckets[k] {
			if node != next {
				return nil, fmt.Errorf("probing: inferred rack groups are not contiguous in node-ID order (node %d); renumber nodes or probe more", node)
			}
			next++
		}
	}
	b := topology.NewBuilder(dist)
	lastCloud := -1
	for _, k := range order {
		if k.cloud != lastCloud {
			b.AddCloud()
			lastCloud = k.cloud
		}
		b.AddRack()
		for range buckets[k] {
			b.AddNode("")
		}
	}
	return b.Build()
}

func find2(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// Sampler generates noisy latency probes from a ground-truth topology —
// the simulation stand-in for real pings.
type Sampler struct {
	topo  *topology.Topology
	rng   *rand.Rand
	noise float64 // relative noise amplitude, e.g. 0.1 = ±10%
	base  map[int]float64
	down  map[topology.NodeID]bool
}

// NewSampler builds a sampler with multiplicative uniform noise of the
// given relative amplitude (0 ≤ noise < 1).
func NewSampler(t *topology.Topology, seed int64, noise float64) (*Sampler, error) {
	if noise < 0 || noise >= 1 {
		return nil, fmt.Errorf("probing: noise %v outside [0, 1)", noise)
	}
	return &Sampler{
		topo:  t,
		rng:   rand.New(rand.NewSource(seed)),
		noise: noise,
		down:  make(map[topology.NodeID]bool),
	}, nil
}

// SetDown marks a node as failed: probes involving it time out.
func (s *Sampler) SetDown(node topology.NodeID, down bool) {
	if down {
		s.down[node] = true
	} else {
		delete(s.down, node)
	}
}

// Sample probes one pair; ok is false on timeout (either endpoint down).
func (s *Sampler) Sample(a, b topology.NodeID) (latency float64, ok bool) {
	if s.down[a] || s.down[b] {
		return 0, false
	}
	base := s.topo.Distance(a, b)
	if a != b && base == 0 {
		base = 1e-6
	}
	jitter := 1 + s.noise*(2*s.rng.Float64()-1)
	return base * jitter, true
}

// Campaign probes every pair `rounds` times, feeding the estimator
// (successes via Observe, timeouts via Timeout).
func (s *Sampler) Campaign(e *Estimator, rounds int) error {
	n := s.topo.Nodes()
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := topology.NodeID(i), topology.NodeID(j)
				lat, ok := s.Sample(a, b)
				if !ok {
					for _, v := range []topology.NodeID{a, b} {
						if s.down[v] {
							if err := e.Timeout(v); err != nil {
								return err
							}
						}
					}
					continue
				}
				if err := e.Observe(a, b, lat); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
