// Package faults generates deterministic, seeded fault schedules for the
// cloud simulator: node crashes, rack outages, and the repairs that undo
// them, all timestamped in eventsim virtual time. The paper's operational
// setting is a live cloud where "requests will arrive and their job will
// finish randomly" (Section V.A) and lists reacting to reconfiguration as
// future work; this package supplies the missing axis — nodes that fail
// and come back — as plain data the simulator replays.
//
// A fault plan is a pure function of (seed, topology, Config): the same
// inputs always produce the same event list, so instrumented fault runs
// keep the repo's same-seed ⇒ byte-identical contract. Overlap is
// resolved at generation time (a node already down when a failure fires
// is excluded from it), which keeps replay trivial: the consumer never
// sees a crash for a node that is not up.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"affinitycluster/internal/topology"
)

// Kind classifies one fault event.
type Kind int

const (
	// NodeCrash fails a single node: its capacity drops to zero and the
	// VMs hosted there are lost.
	NodeCrash Kind = iota
	// RackOutage fails every currently-up node of one rack at once — the
	// correlated failure mode (shared switch or PDU) that rack-aware
	// placement exists to survive.
	RackOutage
	// Repair restores the capacity removed by the crash or outage with
	// the same FailureID.
	Repair
)

func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node_crash"
	case RackOutage:
		return "rack_outage"
	case Repair:
		return "repair"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault: a crash or outage taking Nodes down at
// Time, or the repair bringing them back. Crash and repair share a
// FailureID, so consumers can pair them without extra bookkeeping.
type Event struct {
	Time      float64
	Kind      Kind
	FailureID int
	// Nodes are the affected nodes, ascending. A RackOutage lists only
	// the rack's nodes that were up when it fired.
	Nodes []topology.NodeID
	// Rack is the failed rack for RackOutage events (and their repairs),
	// -1 otherwise.
	Rack int
}

// Config parameterizes the fault process. The zero value disables
// injection entirely.
type Config struct {
	// MTBF is the mean time between failures (exponential inter-failure
	// gaps), in simulation seconds. MTBF <= 0 disables fault injection.
	MTBF float64
	// MTTR is the mean time to repair one failure (exponential), in
	// simulation seconds. Required > 0 when MTBF > 0.
	MTTR float64
	// Horizon bounds the injection window: no failure fires after it
	// (repairs may). Required > 0 when MTBF > 0, so a fault-enabled run
	// always terminates.
	Horizon float64
	// MaxFailures caps the number of injected failures (0 = bounded only
	// by Horizon).
	MaxFailures int
	// RackEvery promotes every k-th failure to a rack outage of the
	// victim's rack (0 = node crashes only).
	RackEvery int
}

// Enabled reports whether the configuration injects any faults.
func (c Config) Enabled() bool { return c.MTBF > 0 }

// Validate checks an enabled configuration for usable parameters.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if math.IsNaN(c.MTBF) || math.IsInf(c.MTBF, 0) {
		return errors.New("faults: MTBF must be finite")
	}
	if !(c.MTTR > 0) || math.IsInf(c.MTTR, 0) {
		return fmt.Errorf("faults: MTTR must be positive and finite, got %v", c.MTTR)
	}
	if !(c.Horizon > 0) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("faults: Horizon must be positive and finite, got %v", c.Horizon)
	}
	if c.MaxFailures < 0 {
		return fmt.Errorf("faults: negative MaxFailures %d", c.MaxFailures)
	}
	if c.RackEvery < 0 {
		return fmt.Errorf("faults: negative RackEvery %d", c.RackEvery)
	}
	return nil
}

// Plan generates the fault schedule for a topology: crash/outage events
// with their paired repairs, sorted by time (generation order breaks
// ties). Determinism is structural — one seeded generator, drawn in a
// fixed order — so equal inputs yield equal plans.
func Plan(seed int64, tp *topology.Topology, cfg Config) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if tp == nil || tp.Nodes() == 0 {
		return nil, errors.New("faults: nil or empty topology")
	}
	rng := rand.New(rand.NewSource(seed))
	downUntil := make([]float64, tp.Nodes())
	var events []Event
	t := 0.0
	failures := 0
	for draws := 0; ; draws++ {
		t += exponential(rng, cfg.MTBF)
		if t > cfg.Horizon {
			break
		}
		if cfg.MaxFailures > 0 && failures >= cfg.MaxFailures {
			break
		}
		victim := topology.NodeID(rng.Intn(tp.Nodes()))
		kind := NodeCrash
		rack := -1
		candidates := []topology.NodeID{victim}
		if cfg.RackEvery > 0 && (draws+1)%cfg.RackEvery == 0 {
			kind = RackOutage
			rack = tp.RackOf(victim)
			candidates = tp.RackNodes(rack)
		}
		repairAt := t + exponential(rng, cfg.MTTR)
		var nodes []topology.NodeID
		for _, n := range candidates {
			if downUntil[n] <= t {
				nodes = append(nodes, n)
			}
		}
		if len(nodes) == 0 {
			// Every candidate is already down; the failure is absorbed by
			// the outage in progress. The rng draws above still happened,
			// so the rest of the schedule is unaffected by this skip.
			continue
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			downUntil[n] = repairAt
		}
		events = append(events,
			Event{Time: t, Kind: kind, FailureID: failures, Nodes: nodes, Rack: rack},
			Event{Time: repairAt, Kind: Repair, FailureID: failures, Nodes: nodes, Rack: rack})
		failures++
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events, nil
}

// Failures counts the crash/outage events of a plan (repairs excluded).
func Failures(plan []Event) int {
	n := 0
	for _, ev := range plan {
		if ev.Kind != Repair {
			n++
		}
	}
	return n
}

// exponential draws from Exp(mean) by inverse transform, mirroring
// package workload: explicit rather than rand.ExpFloat64 so seed usage
// is stable across Go releases of the ziggurat tables.
func exponential(r *rand.Rand, mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
