package faults

import (
	"reflect"
	"testing"

	"affinitycluster/internal/topology"
)

func testPlant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 3, 10, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func cfg() Config {
	return Config{MTBF: 100, MTTR: 50, Horizon: 1000, RackEvery: 3}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	bad := []Config{
		{MTBF: 10},                                  // no MTTR
		{MTBF: 10, MTTR: -1, Horizon: 10},           // negative MTTR
		{MTBF: 10, MTTR: 5},                         // no horizon
		{MTBF: 10, MTTR: 5, Horizon: 10, RackEvery: -1},
		{MTBF: 10, MTTR: 5, Horizon: 10, MaxFailures: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	tp := testPlant(t)
	a, err := Plan(7, tp, cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(7, tp, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
	c, err := Plan(8, tp, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans (suspicious)")
	}
	if len(a) == 0 {
		t.Fatal("plan is empty; tune the test config")
	}
}

func TestPlanPairsCrashesWithRepairs(t *testing.T) {
	tp := testPlant(t)
	plan, err := Plan(42, tp, cfg())
	if err != nil {
		t.Fatal(err)
	}
	crashes := map[int]Event{}
	repairs := map[int]Event{}
	for _, ev := range plan {
		if ev.Kind == Repair {
			repairs[ev.FailureID] = ev
		} else {
			crashes[ev.FailureID] = ev
		}
	}
	if len(crashes) == 0 || len(crashes) != len(repairs) {
		t.Fatalf("crashes %d, repairs %d", len(crashes), len(repairs))
	}
	for id, c := range crashes {
		r, ok := repairs[id]
		if !ok {
			t.Fatalf("failure %d has no repair", id)
		}
		if r.Time <= c.Time {
			t.Errorf("failure %d repaired at %v before crash at %v", id, r.Time, c.Time)
		}
		if !reflect.DeepEqual(r.Nodes, c.Nodes) {
			t.Errorf("failure %d repair nodes %v != crash nodes %v", id, r.Nodes, c.Nodes)
		}
	}
}

// No node may crash while already down: crash intervals of one node must
// not overlap.
func TestPlanNoOverlappingFailuresPerNode(t *testing.T) {
	tp := testPlant(t)
	c := cfg()
	c.MTBF = 20 // dense failures to stress overlap handling
	plan, err := Plan(3, tp, c)
	if err != nil {
		t.Fatal(err)
	}
	downUntil := map[topology.NodeID]float64{}
	for _, ev := range plan {
		if ev.Kind == Repair {
			continue
		}
		repair := findRepair(t, plan, ev.FailureID)
		for _, n := range ev.Nodes {
			if ev.Time < downUntil[n] {
				t.Fatalf("node %d crashes at %v while down until %v", n, ev.Time, downUntil[n])
			}
			downUntil[n] = repair.Time
		}
	}
}

func findRepair(t *testing.T, plan []Event, id int) Event {
	t.Helper()
	for _, ev := range plan {
		if ev.Kind == Repair && ev.FailureID == id {
			return ev
		}
	}
	t.Fatalf("no repair for failure %d", id)
	return Event{}
}

func TestPlanRackOutagesStayInOneRack(t *testing.T) {
	tp := testPlant(t)
	plan, err := Plan(11, tp, cfg())
	if err != nil {
		t.Fatal(err)
	}
	sawRack := false
	for _, ev := range plan {
		switch ev.Kind {
		case RackOutage:
			sawRack = true
			if ev.Rack < 0 {
				t.Error("rack outage with no rack")
			}
			for _, n := range ev.Nodes {
				if tp.RackOf(n) != ev.Rack {
					t.Errorf("outage of rack %d includes node %d of rack %d", ev.Rack, n, tp.RackOf(n))
				}
			}
		case NodeCrash:
			if len(ev.Nodes) != 1 || ev.Rack != -1 {
				t.Errorf("node crash shape wrong: %+v", ev)
			}
		}
	}
	if !sawRack {
		t.Error("RackEvery=3 produced no rack outage; tune the test config")
	}
	if Failures(plan) == 0 {
		t.Error("no failures counted")
	}
}

func TestPlanHorizonAndCap(t *testing.T) {
	tp := testPlant(t)
	c := cfg()
	c.MaxFailures = 2
	plan, err := Plan(5, tp, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := Failures(plan); got > 2 {
		t.Errorf("MaxFailures=2 but %d failures planned", got)
	}
	for _, ev := range plan {
		if ev.Kind != Repair && ev.Time > c.Horizon {
			t.Errorf("failure at %v beyond horizon %v", ev.Time, c.Horizon)
		}
	}
	if plan2, _ := Plan(5, tp, Config{}); plan2 != nil {
		t.Error("disabled config produced a plan")
	}
}
