package vcluster

import (
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/topology"
)

func plant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestFromAllocation(t *testing.T) {
	tp := plant(t)
	// Node 0: 2 small + 1 medium; node 2 (rack 1): 1 small.
	a := affinity.Allocation{{2, 1}, {0, 0}, {1, 0}, {0, 0}}
	c, err := FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4", c.Size())
	}
	// Ordered by node then type: VMs 0,1 small on node 0; VM 2 medium on
	// node 0; VM 3 small on node 2.
	if c.VM(0).Node != 0 || c.VM(0).Type != 0 {
		t.Errorf("VM 0 = %+v", c.VM(0))
	}
	if c.VM(2).Node != 0 || c.VM(2).Type != 1 {
		t.Errorf("VM 2 = %+v", c.VM(2))
	}
	if c.VM(3).Node != 2 || c.VM(3).Type != 0 {
		t.Errorf("VM 3 = %+v", c.VM(3))
	}
	if len(c.VMs()) != 4 {
		t.Error("VMs() length wrong")
	}
	if c.Topology() != tp {
		t.Error("Topology() wrong")
	}
}

func TestFromAllocationErrors(t *testing.T) {
	tp := plant(t)
	if _, err := FromAllocation(tp, affinity.Allocation{{1}}); err == nil {
		t.Error("short allocation accepted")
	}
	if _, err := FromAllocation(tp, affinity.Allocation{{-1}, {0}, {0}, {0}}); err == nil {
		t.Error("negative allocation accepted")
	}
	if _, err := FromAllocation(tp, affinity.NewAllocation(4, 2)); err == nil {
		t.Error("empty allocation accepted")
	}
}

func TestDistanceAndLocality(t *testing.T) {
	tp := plant(t)
	a := affinity.Allocation{{2, 0}, {1, 0}, {1, 0}, {0, 0}}
	c, err := FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	d := tp.Distances()
	if got := c.Distance(0, 1); got != d.SameNode {
		t.Errorf("same-node distance = %v", got)
	}
	if got := c.Distance(0, 2); got != d.SameRack {
		t.Errorf("same-rack distance = %v", got)
	}
	if got := c.Distance(0, 3); got != d.CrossRack {
		t.Errorf("cross-rack distance = %v", got)
	}
	if !c.SameNode(0, 1) || c.SameNode(0, 2) {
		t.Error("SameNode wrong")
	}
	if !c.SameRack(0, 2) || c.SameRack(0, 3) {
		t.Error("SameRack wrong")
	}
}

func TestPairwiseDistanceMatchesAffinity(t *testing.T) {
	tp := plant(t)
	a := affinity.Allocation{{2, 0}, {1, 0}, {1, 0}, {0, 0}}
	c, err := FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.PairwiseDistance(), a.PairwiseAffinity(tp); got != want {
		t.Errorf("PairwiseDistance = %v, affinity metric = %v", got, want)
	}
}

func TestRacks(t *testing.T) {
	tp := plant(t)
	a := affinity.Allocation{{1, 0}, {0, 0}, {1, 0}, {1, 0}}
	c, err := FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	racks := c.Racks()
	if len(racks) != 2 {
		t.Fatalf("Racks = %v", racks)
	}
}
