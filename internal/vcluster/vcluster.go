// Package vcluster materializes an allocation matrix into a concrete
// virtual cluster: an ordered list of VMs, each pinned to the physical
// node hosting it. The MapReduce simulator schedules tasks onto these VMs
// and the DFS stores block replicas on them.
package vcluster

import (
	"fmt"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// VMID indexes a VM within a cluster.
type VMID int

// VM is one provisioned virtual machine.
type VM struct {
	ID   VMID
	Type model.VMTypeID
	Node topology.NodeID // hosting physical node
}

// Cluster is a materialized virtual cluster.
type Cluster struct {
	topo *topology.Topology
	vms  []VM
}

// FromAllocation expands an allocation matrix into VM instances, ordered
// by node then type for determinism.
func FromAllocation(t *topology.Topology, a affinity.Allocation) (*Cluster, error) {
	if len(a) != t.Nodes() {
		return nil, fmt.Errorf("vcluster: allocation has %d rows, topology has %d nodes", len(a), t.Nodes())
	}
	c := &Cluster{topo: t}
	for i := range a {
		for j, k := range a[i] {
			if k < 0 {
				return nil, fmt.Errorf("vcluster: negative allocation at [%d][%d]", i, j)
			}
			for v := 0; v < k; v++ {
				c.vms = append(c.vms, VM{
					ID:   VMID(len(c.vms)),
					Type: model.VMTypeID(j),
					Node: topology.NodeID(i),
				})
			}
		}
	}
	if len(c.vms) == 0 {
		return nil, fmt.Errorf("vcluster: empty allocation")
	}
	return c, nil
}

// Size returns the number of VMs.
func (c *Cluster) Size() int { return len(c.vms) }

// VM returns the VM with the given ID.
func (c *Cluster) VM(id VMID) VM { return c.vms[id] }

// VMs returns all VMs; the slice must not be modified.
//
//lint:shared documented read-only view of the VM table
func (c *Cluster) VMs() []VM { return c.vms }

// NodeOf returns the physical node hosting a VM.
func (c *Cluster) NodeOf(id VMID) topology.NodeID { return c.vms[id].Node }

// Topology returns the underlying physical plant.
//
//lint:shared the topology is immutable after construction and shared by design
func (c *Cluster) Topology() *topology.Topology { return c.topo }

// Distance returns the physical distance between the hosts of two VMs
// (0 when co-located, per the paper's model).
func (c *Cluster) Distance(a, b VMID) float64 {
	return c.topo.Distance(c.vms[a].Node, c.vms[b].Node)
}

// SameNode reports whether two VMs share a physical node.
func (c *Cluster) SameNode(a, b VMID) bool { return c.vms[a].Node == c.vms[b].Node }

// SameRack reports whether two VMs' hosts share a rack.
func (c *Cluster) SameRack(a, b VMID) bool {
	return c.topo.SameRack(c.vms[a].Node, c.vms[b].Node)
}

// PairwiseDistance is the cluster-affinity metric of the paper's
// experiments: the sum of host distances over all unordered VM pairs.
func (c *Cluster) PairwiseDistance() float64 {
	var sum float64
	for a := 0; a < len(c.vms); a++ {
		for b := a + 1; b < len(c.vms); b++ {
			sum += c.Distance(VMID(a), VMID(b))
		}
	}
	return sum
}

// Racks returns the distinct racks the cluster spans.
func (c *Cluster) Racks() []int {
	seen := make(map[int]bool)
	var out []int
	for _, vm := range c.vms {
		r := c.topo.RackOf(vm.Node)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
