package topology

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistancesValidate(t *testing.T) {
	if err := DefaultDistances().Validate(); err != nil {
		t.Fatalf("default distances invalid: %v", err)
	}
	bad := []Distances{
		{SameNode: -1, SameRack: 1, CrossRack: 2, CrossCloud: 3},
		{SameNode: 0, SameRack: 0, CrossRack: 2, CrossCloud: 3},  // d1 not > d0
		{SameNode: 0, SameRack: 2, CrossRack: 2, CrossCloud: 3},  // d2 not > d1
		{SameNode: 0, SameRack: 1, CrossRack: 3, CrossCloud: 3},  // d3 not > d2
		{SameNode: 0, SameRack: 5, CrossRack: 2, CrossCloud: 10}, // inverted
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad distances %d accepted: %+v", i, d)
		}
	}
}

func TestUniformShape(t *testing.T) {
	tp, err := Uniform(2, 3, 4, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	if tp.Nodes() != 24 || tp.Racks() != 6 || tp.Clouds() != 2 {
		t.Fatalf("shape = (%d nodes, %d racks, %d clouds), want (24, 6, 2)", tp.Nodes(), tp.Racks(), tp.Clouds())
	}
	// Node 0 in rack 0 cloud 0; node 23 in rack 5 cloud 1.
	if tp.RackOf(0) != 0 || tp.CloudOf(0) != 0 {
		t.Error("node 0 misplaced")
	}
	if tp.RackOf(23) != 5 || tp.CloudOf(23) != 1 {
		t.Error("node 23 misplaced")
	}
	for r := 0; r < tp.Racks(); r++ {
		if len(tp.RackNodes(r)) != 4 {
			t.Errorf("rack %d has %d nodes, want 4", r, len(tp.RackNodes(r)))
		}
	}
}

func TestUniformRejectsNonPositive(t *testing.T) {
	for _, args := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 3, 10}} {
		if _, err := Uniform(args[0], args[1], args[2], DefaultDistances()); err == nil {
			t.Errorf("Uniform(%v) accepted", args)
		}
	}
}

func TestPaperSimPlant(t *testing.T) {
	tp := PaperSimPlant()
	if tp.Racks() != 3 || tp.Nodes() != 30 {
		t.Fatalf("paper plant = %d racks, %d nodes; want 3, 30", tp.Racks(), tp.Nodes())
	}
}

func TestDistanceTiers(t *testing.T) {
	tp, err := Uniform(2, 2, 2, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	d := tp.Distances()
	cases := []struct {
		a, b NodeID
		want float64
	}{
		{0, 0, d.SameNode},
		{0, 1, d.SameRack},   // same rack
		{0, 2, d.CrossRack},  // rack 0 vs rack 1, cloud 0
		{0, 4, d.CrossCloud}, // cloud 0 vs cloud 1
		{5, 4, d.SameRack},
	}
	for _, c := range cases {
		if got := tp.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceMatrixAgreesWithDistance(t *testing.T) {
	tp, err := Uniform(2, 3, 3, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	m := tp.DistanceMatrix()
	for i := 0; i < tp.Nodes(); i++ {
		for j := 0; j < tp.Nodes(); j++ {
			if m[i][j] != tp.Distance(NodeID(i), NodeID(j)) {
				t.Fatalf("matrix[%d][%d] disagrees", i, j)
			}
		}
	}
}

// Property: distance is symmetric, non-negative, zero-diagonal (with
// SameNode = 0) and satisfies the triangle inequality on tiered topologies.
func TestQuickDistanceMetricProperties(t *testing.T) {
	tp, err := Uniform(2, 3, 4, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	n := tp.Nodes()
	f := func(ai, bi, ci uint8) bool {
		a, b, c := NodeID(int(ai)%n), NodeID(int(bi)%n), NodeID(int(ci)%n)
		dab := tp.Distance(a, b)
		if dab != tp.Distance(b, a) || dab < 0 {
			return false
		}
		if a == b && dab != 0 {
			return false
		}
		return tp.Distance(a, c) <= dab+tp.Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodesSortedByDistance(t *testing.T) {
	tp, err := Uniform(2, 2, 3, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < tp.Nodes(); from++ {
		order := tp.NodesSortedByDistance(NodeID(from))
		if len(order) != tp.Nodes() {
			t.Fatalf("order from %d has %d entries", from, len(order))
		}
		if order[0] != NodeID(from) {
			t.Fatalf("order from %d does not start with itself", from)
		}
		seen := make(map[NodeID]bool)
		prev := -1.0
		for _, id := range order {
			if seen[id] {
				t.Fatalf("duplicate node %d in order from %d", id, from)
			}
			seen[id] = true
			d := tp.Distance(NodeID(from), id)
			if d < prev {
				t.Fatalf("order from %d not ascending: %v then %v", from, prev, d)
			}
			prev = d
		}
	}
}

func TestBuilderExplicit(t *testing.T) {
	b := NewBuilder(DefaultDistances())
	b.AddCloud()
	r1 := b.AddRack()
	n1 := b.AddNode("alpha")
	n2 := b.AddNode("")
	r2 := b.AddRack()
	n3 := b.AddNode("gamma")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 0 || r2 != 1 {
		t.Errorf("rack indices = %d, %d", r1, r2)
	}
	if tp.Node(n1).Name != "alpha" || tp.Node(n2).Name != "node-1" || tp.Node(n3).Name != "gamma" {
		t.Errorf("node names wrong: %+v", tp.nodes)
	}
	if !tp.SameRack(n1, n2) || tp.SameRack(n1, n3) {
		t.Error("SameRack wrong")
	}
}

func TestBuilderImplicitCloudAndRack(t *testing.T) {
	b := NewBuilder(DefaultDistances())
	b.AddNode("solo") // should auto-create cloud 0 and rack 0
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tp.Clouds() != 1 || tp.Racks() != 1 || tp.Nodes() != 1 {
		t.Fatalf("implicit plant shape wrong: %d/%d/%d", tp.Clouds(), tp.Racks(), tp.Nodes())
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(DefaultDistances()).Build(); err == nil {
		t.Error("empty plant accepted")
	}
	bad := NewBuilder(Distances{SameNode: 0, SameRack: 2, CrossRack: 1, CrossCloud: 3})
	bad.AddNode("x")
	if _, err := bad.Build(); err == nil {
		t.Error("invalid distances accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tp, err := Uniform(2, 3, 4, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Nodes() != tp.Nodes() || back.Racks() != tp.Racks() || back.Clouds() != tp.Clouds() {
		t.Fatal("round-trip changed shape")
	}
	for i := 0; i < tp.Nodes(); i++ {
		for j := 0; j < tp.Nodes(); j++ {
			if back.Distance(NodeID(i), NodeID(j)) != tp.Distance(NodeID(i), NodeID(j)) {
				t.Fatalf("round-trip changed Distance(%d,%d)", i, j)
			}
		}
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{`,
		`{"distances":{"SameNode":0,"SameRack":1,"CrossRack":2,"CrossCloud":4},"nodes":[],"racks":0,"clouds":0}`,
		`{"distances":{"SameNode":0,"SameRack":3,"CrossRack":2,"CrossCloud":4},"nodes":[{"ID":0,"Rack":0,"Cloud":0}],"racks":1,"clouds":1}`,
		`{"distances":{"SameNode":0,"SameRack":1,"CrossRack":2,"CrossCloud":4},"nodes":[{"ID":5,"Rack":0,"Cloud":0}],"racks":1,"clouds":1}`,
		`{"distances":{"SameNode":0,"SameRack":1,"CrossRack":2,"CrossCloud":4},"nodes":[{"ID":0,"Rack":9,"Cloud":0}],"racks":1,"clouds":1}`,
		`{"distances":{"SameNode":0,"SameRack":1,"CrossRack":2,"CrossCloud":4},"nodes":[{"ID":0,"Rack":0,"Cloud":9}],"racks":1,"clouds":1}`,
	}
	for i, s := range cases {
		var tp Topology
		if err := json.Unmarshal([]byte(s), &tp); err == nil {
			t.Errorf("corrupt JSON %d accepted", i)
		}
	}
}

func TestDistanceConcurrentReads(t *testing.T) {
	tp := PaperSimPlant()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				a := NodeID(r.Intn(tp.Nodes()))
				b := NodeID(r.Intn(tp.Nodes()))
				_ = tp.Distance(a, b)
			}
			done <- true
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestFlatTableMatchesTierDistance(t *testing.T) {
	tp, err := Uniform(2, 3, 5, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	if tp.flat == nil {
		t.Fatal("flat table not materialized for a 30-node plant")
	}
	for i := 0; i < tp.Nodes(); i++ {
		row := tp.DistanceRow(NodeID(i))
		if len(row) != tp.Nodes() {
			t.Fatalf("row %d has length %d", i, len(row))
		}
		for j := 0; j < tp.Nodes(); j++ {
			want := tp.tierDistance(NodeID(i), NodeID(j))
			if got := tp.Distance(NodeID(i), NodeID(j)); got != want {
				t.Errorf("Distance(%d,%d) = %v, want %v", i, j, got, want)
			}
			if row[j] != want {
				t.Errorf("DistanceRow(%d)[%d] = %v, want %v", i, j, row[j], want)
			}
		}
	}
}

func TestFlatTableSurvivesJSONRoundTrip(t *testing.T) {
	tp, err := Uniform(1, 2, 3, DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.flat == nil {
		t.Fatal("decoded topology lost the flat distance table")
	}
	for i := 0; i < tp.Nodes(); i++ {
		for j := 0; j < tp.Nodes(); j++ {
			if back.Distance(NodeID(i), NodeID(j)) != tp.Distance(NodeID(i), NodeID(j)) {
				t.Fatalf("distance (%d,%d) changed across round trip", i, j)
			}
		}
	}
}

func TestDistanceRowWithoutFlatTable(t *testing.T) {
	tp := PaperSimPlant()
	saved := tp.flat
	tp.flat = nil // simulate a plant above flatTableMaxNodes
	defer func() { tp.flat = saved }()
	row := tp.DistanceRow(3)
	for j := range row {
		if row[j] != tp.tierDistance(3, NodeID(j)) {
			t.Fatalf("fallback row entry %d = %v", j, row[j])
		}
	}
}
