package topology

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzTopologyImportJSON drives the JSON import with arbitrary documents.
// The contract (DESIGN.md §10): every input is either rejected with an
// error or produces a validated plant that round-trips byte-identically —
// no input may panic, and no accepted plant may violate the
// single-cloud-per-rack containment the placement fast paths price
// Definition 1 from.
func FuzzTopologyImportJSON(f *testing.F) {
	if valid, err := json.Marshal(PaperSimPlant()); err == nil {
		f.Add(valid)
	}
	if uni, err := Uniform(2, 3, 4, DefaultDistances()); err == nil {
		if b, err := json.Marshal(uni); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"distances":{"SameNode":0,"SameRack":1,"CrossRack":2,"CrossCloud":4},"nodes":[{"ID":0,"Name":"n0","Rack":0,"Cloud":0}],"racks":1,"clouds":1}`))
	f.Add([]byte(`{"nodes":[{"ID":0,"Rack":0,"Cloud":0}],"racks":-1,"clouds":1}`))
	f.Add([]byte(`{"nodes":[{"ID":0,"Rack":0,"Cloud":0}],"racks":99999999999,"clouds":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var tp Topology
		if err := json.Unmarshal(data, &tp); err != nil {
			return // rejected: acceptable for arbitrary input
		}
		// Accepted plants satisfy the structural invariants…
		if tp.Nodes() <= 0 || tp.Racks() <= 0 || tp.Clouds() <= 0 {
			t.Fatalf("accepted plant with empty tier: nodes=%d racks=%d clouds=%d", tp.Nodes(), tp.Racks(), tp.Clouds())
		}
		for i := 0; i < tp.Nodes(); i++ {
			id := NodeID(i)
			r, c := tp.RackOf(id), tp.CloudOf(id)
			if r < 0 || r >= tp.Racks() {
				t.Fatalf("node %d rack %d out of range", i, r)
			}
			if c < 0 || c >= tp.Clouds() {
				t.Fatalf("node %d cloud %d out of range", i, c)
			}
			if tp.CloudOfRack(r) != c {
				t.Fatalf("node %d: rack %d maps to cloud %d, node claims %d", i, r, tp.CloudOfRack(r), c)
			}
			if d := tp.Distance(id, id); d != tp.Distances().SameNode {
				t.Fatalf("self-distance of node %d = %v, want %v", i, d, tp.Distances().SameNode)
			}
		}
		// …and round-trip byte-identically.
		out, err := json.Marshal(&tp)
		if err != nil {
			t.Fatalf("re-marshal of accepted plant failed: %v", err)
		}
		var tp2 Topology
		if err := json.Unmarshal(out, &tp2); err != nil {
			t.Fatalf("round-trip of accepted plant rejected: %v\n%s", err, out)
		}
		out2, err := json.Marshal(&tp2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round-trip not byte-identical:\n%s\nvs\n%s", out, out2)
		}
	})
}
