// Package topology models the physical plant of an IaaS cloud: clouds
// containing racks containing nodes, and the node-to-node distance matrix D
// of the paper's Section II.
//
// Distance is an abstraction of network latency. Following the paper, the
// distance between two VMs on the same node is 0, between nodes in the same
// rack is d1, between nodes in different racks is d2, and between nodes in
// different clouds is d3, with 0 < d1 < d2 < d3.
package topology

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// NodeID indexes a physical node within a Topology. IDs are dense in
// [0, Nodes()).
type NodeID int

// Distances holds the tiered distance constants of the paper.
type Distances struct {
	// SameNode is the distance between two VMs hosted on the same node.
	// The paper fixes it to 0.
	SameNode float64
	// SameRack (d1) separates nodes in the same rack.
	SameRack float64
	// CrossRack (d2) separates nodes in different racks of one cloud.
	CrossRack float64
	// CrossCloud (d3) separates nodes in different clouds.
	CrossCloud float64
}

// DefaultDistances returns the distance configuration used by the paper's
// experimental evaluation (Section V.B): 0 within a node, 1 within a rack,
// 2 across racks. CrossCloud extends the hierarchy one more tier.
func DefaultDistances() Distances {
	return Distances{SameNode: 0, SameRack: 1, CrossRack: 2, CrossCloud: 4}
}

// Validate checks the strict ordering 0 <= SameNode < SameRack < CrossRack
// < CrossCloud required by the paper's model (0 < d1 < d2 < d3).
func (d Distances) Validate() error {
	if d.SameNode < 0 {
		return errors.New("topology: SameNode distance is negative")
	}
	if !(d.SameNode < d.SameRack && d.SameRack < d.CrossRack && d.CrossRack < d.CrossCloud) {
		return fmt.Errorf("topology: distances must satisfy SameNode < SameRack < CrossRack < CrossCloud, got %+v", d)
	}
	return nil
}

// Node is one physical server.
type Node struct {
	ID    NodeID
	Name  string
	Rack  int // dense rack index within the topology
	Cloud int // dense cloud index within the topology
}

// Topology is an immutable description of the physical plant. Build one
// with a Builder or a generator from package workload, then share it freely:
// all methods are safe for concurrent use.
type Topology struct {
	nodes     []Node
	dist      Distances
	rackOf    []int
	cloudOf   []int
	racks     int
	clouds    int
	rackNodes [][]NodeID // nodes grouped by rack, ascending IDs
	rackCloud []int      // cloud index per rack (-1 for an empty rack)
	// cloudRacks groups the non-empty racks of each cloud, ascending rack
	// index; racksByLowID orders all non-empty racks by their lowest node
	// ID. Both are derived once at construction for the tier-aggregated
	// center scan, which walks clouds then racks instead of nodes.
	cloudRacks [][]int
	racksByLow []int
	// flat is the materialized row-major n×n distance table, so the hot
	// Distance path is an array load instead of rack/cloud branch logic.
	// It is nil above flatTableMaxNodes, where the O(n²) memory would
	// outweigh the lookup savings.
	flat []float64
}

// flatTableMaxNodes caps the plant size for which the flattened distance
// table is materialized (4096² float64 = 128 MiB). Larger plants fall back
// to the tiered branch computation.
const flatTableMaxNodes = 4096

// buildFlat fills t.flat for plants small enough to materialize.
func (t *Topology) buildFlat() {
	n := len(t.nodes)
	if n > flatTableMaxNodes {
		return
	}
	flat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		row := flat[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = t.tierDistance(NodeID(i), NodeID(j))
		}
	}
	t.flat = flat
}

// Builder accumulates racks and nodes, then produces a Topology.
type Builder struct {
	dist   Distances
	nodes  []Node
	racks  int
	clouds int
	err    error
}

// NewBuilder starts a topology with the given distance tiers.
func NewBuilder(d Distances) *Builder {
	b := &Builder{dist: d, clouds: 0}
	if err := d.Validate(); err != nil {
		b.err = err
	}
	return b
}

// AddCloud begins a new cloud and returns its index. Racks added afterwards
// belong to it.
func (b *Builder) AddCloud() int {
	b.clouds++
	return b.clouds - 1
}

// AddRack begins a new rack in the most recently added cloud (a cloud is
// implicitly created if none exists) and returns its index.
func (b *Builder) AddRack() int {
	if b.clouds == 0 {
		b.clouds = 1
	}
	b.racks++
	return b.racks - 1
}

// AddNode appends a node to the most recently added rack and returns its ID.
func (b *Builder) AddNode(name string) NodeID {
	if b.racks == 0 {
		b.AddRack()
	}
	id := NodeID(len(b.nodes))
	if name == "" {
		name = fmt.Sprintf("node-%d", id)
	}
	b.nodes = append(b.nodes, Node{ID: id, Name: name, Rack: b.racks - 1, Cloud: b.clouds - 1})
	return id
}

// AddNodes appends count nodes to the current rack.
func (b *Builder) AddNodes(count int) {
	for i := 0; i < count; i++ {
		b.AddNode("")
	}
}

// Build finalizes the topology. It returns an error for an empty plant or
// invalid distances.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, errors.New("topology: no nodes")
	}
	t := &Topology{
		nodes:     append([]Node(nil), b.nodes...),
		dist:      b.dist,
		racks:     b.racks,
		clouds:    b.clouds,
		rackOf:    make([]int, len(b.nodes)),
		cloudOf:   make([]int, len(b.nodes)),
		rackNodes: make([][]NodeID, b.racks),
	}
	for i, n := range t.nodes {
		t.rackOf[i] = n.Rack
		t.cloudOf[i] = n.Cloud
		t.rackNodes[n.Rack] = append(t.rackNodes[n.Rack], n.ID)
	}
	t.buildRackCloud()
	t.buildFlat()
	return t, nil
}

// buildRackCloud derives the rack→cloud map from the first node of each
// rack. A rack that holds no nodes maps to -1; no placement aggregate ever
// consults it.
func (t *Topology) buildRackCloud() {
	t.rackCloud = make([]int, t.racks)
	for r := range t.rackCloud {
		if len(t.rackNodes[r]) == 0 {
			t.rackCloud[r] = -1
			continue
		}
		t.rackCloud[r] = t.cloudOf[t.rackNodes[r][0]]
	}
	t.cloudRacks = make([][]int, t.clouds)
	t.racksByLow = t.racksByLow[:0]
	for r, c := range t.rackCloud {
		if c < 0 {
			continue
		}
		t.cloudRacks[c] = append(t.cloudRacks[c], r)
		t.racksByLow = append(t.racksByLow, r)
	}
	sort.Slice(t.racksByLow, func(a, b int) bool {
		return t.rackNodes[t.racksByLow[a]][0] < t.rackNodes[t.racksByLow[b]][0]
	})
}

// Uniform builds the symmetric topology used throughout the paper's
// simulations: clouds × racksPerCloud racks, each rack holding nodesPerRack
// nodes.
func Uniform(clouds, racksPerCloud, nodesPerRack int, d Distances) (*Topology, error) {
	if clouds <= 0 || racksPerCloud <= 0 || nodesPerRack <= 0 {
		return nil, fmt.Errorf("topology: Uniform(%d, %d, %d) needs positive arguments", clouds, racksPerCloud, nodesPerRack)
	}
	b := NewBuilder(d)
	for c := 0; c < clouds; c++ {
		b.AddCloud()
		for r := 0; r < racksPerCloud; r++ {
			b.AddRack()
			b.AddNodes(nodesPerRack)
		}
	}
	return b.Build()
}

// PaperSimPlant builds the exact plant of the paper's simulation section:
// one cloud, 3 racks, 10 nodes per rack.
func PaperSimPlant() *Topology {
	t, err := Uniform(1, 3, 10, DefaultDistances())
	if err != nil {
		panic("topology: PaperSimPlant construction failed: " + err.Error())
	}
	return t
}

// Nodes returns the number of physical nodes (the paper's n).
func (t *Topology) Nodes() int { return len(t.nodes) }

// Racks returns the number of racks.
func (t *Topology) Racks() int { return t.racks }

// Clouds returns the number of clouds.
func (t *Topology) Clouds() int { return t.clouds }

// Node returns the descriptor of node id. It panics on an out-of-range ID,
// which always indicates a programming error.
func (t *Topology) Node(id NodeID) Node {
	return t.nodes[id]
}

// RackOf returns the rack index of node id.
func (t *Topology) RackOf(id NodeID) int { return t.rackOf[id] }

// CloudOf returns the cloud index of node id.
func (t *Topology) CloudOf(id NodeID) int { return t.cloudOf[id] }

// SameRack reports whether two nodes share a rack.
func (t *Topology) SameRack(a, b NodeID) bool { return t.rackOf[a] == t.rackOf[b] }

// RackNodes returns the IDs of the nodes in rack r in ascending order (so
// RackNodes(r)[0] is the lowest node ID of the rack). The returned slice
// must not be modified.
//
//lint:shared documented read-only view; the topology is immutable after construction
func (t *Topology) RackNodes(r int) []NodeID { return t.rackNodes[r] }

// CloudOfRack returns the cloud index of rack r, or -1 for a rack without
// nodes. It is the rack-level companion of CloudOf, used by the tier
// aggregation layer to price Definition 1 from per-rack totals.
func (t *Topology) CloudOfRack(r int) int { return t.rackCloud[r] }

// RackSize returns the number of nodes in rack r.
func (t *Topology) RackSize(r int) int { return len(t.rackNodes[r]) }

// CloudRacks returns the non-empty racks of cloud c in ascending rack
// index. The returned slice must not be modified.
//
//lint:shared documented read-only view; the topology is immutable after construction
func (t *Topology) CloudRacks(c int) []int { return t.cloudRacks[c] }

// RacksByLowestNode returns every non-empty rack ordered by its lowest
// node ID — the sweep order of the center scan's lowest-ID tie-break
// reconstruction. The returned slice must not be modified.
//
//lint:shared documented read-only view; the topology is immutable after construction
func (t *Topology) RacksByLowestNode() []int { return t.racksByLow }

// Distances returns the tier constants of the topology.
func (t *Topology) Distances() Distances { return t.dist }

// Distance returns D[a][b], the distance between two nodes. It is symmetric
// and Distance(a, a) equals the SameNode tier (0 in the paper).
func (t *Topology) Distance(a, b NodeID) float64 {
	if t.flat != nil {
		return t.flat[int(a)*len(t.nodes)+int(b)]
	}
	return t.tierDistance(a, b)
}

// tierDistance computes D[a][b] from the rack/cloud tiers without
// consulting the flattened table.
func (t *Topology) tierDistance(a, b NodeID) float64 {
	switch {
	case a == b:
		return t.dist.SameNode
	case t.cloudOf[a] != t.cloudOf[b]:
		return t.dist.CrossCloud
	case t.rackOf[a] != t.rackOf[b]:
		return t.dist.CrossRack
	default:
		return t.dist.SameRack
	}
}

// DistanceRow returns the row D[a][·] of the distance matrix. For plants
// with a materialized flat table the returned slice aliases it and must not
// be modified; larger plants get a freshly computed row.
//
//lint:shared documented read-only view of the immutable flat table
func (t *Topology) DistanceRow(a NodeID) []float64 {
	n := len(t.nodes)
	if t.flat != nil {
		return t.flat[int(a)*n : (int(a)+1)*n]
	}
	row := make([]float64, n)
	for j := range row {
		row[j] = t.tierDistance(a, NodeID(j))
	}
	return row
}

// DistanceMatrix materializes the full n×n matrix D. Placement algorithms
// normally call Distance directly; the matrix form exists for the ILP
// encodings and for export.
func (t *Topology) DistanceMatrix() [][]float64 {
	n := t.Nodes()
	d := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		d[i] = flat[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			d[i][j] = t.Distance(NodeID(i), NodeID(j))
		}
	}
	return d
}

// NodesSortedByDistance returns all node IDs ordered by ascending distance
// from the given node; the node itself comes first. Ties keep ID order, so
// the result is deterministic.
func (t *Topology) NodesSortedByDistance(from NodeID) []NodeID {
	n := t.Nodes()
	out := make([]NodeID, 0, n)
	out = append(out, from)
	// Same rack first, then same cloud other racks, then other clouds.
	for _, id := range t.rackNodes[t.rackOf[from]] {
		if id != from {
			out = append(out, id)
		}
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if t.rackOf[id] != t.rackOf[from] && t.cloudOf[id] == t.cloudOf[from] {
			out = append(out, id)
		}
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if t.cloudOf[id] != t.cloudOf[from] {
			out = append(out, id)
		}
	}
	return out
}

// topologyJSON is the serialized form of a Topology.
type topologyJSON struct {
	Distances Distances `json:"distances"`
	Nodes     []Node    `json:"nodes"`
	Racks     int       `json:"racks"`
	Clouds    int       `json:"clouds"`
}

// MarshalJSON implements json.Marshaler.
func (t *Topology) MarshalJSON() ([]byte, error) {
	return json.Marshal(topologyJSON{
		Distances: t.dist,
		Nodes:     t.nodes,
		Racks:     t.racks,
		Clouds:    t.clouds,
	})
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded plant.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var raw topologyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("topology: decode: %w", err)
	}
	if err := raw.Distances.Validate(); err != nil {
		return err
	}
	if len(raw.Nodes) == 0 {
		return errors.New("topology: decoded plant has no nodes")
	}
	// Bound the declared tier counts before they size any allocation: a
	// hostile or corrupt document could otherwise drive make() with a
	// negative or multi-gigabyte length (found by FuzzTopologyImportJSON).
	// Imported plants are dense — every rack and cloud holds at least one
	// node — so node count bounds both.
	if raw.Racks <= 0 || raw.Racks > len(raw.Nodes) {
		return fmt.Errorf("topology: rack count %d out of range [1,%d]", raw.Racks, len(raw.Nodes))
	}
	if raw.Clouds <= 0 || raw.Clouds > raw.Racks {
		return fmt.Errorf("topology: cloud count %d out of range [1,%d]", raw.Clouds, raw.Racks)
	}
	built := &Topology{
		nodes:     raw.Nodes,
		dist:      raw.Distances,
		racks:     raw.Racks,
		clouds:    raw.Clouds,
		rackOf:    make([]int, len(raw.Nodes)),
		cloudOf:   make([]int, len(raw.Nodes)),
		rackNodes: make([][]NodeID, raw.Racks),
	}
	for i, n := range raw.Nodes {
		if int(n.ID) != i {
			return fmt.Errorf("topology: node %d has non-dense ID %d", i, n.ID)
		}
		if n.Rack < 0 || n.Rack >= raw.Racks {
			return fmt.Errorf("topology: node %d rack %d out of range [0,%d)", i, n.Rack, raw.Racks)
		}
		if n.Cloud < 0 || n.Cloud >= raw.Clouds {
			return fmt.Errorf("topology: node %d cloud %d out of range [0,%d)", i, n.Cloud, raw.Clouds)
		}
		built.rackOf[i] = n.Rack
		built.cloudOf[i] = n.Cloud
		built.rackNodes[n.Rack] = append(built.rackNodes[n.Rack], n.ID)
	}
	built.buildRackCloud()
	// The tier hierarchy requires every rack to live inside one cloud;
	// the aggregate fast paths price Definition 1 from that containment.
	for i, n := range raw.Nodes {
		if built.rackCloud[n.Rack] != n.Cloud {
			return fmt.Errorf("topology: node %d places rack %d in cloud %d, rack already in cloud %d",
				i, n.Rack, n.Cloud, built.rackCloud[n.Rack])
		}
	}
	built.buildFlat()
	*t = *built
	return nil
}
