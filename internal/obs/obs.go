// Package obs is the observability layer of the simulation stack: a
// lightweight, allocation-conscious metrics registry (counters, gauges,
// fixed-bucket histograms) plus a structured event trace for per-decision
// telemetry (placement decisions, queue admission, migration moves,
// MapReduce phase boundaries).
//
// Design rules:
//
//   - Nil safety. Every handle method no-ops on a nil receiver and every
//     Registry method is safe on a nil *Registry, so uninstrumented
//     callers pay nothing: components resolve their handles once at
//     construction time and the hot path is a nil check plus an atomic
//     add.
//   - Determinism. Recorded values never come from the wall clock —
//     event timestamps are eventsim virtual time supplied by the caller —
//     and both export formats (the JSON metrics snapshot and the JSONL
//     trace) serialize with sorted metric names and ordered event fields,
//     so two runs with the same seed produce byte-identical output.
//   - Concurrency. Counters and gauges are atomics and histograms take a
//     short mutex, so instrumented components stay safe under the
//     experiment worker pool. Event append order across goroutines is,
//     however, scheduler-dependent; deterministic traces require a
//     single-threaded simulation (which is how the instrumented runners
//     drive it).
package obs

import (
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a floating-point level that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x. No-op on a nil receiver.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Add shifts the gauge by dx. No-op on a nil receiver.
func (g *Gauge) Add(dx float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + dx)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed equal-width buckets over
// [Min, Max], tracking out-of-range samples and the running sum/count so
// a mean survives even when samples escape the range.
type Histogram struct {
	mu     sync.Mutex
	min    float64
	max    float64
	counts []int64
	under  int64
	over   int64
	sum    float64
	n      int64
}

// Observe adds one sample. No-op on a nil receiver.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += x
	h.n++
	switch {
	case x < h.min:
		h.under++
	case x > h.max:
		h.over++
	default:
		i := int((x - h.min) / (h.max - h.min) * float64(len(h.counts)))
		if i == len(h.counts) { // x == max lands in the last bucket
			i--
		}
		h.counts[i]++
	}
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under"`
	Over   int64   `json:"over"`
	Sum    float64 `json:"sum"`
	N      int64   `json:"n"`
}

// Mean returns the average of all observed samples (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Min:    h.min,
		Max:    h.max,
		Counts: append([]int64(nil), h.counts...),
		Under:  h.under,
		Over:   h.over,
		Sum:    h.sum,
		N:      h.n,
	}
}

// Registry is a named collection of metrics plus the event trace. The
// zero value is not usable; call NewRegistry. A nil *Registry is a valid
// no-op sink: every lookup returns a nil handle and Emit does nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   []Event
	nEvents  int

	// Streaming mode (NewStreamingRegistry): events are encoded into
	// sinkBuf and written to sink as they are emitted instead of being
	// retained in events. sinkErr latches the first write failure.
	sink    io.Writer
	sinkBuf []byte
	sinkErr error
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// NewStreamingRegistry creates a registry whose event trace streams to w
// as JSONL — each Emit writes exactly the bytes WriteTraceJSONL would
// have produced for that event — instead of being retained in memory.
// Metrics behave exactly as in a retained registry. Long soak runs use
// this so instrumentation stays O(1) in the event count; wrap w in a
// bufio.Writer (and flush it after the run) when writing to a file.
func NewStreamingRegistry(w io.Writer) *Registry {
	r := NewRegistry()
	r.sink = w
	return r
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
//
//lint:shared metric handles are shared by design; updates are atomic
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
//
//lint:shared metric handles are shared by design; updates are atomic
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use; later calls reuse the existing bounds. Returns nil
// (a valid no-op handle) on a nil registry or invalid bounds.
//
//lint:shared metric handles are shared by design; updates are locked
func (r *Registry) Histogram(name string, min, max float64, buckets int) *Histogram {
	if r == nil || buckets <= 0 || !(max > min) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: min, max: max, counts: make([]int64, buckets)}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON export. Map keys serialize sorted (encoding/json), so the snapshot
// of a deterministic run is byte-identical across runs.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current metric values. Returns an empty snapshot on
// a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// MetricNames returns every registered metric name, sorted.
func (r *Registry) MetricNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
