// Structured event trace: one Event per simulation decision, with a
// virtual timestamp and ordered key/value fields. Events marshal to JSONL
// through a hand-rolled encoder so field order and float formatting are
// deterministic (encoding/json would also work for the metric snapshot's
// sorted maps, but an event's fields are ordered by the emitter, and that
// order is part of the trace contract).
package obs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Field is one key/value pair of an event, in emission order.
type Field struct {
	Key string
	Val any
}

// F builds a Field; the one-letter name keeps emission sites compact.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Event is one recorded simulation decision. Time is eventsim virtual
// time — never the wall clock — so traces are reproducible.
type Event struct {
	Time   float64
	Kind   string
	Fields []Field
}

// Emit records an event. No-op on a nil registry. In retained mode the
// event is appended to the trace and the fields slice is retained;
// callers must not reuse it. In streaming mode (NewStreamingRegistry)
// the event is encoded into the registry's reused buffer and written to
// the sink immediately, so nothing is retained and memory stays O(1) in
// the event count; the first write error is latched (SinkErr) and later
// events are still counted but dropped.
func (r *Registry) Emit(kind string, t float64, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.nEvents++
	if r.sink != nil {
		if r.sinkErr == nil {
			r.sinkBuf = Event{Time: t, Kind: kind, Fields: fields}.appendJSON(r.sinkBuf[:0])
			r.sinkBuf = append(r.sinkBuf, '\n')
			if _, err := r.sink.Write(r.sinkBuf); err != nil {
				r.sinkErr = err
			}
		}
	} else {
		r.events = append(r.events, Event{Time: t, Kind: kind, Fields: fields})
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded trace (nil on a nil registry).
// A streaming registry retains nothing and returns nil.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// EventCount returns the number of emitted events. Streaming registries
// count events they no longer hold.
func (r *Registry) EventCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nEvents
}

// SinkErr returns the first write error of a streaming registry, nil
// otherwise. Events emitted after a sink failure are counted but not
// written.
func (r *Registry) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// appendJSON renders one event as a single JSON object:
// {"t":12.5,"kind":"place","req":3,"dc":14}.
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = appendFloat(b, e.Time)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind)
	for _, f := range e.Fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		b = appendValue(b, f.Val)
	}
	return append(b, '}')
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case float64:
		return appendFloat(b, x)
	case float32:
		return appendFloat(b, float64(x))
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case bool:
		return strconv.AppendBool(b, x)
	case string:
		return strconv.AppendQuote(b, x)
	case []int:
		// Node lists of fault events, serialized as a real JSON array so
		// trace consumers need no string re-parsing.
		b = append(b, '[')
		for i, v := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(v), 10)
		}
		return append(b, ']')
	case fmt.Stringer:
		return strconv.AppendQuote(b, x.String())
	default:
		return strconv.AppendQuote(b, fmt.Sprintf("%v", x))
	}
}

// WriteTraceJSONL streams the trace as one JSON object per line. A
// streaming registry has already written its events to the sink and
// retains nothing to export, so the call is rejected.
func (r *Registry) WriteTraceJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	streaming := r.sink != nil
	r.mu.Unlock()
	if streaming {
		return errors.New("obs: streaming registry does not retain events; the trace was written to the sink")
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range r.Events() {
		buf = e.appendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
