package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("z", 0, 10, 5)
	h.Observe(4)
	r.Emit("evt", 1.5, F("a", 1))
	if r.EventCount() != 0 || r.Events() != nil {
		t.Error("nil registry recorded events")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if r.RenderSummary() != "" {
		t.Error("nil registry rendered a summary")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("served")
	c.Inc()
	c.Add(2)
	if got := r.Counter("served").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	g := r.Gauge("depth")
	g.Set(2)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("wait", 0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 5, 10, 11} {
		h.Observe(x)
	}
	snap := r.Snapshot().Histograms["wait"]
	if snap.N != 6 || snap.Under != 1 || snap.Over != 1 {
		t.Fatalf("histogram snapshot = %+v", snap)
	}
	if snap.Counts[0] != 2 { // 0 and 1 land in [0,2)
		t.Errorf("bucket 0 = %d, want 2", snap.Counts[0])
	}
	if snap.Counts[4] != 1 { // x == max lands in the last bucket
		t.Errorf("bucket 4 = %d, want 1", snap.Counts[4])
	}
	if snap.Mean() != 26.0/6 {
		t.Errorf("mean = %v", snap.Mean())
	}
	// Re-registering reuses the original bounds.
	if r.Histogram("wait", 0, 99, 2) != h {
		t.Error("re-registration created a second histogram")
	}
	if r.Histogram("bad", 5, 5, 3) != nil {
		t.Error("invalid bounds accepted")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("b.count").Add(7)
		r.Counter("a.count").Add(2)
		r.Gauge("m.level").Set(0.25)
		r.Histogram("h.wait", 0, 100, 10).Observe(33)
		return r
	}
	var one, two bytes.Buffer
	if err := mk().WriteMetricsJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteMetricsJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("metric snapshots differ across identical runs")
	}
	var snap Snapshot
	if err := json.Unmarshal(one.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["b.count"] != 7 {
		t.Errorf("roundtrip lost counter: %+v", snap)
	}
}

func TestTraceJSONL(t *testing.T) {
	r := NewRegistry()
	r.Emit("place", 1.5, F("req", 3), F("center", 7), F("dc", 14.25), F("placer", "online-heuristic"))
	r.Emit("queue_reject", 2, F("req", 4), F("reason", "full"))
	var buf bytes.Buffer
	if err := r.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	want := `{"t":1.5,"kind":"place","req":3,"center":7,"dc":14.25,"placer":"online-heuristic"}`
	if lines[0] != want {
		t.Errorf("line 0 = %s\nwant     %s", lines[0], want)
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
	}
}

func TestRenderSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("placement.place_calls").Add(20)
	r.Gauge("queue.depth").Set(3)
	r.Histogram("cloudsim.wait_seconds", 0, 50, 10).Observe(12)
	r.Emit("place", 0)
	out := r.RenderSummary()
	for _, want := range []string{"placement.place_calls", "queue.depth", "cloudsim.wait_seconds", "trace: 1 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if hist := r.RenderHistogram("cloudsim.wait_seconds"); !strings.Contains(hist, "#") {
		t.Errorf("histogram render missing bars:\n%s", hist)
	}
	if r.RenderHistogram("nope") != "" {
		t.Error("unknown histogram rendered")
	}
}

func TestMetricNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("c")
	r.Gauge("b")
	r.Histogram("a", 0, 1, 1)
	got := r.MetricNames()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("names = %v", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", 0, 1000, 10).Observe(float64(i))
				r.Emit("e", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.EventCount(); got != 8000 {
		t.Errorf("events = %d, want 8000", got)
	}
}

func TestTraceIntSliceField(t *testing.T) {
	r := NewRegistry()
	r.Emit("fault", 3, F("nodes", []int{4, 5, 6}), F("empty", []int{}))
	var buf bytes.Buffer
	if err := r.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":3,"kind":"fault","nodes":[4,5,6],"empty":[]}`
	got := strings.TrimSuffix(buf.String(), "\n")
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
}
