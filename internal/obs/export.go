// Metrics export: a deterministic JSON snapshot for machines and a
// stats-rendered summary for humans.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"affinitycluster/internal/stats"
)

// WriteMetricsJSON writes the metric snapshot as indented JSON.
// encoding/json serializes map keys sorted, so the output of a
// deterministic run is byte-identical across runs.
func (r *Registry) WriteMetricsJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// RenderSummary renders every registered metric as aligned ASCII tables
// (via the stats toolkit), one section per metric kind, names sorted.
func (r *Registry) RenderSummary() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	out := ""
	if len(snap.Counters) > 0 {
		t := &stats.Table{Header: []string{"counter", "value"}}
		for _, name := range sortedKeys(snap.Counters) {
			t.Add(name, snap.Counters[name])
		}
		out += t.String()
	}
	if len(snap.Gauges) > 0 {
		t := &stats.Table{Header: []string{"gauge", "value"}}
		for _, name := range sortedKeys(snap.Gauges) {
			t.Add(name, snap.Gauges[name])
		}
		out += "\n" + t.String()
	}
	if len(snap.Histograms) > 0 {
		t := &stats.Table{Header: []string{"histogram", "n", "mean", "under", "over"}}
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			t.Add(name, h.N, h.Mean(), h.Under, h.Over)
		}
		out += "\n" + t.String()
	}
	if n := r.EventCount(); n > 0 {
		out += fmt.Sprintf("\ntrace: %d events\n", n)
	}
	return out
}

// RenderHistogram draws one histogram as an ASCII bar chart through the
// stats toolkit ("" for unknown names).
func (r *Registry) RenderHistogram(name string) string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	h, ok := snap.Histograms[name]
	if !ok || len(h.Counts) == 0 {
		return ""
	}
	sh := stats.NewHistogram(h.Min, h.Max, len(h.Counts))
	for i, c := range h.Counts {
		sh.Counts[i] = int(c)
	}
	sh.Under = int(h.Under)
	sh.Over = int(h.Over)
	return name + "\n" + sh.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
