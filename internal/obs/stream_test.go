package obs

import (
	"bytes"
	"errors"
	"testing"
)

// emitSample drives one fixed event sequence into r.
func emitSample(r *Registry) {
	r.Emit("place", 0, F("req", 1), F("dc", 14.25), F("center", 3))
	r.Emit("queue_reject", 1.5, F("req", 2), F("reason", "queue_full"))
	r.Emit("fault", 2.75, F("nodes", []int{4, 5}), F("ok", true))
	r.Emit("depart", 10, F("req", 1))
}

// TestStreamingByteIdentical pins the streaming contract: the bytes a
// streaming registry writes per Emit are exactly the bytes retained mode
// produces through WriteTraceJSONL for the same events.
func TestStreamingByteIdentical(t *testing.T) {
	retained := NewRegistry()
	emitSample(retained)
	var want bytes.Buffer
	if err := retained.WriteTraceJSONL(&want); err != nil {
		t.Fatalf("WriteTraceJSONL: %v", err)
	}

	var got bytes.Buffer
	streaming := NewStreamingRegistry(&got)
	emitSample(streaming)
	if err := streaming.SinkErr(); err != nil {
		t.Fatalf("SinkErr: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed trace differs from retained trace:\nstreamed: %q\nretained: %q", got.String(), want.String())
	}
	if got, want := streaming.EventCount(), retained.EventCount(); got != want {
		t.Fatalf("EventCount = %d, want %d", got, want)
	}
}

// TestStreamingRetainsNothing checks the memory contract: no events are
// held, Events is empty, and WriteTraceJSONL refuses.
func TestStreamingRetainsNothing(t *testing.T) {
	r := NewStreamingRegistry(&bytes.Buffer{})
	emitSample(r)
	if ev := r.Events(); len(ev) != 0 {
		t.Fatalf("streaming registry retained %d events", len(ev))
	}
	if len(r.events) != 0 {
		t.Fatalf("streaming registry holds %d events internally", len(r.events))
	}
	if r.EventCount() != 4 {
		t.Fatalf("EventCount = %d, want 4", r.EventCount())
	}
	if err := r.WriteTraceJSONL(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTraceJSONL on a streaming registry should fail")
	}
}

type failWriter struct {
	allow int
	err   error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.allow <= 0 {
		return 0, w.err
	}
	w.allow--
	return len(p), nil
}

// TestStreamingSinkErrorLatched checks the first write error is surfaced
// and later emits still count without writing.
func TestStreamingSinkErrorLatched(t *testing.T) {
	wantErr := errors.New("disk full")
	r := NewStreamingRegistry(&failWriter{allow: 1, err: wantErr})
	emitSample(r)
	if err := r.SinkErr(); !errors.Is(err, wantErr) {
		t.Fatalf("SinkErr = %v, want %v", err, wantErr)
	}
	if r.EventCount() != 4 {
		t.Fatalf("EventCount = %d, want 4", r.EventCount())
	}
}

// TestStreamingMetricsUnaffected checks the metric side is identical in
// both modes.
func TestStreamingMetricsUnaffected(t *testing.T) {
	r := NewStreamingRegistry(&bytes.Buffer{})
	r.Counter("placements").Add(3)
	r.Gauge("util").Set(0.5)
	r.Histogram("dc", 0, 10, 4).Observe(2)
	s := r.Snapshot()
	if s.Counters["placements"] != 3 || s.Gauges["util"] != 0.5 || s.Histograms["dc"].N != 1 {
		t.Fatalf("metric snapshot wrong: %+v", s)
	}
}
