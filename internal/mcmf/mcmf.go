// Package mcmf implements minimum-cost maximum-flow on integer-capacity
// networks using successive shortest augmenting paths with Johnson
// potentials (Bellman-Ford initialization, Dijkstra augmentation).
//
// It is the combinatorial fast path for the transportation problems at
// the heart of the paper's provisioning formulations: for a fixed central
// node, the SD problem is a transportation problem (supplies = remaining
// node capacities, demands = the request vector), and so is the
// fixed-centers GSD subproblem. The general LP/MIP route (packages lp and
// mip) solves the same instances and cross-checks this one; mcmf is
// asymptotically and practically faster and exactly integral by
// construction.
package mcmf

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Graph is a flow network under construction. Nodes are dense ints.
type Graph struct {
	n     int
	arcs  []arc
	heads [][]int // adjacency: node → arc indices (including reverse arcs)
}

type arc struct {
	to   int
	cap  int
	cost float64
	flow int
	rev  int // index of the reverse arc
}

// NewGraph creates a network with n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("mcmf: NewGraph(%d) needs at least one node", n))
	}
	return &Graph{n: n, heads: make([][]int, n)}
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// AddArc adds a directed arc u→v with the given capacity and per-unit
// cost, returning its index for later flow inspection.
func (g *Graph) AddArc(u, v, capacity int, cost float64) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("mcmf: arc (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("mcmf: negative capacity %d", capacity)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 0, fmt.Errorf("mcmf: non-finite cost %v", cost)
	}
	fwd := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: v, cap: capacity, cost: cost, rev: fwd + 1})
	g.arcs = append(g.arcs, arc{to: u, cap: 0, cost: -cost, rev: fwd})
	g.heads[u] = append(g.heads[u], fwd)
	g.heads[v] = append(g.heads[v], fwd+1)
	return fwd, nil
}

// Flow returns the flow currently on the arc with the given index.
func (g *Graph) Flow(arcIdx int) (int, error) {
	if arcIdx < 0 || arcIdx >= len(g.arcs) || arcIdx%2 != 0 {
		return 0, fmt.Errorf("mcmf: %d is not a forward arc index", arcIdx)
	}
	return g.arcs[arcIdx].flow, nil
}

// Result summarizes a run.
type Result struct {
	Flow int     // units shipped
	Cost float64 // total cost of the shipped flow
}

// ErrNegativeCycle is returned when the initial potential computation
// detects a negative-cost cycle (the model is malformed; transportation
// instances never produce one).
var ErrNegativeCycle = errors.New("mcmf: negative-cost cycle")

// MinCostFlow ships up to maxFlow units from s to t at minimum cost,
// stopping early when t becomes unreachable. Pass maxFlow < 0 to ship as
// much as possible.
func (g *Graph) MinCostFlow(s, t, maxFlow int) (*Result, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return nil, fmt.Errorf("mcmf: endpoints (%d,%d) out of range [0,%d)", s, t, g.n)
	}
	if s == t {
		return nil, errors.New("mcmf: source equals sink")
	}
	if maxFlow < 0 {
		maxFlow = math.MaxInt
	}
	pot, err := g.initialPotentials(s)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	dist := make([]float64, g.n)
	prevArc := make([]int, g.n)
	for res.Flow < maxFlow {
		if !g.dijkstra(s, t, pot, dist, prevArc) {
			break // t unreachable in the residual network
		}
		// Update potentials with the new shortest distances.
		for v := 0; v < g.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := t; v != s; {
			a := &g.arcs[prevArc[v]]
			if r := a.cap - a.flow; r < push {
				push = r
			}
			v = g.arcs[a.rev].to
		}
		for v := t; v != s; {
			a := &g.arcs[prevArc[v]]
			a.flow += push
			g.arcs[a.rev].flow -= push
			res.Cost += float64(push) * a.cost
			v = g.arcs[a.rev].to
		}
		res.Flow += push
	}
	return res, nil
}

// initialPotentials runs Bellman-Ford from s over arcs with residual
// capacity, so that reduced costs become non-negative for Dijkstra. With
// non-negative arc costs this converges immediately.
func (g *Graph) initialPotentials(s int) ([]float64, error) {
	pot := make([]float64, g.n)
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if math.IsInf(pot[u], 1) {
				continue
			}
			for _, ai := range g.heads[u] {
				a := g.arcs[ai]
				if a.cap-a.flow <= 0 {
					continue
				}
				if nd := pot[u] + a.cost; nd < pot[a.to]-1e-12 {
					pot[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			// Unreached nodes keep +Inf; normalize to 0 so reduced costs
			// stay finite if they become reachable later.
			for i := range pot {
				if math.IsInf(pot[i], 1) {
					pot[i] = 0
				}
			}
			return pot, nil
		}
	}
	return nil, ErrNegativeCycle
}

// dijkstra finds shortest reduced-cost paths from s; returns false when t
// is unreachable. prevArc[v] records the arc entering v on the path.
func (g *Graph) dijkstra(s, t int, pot, dist []float64, prevArc []int) bool {
	for i := range dist {
		dist[i] = math.Inf(1)
		prevArc[i] = -1
	}
	dist[s] = 0
	pq := &nodeHeap{{node: s, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if item.dist > dist[item.node]+1e-12 {
			continue // stale entry
		}
		u := item.node
		for _, ai := range g.heads[u] {
			a := g.arcs[ai]
			if a.cap-a.flow <= 0 {
				continue
			}
			rc := a.cost + pot[u] - pot[a.to]
			if rc < 0 && rc > -1e-9 {
				rc = 0 // rounding guard
			}
			if nd := dist[u] + rc; nd < dist[a.to]-1e-12 {
				dist[a.to] = nd
				prevArc[a.to] = ai
				heap.Push(pq, nodeItem{node: a.to, dist: nd})
			}
		}
	}
	return !math.IsInf(dist[t], 1)
}

type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Transportation solves the classic transportation problem: ship
// demand[j] units to each consumer from suppliers with supply[i] units at
// cost[i][j] per unit. It returns the shipment matrix and total cost, or
// an error if total demand exceeds total supply or shapes are ragged.
func Transportation(cost [][]float64, supply, demand []int) ([][]int, float64, error) {
	rows := len(supply)
	cols := len(demand)
	if rows == 0 || cols == 0 {
		return nil, 0, errors.New("mcmf: empty transportation instance")
	}
	if len(cost) != rows {
		return nil, 0, fmt.Errorf("mcmf: cost has %d rows, want %d", len(cost), rows)
	}
	totalSupply, totalDemand := 0, 0
	for _, s := range supply {
		if s < 0 {
			return nil, 0, errors.New("mcmf: negative supply")
		}
		totalSupply += s
	}
	for _, d := range demand {
		if d < 0 {
			return nil, 0, errors.New("mcmf: negative demand")
		}
		totalDemand += d
	}
	if totalDemand > totalSupply {
		return nil, 0, fmt.Errorf("mcmf: demand %d exceeds supply %d", totalDemand, totalSupply)
	}
	// Nodes: 0 = source, 1..rows = suppliers, rows+1..rows+cols =
	// consumers, rows+cols+1 = sink.
	g := NewGraph(rows + cols + 2)
	src, sink := 0, rows+cols+1
	for i := 0; i < rows; i++ {
		if _, err := g.AddArc(src, 1+i, supply[i], 0); err != nil {
			return nil, 0, err
		}
	}
	arcIdx := make([][]int, rows)
	for i := 0; i < rows; i++ {
		if len(cost[i]) != cols {
			return nil, 0, fmt.Errorf("mcmf: cost row %d has %d entries, want %d", i, len(cost[i]), cols)
		}
		arcIdx[i] = make([]int, cols)
		for j := 0; j < cols; j++ {
			idx, err := g.AddArc(1+i, 1+rows+j, supply[i], cost[i][j])
			if err != nil {
				return nil, 0, err
			}
			arcIdx[i][j] = idx
		}
	}
	for j := 0; j < cols; j++ {
		if _, err := g.AddArc(1+rows+j, sink, demand[j], 0); err != nil {
			return nil, 0, err
		}
	}
	res, err := g.MinCostFlow(src, sink, totalDemand)
	if err != nil {
		return nil, 0, err
	}
	if res.Flow < totalDemand {
		return nil, 0, fmt.Errorf("mcmf: only %d of %d units shippable", res.Flow, totalDemand)
	}
	ship := make([][]int, rows)
	for i := range ship {
		ship[i] = make([]int, cols)
		for j := 0; j < cols; j++ {
			f, err := g.Flow(arcIdx[i][j])
			if err != nil {
				return nil, 0, err
			}
			ship[i][j] = f
		}
	}
	return ship, res.Cost, nil
}
