package mcmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/lp"
)

func TestBasicPath(t *testing.T) {
	// 0 → 1 → 2, capacities 5, costs 1 and 2 → 5 units at cost 15.
	g := NewGraph(3)
	if _, err := g.AddArc(0, 1, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddArc(1, 2, 5, 2); err != nil {
		t.Fatal(err)
	}
	res, err := g.MinCostFlow(0, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Cost != 15 {
		t.Fatalf("flow %d cost %v, want 5 / 15", res.Flow, res.Cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel paths 0→1→3 (cost 1+1) and 0→2→3 (cost 5+5); capacity
	// 3 each; ship 4 units: 3 on the cheap path, 1 on the dear one.
	g := NewGraph(4)
	mustArc(t, g, 0, 1, 3, 1)
	mustArc(t, g, 1, 3, 3, 1)
	mustArc(t, g, 0, 2, 3, 5)
	mustArc(t, g, 2, 3, 3, 5)
	res, err := g.MinCostFlow(0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 4 || res.Cost != 3*2+1*10 {
		t.Fatalf("flow %d cost %v, want 4 / 16", res.Flow, res.Cost)
	}
}

func mustArc(t *testing.T, g *Graph, u, v, c int, cost float64) int {
	t.Helper()
	idx, err := g.AddArc(u, v, c, cost)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestResidualRerouting(t *testing.T) {
	// Classic instance where the second augmentation must push flow back
	// over a reverse arc: diamond with a cross edge.
	g := NewGraph(4)
	mustArc(t, g, 0, 1, 1, 1)
	mustArc(t, g, 0, 2, 1, 4)
	mustArc(t, g, 1, 2, 1, 1) // cheap cross edge
	mustArc(t, g, 1, 3, 1, 4)
	mustArc(t, g, 2, 3, 1, 1)
	res, err := g.MinCostFlow(0, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Max flow is 2 (arcs into node 3 have capacity 1 each). The greedy
	// first augmentation takes 0→1→2→3 (cost 3); the second unit then has
	// to undo the cross edge: 0→2, reverse 2→1, 1→3 costs 4−1+4 = 7.
	// Total 10 — the same as the path pair {0→1→3, 0→2→3}, which is the
	// true optimum.
	if res.Flow != 2 || math.Abs(res.Cost-10) > 1e-9 {
		t.Fatalf("flow %d cost %v, want 2 / 10", res.Flow, res.Cost)
	}
}

func TestMaxFlowLimit(t *testing.T) {
	g := NewGraph(2)
	mustArc(t, g, 0, 1, 10, 3)
	res, err := g.MinCostFlow(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 4 || res.Cost != 12 {
		t.Fatalf("flow %d cost %v", res.Flow, res.Cost)
	}
}

func TestUnreachableSink(t *testing.T) {
	g := NewGraph(3)
	mustArc(t, g, 0, 1, 5, 1)
	res, err := g.MinCostFlow(0, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("flow %d cost %v, want 0 / 0", res.Flow, res.Cost)
	}
}

func TestAPIErrors(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddArc(0, 5, 1, 1); err == nil {
		t.Error("out-of-range arc accepted")
	}
	if _, err := g.AddArc(0, 1, -1, 1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := g.AddArc(0, 1, 1, math.NaN()); err == nil {
		t.Error("NaN cost accepted")
	}
	if _, err := g.MinCostFlow(0, 0, -1); err == nil {
		t.Error("s == t accepted")
	}
	if _, err := g.MinCostFlow(0, 9, -1); err == nil {
		t.Error("out-of-range sink accepted")
	}
	idx := mustArc(t, g, 0, 1, 1, 1)
	if _, err := g.Flow(idx + 1); err == nil {
		t.Error("reverse arc index accepted by Flow")
	}
	if _, err := g.Flow(-1); err == nil {
		t.Error("negative arc index accepted by Flow")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewGraph(0) did not panic")
		}
	}()
	NewGraph(0)
}

func TestFlowInspection(t *testing.T) {
	g := NewGraph(2)
	idx := mustArc(t, g, 0, 1, 7, 2)
	if _, err := g.MinCostFlow(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	f, err := g.Flow(idx)
	if err != nil || f != 3 {
		t.Fatalf("Flow = %d, %v", f, err)
	}
	if g.Nodes() != 2 {
		t.Error("Nodes wrong")
	}
}

func TestTransportationSmall(t *testing.T) {
	cost := [][]float64{{1, 4}, {3, 2}}
	ship, total, err := Transportation(cost, []int{3, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 { // 2×1 + 2×2
		t.Fatalf("cost = %v, want 6", total)
	}
	if ship[0][0] != 2 || ship[1][1] != 2 {
		t.Fatalf("ship = %v", ship)
	}
}

func TestTransportationValidation(t *testing.T) {
	if _, _, err := Transportation(nil, nil, nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, _, err := Transportation([][]float64{{1}}, []int{1}, []int{2}); err == nil {
		t.Error("demand > supply accepted")
	}
	if _, _, err := Transportation([][]float64{{1}}, []int{-1}, []int{0}); err == nil {
		t.Error("negative supply accepted")
	}
	if _, _, err := Transportation([][]float64{{1}}, []int{1}, []int{-1}); err == nil {
		t.Error("negative demand accepted")
	}
	if _, _, err := Transportation([][]float64{{1, 2}}, []int{1}, []int{1, 0, 0}); err == nil {
		t.Error("ragged cost accepted")
	}
	if _, _, err := Transportation([][]float64{{1}, {2}}, []int{1}, []int{1}); err == nil {
		t.Error("cost rows mismatch accepted")
	}
}

// Property: on random transportation instances, mcmf matches the LP
// optimum and satisfies all constraints.
func TestQuickTransportationMatchesLP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(3), 2+r.Intn(3)
		cost := make([][]float64, rows)
		supply := make([]int, rows)
		total := 0
		for i := range cost {
			cost[i] = make([]float64, cols)
			for j := range cost[i] {
				cost[i][j] = float64(1 + r.Intn(9))
			}
			supply[i] = 1 + r.Intn(5)
			total += supply[i]
		}
		demand := make([]int, cols)
		remaining := total
		for j := range demand {
			demand[j] = r.Intn(remaining + 1)
			remaining -= demand[j]
		}
		ship, got, err := Transportation(cost, supply, demand)
		if err != nil {
			return false
		}
		// Constraint check.
		for i := 0; i < rows; i++ {
			rowSum := 0
			for j := 0; j < cols; j++ {
				if ship[i][j] < 0 {
					return false
				}
				rowSum += ship[i][j]
			}
			if rowSum > supply[i] {
				return false
			}
		}
		for j := 0; j < cols; j++ {
			colSum := 0
			for i := 0; i < rows; i++ {
				colSum += ship[i][j]
			}
			if colSum != demand[j] {
				return false
			}
		}
		// LP reference.
		p := lp.NewProblem(rows * cols)
		obj := make([]float64, rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				obj[i*cols+j] = cost[i][j]
			}
		}
		if err := p.SetObjective(obj); err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			vars := make([]int, cols)
			coefs := make([]float64, cols)
			for j := 0; j < cols; j++ {
				vars[j] = i*cols + j
				coefs[j] = 1
			}
			if err := p.AddSparseConstraint(vars, coefs, lp.LE, float64(supply[i])); err != nil {
				return false
			}
		}
		for j := 0; j < cols; j++ {
			vars := make([]int, rows)
			coefs := make([]float64, rows)
			for i := 0; i < rows; i++ {
				vars[i] = i*cols + j
				coefs[i] = 1
			}
			if err := p.AddSparseConstraint(vars, coefs, lp.EQ, float64(demand[j])); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			return false
		}
		return math.Abs(got-sol.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: min-cost flow cost is monotone in the flow target.
func TestQuickCostMonotoneInFlow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		build := func() *Graph {
			g := NewGraph(n)
			r2 := rand.New(rand.NewSource(seed))
			for e := 0; e < 2*n; e++ {
				u, v := r2.Intn(n), r2.Intn(n)
				if u == v {
					continue
				}
				_, _ = g.AddArc(u, v, 1+r2.Intn(4), float64(r2.Intn(5)))
			}
			return g
		}
		g1 := build()
		res1, err := g1.MinCostFlow(0, n-1, 1)
		if err != nil {
			return false
		}
		g2 := build()
		res2, err := g2.MinCostFlow(0, n-1, 2)
		if err != nil {
			return false
		}
		if res2.Flow < res1.Flow {
			return false
		}
		return res2.Cost >= res1.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
