package queue

import (
	"errors"
	"sync"
	"testing"

	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
)

func req(id int, vec model.Request, prio int) model.TimedRequest {
	return model.TimedRequest{ID: model.RequestID(id), Vector: vec, Priority: prio}
}

func TestFIFOOrder(t *testing.T) {
	q := New(FIFO, 0)
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(req(i, model.Request{1}, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := q.Peek()
	for i := range got {
		if got[i].ID != model.RequestID(i) {
			t.Errorf("position %d: ID %d", i, got[i].ID)
		}
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestPriorityOrder(t *testing.T) {
	q := New(PriorityPolicy, 0)
	_ = q.Enqueue(req(0, model.Request{1}, 1))
	_ = q.Enqueue(req(1, model.Request{1}, 5))
	_ = q.Enqueue(req(2, model.Request{1}, 5))
	_ = q.Enqueue(req(3, model.Request{1}, 3))
	got := q.Peek()
	wantIDs := []model.RequestID{1, 2, 3, 0} // 5,5 FIFO within level, 3, 1
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Errorf("position %d: ID %d, want %d", i, got[i].ID, w)
		}
	}
}

func TestCapacityLimit(t *testing.T) {
	q := New(FIFO, 2)
	_ = q.Enqueue(req(0, model.Request{1}, 0))
	_ = q.Enqueue(req(1, model.Request{1}, 0))
	if err := q.Enqueue(req(2, model.Request{1}, 0)); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestDuplicateID(t *testing.T) {
	q := New(FIFO, 0)
	_ = q.Enqueue(req(7, model.Request{1}, 0))
	if err := q.Enqueue(req(7, model.Request{2}, 0)); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestCancel(t *testing.T) {
	q := New(FIFO, 0)
	_ = q.Enqueue(req(0, model.Request{1}, 0))
	_ = q.Enqueue(req(1, model.Request{1}, 0))
	if err := q.Cancel(0); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 || q.Peek()[0].ID != 1 {
		t.Error("cancel removed the wrong request")
	}
	if err := q.Cancel(42); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	// Cancelled ID can be reused.
	if err := q.Enqueue(req(0, model.Request{3}, 0)); err != nil {
		t.Errorf("re-enqueue after cancel: %v", err)
	}
}

func TestGetRequestsSkipsOversized(t *testing.T) {
	q := New(FIFO, 0)
	_ = q.Enqueue(req(0, model.Request{5}, 0)) // too big
	_ = q.Enqueue(req(1, model.Request{2}, 0))
	_ = q.Enqueue(req(2, model.Request{2}, 0))
	taken := q.GetRequests([]int{4})
	if len(taken) != 2 || taken[0].ID != 1 || taken[1].ID != 2 {
		t.Fatalf("taken = %v", taken)
	}
	if q.Len() != 1 || q.Peek()[0].ID != 0 {
		t.Error("oversized request should remain queued")
	}
}

func TestGetRequestsRunningBudget(t *testing.T) {
	q := New(FIFO, 0)
	_ = q.Enqueue(req(0, model.Request{3}, 0))
	_ = q.Enqueue(req(1, model.Request{3}, 0))
	taken := q.GetRequests([]int{4})
	// Only the first fits within the running budget of 4.
	if len(taken) != 1 || taken[0].ID != 0 {
		t.Fatalf("taken = %v", taken)
	}
	if q.Len() != 1 {
		t.Error("second request should remain")
	}
}

func TestGetRequestsStrictBlocksAtHead(t *testing.T) {
	q := New(FIFO, 0)
	_ = q.Enqueue(req(0, model.Request{5}, 0)) // head does not fit
	_ = q.Enqueue(req(1, model.Request{1}, 0))
	taken := q.GetRequestsStrict([]int{4})
	if len(taken) != 0 {
		t.Fatalf("strict took %v despite blocked head", taken)
	}
	if q.Len() != 2 {
		t.Error("strict variant must not remove anything")
	}
	taken = q.GetRequestsStrict([]int{6})
	if len(taken) != 2 {
		t.Fatalf("strict with budget 6 took %d", len(taken))
	}
}

func TestGetRequestsWrongLengthVectorSkipped(t *testing.T) {
	q := New(FIFO, 0)
	_ = q.Enqueue(req(0, model.Request{1, 1}, 0)) // 2 types vs avail of 1
	_ = q.Enqueue(req(1, model.Request{1}, 0))
	taken := q.GetRequests([]int{4})
	if len(taken) != 1 || taken[0].ID != 1 {
		t.Fatalf("taken = %v", taken)
	}
}

func TestGetRequestsPriorityOrdering(t *testing.T) {
	q := New(PriorityPolicy, 0)
	_ = q.Enqueue(req(0, model.Request{3}, 0))
	_ = q.Enqueue(req(1, model.Request{3}, 9))
	taken := q.GetRequests([]int{3})
	if len(taken) != 1 || taken[0].ID != 1 {
		t.Fatalf("priority queue served %v first", taken)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || PriorityPolicy.String() != "priority" || Policy(9).String() != "Policy(9)" {
		t.Error("Policy strings wrong")
	}
}

func TestDequeuePolicyOrder(t *testing.T) {
	q := New(PriorityPolicy, 0)
	_ = q.Enqueue(req(0, model.Request{1}, 1))
	_ = q.Enqueue(req(1, model.Request{1}, 5))
	_ = q.Enqueue(req(2, model.Request{1}, 5))
	wantIDs := []model.RequestID{1, 2, 0}
	for _, w := range wantIDs {
		got, ok := q.Dequeue()
		if !ok || got.ID != w {
			t.Fatalf("Dequeue = (%v, %v), want ID %d", got.ID, ok, w)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("Dequeue on empty queue reported ok")
	}
	// Dequeued IDs can be reused — their bookkeeping is gone.
	if err := q.Enqueue(req(1, model.Request{1}, 0)); err != nil {
		t.Errorf("re-enqueue after dequeue: %v", err)
	}
}

// seqsLen exposes the size of the internal sequence map to the leak test.
func (q *Queue) seqsLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.seqs)
}

// TestSeqsMapShrinksWithQueue churns requests through every exit path —
// Dequeue, Cancel, GetRequests, GetRequestsStrict — and asserts the
// internal seqs map always matches the queue length, so long arrival
// streams cannot leak bookkeeping entries.
func TestSeqsMapShrinksWithQueue(t *testing.T) {
	q := New(FIFO, 0)
	check := func(when string) {
		t.Helper()
		if got, want := q.seqsLen(), q.Len(); got != want {
			t.Fatalf("%s: seqs has %d entries, queue has %d items", when, got, want)
		}
	}
	id := 0
	for round := 0; round < 50; round++ {
		for k := 0; k < 4; k++ {
			if err := q.Enqueue(req(id, model.Request{1}, 0)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		check("after enqueue")
		switch round % 4 {
		case 0:
			if _, ok := q.Dequeue(); !ok {
				t.Fatal("dequeue failed")
			}
		case 1:
			if err := q.Cancel(model.RequestID(id - 1)); err != nil {
				t.Fatal(err)
			}
		case 2:
			if taken := q.GetRequests([]int{2}); len(taken) != 2 {
				t.Fatalf("GetRequests took %d", len(taken))
			}
		case 3:
			if taken := q.GetRequestsStrict([]int{3}); len(taken) != 3 {
				t.Fatalf("GetRequestsStrict took %d", len(taken))
			}
		}
		check("after removal")
	}
	// Drain completely: every map entry must be gone.
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}
	if q.Len() != 0 || q.seqsLen() != 0 {
		t.Fatalf("drained queue still holds %d items / %d seqs", q.Len(), q.seqsLen())
	}
	// The vacated backing array must not pin request vectors alive.
	for i := 0; i < cap(q.items); i++ {
		it := q.items[:cap(q.items)][i]
		if it.Vector != nil {
			t.Fatalf("stale request %d left in backing array", it.ID)
		}
	}
}

func TestQueueInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	q := New(FIFO, 1)
	q.Instrument(reg)
	_ = q.Enqueue(req(0, model.Request{1}, 0))
	_ = q.Enqueue(req(1, model.Request{1}, 0)) // full → rejected
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	_ = q.Enqueue(req(2, model.Request{1}, 0))
	_ = q.Cancel(2)
	_ = q.Enqueue(req(3, model.Request{1}, 0))
	q.GetRequests([]int{1})
	snap := reg.Snapshot()
	want := map[string]int64{
		"queue.enqueued":  3,
		"queue.rejected":  1,
		"queue.cancelled": 1,
		"queue.admitted":  2, // one Dequeue + one GetRequests
	}
	for name, w := range want {
		if got := snap.Counters[name]; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	if got := snap.Gauges["queue.depth"]; got != 0 {
		t.Errorf("queue.depth = %v, want 0", got)
	}
}

func TestConcurrentEnqueueCancel(t *testing.T) {
	q := New(FIFO, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := base*1000 + i
				if err := q.Enqueue(req(id, model.Request{1}, 0)); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := q.Cancel(model.RequestID(id)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 8*25 {
		t.Errorf("Len = %d, want %d", q.Len(), 8*25)
	}
}

func TestEnqueueFrontOrdersAheadOfFIFO(t *testing.T) {
	q := New(FIFO, 0)
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(req(i, model.Request{1}, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.EnqueueFront(req(9, model.Request{1}, 0)); err != nil {
		t.Fatal(err)
	}
	got := q.Peek()
	if got[0].ID != 9 {
		t.Errorf("head = %d, want 9", got[0].ID)
	}
	for i := 1; i < 4; i++ {
		if got[i].ID != model.RequestID(i-1) {
			t.Errorf("position %d: ID %d", i, got[i].ID)
		}
	}
	// A second front insert outranks the first.
	if err := q.EnqueueFront(req(8, model.Request{1}, 0)); err != nil {
		t.Fatal(err)
	}
	if head, ok := q.Dequeue(); !ok || head.ID != 8 {
		t.Errorf("dequeued %v, want 8", head.ID)
	}
}

func TestEnqueueFrontPriorityAndLimits(t *testing.T) {
	q := New(PriorityPolicy, 2)
	if err := q.Enqueue(req(0, model.Request{1}, 5)); err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueFront(req(1, model.Request{1}, 1)); err != nil {
		t.Fatal(err)
	}
	// Priority still dominates; within a level the front insert leads.
	got := q.Peek()
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Errorf("order = %v,%v, want 0,1", got[0].ID, got[1].ID)
	}
	if err := q.EnqueueFront(req(2, model.Request{1}, 0)); !errors.Is(err, ErrFull) {
		t.Errorf("over-capacity front insert: %v", err)
	}
	if err := q.EnqueueFront(req(1, model.Request{1}, 0)); err == nil {
		t.Error("duplicate front insert accepted")
	}
	// Taken requests clear their seqs so the ID can requeue later.
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if err := q.EnqueueFront(req(0, model.Request{1}, 5)); err != nil {
		t.Errorf("re-insert after dequeue: %v", err)
	}
}

// TestPeekSurvivesMutation pins the copy contract of Peek: a result held
// across Dequeue/Cancel/GetRequests must keep its values even though
// removeAt and removeTaken zero the vacated tail slots of the queue's
// backing array. If ordered() ever returned q.items (or a reslice of it),
// the held snapshot's entries would be wiped to zero structs here.
func TestPeekSurvivesMutation(t *testing.T) {
	q := New(FIFO, 0)
	for i := 0; i < 4; i++ {
		if err := q.Enqueue(req(i, model.Request{i + 1, 2 * i}, 0)); err != nil {
			t.Fatal(err)
		}
	}
	held := q.Peek()

	// Drain the whole queue: every removeAt zeroes a tail slot.
	for i := 0; i < 4; i++ {
		if _, ok := q.Dequeue(); !ok {
			t.Fatalf("dequeue %d failed", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	for i, r := range held {
		if r.ID != model.RequestID(i) {
			t.Fatalf("held[%d].ID = %d after drain, want %d (snapshot aliased backing array)", i, r.ID, i)
		}
		if len(r.Vector) != 2 || r.Vector[0] != i+1 || r.Vector[1] != 2*i {
			t.Fatalf("held[%d].Vector = %v after drain, want [%d %d]", i, r.Vector, i+1, 2*i)
		}
	}
}

// TestGetRequestsSurvivesMutation pins the same contract for GetRequests:
// the taken slice must stay intact across later enqueues, takes, and
// cancels (removeTaken zeroes the compacted tail in place).
func TestGetRequestsSurvivesMutation(t *testing.T) {
	q := New(PriorityPolicy, 0)
	for i := 0; i < 6; i++ {
		if err := q.Enqueue(req(i, model.Request{1}, i%3)); err != nil {
			t.Fatal(err)
		}
	}
	taken := q.GetRequests([]int{3}) // admits the first three in priority order
	if len(taken) != 3 {
		t.Fatalf("took %d requests, want 3", len(taken))
	}
	wantIDs := make([]model.RequestID, len(taken))
	for i, r := range taken {
		wantIDs[i] = r.ID
	}

	// Churn the queue hard: re-add, take again, cancel, drain.
	for i := 6; i < 10; i++ {
		if err := q.Enqueue(req(i, model.Request{1}, 1)); err != nil {
			t.Fatal(err)
		}
	}
	_ = q.GetRequests([]int{4})
	for _, r := range q.Peek() {
		_ = q.Cancel(r.ID)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	for i, r := range taken {
		if r.ID != wantIDs[i] {
			t.Fatalf("taken[%d].ID changed from %d to %d across mutations", i, wantIDs[i], r.ID)
		}
		if len(r.Vector) != 1 || r.Vector[0] != 1 {
			t.Fatalf("taken[%d].Vector = %v after churn, want [1]", i, r.Vector)
		}
	}
}
