// Package queue implements the request wait queue of the paper's Section
// III.C: requests that cannot be admitted immediately wait until resources
// free up, are served by a configurable policy (FIFO or priority), and can
// be cancelled by their owner. GetRequests implements the paper's
// getRequests(Q, A): the maximal policy-ordered prefix of requests the
// current availability can admit together.
package queue

import (
	"errors"
	"fmt"
	"sync"

	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
)

// Policy orders the wait queue.
type Policy int

const (
	// FIFO serves requests in arrival order.
	FIFO Policy = iota
	// PriorityPolicy serves higher Priority first, FIFO within a level.
	PriorityPolicy
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case PriorityPolicy:
		return "priority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ErrNotFound is returned by Cancel for an unknown request ID.
var ErrNotFound = errors.New("queue: request not found")

// ErrFull is returned by Enqueue when the queue is at capacity — the
// paper notes "the length of the wait queue is limited".
var ErrFull = errors.New("queue: full")

// Queue is a bounded wait queue of virtual cluster requests. It is safe
// for concurrent use.
type Queue struct {
	mu       sync.Mutex
	policy   Policy
	capacity int // 0 = unbounded
	items    []model.TimedRequest
	seq      int // admission sequence for stable FIFO within priorities
	front    int // descending sequence handed to EnqueueFront insertions
	seqs     map[model.RequestID]int

	// obs handles; nil (no-op) unless Instrument was called.
	mEnqueued  *obs.Counter
	mRejected  *obs.Counter
	mCancelled *obs.Counter
	mAdmitted  *obs.Counter
	mDepth     *obs.Gauge
}

// New creates a queue with the given policy. capacity 0 means unbounded.
func New(policy Policy, capacity int) *Queue {
	return &Queue{policy: policy, capacity: capacity, seqs: make(map[model.RequestID]int)}
}

// Instrument resolves the queue's metric handles against a registry. A
// nil registry (or never calling Instrument) leaves the queue completely
// uninstrumented: every metric call is a nil-receiver no-op.
func (q *Queue) Instrument(r *obs.Registry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.mEnqueued = r.Counter("queue.enqueued")
	q.mRejected = r.Counter("queue.rejected")
	q.mCancelled = r.Counter("queue.cancelled")
	q.mAdmitted = r.Counter("queue.admitted")
	q.mDepth = r.Gauge("queue.depth")
}

// Len returns the number of waiting requests.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Enqueue adds a request to the queue.
func (q *Queue) Enqueue(r model.TimedRequest) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.capacity > 0 && len(q.items) >= q.capacity {
		q.mRejected.Inc()
		return ErrFull
	}
	if _, dup := q.seqs[r.ID]; dup {
		q.mRejected.Inc()
		return fmt.Errorf("queue: duplicate request ID %d", r.ID)
	}
	q.items = append(q.items, r)
	q.seqs[r.ID] = q.seq
	q.seq++
	q.mEnqueued.Inc()
	q.mDepth.Set(float64(len(q.items)))
	return nil
}

// EnqueueFront inserts a request at the head of the policy order (first
// in FIFO order, first within its priority level). Fault recovery uses
// it to requeue a cluster torn down by a node failure: the victim keeps
// its original arrival time and gets first claim on repaired capacity
// instead of waiting behind requests that arrived after it was already
// being served.
func (q *Queue) EnqueueFront(r model.TimedRequest) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.capacity > 0 && len(q.items) >= q.capacity {
		q.mRejected.Inc()
		return ErrFull
	}
	if _, dup := q.seqs[r.ID]; dup {
		q.mRejected.Inc()
		return fmt.Errorf("queue: duplicate request ID %d", r.ID)
	}
	q.items = append(q.items, model.TimedRequest{})
	copy(q.items[1:], q.items)
	q.items[0] = r
	q.front--
	q.seqs[r.ID] = q.front
	q.mEnqueued.Inc()
	q.mDepth.Set(float64(len(q.items)))
	return nil
}

// removeAt deletes items[i], dropping its seqs entry and zeroing the
// vacated tail slot so the backing array does not pin the removed
// request's vectors alive. Callers hold q.mu.
func (q *Queue) removeAt(i int) {
	delete(q.seqs, q.items[i].ID)
	last := len(q.items) - 1
	copy(q.items[i:], q.items[i+1:])
	q.items[last] = model.TimedRequest{}
	q.items = q.items[:last]
	q.mDepth.Set(float64(len(q.items)))
}

// Cancel removes a waiting request — the paper's "users can also cancel
// their jobs".
func (q *Queue) Cancel(id model.RequestID) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.ID == id {
			q.removeAt(i)
			q.mCancelled.Inc()
			return nil
		}
	}
	return ErrNotFound
}

// Dequeue pops the first request in policy order, or reports false on an
// empty queue.
func (q *Queue) Dequeue() (model.TimedRequest, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return model.TimedRequest{}, false
	}
	head := q.ordered()[0]
	for i, it := range q.items {
		if it.ID == head.ID {
			q.removeAt(i)
			break
		}
	}
	q.mAdmitted.Inc()
	return head, true
}

// Peek returns the waiting requests in policy order without removing them.
// The returned slice is a fresh copy that never aliases the queue's
// backing array: removeAt/removeTaken zero vacated tail slots on every
// Dequeue/Cancel/GetRequests, so a result sharing storage with q.items
// would see its entries wiped by later queue operations. A caller may
// hold a Peek result across arbitrary mutations (pinned by
// TestPeekSurvivesMutation).
func (q *Queue) Peek() []model.TimedRequest {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ordered()
}

// ordered returns a policy-sorted copy; callers hold q.mu. Returning a
// copy (never q.items or a reslice of it) is a correctness requirement,
// not an optimization choice: every public method that hands requests out
// (Peek, Dequeue, GetRequests, GetRequestsStrict) goes through here, and
// removeAt/removeTaken zero the vacated tail of the backing array, which
// would destroy any aliasing result the caller still holds.
func (q *Queue) ordered() []model.TimedRequest {
	out := append([]model.TimedRequest(nil), q.items...)
	if q.policy == PriorityPolicy {
		// Insertion sort keeps the code dependency-free and the queue is
		// short by construction.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0; j-- {
				a, b := out[j-1], out[j]
				if b.Priority > a.Priority ||
					(b.Priority == a.Priority && q.seqs[b.ID] < q.seqs[a.ID]) {
					out[j-1], out[j] = out[j], out[j-1]
				} else {
					break
				}
			}
		}
	}
	return out
}

// GetRequests implements the paper's getRequests(Q, A): walk the queue in
// policy order and take every request the running availability can still
// admit, removing the taken requests from the queue. Requests that do not
// fit are skipped, not blocked behind (the paper admits any subset the
// resources can meet). The returned slice is built from ordered()'s copy,
// so like Peek it stays valid across later queue mutations even though
// removeTaken zeroes the compacted tail of the backing array.
func (q *Queue) GetRequests(avail []int) []model.TimedRequest {
	q.mu.Lock()
	defer q.mu.Unlock()
	remaining := append([]int(nil), avail...)
	var taken []model.TimedRequest
	takenIDs := make(map[model.RequestID]bool)
	for _, r := range q.ordered() {
		if len(r.Vector) != len(remaining) {
			continue
		}
		if model.Covers(remaining, r.Vector) {
			remaining = model.Sub(remaining, r.Vector)
			taken = append(taken, r)
			takenIDs[r.ID] = true
		}
	}
	q.removeTaken(takenIDs)
	return taken
}

// removeTaken compacts the queue, dropping every taken request's item and
// seqs entry and zeroing the vacated tail of the backing array (stale
// slots would otherwise pin request vectors alive across long arrival
// streams). Callers hold q.mu.
func (q *Queue) removeTaken(takenIDs map[model.RequestID]bool) {
	if len(takenIDs) == 0 {
		return
	}
	n := len(q.items)
	kept := q.items[:0]
	for _, it := range q.items {
		if !takenIDs[it.ID] {
			kept = append(kept, it)
		} else {
			delete(q.seqs, it.ID)
		}
	}
	for i := len(kept); i < n; i++ {
		q.items[i] = model.TimedRequest{}
	}
	q.items = kept
	q.mAdmitted.Add(int64(len(takenIDs)))
	q.mDepth.Set(float64(len(q.items)))
}

// GetRequestsStrict is the head-blocking variant: it stops at the first
// request in policy order that does not fit. Strict FIFO fairness avoids
// starving large requests at the cost of utilization; the cloud simulator
// exposes both for comparison.
func (q *Queue) GetRequestsStrict(avail []int) []model.TimedRequest {
	q.mu.Lock()
	defer q.mu.Unlock()
	remaining := append([]int(nil), avail...)
	var taken []model.TimedRequest
	takenIDs := make(map[model.RequestID]bool)
	for _, r := range q.ordered() {
		if len(r.Vector) != len(remaining) || !model.Covers(remaining, r.Vector) {
			break
		}
		remaining = model.Sub(remaining, r.Vector)
		taken = append(taken, r)
		takenIDs[r.ID] = true
	}
	q.removeTaken(takenIDs)
	return taken
}
