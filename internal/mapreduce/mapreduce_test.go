package mapreduce

import (
	"strings"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/dfs"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/netmodel"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/vcluster"
)

// rig bundles a ready-to-run simulator over a given allocation.
type rig struct {
	engine  *eventsim.Engine
	sim     *Simulator
	cluster *vcluster.Cluster
	fs      *dfs.FS
}

func newRig(t *testing.T, tp *topology.Topology, alloc affinity.Allocation, inputMB float64, cfg SimConfig) *rig {
	t.Helper()
	c, err := vcluster.FromAllocation(tp, alloc)
	if err != nil {
		t.Fatal(err)
	}
	e := eventsim.New()
	net, err := netmodel.NewFlowSim(e, tp, netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := dfs.New(c, dfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write("input", inputMB, 0); err != nil {
		t.Fatal(err)
	}
	sim, err := New(e, net, c, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{engine: e, sim: sim, cluster: c, fs: f}
}

func packedPlant(t *testing.T) (*topology.Topology, affinity.Allocation) {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	// 8 VMs packed onto 2 nodes of rack 0.
	a := affinity.NewAllocation(tp.Nodes(), 1)
	a[0][0] = 4
	a[1][0] = 4
	return tp, a
}

func spreadPlant(t *testing.T) (*topology.Topology, affinity.Allocation) {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	// 8 VMs spread 1-per-node over both racks.
	a := affinity.NewAllocation(tp.Nodes(), 1)
	for i := 0; i < 8; i++ {
		a[i][0] = 1
	}
	return tp, a
}

func TestConfigAndSpecValidation(t *testing.T) {
	if err := DefaultSimConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultSimConfig()
	bad.MapSlotsPerVM = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero map slots accepted")
	}
	bad = DefaultSimConfig()
	bad.ParallelCopies = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero parallel copies accepted")
	}
	bad = DefaultSimConfig()
	bad.HeartbeatSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero heartbeat accepted")
	}
	bad = DefaultSimConfig()
	bad.DelaySkips = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative delay skips accepted")
	}

	if err := (JobSpec{}).Validate(); err == nil {
		t.Error("empty job accepted")
	}
	if err := (JobSpec{InputFile: "x", NumReduces: -1}).Validate(); err == nil {
		t.Error("negative reducers accepted")
	}
	if err := (JobSpec{InputFile: "x", MapSelectivity: -1}).Validate(); err == nil {
		t.Error("negative selectivity accepted")
	}
	if err := (JobSpec{InputFile: "x", MapSecPerMB: -1}).Validate(); err == nil {
		t.Error("negative compute cost accepted")
	}
}

func TestWordCountRunsToCompletion(t *testing.T) {
	tp, a := packedPlant(t)
	r := newRig(t, tp, a, 512, DefaultSimConfig()) // 8 blocks
	counters, err := r.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	if counters.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
	if counters.MapsTotal != 8 {
		t.Errorf("MapsTotal = %d, want 8", counters.MapsTotal)
	}
	if got := counters.MapsNodeLocal + counters.MapsRackLocal + counters.MapsRemote; got != 8 {
		t.Errorf("locality counts sum to %d", got)
	}
	if counters.ShuffleTransfers != 8 { // 8 maps × 1 reducer
		t.Errorf("ShuffleTransfers = %d, want 8", counters.ShuffleTransfers)
	}
	if counters.MapPhaseEnd <= 0 || counters.MapPhaseEnd > counters.Runtime {
		t.Errorf("MapPhaseEnd = %v, runtime %v", counters.MapPhaseEnd, counters.Runtime)
	}
	if counters.OutputMB <= 0 {
		t.Error("no output written")
	}
}

func TestMissingInputFile(t *testing.T) {
	tp, a := packedPlant(t)
	r := newRig(t, tp, a, 64, DefaultSimConfig())
	if _, err := r.sim.Run(WordCount("nope")); err == nil {
		t.Error("missing input accepted")
	}
}

func TestPackedClusterIsFullyLocal(t *testing.T) {
	// With every VM on two nodes and replication 3, every block has a
	// replica on both nodes with overwhelming probability; all maps should
	// be node-local and all shuffle flows should stay in the rack.
	tp, a := packedPlant(t)
	r := newRig(t, tp, a, 512, DefaultSimConfig())
	counters, err := r.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	if counters.MapsRemote != 0 {
		t.Errorf("packed cluster has %d remote maps", counters.MapsRemote)
	}
	if counters.ShuffleRemote != 0 {
		t.Errorf("packed cluster has %d cross-rack shuffles", counters.ShuffleRemote)
	}
}

func TestPackedFasterThanSpread(t *testing.T) {
	// The paper's headline: a compact (short-distance) cluster runs
	// WordCount faster than a spread one of identical capability.
	tpP, aP := packedPlant(t)
	rigP := newRig(t, tpP, aP, 1024, DefaultSimConfig())
	cP, err := rigP.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	tpS, aS := spreadPlant(t)
	rigS := newRig(t, tpS, aS, 1024, DefaultSimConfig())
	cS, err := rigS.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	if cP.ClusterSpread >= cS.ClusterSpread {
		t.Fatalf("packed spread %v not below spread %v", cP.ClusterSpread, cS.ClusterSpread)
	}
	if cP.Runtime >= cS.Runtime {
		t.Errorf("packed runtime %v not below spread runtime %v", cP.Runtime, cS.Runtime)
	}
	if cP.NonDataLocalMaps() > cS.NonDataLocalMaps() {
		t.Errorf("packed has more non-local maps (%d) than spread (%d)",
			cP.NonDataLocalMaps(), cS.NonDataLocalMaps())
	}
}

func TestMapOnlyJob(t *testing.T) {
	tp, a := packedPlant(t)
	r := newRig(t, tp, a, 256, DefaultSimConfig())
	job := Grep("input")
	job.NumReduces = 0
	counters, err := r.sim.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if counters.ShuffleTransfers != 0 {
		t.Errorf("map-only job shuffled %d times", counters.ShuffleTransfers)
	}
	if counters.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
}

func TestMultipleReducers(t *testing.T) {
	tp, a := spreadPlant(t)
	r := newRig(t, tp, a, 512, DefaultSimConfig())
	counters, err := r.sim.Run(TeraSort("input", 4))
	if err != nil {
		t.Fatal(err)
	}
	if counters.ShuffleTransfers != 8*4 {
		t.Errorf("ShuffleTransfers = %d, want 32", counters.ShuffleTransfers)
	}
	if counters.ShuffleEnd < counters.MapPhaseEnd {
		t.Errorf("shuffle ended (%v) before maps (%v)", counters.ShuffleEnd, counters.MapPhaseEnd)
	}
}

func TestMoreReducersThanSlotsCompletes(t *testing.T) {
	// 8 VMs × 1 reduce slot but 12 reducers: the overflow must wait for
	// slots and the job must still finish.
	tp, a := spreadPlant(t)
	r := newRig(t, tp, a, 256, DefaultSimConfig())
	counters, err := r.sim.Run(TeraSort("input", 12))
	if err != nil {
		t.Fatal(err)
	}
	if counters.ShuffleTransfers != 4*12 {
		t.Errorf("ShuffleTransfers = %d, want 48", counters.ShuffleTransfers)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Counters {
		tp, a := spreadPlant(t)
		r := newRig(t, tp, a, 512, DefaultSimConfig())
		c, err := r.sim.Run(WordCount("input"))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := run(), run()
	if c1.Runtime != c2.Runtime || c1.MapsNodeLocal != c2.MapsNodeLocal ||
		c1.ShuffleRemoteMB != c2.ShuffleRemoteMB {
		t.Errorf("non-deterministic runs: %+v vs %+v", c1, c2)
	}
}

func TestDelaySchedulingImprovesLocality(t *testing.T) {
	// A cluster with data concentrated on a few nodes: greedy scheduling
	// launches remote maps immediately; delay scheduling waits for local
	// slots and must not produce worse locality.
	tp, err := topology.Uniform(1, 2, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	a := affinity.NewAllocation(tp.Nodes(), 1)
	for i := 0; i < 8; i++ {
		a[i][0] = 1
	}
	runWith := func(skips int) *Counters {
		cfg := DefaultSimConfig()
		cfg.DelaySkips = skips
		r := newRig(t, tp, a, 1024, cfg)
		c, err := r.sim.Run(WordCount("input"))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	eager := runWith(0)
	delayed := runWith(3)
	if delayed.NonDataLocalMaps() > eager.NonDataLocalMaps() {
		t.Errorf("delay scheduling worsened locality: %d vs %d",
			delayed.NonDataLocalMaps(), eager.NonDataLocalMaps())
	}
}

func TestStragglerConfigValidation(t *testing.T) {
	bad := DefaultSimConfig()
	bad.StragglerProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("StragglerProb > 1 accepted")
	}
	bad = DefaultSimConfig()
	bad.StragglerFactor = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative StragglerFactor accepted")
	}
	bad = DefaultSimConfig()
	bad.SpeculativeSlack = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative SpeculativeSlack accepted")
	}
}

func TestStragglersSlowTheJob(t *testing.T) {
	tp, a := spreadPlant(t)
	clean := DefaultSimConfig()
	rigClean := newRig(t, tp, a, 512, clean)
	cClean, err := rigClean.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	slow := DefaultSimConfig()
	slow.StragglerProb = 0.3
	slow.StragglerFactor = 6
	slow.Seed = 7
	rigSlow := newRig(t, tp, a, 512, slow)
	cSlow, err := rigSlow.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	if cSlow.Stragglers == 0 {
		t.Fatal("no stragglers drawn at p=0.3 over 8 attempts — seed problem")
	}
	if cSlow.Runtime <= cClean.Runtime {
		t.Errorf("stragglers did not slow the job: %v vs %v", cSlow.Runtime, cClean.Runtime)
	}
}

func TestSpeculationRecoversStragglers(t *testing.T) {
	tp, a := spreadPlant(t)
	base := DefaultSimConfig()
	base.StragglerProb = 0.25
	base.StragglerFactor = 10
	base.Seed = 11
	rigOff := newRig(t, tp, a, 1024, base)
	cOff, err := rigOff.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	spec := base
	spec.Speculative = true
	rigOn := newRig(t, tp, a, 1024, spec)
	cOn, err := rigOn.sim.Run(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	if cOff.Stragglers == 0 {
		t.Fatal("no stragglers drawn — test is vacuous")
	}
	if cOn.SpeculativeLaunched == 0 {
		t.Fatal("speculation never launched a backup")
	}
	if cOn.Runtime > cOff.Runtime {
		t.Errorf("speculation made the job slower: %v vs %v", cOn.Runtime, cOff.Runtime)
	}
	if cOn.SpeculativeWon > cOn.SpeculativeLaunched {
		t.Errorf("won %d > launched %d", cOn.SpeculativeWon, cOn.SpeculativeLaunched)
	}
}

func TestStragglerDeterminism(t *testing.T) {
	run := func() *Counters {
		tp, a := spreadPlant(t)
		cfg := DefaultSimConfig()
		cfg.StragglerProb = 0.3
		cfg.Speculative = true
		cfg.Seed = 99
		r := newRig(t, tp, a, 512, cfg)
		c, err := r.sim.Run(WordCount("input"))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := run(), run()
	if c1.Runtime != c2.Runtime || c1.Stragglers != c2.Stragglers ||
		c1.SpeculativeLaunched != c2.SpeculativeLaunched || c1.SpeculativeWon != c2.SpeculativeWon {
		t.Errorf("straggler runs diverge: %+v vs %+v", c1, c2)
	}
}

func TestCountersDerivedMetrics(t *testing.T) {
	c := Counters{MapsRackLocal: 2, MapsRemote: 3, ShuffleRackLocal: 1, ShuffleRemote: 4}
	if c.NonDataLocalMaps() != 5 {
		t.Errorf("NonDataLocalMaps = %d", c.NonDataLocalMaps())
	}
	if c.NonLocalShuffles() != 5 {
		t.Errorf("NonLocalShuffles = %d", c.NonLocalShuffles())
	}
}

func TestConcurrentJobsContend(t *testing.T) {
	// Two WordCounts launched together on one cluster share slots? No —
	// separate simulators over the same cluster share only the NETWORK
	// (one engine, one FlowSim): co-running jobs must each be slower than
	// a lone run.
	tp, a := spreadPlant(t)
	cluster, err := vcluster.FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	mkSim := func(engine *eventsim.Engine, net *netmodel.FlowSim, file string) *Simulator {
		f, err := dfs.New(cluster, dfs.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(file, 512, 0); err != nil {
			t.Fatal(err)
		}
		sim, err := New(engine, net, cluster, f, DefaultSimConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	// Lone run.
	e1 := eventsim.New()
	n1, err := netmodel.NewFlowSim(e1, tp, netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lone, err := mkSim(e1, n1, "input").Run(TeraSort("input", 2))
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent runs sharing one engine+network.
	e2 := eventsim.New()
	n2, err := netmodel.NewFlowSim(e2, tp, netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	simA := mkSim(e2, n2, "inputA")
	simB := mkSim(e2, n2, "inputB")
	hA, err := simA.Launch(TeraSort("inputA", 2))
	if err != nil {
		t.Fatal(err)
	}
	hB, err := simB.Launch(TeraSort("inputB", 2))
	if err != nil {
		t.Fatal(err)
	}
	e2.Run()
	cA, err := hA.Counters()
	if err != nil {
		t.Fatal(err)
	}
	cB, err := hB.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if cA.Runtime <= lone.Runtime || cB.Runtime <= lone.Runtime {
		t.Errorf("co-running jobs not slower: lone %.2f, A %.2f, B %.2f",
			lone.Runtime, cA.Runtime, cB.Runtime)
	}
}

func TestJobHandleBeforeCompletion(t *testing.T) {
	tp, a := packedPlant(t)
	r := newRig(t, tp, a, 128, DefaultSimConfig())
	h, err := r.sim.Launch(WordCount("input"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Done() {
		t.Error("job done before the engine ran")
	}
	if _, err := h.Counters(); err == nil {
		t.Error("Counters available before completion")
	}
	r.engine.Run()
	if !h.Done() {
		t.Fatal("job not done after drain")
	}
	c, err := h.Counters()
	if err != nil || c.Runtime <= 0 {
		t.Fatalf("counters: %v, %v", c, err)
	}
}

func TestWorkloadProfiles(t *testing.T) {
	for _, spec := range []JobSpec{
		WordCount("f"), TeraSort("f", 2), Grep("f"), Join("f", 2),
	} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if spec.InputFile != "f" {
			t.Errorf("%s: input file %q", spec.Name, spec.InputFile)
		}
	}
	if !strings.Contains(TeraSort("f", 2).Name, "terasort") {
		t.Error("TeraSort name wrong")
	}
}

func TestShuffleHeavyJobSuffersMoreFromSpread(t *testing.T) {
	// Both workloads must pay for spreading the cluster, and the
	// shuffle-heavy one must pay overwhelmingly more cross-rack traffic.
	// (Comparing raw runtimes across workloads is confounded by reducer
	// placement: a packed cluster concentrates reducers on few nodes,
	// creating its own incast bottleneck.)
	measure := func(spec func() JobSpec) (deltaSec, remoteMB float64) {
		tpP, aP := packedPlant(t)
		rigP := newRig(t, tpP, aP, 512, DefaultSimConfig())
		cP, err := rigP.sim.Run(spec())
		if err != nil {
			t.Fatal(err)
		}
		tpS, aS := spreadPlant(t)
		rigS := newRig(t, tpS, aS, 512, DefaultSimConfig())
		cS, err := rigS.sim.Run(spec())
		if err != nil {
			t.Fatal(err)
		}
		return cS.Runtime - cP.Runtime, cS.ShuffleRemoteMB
	}
	sortDelta, sortRemote := measure(func() JobSpec { return TeraSort("input", 4) })
	grepDelta, grepRemote := measure(func() JobSpec { return Grep("input") })
	if sortDelta <= 0 || grepDelta <= 0 {
		t.Errorf("spreading should cost both workloads: terasort %.2fs, grep %.2fs", sortDelta, grepDelta)
	}
	if sortRemote < grepRemote*10 {
		t.Errorf("terasort cross-rack shuffle (%.1f MB) not dominating grep's (%.1f MB)", sortRemote, grepRemote)
	}
}
