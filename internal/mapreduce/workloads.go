package mapreduce

// Workload profiles for the benchmark jobs. WordCount reproduces the
// paper's experiment (32 map tasks, 1 reduce task over a ~2 GB input with
// 64 MB blocks); the others exercise the shuffle-light and shuffle-heavy
// regimes the introduction motivates, so the affinity benefit can be
// studied as a function of shuffle volume.

// WordCount mirrors the paper's benchmark: combiner-assisted word
// counting. Intermediate data is a moderate fraction of the input; a
// single reducer aggregates, making the shuffle an incast.
func WordCount(inputFile string) JobSpec {
	return JobSpec{
		Name:              "wordcount",
		InputFile:         inputFile,
		NumReduces:        1,
		MapSelectivity:    0.4,
		ReduceSelectivity: 0.1,
		MapSecPerMB:       0.08,
		ReduceSecPerMB:    0.03,
	}
}

// TeraSort moves every input byte through the shuffle (selectivity 1) and
// writes everything back out — the shuffle-dominated extreme.
func TeraSort(inputFile string, reducers int) JobSpec {
	return JobSpec{
		Name:              "terasort",
		InputFile:         inputFile,
		NumReduces:        reducers,
		MapSelectivity:    1.0,
		ReduceSelectivity: 1.0,
		MapSecPerMB:       0.03,
		ReduceSecPerMB:    0.03,
	}
}

// Grep emits almost nothing from the maps — the map-dominated extreme
// where cluster affinity matters only for input locality.
func Grep(inputFile string) JobSpec {
	return JobSpec{
		Name:              "grep",
		InputFile:         inputFile,
		NumReduces:        1,
		MapSelectivity:    0.01,
		ReduceSelectivity: 1.0,
		MapSecPerMB:       0.05,
		ReduceSecPerMB:    0.01,
	}
}

// Join inflates intermediate data beyond the input size (each record
// tagged and re-keyed), stressing both the shuffle and the output write.
func Join(inputFile string, reducers int) JobSpec {
	return JobSpec{
		Name:              "join",
		InputFile:         inputFile,
		NumReduces:        reducers,
		MapSelectivity:    1.5,
		ReduceSelectivity: 0.6,
		MapSecPerMB:       0.06,
		ReduceSecPerMB:    0.05,
	}
}
