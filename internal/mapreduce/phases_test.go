package mapreduce

import (
	"math"
	"testing"
)

func TestPhaseSplitFormula(t *testing.T) {
	j := JobSpec{MapSecPerMB: 0.02, MapSelectivity: 0.5, ReduceSecPerMB: 0.04}
	want := 0.02 / (0.02 + 0.5*0.04)
	if got := j.PhaseSplit(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("PhaseSplit = %v, want %v", got, want)
	}
}

func TestPhaseSplitBoundsAndEdges(t *testing.T) {
	cases := []struct {
		name string
		j    JobSpec
		want float64
	}{
		{"both free", JobSpec{}, 0.5},
		{"map free", JobSpec{MapSelectivity: 1, ReduceSecPerMB: 0.1}, 0},
		{"reduce free via selectivity", JobSpec{MapSecPerMB: 0.1}, 1},
		{"reduce free via cost", JobSpec{MapSecPerMB: 0.1, MapSelectivity: 2}, 1},
	}
	for _, c := range cases {
		if got := c.j.PhaseSplit(); got != c.want {
			t.Errorf("%s: PhaseSplit = %v, want %v", c.name, got, c.want)
		}
	}
	// Always a valid fraction over a spread of specs.
	for _, mc := range []float64{0, 0.01, 0.1, 3} {
		for _, sel := range []float64{0, 0.2, 1, 5} {
			for _, rc := range []float64{0, 0.05, 2} {
				j := JobSpec{MapSecPerMB: mc, MapSelectivity: sel, ReduceSecPerMB: rc}
				f := j.PhaseSplit()
				if f < 0 || f > 1 || math.IsNaN(f) {
					t.Fatalf("PhaseSplit(%v) = %v out of [0,1]", j, f)
				}
			}
		}
	}
}

func TestPhaseSplitMonotone(t *testing.T) {
	// Heavier shuffle/reduce work shifts the split toward the reduce phase.
	base := JobSpec{MapSecPerMB: 0.05, MapSelectivity: 0.5, ReduceSecPerMB: 0.02}
	prev := base.PhaseSplit()
	for _, rc := range []float64{0.05, 0.2, 1, 10} {
		j := base
		j.ReduceSecPerMB = rc
		f := j.PhaseSplit()
		if f >= prev {
			t.Fatalf("PhaseSplit not decreasing in ReduceSecPerMB: %v then %v", prev, f)
		}
		prev = f
	}
}
