// Phase-boundary estimation for elastic resizing. The hybrid job-driven
// line of work grows a virtual cluster for the map phase and shrinks it
// into the shuffle; the planner deciding whether a grow can pay off
// before the shrink needs the map phase's share of the job's runtime
// BEFORE the job runs. That share is estimable from the job spec alone:
// both phases stream the same input volume, so the per-MB cost ratio is
// the phase ratio, independent of input size and task parallelism (both
// phases scale with the same cluster width under uniform task spread).
package mapreduce

// PhaseSplit estimates the fraction of the job's runtime spent in the
// map phase. Per input MB the map side costs MapSecPerMB seconds of
// compute; the reduce side processes the shuffle volume — MapSelectivity
// MB per input MB — at ReduceSecPerMB each. The estimate is their ratio:
//
//	mapFrac = MapSecPerMB / (MapSecPerMB + MapSelectivity·ReduceSecPerMB)
//
// A spec with no compute cost on either side splits evenly (0.5). The
// result is always in [0, 1]; cloudsim's elastic resize uses it to place
// the shrink boundary and the grow deadline inside a cluster's hold
// time.
func (j JobSpec) PhaseSplit() float64 {
	mapCost := j.MapSecPerMB
	reduceCost := j.MapSelectivity * j.ReduceSecPerMB
	if mapCost <= 0 && reduceCost <= 0 {
		return 0.5
	}
	if mapCost <= 0 {
		return 0
	}
	return mapCost / (mapCost + reduceCost)
}
