// Package mapreduce simulates the execution of MapReduce jobs on a
// virtual cluster — the substrate for reproducing the paper's experimental
// evaluation (Figs. 7 and 8), which ran Hadoop WordCount on virtual
// clusters of varying affinity.
//
// The simulator models the three data-movement phases the paper
// enumerates in Section I:
//
//  1. DFS → map: each map task reads one input block from its nearest
//     replica (node-local reads cost a local copy; rack-local and remote
//     reads become network flows).
//  2. Map → reduce (shuffle): each finished map's intermediate output is
//     partitioned across reducers and fetched over the network, with
//     bounded fetch parallelism per reducer.
//  3. Reduce → DFS: reducer output is written back with rack-aware
//     replication, generating replication flows.
//
// Task scheduling mirrors Hadoop's slot-based JobTracker: a fixed number
// of map/reduce slots per VM, heartbeat-driven assignment, and
// locality-preferring map placement (node-local, then rack-local, then
// remote) with optional delay scheduling.
//
// Everything runs on the deterministic discrete-event engine of package
// eventsim with network contention from package netmodel, so two runs with
// the same seed produce identical timings.
package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"

	"affinitycluster/internal/dfs"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/netmodel"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/vcluster"
)

// SimConfig fixes the cluster-side execution parameters.
type SimConfig struct {
	// MapSlotsPerVM and ReduceSlotsPerVM bound per-VM task concurrency
	// (Hadoop-era defaults: 2 and 1).
	MapSlotsPerVM    int
	ReduceSlotsPerVM int
	// ParallelCopies bounds concurrent shuffle fetches per reducer
	// (Hadoop default 5).
	ParallelCopies int
	// HeartbeatSec is the scheduler heartbeat driving slot assignment.
	HeartbeatSec float64
	// DelaySkips enables delay scheduling: a VM with no node-local task
	// passes up to DelaySkips heartbeats before accepting a non-local
	// task. 0 disables the delay (plain locality preference).
	DelaySkips int
	// StragglerProb is the per-attempt probability that a map attempt
	// runs StragglerFactor× slower (a slow disk, a noisy neighbor). 0
	// disables stragglers.
	StragglerProb float64
	// StragglerFactor multiplies a straggling attempt's compute time
	// (default 5 when stragglers are enabled).
	StragglerFactor float64
	// Speculative enables Hadoop-style backup tasks: near the end of the
	// map phase, attempts running far beyond the mean completed-map time
	// get a duplicate on a free slot; the first finisher wins.
	Speculative bool
	// SpeculativeSlack is how many times the mean completed-map duration
	// an attempt must exceed before a backup launches (default 1.5).
	SpeculativeSlack float64
	// Seed drives straggler randomness.
	Seed int64
}

// DefaultSimConfig mirrors a small 2012 Hadoop deployment.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		MapSlotsPerVM:    2,
		ReduceSlotsPerVM: 1,
		ParallelCopies:   5,
		HeartbeatSec:     0.5,
	}
}

// Validate rejects degenerate configurations.
func (c SimConfig) Validate() error {
	if c.MapSlotsPerVM <= 0 || c.ReduceSlotsPerVM < 0 {
		return fmt.Errorf("mapreduce: bad slot counts %+v", c)
	}
	if c.ParallelCopies <= 0 {
		return fmt.Errorf("mapreduce: ParallelCopies must be positive")
	}
	if c.HeartbeatSec <= 0 {
		return fmt.Errorf("mapreduce: HeartbeatSec must be positive")
	}
	if c.DelaySkips < 0 {
		return fmt.Errorf("mapreduce: negative DelaySkips")
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return fmt.Errorf("mapreduce: StragglerProb %v outside [0, 1]", c.StragglerProb)
	}
	if c.StragglerFactor < 0 {
		return fmt.Errorf("mapreduce: negative StragglerFactor")
	}
	if c.SpeculativeSlack < 0 {
		return fmt.Errorf("mapreduce: negative SpeculativeSlack")
	}
	return nil
}

// JobSpec describes one MapReduce job over a file already in the DFS.
type JobSpec struct {
	Name string
	// InputFile names the DFS file whose blocks become map inputs (one
	// map task per block, Hadoop's default split).
	InputFile string
	// NumReduces is the reducer count (the paper's experiment uses 1).
	NumReduces int
	// MapSelectivity scales intermediate output: a map over an S-MB block
	// emits S×MapSelectivity MB into the shuffle.
	MapSelectivity float64
	// ReduceSelectivity scales final output relative to shuffle input.
	ReduceSelectivity float64
	// MapSecPerMB and ReduceSecPerMB are per-MB CPU costs.
	MapSecPerMB    float64
	ReduceSecPerMB float64
}

// Validate rejects malformed jobs.
func (j JobSpec) Validate() error {
	if j.InputFile == "" {
		return errors.New("mapreduce: job has no input file")
	}
	if j.NumReduces < 0 {
		return fmt.Errorf("mapreduce: negative reducer count %d", j.NumReduces)
	}
	if j.MapSelectivity < 0 || j.ReduceSelectivity < 0 {
		return fmt.Errorf("mapreduce: negative selectivity")
	}
	if j.MapSecPerMB < 0 || j.ReduceSecPerMB < 0 {
		return fmt.Errorf("mapreduce: negative compute cost")
	}
	return nil
}

// Counters aggregates one job run — the measurements behind Figs. 7/8.
type Counters struct {
	Runtime float64 // job makespan, simulated seconds

	MapsTotal     int
	MapsNodeLocal int // data-local map tasks
	MapsRackLocal int
	MapsRemote    int

	ShuffleTransfers int
	ShuffleNodeLocal int // shuffle flows that stayed on one node
	ShuffleRackLocal int
	ShuffleRemote    int
	ShuffleMB        float64
	ShuffleRemoteMB  float64 // MB that crossed racks during shuffle

	MapPhaseEnd   float64 // time the last map finished
	ShuffleEnd    float64 // time the last shuffle fetch landed
	OutputMB      float64
	ClusterSpread float64 // pairwise-affinity of the cluster (Fig 7 x-axis)

	Stragglers          int // attempts that drew the straggler slowdown
	SpeculativeLaunched int // backup attempts started
	SpeculativeWon      int // tasks whose backup finished first
}

// NonDataLocalMaps is the paper's Fig. 8 counter: maps that had to read
// their input over the network.
func (c *Counters) NonDataLocalMaps() int { return c.MapsRackLocal + c.MapsRemote }

// NonLocalShuffles is the paper's Fig. 8 shuffle counter: shuffle
// transfers that left the map task's node.
func (c *Counters) NonLocalShuffles() int { return c.ShuffleRackLocal + c.ShuffleRemote }

// taskState tracks one map task.
type taskState int

const (
	taskPending taskState = iota
	taskRunning
	taskDone
)

type mapTask struct {
	id     int
	block  dfs.BlockID
	sizeMB float64
	state  taskState
	vm     vcluster.VMID // VM of the winning attempt once done

	attempts  []*mapAttempt
	hasBackup bool
}

// mapAttempt is one execution of a map task; speculative execution can
// run two attempts of one task concurrently.
type mapAttempt struct {
	task     *mapTask
	vm       vcluster.VMID
	started  float64
	straggle bool
	done     bool
}

type reducer struct {
	id        int
	vm        vcluster.VMID
	placed    bool
	fetched   int     // map outputs landed
	fetchingN int     // in-flight fetches
	pending   []int   // finished maps not yet fetched
	inputMB   float64 // accumulated shuffle bytes
	computing bool
	done      bool
}

// Simulator executes jobs on one virtual cluster.
type Simulator struct {
	engine  *eventsim.Engine
	net     *netmodel.FlowSim
	cluster *vcluster.Cluster
	fs      *dfs.FS
	cfg     SimConfig

	obsReg  *obs.Registry // nil unless Instrument was called
	metrics mrMetrics
}

// mrMetrics are the resolved obs handles; the zero value no-ops.
type mrMetrics struct {
	jobs            *obs.Counter
	mapsTotal       *obs.Counter
	mapsNodeLocal   *obs.Counter
	mapsRackLocal   *obs.Counter
	mapsRemote      *obs.Counter
	shuffleFlows    *obs.Counter
	shuffleRemote   *obs.Counter
	stragglers      *obs.Counter
	specLaunched    *obs.Counter
	specWon         *obs.Counter
	jobRuntime      *obs.Histogram
	mapPhaseSeconds *obs.Histogram
	shuffleMB       *obs.Histogram
}

// Instrument resolves the simulator's metric handles against a registry
// and enables phase-boundary trace events (timestamps are the engine's
// virtual time, so instrumented runs stay deterministic). A nil registry
// leaves everything a no-op.
func (s *Simulator) Instrument(r *obs.Registry) {
	s.obsReg = r
	if r == nil {
		s.metrics = mrMetrics{}
		return
	}
	s.metrics = mrMetrics{
		jobs:            r.Counter("mapreduce.jobs"),
		mapsTotal:       r.Counter("mapreduce.maps_total"),
		mapsNodeLocal:   r.Counter("mapreduce.maps_node_local"),
		mapsRackLocal:   r.Counter("mapreduce.maps_rack_local"),
		mapsRemote:      r.Counter("mapreduce.maps_remote"),
		shuffleFlows:    r.Counter("mapreduce.shuffle_transfers"),
		shuffleRemote:   r.Counter("mapreduce.shuffle_remote"),
		stragglers:      r.Counter("mapreduce.stragglers"),
		specLaunched:    r.Counter("mapreduce.speculative_launched"),
		specWon:         r.Counter("mapreduce.speculative_won"),
		jobRuntime:      r.Histogram("mapreduce.job_runtime_seconds", 0, 3600, 36),
		mapPhaseSeconds: r.Histogram("mapreduce.map_phase_seconds", 0, 3600, 36),
		shuffleMB:       r.Histogram("mapreduce.shuffle_mb", 0, 16384, 16),
	}
}

// New wires a simulator. The caller owns the engine so multiple
// simulators (or background traffic) can share virtual time.
func New(e *eventsim.Engine, net *netmodel.FlowSim, c *vcluster.Cluster, f *dfs.FS, cfg SimConfig) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{engine: e, net: net, cluster: c, fs: f, cfg: cfg}, nil
}

// run is the per-job mutable state.
type run struct {
	sim      *Simulator
	job      JobSpec
	tasks    []*mapTask
	reducers []*reducer
	counters Counters
	rng      *rand.Rand

	mapFreeSlots    []int // per VM
	reduceFreeSlots []int
	delaySkips      []int // per VM, consecutive heartbeats without local work

	mapsDone     int
	doneDuration float64 // summed durations of completed maps (for speculation)
	reducersDue  int
	startedAt    float64
	finished     bool
	finishedAt   float64
}

// JobHandle tracks a launched job; its Counters become valid once Done
// reports true (after the engine has drained or run past completion).
type JobHandle struct {
	run *run
}

// Done reports whether the job has completed.
func (h *JobHandle) Done() bool { return h.run.finished }

// Counters returns the job's counters; an error before completion.
func (h *JobHandle) Counters() (*Counters, error) {
	if !h.run.finished {
		return nil, fmt.Errorf("mapreduce: job %q not finished", h.run.job.Name)
	}
	c := h.run.counters
	return &c, nil
}

// Run executes the job to completion and returns its counters.
func (s *Simulator) Run(job JobSpec) (*Counters, error) {
	h, err := s.Launch(job)
	if err != nil {
		return nil, err
	}
	s.engine.Run()
	if !h.Done() {
		return nil, fmt.Errorf("mapreduce: job %q did not complete (scheduler stall?)", job.Name)
	}
	return h.Counters()
}

// Launch schedules a job on the shared engine without draining it, so
// multiple jobs (on the same or different simulators sharing one engine)
// can contend for the network concurrently. Call engine.Run() — or
// Simulator.Run for the last job — to execute, then read each handle's
// Counters.
func (s *Simulator) Launch(job JobSpec) (*JobHandle, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	blocks, err := s.fs.Blocks(job.InputFile)
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("mapreduce: input file %q has no blocks", job.InputFile)
	}
	r := &run{sim: s, job: job, rng: rand.New(rand.NewSource(s.cfg.Seed + 1))}
	for i, b := range blocks {
		blk, err := s.fs.Block(b)
		if err != nil {
			return nil, err
		}
		r.tasks = append(r.tasks, &mapTask{id: i, block: b, sizeMB: blk.SizeMB})
	}
	r.counters.MapsTotal = len(r.tasks)
	r.counters.ClusterSpread = s.cluster.PairwiseDistance()
	n := s.cluster.Size()
	r.mapFreeSlots = make([]int, n)
	r.reduceFreeSlots = make([]int, n)
	r.delaySkips = make([]int, n)
	for v := 0; v < n; v++ {
		r.mapFreeSlots[v] = s.cfg.MapSlotsPerVM
		r.reduceFreeSlots[v] = s.cfg.ReduceSlotsPerVM
	}
	for q := 0; q < job.NumReduces; q++ {
		r.reducers = append(r.reducers, &reducer{id: q})
	}
	r.reducersDue = job.NumReduces
	r.startedAt = s.engine.Now()
	s.obsReg.Emit("mr_job_start", r.startedAt,
		obs.F("job", job.Name), obs.F("maps", len(r.tasks)), obs.F("reduces", job.NumReduces))
	r.placeReducers()
	r.schedule()
	r.heartbeat()
	return &JobHandle{run: r}, nil
}

// heartbeat periodically retries scheduling until the job completes; this
// is what makes delay scheduling and slot churn live.
func (r *run) heartbeat() {
	if r.finished {
		return
	}
	_, _ = r.sim.engine.After(r.sim.cfg.HeartbeatSec, func(float64) {
		r.schedule()
		r.heartbeat()
	})
}

// placeReducers assigns reducers round-robin over VMs with free reduce
// slots; overflow reducers wait for slots.
func (r *run) placeReducers() {
	n := r.sim.cluster.Size()
	v := 0
	for _, red := range r.reducers {
		if red.placed {
			continue
		}
		for probe := 0; probe < n; probe++ {
			cand := (v + probe) % n
			if r.reduceFreeSlots[cand] > 0 {
				r.reduceFreeSlots[cand]--
				red.vm = vcluster.VMID(cand)
				red.placed = true
				v = cand + 1
				// A late-placed reducer may already have finished maps
				// queued up; start fetching them immediately.
				r.pumpFetches(red)
				break
			}
		}
	}
}

// schedule fills free map slots with pending tasks, preferring node-local
// then rack-local then remote inputs; delay scheduling optionally defers
// non-local assignments for a few heartbeats. With speculation enabled,
// leftover slots at the tail of the map phase run backup attempts for
// slow tasks.
func (r *run) schedule() {
	if r.finished {
		return
	}
	r.placeReducers()
	n := r.sim.cluster.Size()
	for v := 0; v < n; v++ {
		for r.mapFreeSlots[v] > 0 {
			task, loc := r.pickTask(vcluster.VMID(v))
			if task == nil {
				break
			}
			if loc != dfs.NodeLocal && r.sim.cfg.DelaySkips > 0 && r.delaySkips[v] < r.sim.cfg.DelaySkips && r.anyPendingNodeLocalSomewhere() {
				// Pass this heartbeat hoping a local slot frees elsewhere.
				r.delaySkips[v]++
				break
			}
			r.delaySkips[v] = 0
			r.launchMap(task, vcluster.VMID(v), loc)
		}
	}
	if r.sim.cfg.Speculative {
		r.speculate()
	}
}

// speculate launches backup attempts for laggard maps once no pending
// task remains and slots sit idle — the Hadoop heuristic.
func (r *run) speculate() {
	if r.mapsDone == 0 || r.mapsDone == len(r.tasks) {
		return // no baseline yet, or map phase over
	}
	for _, t := range r.tasks {
		if t.state == taskPending {
			return // real work outranks speculation
		}
	}
	slack := r.sim.cfg.SpeculativeSlack
	if slack <= 0 {
		slack = 1.5
	}
	mean := r.doneDuration / float64(r.mapsDone)
	now := r.sim.engine.Now()
	for _, t := range r.tasks {
		if t.state != taskRunning || t.hasBackup || len(t.attempts) == 0 {
			continue
		}
		if now-t.attempts[0].started < slack*mean {
			continue
		}
		// Find a free slot, preferring locality for the backup too.
		vm, _ := r.freeSlotFor(t)
		if vm < 0 {
			return // no slots anywhere
		}
		t.hasBackup = true
		r.counters.SpeculativeLaunched++
		r.launchAttempt(t, vcluster.VMID(vm))
	}
}

// freeSlotFor returns a VM with a free map slot, best locality first, or
// -1 when none exists.
func (r *run) freeSlotFor(t *mapTask) (int, dfs.Locality) {
	best := -1
	bestLoc := dfs.Remote + 1
	for v := 0; v < r.sim.cluster.Size(); v++ {
		if r.mapFreeSlots[v] == 0 {
			continue
		}
		_, loc, err := r.sim.fs.NearestReplica(t.block, vcluster.VMID(v))
		if err != nil {
			continue
		}
		if loc < bestLoc {
			best, bestLoc = v, loc
		}
	}
	return best, bestLoc
}

// anyPendingNodeLocalSomewhere reports whether some pending task would be
// node-local on some VM (the slot may free later) — the condition under
// which delaying a non-local assignment can pay off.
func (r *run) anyPendingNodeLocalSomewhere() bool {
	for _, t := range r.tasks {
		if t.state != taskPending {
			continue
		}
		if len(r.sim.fs.VMsWithReplica(t.block)) > 0 {
			return true
		}
	}
	return false
}

// pickTask returns the best pending task for a VM and its locality.
func (r *run) pickTask(vm vcluster.VMID) (*mapTask, dfs.Locality) {
	var best *mapTask
	bestLoc := dfs.Remote + 1
	for _, t := range r.tasks {
		if t.state != taskPending {
			continue
		}
		_, loc, err := r.sim.fs.NearestReplica(t.block, vm)
		if err != nil {
			continue
		}
		if loc < bestLoc {
			best, bestLoc = t, loc
			if loc == dfs.NodeLocal {
				break
			}
		}
	}
	if best == nil {
		return nil, dfs.Remote
	}
	return best, bestLoc
}

// launchMap starts a task's first attempt, counting its locality class.
func (r *run) launchMap(t *mapTask, vm vcluster.VMID, loc dfs.Locality) {
	t.state = taskRunning
	switch loc {
	case dfs.NodeLocal:
		r.counters.MapsNodeLocal++
	case dfs.RackLocal:
		r.counters.MapsRackLocal++
	default:
		r.counters.MapsRemote++
	}
	r.launchAttempt(t, vm)
}

// launchAttempt runs the DFS read, then compute, then completion, for one
// attempt of a task (first or speculative backup).
func (r *run) launchAttempt(t *mapTask, vm vcluster.VMID) {
	at := &mapAttempt{task: t, vm: vm, started: r.sim.engine.Now()}
	if p := r.sim.cfg.StragglerProb; p > 0 && r.rng.Float64() < p {
		at.straggle = true
		r.counters.Stragglers++
	}
	t.attempts = append(t.attempts, at)
	r.mapFreeSlots[vm]--
	replica, _, err := r.sim.fs.NearestReplica(t.block, vm)
	if err != nil {
		return
	}
	src := r.sim.cluster.NodeOf(replica)
	dst := r.sim.cluster.NodeOf(vm)
	_, _ = r.sim.net.StartFlow(src, dst, t.sizeMB, func(float64) {
		compute := t.sizeMB * r.job.MapSecPerMB
		if at.straggle {
			factor := r.sim.cfg.StragglerFactor
			if factor <= 0 {
				factor = 5
			}
			compute *= factor
		}
		_, _ = r.sim.engine.After(compute, func(now float64) { r.attemptFinished(at, now) })
	})
}

// attemptFinished resolves one attempt: the first finisher wins its task;
// a loser just frees its slot.
func (r *run) attemptFinished(at *mapAttempt, now float64) {
	at.done = true
	r.mapFreeSlots[at.vm]++
	t := at.task
	if t.state == taskDone {
		// The other attempt already won; this one is discarded.
		r.schedule()
		return
	}
	t.state = taskDone
	t.vm = at.vm
	if len(t.attempts) > 1 && t.attempts[0] != at {
		r.counters.SpeculativeWon++
	}
	r.mapsDone++
	r.doneDuration += now - at.started
	if r.mapsDone == len(r.tasks) {
		r.counters.MapPhaseEnd = now
		r.sim.obsReg.Emit("mr_map_phase_end", now,
			obs.F("job", r.job.Name), obs.F("non_local_maps", r.counters.NonDataLocalMaps()))
	}
	// Offer the output to every reducer.
	for _, red := range r.reducers {
		red.pending = append(red.pending, t.id)
		r.pumpFetches(red)
	}
	if r.job.NumReduces == 0 && r.mapsDone == len(r.tasks) {
		r.finish(now)
		return
	}
	r.schedule()
}

// pumpFetches keeps up to ParallelCopies shuffle fetches in flight for a
// reducer.
func (r *run) pumpFetches(red *reducer) {
	if !red.placed || red.done || red.computing {
		return
	}
	for red.fetchingN < r.sim.cfg.ParallelCopies && len(red.pending) > 0 {
		taskID := red.pending[0]
		red.pending = red.pending[1:]
		t := r.tasks[taskID]
		part := t.sizeMB * r.job.MapSelectivity / float64(r.job.NumReduces)
		src := r.sim.cluster.NodeOf(t.vm)
		dst := r.sim.cluster.NodeOf(red.vm)
		r.counters.ShuffleTransfers++
		r.counters.ShuffleMB += part
		switch {
		case src == dst:
			r.counters.ShuffleNodeLocal++
		case r.sim.cluster.Topology().SameRack(src, dst):
			r.counters.ShuffleRackLocal++
		default:
			r.counters.ShuffleRemote++
			r.counters.ShuffleRemoteMB += part
		}
		red.fetchingN++
		_, _ = r.sim.net.StartFlow(src, dst, part, func(now float64) {
			red.fetchingN--
			red.fetched++
			red.inputMB += part
			if now > r.counters.ShuffleEnd {
				r.counters.ShuffleEnd = now
			}
			r.pumpFetches(red)
			r.maybeReduce(red)
		})
	}
}

// maybeReduce starts the reduce computation once every map output landed.
func (r *run) maybeReduce(red *reducer) {
	if red.computing || red.done || red.fetched < len(r.tasks) {
		return
	}
	red.computing = true
	compute := red.inputMB * r.job.ReduceSecPerMB
	_, _ = r.sim.engine.After(compute, func(now float64) { r.writeOutput(red, now) })
}

// writeOutput writes the reducer's result back to the DFS: the metadata
// write is immediate, and replication traffic to each non-local replica
// becomes network flows; the reducer completes when the last replica
// lands.
func (r *run) writeOutput(red *reducer, now float64) {
	outMB := red.inputMB * r.job.ReduceSelectivity
	r.counters.OutputMB += outMB
	if outMB <= 0 {
		r.reducerDone(red, now)
		return
	}
	name := fmt.Sprintf("%s.out.%d", r.job.Name, red.id)
	ids, err := r.sim.fs.Write(name, outMB, red.vm)
	if err != nil {
		// Duplicate output name across runs is a caller bug; surface it by
		// stalling would be worse, so finish without replication traffic.
		r.reducerDone(red, now)
		return
	}
	flights := 0
	landed := func(nowAt float64) {
		flights--
		if flights == 0 {
			r.reducerDone(red, nowAt)
		}
	}
	for _, id := range ids {
		blk, err := r.sim.fs.Block(id)
		if err != nil {
			continue
		}
		for _, rep := range blk.Replicas {
			if rep == red.vm {
				continue // local copy is free
			}
			flights++
			_, _ = r.sim.net.StartFlow(r.sim.cluster.NodeOf(red.vm), r.sim.cluster.NodeOf(rep), blk.SizeMB, landed)
		}
	}
	if flights == 0 {
		r.reducerDone(red, now)
	}
}

func (r *run) reducerDone(red *reducer, now float64) {
	if red.done {
		return
	}
	red.done = true
	r.reduceFreeSlots[red.vm]++
	r.reducersDue--
	if r.reducersDue == 0 && r.mapsDone == len(r.tasks) {
		r.finish(now)
	}
}

func (r *run) finish(now float64) {
	if r.finished {
		return
	}
	r.finished = true
	r.finishedAt = now
	r.counters.Runtime = now - r.startedAt
	r.flushObs(now)
}

// flushObs records the finished job's counters into the simulator's obs
// registry (no-op when uninstrumented). Phase timings are virtual-time
// durations, never wall-clock.
func (r *run) flushObs(now float64) {
	m := &r.sim.metrics
	c := &r.counters
	m.jobs.Inc()
	m.mapsTotal.Add(int64(c.MapsTotal))
	m.mapsNodeLocal.Add(int64(c.MapsNodeLocal))
	m.mapsRackLocal.Add(int64(c.MapsRackLocal))
	m.mapsRemote.Add(int64(c.MapsRemote))
	m.shuffleFlows.Add(int64(c.ShuffleTransfers))
	m.shuffleRemote.Add(int64(c.ShuffleRemote))
	m.stragglers.Add(int64(c.Stragglers))
	m.specLaunched.Add(int64(c.SpeculativeLaunched))
	m.specWon.Add(int64(c.SpeculativeWon))
	m.jobRuntime.Observe(c.Runtime)
	m.mapPhaseSeconds.Observe(c.MapPhaseEnd - r.startedAt)
	m.shuffleMB.Observe(c.ShuffleMB)
	r.sim.obsReg.Emit("mr_job_done", now,
		obs.F("job", r.job.Name),
		obs.F("runtime", c.Runtime),
		obs.F("map_phase_end", c.MapPhaseEnd),
		obs.F("shuffle_end", c.ShuffleEnd),
		obs.F("shuffle_mb", c.ShuffleMB),
		obs.F("remote_shuffle_mb", c.ShuffleRemoteMB))
}
