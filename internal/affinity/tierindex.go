// TierIndex is the persistent form of the per-rack/per-cloud capacity
// aggregates the placement fast paths price Definition 1 from. The
// DistanceEvaluator keeps such aggregates for one cluster's VM totals;
// the TierIndex keeps them for a remaining-capacity matrix L, so the
// center scan can bound whole clouds and racks without touching their
// nodes — and, unlike the per-call scratch the placers used to rebuild,
// it is updated incrementally in O(affected tiers) as L changes.
//
// The index aliases the matrix it was built over: callers mutate L and
// then report each changed cell through Apply. Maxima are repaired by
// rescanning only the owning rack (and, when a rack-level maximum was
// the cloud's, the owning cloud's rack list), so a k-cell commit costs
// O(k·rackSize) worst case and O(k) typically. All methods that return
// slices return views into the index's storage; they are read-only and
// valid until the next Apply/Rebuild.
//
// A TierIndex is not safe for concurrent mutation. The inventory owns
// one under its own lock (see inventory.AttachTierIndex); batch drivers
// own private ones over their working matrices.
package affinity

import (
	"fmt"

	"affinitycluster/internal/topology"
)

// TierIndex holds tier-aggregated views of one remaining-capacity
// matrix L.
type TierIndex struct {
	t *topology.Topology
	l [][]int // the aliased matrix; rows must stay stable
	n int
	m int

	rackRemain  []int // racks×m row-major: Σ_{i∈rack} L_ij
	cloudRemain []int // clouds×m row-major: Σ_{i∈cloud} L_ij
	avail       []int // m: A_j = Σ_i L_ij
	nodeTot     []int // n: Σ_j L_ij
	rackTotSum  []int // racks: Σ_j rackRemain[r][j]
	rackMaxCol  []int // racks×m: max_{i∈rack} L_ij
	rackMaxTot  []int // racks: max_{i∈rack} nodeTot[i]
	cloudMaxTot []int // clouds: max over the cloud's racks of rackMaxTot
	cloudMaxSum []int // clouds: max over the cloud's racks of rackTotSum

	version uint64 // owner-keyed (e.g. Inventory.Version); 0 until synced
}

// NewTierIndex builds an index over matrix l on topology t. The index
// keeps l by reference: every row must remain the same slice for the
// index's lifetime, and every subsequent mutation of a cell must be
// reported through Apply.
func NewTierIndex(t *topology.Topology, l [][]int) (*TierIndex, error) {
	n := t.Nodes()
	if len(l) != n {
		return nil, fmt.Errorf("affinity: tier index matrix has %d rows, topology has %d nodes", len(l), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("affinity: tier index over empty plant")
	}
	m := len(l[0])
	for i, row := range l {
		if len(row) != m {
			return nil, fmt.Errorf("affinity: tier index matrix ragged at row %d", i)
		}
	}
	x := &TierIndex{
		t:           t,
		l:           l,
		n:           n,
		m:           m,
		rackRemain:  make([]int, t.Racks()*m),
		cloudRemain: make([]int, t.Clouds()*m),
		avail:       make([]int, m),
		nodeTot:     make([]int, n),
		rackTotSum:  make([]int, t.Racks()),
		rackMaxCol:  make([]int, t.Racks()*m),
		rackMaxTot:  make([]int, t.Racks()),
		cloudMaxTot: make([]int, t.Clouds()),
		cloudMaxSum: make([]int, t.Clouds()),
	}
	x.Rebuild()
	return x, nil
}

// Topology returns the plant the index is built over.
//
//lint:shared the topology is immutable after construction and shared by design
func (x *TierIndex) Topology() *topology.Topology { return x.t }

// Matrix returns the aliased remaining-capacity matrix. Read-only for
// anyone who is not also calling Apply.
//
//lint:shared documented alias of the owner's matrix; read-only off the writer
func (x *TierIndex) Matrix() [][]int { return x.l }

// Types returns the type dimension m.
func (x *TierIndex) Types() int { return x.m }

// Version returns the owner-assigned version key (see SetVersion).
func (x *TierIndex) Version() uint64 { return x.version }

// SetVersion stamps the index with its owner's mutation counter, so
// readers can detect a stale index by comparing against the owner's
// current version (Inventory.Version for an attached index).
func (x *TierIndex) SetVersion(v uint64) { x.version = v }

// Avail returns the availability vector A_j = Σ_i L_ij as a view.
//
//lint:shared zero-copy aggregate view; coherent only between Apply calls
func (x *TierIndex) Avail() []int { return x.avail }

// RackRemain returns rack r's per-type remaining totals as a view.
//
//lint:shared zero-copy aggregate view; coherent only between Apply calls
func (x *TierIndex) RackRemain(r int) []int { return x.rackRemain[r*x.m : (r+1)*x.m] }

// CloudRemain returns cloud c's per-type remaining totals as a view.
//
//lint:shared zero-copy aggregate view; coherent only between Apply calls
func (x *TierIndex) CloudRemain(c int) []int { return x.cloudRemain[c*x.m : (c+1)*x.m] }

// RackMaxCol returns rack r's per-type maximum single-node remaining
// capacity as a view — the fast path's rack-level covering test.
//
//lint:shared zero-copy aggregate view; coherent only between Apply calls
func (x *TierIndex) RackMaxCol(r int) []int { return x.rackMaxCol[r*x.m : (r+1)*x.m] }

// NodeTotal returns Σ_j L_ij for node i.
func (x *TierIndex) NodeTotal(i topology.NodeID) int { return x.nodeTot[i] }

// RackMaxTotal returns the largest per-node total remaining capacity in
// rack r.
func (x *TierIndex) RackMaxTotal(r int) int { return x.rackMaxTot[r] }

// RackTotalSum returns Σ_j Σ_{i∈rack} L_ij for rack r.
func (x *TierIndex) RackTotalSum(r int) int { return x.rackTotSum[r] }

// CloudMaxNodeTotal returns the largest per-node total remaining
// capacity in cloud c.
func (x *TierIndex) CloudMaxNodeTotal(c int) int { return x.cloudMaxTot[c] }

// CloudMaxRackSum returns the largest rack-level total remaining
// capacity in cloud c.
func (x *TierIndex) CloudMaxRackSum(c int) int { return x.cloudMaxSum[c] }

// Rebind points the index at a different matrix of the same shape and
// rebuilds, clearing the version stamp. It exists so transient per-call
// indexes can be pooled instead of reallocated.
func (x *TierIndex) Rebind(l [][]int) error {
	if len(l) != x.n {
		return fmt.Errorf("affinity: tier index rebind with %d rows, index has %d", len(l), x.n)
	}
	for i, row := range l {
		if len(row) != x.m {
			return fmt.Errorf("affinity: tier index rebind ragged at row %d", i)
		}
	}
	x.l = l
	x.version = 0
	x.Rebuild()
	return nil
}

// Rebuild recomputes every aggregate from the matrix — O(n·m). Apply
// keeps them incrementally; Rebuild exists for construction and for the
// churn property tests' fresh-rebuild comparisons.
func (x *TierIndex) Rebuild() {
	for k := range x.rackRemain {
		x.rackRemain[k] = 0
		x.rackMaxCol[k] = 0
	}
	for k := range x.cloudRemain {
		x.cloudRemain[k] = 0
	}
	for j := range x.avail {
		x.avail[j] = 0
	}
	for r := range x.rackTotSum {
		x.rackTotSum[r] = 0
		x.rackMaxTot[r] = 0
	}
	for c := range x.cloudMaxTot {
		x.cloudMaxTot[c] = 0
		x.cloudMaxSum[c] = 0
	}
	m := x.m
	for i, row := range x.l {
		r := x.t.RackOf(topology.NodeID(i))
		c := x.t.CloudOf(topology.NodeID(i))
		tot := 0
		for j, v := range row {
			tot += v
			x.avail[j] += v
			x.rackRemain[r*m+j] += v
			x.cloudRemain[c*m+j] += v
			if v > x.rackMaxCol[r*m+j] {
				x.rackMaxCol[r*m+j] = v
			}
		}
		x.nodeTot[i] = tot
		x.rackTotSum[r] += tot
		if tot > x.rackMaxTot[r] {
			x.rackMaxTot[r] = tot
		}
	}
	for r := 0; r < x.t.Racks(); r++ {
		c := x.t.CloudOfRack(r)
		if c < 0 {
			continue
		}
		if x.rackMaxTot[r] > x.cloudMaxTot[c] {
			x.cloudMaxTot[c] = x.rackMaxTot[r]
		}
		if x.rackTotSum[r] > x.cloudMaxSum[c] {
			x.cloudMaxSum[c] = x.rackTotSum[r]
		}
	}
}

// Apply folds one already-performed cell mutation into the aggregates:
// L[i][j] changed by delta (the matrix holds the new value). Sums
// update in O(1); a maximum that may have dropped is repaired by
// rescanning the owning rack, and a rack-level maximum that carried its
// cloud's triggers a rescan of that cloud's rack list.
//
//lint:hotpath
func (x *TierIndex) Apply(i topology.NodeID, j int, delta int) {
	if delta == 0 {
		return
	}
	m := x.m
	r := x.t.RackOf(i)
	c := x.t.CloudOf(i)
	v := x.l[i][j] // new value
	x.avail[j] += delta
	x.rackRemain[r*m+j] += delta
	x.cloudRemain[c*m+j] += delta
	oldTot := x.nodeTot[i]
	newTot := oldTot + delta
	x.nodeTot[i] = newTot
	x.rackTotSum[r] += delta

	// Per-rack per-type max.
	if delta > 0 {
		if v > x.rackMaxCol[r*m+j] {
			x.rackMaxCol[r*m+j] = v
		}
	} else if v-delta == x.rackMaxCol[r*m+j] {
		mc := 0
		for _, id := range x.t.RackNodes(r) {
			if w := x.l[id][j]; w > mc {
				mc = w
			}
		}
		x.rackMaxCol[r*m+j] = mc
	}

	// Per-rack max node total, and the cloud max it may carry.
	if delta > 0 {
		if newTot > x.rackMaxTot[r] {
			x.rackMaxTot[r] = newTot
			if newTot > x.cloudMaxTot[c] {
				x.cloudMaxTot[c] = newTot
			}
		}
	} else if oldTot == x.rackMaxTot[r] {
		mt := 0
		for _, id := range x.t.RackNodes(r) {
			if w := x.nodeTot[id]; w > mt {
				mt = w
			}
		}
		if mt != x.rackMaxTot[r] {
			was := x.rackMaxTot[r]
			x.rackMaxTot[r] = mt
			if was == x.cloudMaxTot[c] {
				cm := 0
				for _, rr := range x.t.CloudRacks(c) {
					if w := x.rackMaxTot[rr]; w > cm {
						cm = w
					}
				}
				x.cloudMaxTot[c] = cm
			}
		}
	}

	// Cloud max rack-total sum.
	rts := x.rackTotSum[r]
	if delta > 0 {
		if rts > x.cloudMaxSum[c] {
			x.cloudMaxSum[c] = rts
		}
	} else if rts-delta == x.cloudMaxSum[c] {
		cm := 0
		for _, rr := range x.t.CloudRacks(c) {
			if w := x.rackTotSum[rr]; w > cm {
				cm = w
			}
		}
		x.cloudMaxSum[c] = cm
	}
}

// ApplyRow folds a whole-row change: every cell of node i moved from
// the values implied by the per-type deltas. It is Apply per type, the
// form FailNode/RestoreNode use.
//
//lint:hotpath
func (x *TierIndex) ApplyRow(i topology.NodeID, deltas []int) {
	for j, d := range deltas {
		x.Apply(i, j, d)
	}
}

// CheckConsistent recomputes every aggregate from the matrix and
// returns the first discrepancy — the churn property tests' oracle.
func (x *TierIndex) CheckConsistent() error {
	fresh, err := NewTierIndex(x.t, x.l)
	if err != nil {
		return err
	}
	if !intsEqual(x.avail, fresh.avail) {
		return fmt.Errorf("affinity: tier index avail %v, rebuild %v", x.avail, fresh.avail)
	}
	if !intsEqual(x.rackRemain, fresh.rackRemain) {
		return fmt.Errorf("affinity: tier index rackRemain diverged from rebuild")
	}
	if !intsEqual(x.cloudRemain, fresh.cloudRemain) {
		return fmt.Errorf("affinity: tier index cloudRemain diverged from rebuild")
	}
	if !intsEqual(x.nodeTot, fresh.nodeTot) {
		return fmt.Errorf("affinity: tier index nodeTot diverged from rebuild")
	}
	if !intsEqual(x.rackTotSum, fresh.rackTotSum) {
		return fmt.Errorf("affinity: tier index rackTotSum diverged from rebuild")
	}
	if !intsEqual(x.rackMaxCol, fresh.rackMaxCol) {
		return fmt.Errorf("affinity: tier index rackMaxCol diverged from rebuild")
	}
	if !intsEqual(x.rackMaxTot, fresh.rackMaxTot) {
		return fmt.Errorf("affinity: tier index rackMaxTot diverged from rebuild")
	}
	if !intsEqual(x.cloudMaxTot, fresh.cloudMaxTot) {
		return fmt.Errorf("affinity: tier index cloudMaxTot diverged from rebuild")
	}
	if !intsEqual(x.cloudMaxSum, fresh.cloudMaxSum) {
		return fmt.Errorf("affinity: tier index cloudMaxSum diverged from rebuild")
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
