package affinity

import (
	"math/rand"
	"testing"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// randomPlant builds an irregular topology: 1–3 clouds, each with 1–4
// racks of 1–5 nodes, so rack/cloud aggregate bookkeeping is exercised on
// non-uniform shapes, not just the paper's symmetric plant.
func randomPlant(t *testing.T, rng *rand.Rand) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(topology.DefaultDistances())
	clouds := 1 + rng.Intn(3)
	for c := 0; c < clouds; c++ {
		b.AddCloud()
		racks := 1 + rng.Intn(4)
		for r := 0; r < racks; r++ {
			b.AddRack()
			b.AddNodes(1 + rng.Intn(5))
		}
	}
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// randomAlloc scatters VMs over random nodes; ~1 in 8 trials stays empty
// to cover the degenerate case.
func randomAlloc(rng *rand.Rand, n, m int) Allocation {
	a := NewAllocation(n, m)
	if rng.Intn(8) == 0 {
		return a
	}
	vms := 1 + rng.Intn(4*n)
	for v := 0; v < vms; v++ {
		a.Add(topology.NodeID(rng.Intn(n)), model.VMTypeID(rng.Intn(m)))
	}
	return a
}

// TestTierAggregatedDistanceProperty checks the tier-aggregated evaluator
// against the untouched per-row oracle Allocation.DistanceFrom — a plain
// Σ_i w_i·D_ik scan that never saw the aggregation rewrite. For every
// candidate center the aggregated sum must match exactly (integer tiers),
// and Distance must equal the brute-force minimum over ALL nodes with the
// lowest-ID tie-break, confirming both the O(1) TierSum pricing and the
// restriction of the scan to hosting nodes.
func TestTierAggregatedDistanceProperty(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tp := randomPlant(t, rng)
		n := tp.Nodes()
		m := 1 + rng.Intn(3)
		a := randomAlloc(rng, n, m)
		ev := NewDistanceEvaluator(tp, a)

		// Brute-force Definition 1 over every candidate center.
		bestD, bestK := 0.0, topology.NodeID(-1)
		if !a.IsEmpty() {
			for k := 0; k < n; k++ {
				want := a.DistanceFrom(tp, topology.NodeID(k))
				got := ev.DistanceFrom(topology.NodeID(k))
				if got != want {
					t.Fatalf("trial %d: DistanceFrom(%d) = %v, oracle %v\nalloc %v", trial, k, got, want, a)
				}
				if bestK < 0 || want < bestD {
					bestD, bestK = want, topology.NodeID(k)
				}
			}
		}
		gotD, gotK := ev.Distance()
		if gotD != bestD || gotK != bestK {
			t.Fatalf("trial %d: Distance() = (%v, %d), brute force (%v, %d)\nalloc %v",
				trial, gotD, gotK, bestD, bestK, a)
		}

		// Move previews must agree with the oracle minimum after the move.
		if a.IsEmpty() {
			continue
		}
		for probe := 0; probe < 10; probe++ {
			hosts := a.HostingNodes()
			p := hosts[rng.Intn(len(hosts))]
			q := topology.NodeID(rng.Intn(n))
			prevD, prevK := ev.MovePreview(p, q)
			vt := model.VMTypeID(-1)
			for j := 0; j < m; j++ {
				if a[p][j] > 0 {
					vt = model.VMTypeID(j)
					break
				}
			}
			a.Remove(p, vt)
			a.Add(q, vt)
			wantD, wantK := 0.0, topology.NodeID(-1)
			if !a.IsEmpty() {
				for k := 0; k < n; k++ {
					d := a.DistanceFrom(tp, topology.NodeID(k))
					if wantK < 0 || d < wantD {
						wantD, wantK = d, topology.NodeID(k)
					}
				}
			}
			if prevD != wantD || prevK != wantK {
				t.Fatalf("trial %d probe %d: MovePreview(%d,%d) = (%v, %d), oracle (%v, %d)",
					trial, probe, p, q, prevD, prevK, wantD, wantK)
			}
			// Revert so the evaluator still matches a.
			a.Remove(q, vt)
			a.Add(p, vt)
		}
	}
}
