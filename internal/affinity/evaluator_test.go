package affinity

import (
	"math"
	"math/rand"
	"testing"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

func evalPlant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(2, 3, 5, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// checkAgainstScratch asserts the evaluator agrees with the from-scratch
// Allocation methods — value AND central node — exactly (integer tiers).
func checkAgainstScratch(t *testing.T, tp *topology.Topology, e *DistanceEvaluator, a Allocation, step int) {
	t.Helper()
	wantD, wantK := a.Distance(tp)
	gotD, gotK := e.Distance()
	if gotD != wantD || gotK != wantK {
		t.Fatalf("step %d: evaluator (%v, %d) != scratch (%v, %d)\nalloc %v", step, gotD, gotK, wantD, wantK, a)
	}
	if got, want := e.TotalVMs(), a.TotalVMs(); got != want {
		t.Fatalf("step %d: total %d != %d", step, got, want)
	}
	if got, want := e.PairwiseAffinity(), a.PairwiseAffinity(tp); got != want {
		t.Fatalf("step %d: pairwise %v != %v", step, got, want)
	}
}

// TestEvaluatorEquivalenceRandomWalk applies long random Add/Remove/Move
// sequences and asserts the incremental evaluator agrees with the
// from-scratch Definition 1 computation at every step.
func TestEvaluatorEquivalenceRandomWalk(t *testing.T) {
	tp := evalPlant(t)
	n := tp.Nodes()
	const m = 3
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocation(n, m)
		e := NewDistanceEvaluator(tp, a)
		checkAgainstScratch(t, tp, e, a, -1)
		for step := 0; step < 600; step++ {
			switch op := rng.Intn(3); {
			case op == 0 || a.TotalVMs() == 0: // Add
				i := topology.NodeID(rng.Intn(n))
				vt := model.VMTypeID(rng.Intn(m))
				a.Add(i, vt)
				e.Add(i)
			case op == 1: // Remove
				hosts := a.HostingNodes()
				i := hosts[rng.Intn(len(hosts))]
				vt := anyTypeOn(a, i)
				a.Remove(i, vt)
				e.Remove(i)
			default: // Move
				hosts := a.HostingNodes()
				p := hosts[rng.Intn(len(hosts))]
				q := topology.NodeID(rng.Intn(n))
				vt := anyTypeOn(a, p)
				// Preview before mutating: must equal the post-move scratch.
				prevD, prevK := e.MovePreview(p, q)
				a.Remove(p, vt)
				a.Add(q, vt)
				e.Move(p, q)
				if d, k := a.Distance(tp); prevD != d || prevK != k {
					t.Fatalf("seed %d step %d: MovePreview(%d,%d) = (%v, %d), post-move scratch (%v, %d)",
						seed, step, p, q, prevD, prevK, d, k)
				}
			}
			checkAgainstScratch(t, tp, e, a, step)
		}
	}
}

func anyTypeOn(a Allocation, i topology.NodeID) model.VMTypeID {
	for j, k := range a[i] {
		if k > 0 {
			return model.VMTypeID(j)
		}
	}
	panic("no VM on node")
}

// TestEvaluatorPreviewDoesNotMutate prices many moves and verifies the
// evaluator state is untouched.
func TestEvaluatorPreviewDoesNotMutate(t *testing.T) {
	tp := evalPlant(t)
	rng := rand.New(rand.NewSource(42))
	a := NewAllocation(tp.Nodes(), 2)
	e := NewDistanceEvaluator(tp, nil)
	for i := 0; i < 12; i++ {
		node := topology.NodeID(rng.Intn(tp.Nodes()))
		a.Add(node, 0)
		e.Add(node)
	}
	d0, k0 := e.Distance()
	hosts := a.HostingNodes()
	for trial := 0; trial < 200; trial++ {
		p := hosts[rng.Intn(len(hosts))]
		q := topology.NodeID(rng.Intn(tp.Nodes()))
		e.MovePreview(p, q)
		e.MoveDelta(p, q)
		e.PairwiseMoveDelta(p, q)
	}
	if d1, k1 := e.Distance(); d1 != d0 || k1 != k0 {
		t.Fatalf("preview mutated evaluator: (%v, %d) → (%v, %d)", d0, k0, d1, k1)
	}
	checkAgainstScratch(t, tp, e, a, 0)
}

// TestEvaluatorPairwiseMoveDelta checks the closed-form pairwise delta
// against from-scratch recomputation over random moves, including a
// non-zero SameNode tier to exercise the co-location term.
func TestEvaluatorPairwiseMoveDelta(t *testing.T) {
	tp, err := topology.Uniform(2, 2, 4, topology.Distances{SameNode: 0.5, SameRack: 1, CrossRack: 2, CrossCloud: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	a := NewAllocation(tp.Nodes(), 1)
	e := NewDistanceEvaluator(tp, nil)
	for i := 0; i < 10; i++ {
		node := topology.NodeID(rng.Intn(tp.Nodes()))
		a.Add(node, 0)
		e.Add(node)
	}
	for trial := 0; trial < 300; trial++ {
		hosts := a.HostingNodes()
		p := hosts[rng.Intn(len(hosts))]
		q := topology.NodeID(rng.Intn(tp.Nodes()))
		before := a.PairwiseAffinity(tp)
		delta := e.PairwiseMoveDelta(p, q)
		a.Remove(p, 0)
		a.Add(q, 0)
		e.Move(p, q)
		after := a.PairwiseAffinity(tp)
		if math.Abs((after-before)-delta) > 1e-9 {
			t.Fatalf("trial %d: move %d→%d delta %v, scratch %v", trial, p, q, delta, after-before)
		}
	}
}

// TestEvaluatorFractionalDistances exercises non-integer tiers, where
// incremental float accumulation may drift: agreement must hold within a
// tight tolerance and the central node must match.
func TestEvaluatorFractionalDistances(t *testing.T) {
	tp, err := topology.Uniform(2, 3, 4, topology.Distances{SameNode: 0, SameRack: 0.3, CrossRack: 1.1, CrossCloud: 2.7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a := NewAllocation(tp.Nodes(), 2)
	e := NewDistanceEvaluator(tp, nil)
	for step := 0; step < 500; step++ {
		if a.TotalVMs() == 0 || rng.Intn(2) == 0 {
			i := topology.NodeID(rng.Intn(tp.Nodes()))
			a.Add(i, 0)
			e.Add(i)
		} else {
			hosts := a.HostingNodes()
			i := hosts[rng.Intn(len(hosts))]
			a.Remove(i, 0)
			e.Remove(i)
		}
		wantD, _ := a.Distance(tp)
		gotD, _ := e.Distance()
		if math.Abs(wantD-gotD) > 1e-9 {
			t.Fatalf("step %d: drift %v vs %v", step, gotD, wantD)
		}
	}
}

// TestEvaluatorResetAndEmpty covers the empty-cluster conventions and
// Reset reuse.
func TestEvaluatorResetAndEmpty(t *testing.T) {
	tp := evalPlant(t)
	e := NewDistanceEvaluator(tp, nil)
	if d, k := e.Distance(); d != 0 || k != -1 {
		t.Fatalf("empty evaluator: (%v, %d)", d, k)
	}
	a := NewAllocation(tp.Nodes(), 2)
	a.Add(3, 0)
	a.Add(17, 1)
	a.Add(17, 1)
	e.Reset(a)
	checkAgainstScratch(t, tp, e, a, 0)
	// Drain back to empty through the incremental path.
	e.Remove(3)
	e.Remove(17)
	e.Remove(17)
	if d, k := e.Distance(); d != 0 || k != -1 {
		t.Fatalf("drained evaluator: (%v, %d)", d, k)
	}
	if len(e.HostingNodes()) != 0 {
		t.Fatalf("hosts not empty: %v", e.HostingNodes())
	}
}

// TestDistanceOfMatchesAllocation checks the one-shot host/weight path
// against the matrix path, including unsorted host order.
func TestDistanceOfMatchesAllocation(t *testing.T) {
	tp := evalPlant(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a := NewAllocation(tp.Nodes(), 2)
		w := make([]int, tp.Nodes())
		var hosts []topology.NodeID
		for i := 0; i < 1+rng.Intn(9); i++ {
			node := topology.NodeID(rng.Intn(tp.Nodes()))
			a.Add(node, 0)
			if w[node] == 0 {
				hosts = append(hosts, node)
			}
			w[node]++
		}
		// Shuffle hosts: DistanceOf must still tie-break toward lowest ID.
		rng.Shuffle(len(hosts), func(x, y int) { hosts[x], hosts[y] = hosts[y], hosts[x] })
		wantD, wantK := a.Distance(tp)
		gotD, gotK := DistanceOf(tp, hosts, w)
		if gotD != wantD || gotK != wantK {
			t.Fatalf("trial %d: DistanceOf (%v, %d) != Distance (%v, %d)", trial, gotD, gotK, wantD, wantK)
		}
	}
	if d, k := DistanceOf(tp, nil, nil); d != 0 || k != -1 {
		t.Fatalf("empty DistanceOf: (%v, %d)", d, k)
	}
}

// TestEvaluatorAddPreview prices hypothetical single-VM additions at every
// node over a random walk and asserts each preview equals the post-add
// from-scratch computation — value AND central node — without mutating the
// evaluator. Includes the empty-cluster case (first VM anywhere is DC 0).
func TestEvaluatorAddPreview(t *testing.T) {
	tp := evalPlant(t)
	n := tp.Nodes()
	const m = 2
	rng := rand.New(rand.NewSource(7))
	a := NewAllocation(n, m)
	e := NewDistanceEvaluator(tp, a)
	for step := 0; step < 120; step++ {
		q := topology.NodeID(rng.Intn(n))
		prevD, prevK := e.AddPreview(q)
		d0, k0 := e.Distance()
		if d1, k1 := e.Distance(); d1 != d0 || k1 != k0 {
			t.Fatalf("step %d: AddPreview mutated evaluator", step)
		}
		vt := model.VMTypeID(rng.Intn(m))
		a.Add(q, vt)
		wantD, wantK := a.Distance(tp)
		a.Remove(q, vt)
		if prevD != wantD || prevK != wantK {
			t.Fatalf("step %d: AddPreview(%d) = (%v, %d), post-add scratch (%v, %d)",
				step, q, prevD, prevK, wantD, wantK)
		}
		// Walk: sometimes commit the add, sometimes remove something.
		if rng.Intn(3) > 0 || a.TotalVMs() == 0 {
			a.Add(q, vt)
			e.Add(q)
		} else {
			hosts := a.HostingNodes()
			i := hosts[rng.Intn(len(hosts))]
			a.Remove(i, anyTypeOn(a, i))
			e.Remove(i)
		}
		checkAgainstScratch(t, tp, e, a, step)
	}
}

// TestEvaluatorRemovePreview mirrors the AddPreview walk for removals:
// each preview of a single-VM removal from a hosting node must equal the
// post-remove from-scratch computation — value AND central node — without
// mutating the evaluator, down to the last VM (which previews as the
// empty cluster's (0, -1)).
func TestEvaluatorRemovePreview(t *testing.T) {
	tp := evalPlant(t)
	n := tp.Nodes()
	const m = 2
	rng := rand.New(rand.NewSource(11))
	a := NewAllocation(n, m)
	e := NewDistanceEvaluator(tp, a)
	// Seed a cluster to shrink from.
	for i := 0; i < 40; i++ {
		q := topology.NodeID(rng.Intn(n))
		a.Add(q, model.VMTypeID(rng.Intn(m)))
		e.Add(q)
	}
	for step := 0; step < 160; step++ {
		hosts := a.HostingNodes()
		p := hosts[rng.Intn(len(hosts))]
		prevD, prevK := e.RemovePreview(p)
		d0, k0 := e.Distance()
		if d1, k1 := e.Distance(); d1 != d0 || k1 != k0 {
			t.Fatalf("step %d: RemovePreview mutated evaluator", step)
		}
		vt := anyTypeOn(a, p)
		a.Remove(p, vt)
		wantD, wantK := a.Distance(tp)
		if prevD != wantD || prevK != wantK {
			t.Fatalf("step %d: RemovePreview(%d) = (%v, %d), post-remove scratch (%v, %d)",
				step, p, prevD, prevK, wantD, wantK)
		}
		// Walk: mostly commit the removal, sometimes add back, so the
		// cluster shrinks through rack-draining transitions.
		if rng.Intn(4) > 0 {
			e.Remove(p)
		} else {
			a.Add(p, vt)
			q := topology.NodeID(rng.Intn(n))
			a.Add(q, model.VMTypeID(rng.Intn(m)))
			e.Add(q)
		}
		checkAgainstScratch(t, tp, e, a, step)
		if a.TotalVMs() == 0 {
			break
		}
	}
}
