// Package affinity implements the distance metric at the heart of the
// paper: the distance of a virtual cluster DC(C) (Definition 1), the
// central-node computation, and the pairwise cluster-affinity metric used
// by the experimental evaluation (Section V.B).
//
// An Allocation is the paper's matrix C: Allocation[i][j] VMs of type V_j
// are hosted on node N_i. The distance of the cluster is
//
//	DC(C) = min_k Σ_i (Σ_j C_ij) · D_ik
//
// where N_k ranges over candidate central nodes and D is the node distance
// matrix of the topology.
package affinity

import (
	"fmt"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// Allocation is the paper's allocation matrix C for a single virtual
// cluster: Allocation[i][j] instances of type j on node i.
type Allocation [][]int

// NewAllocation returns an all-zero n×m allocation.
func NewAllocation(n, m int) Allocation {
	rows := make(Allocation, n)
	flat := make([]int, n*m)
	for i := range rows {
		rows[i] = flat[i*m : (i+1)*m]
	}
	return rows
}

// Clone returns a deep copy.
func (a Allocation) Clone() Allocation {
	out := NewAllocation(len(a), len(a[0]))
	for i := range a {
		copy(out[i], a[i])
	}
	return out
}

// VMsOnNode returns Σ_j C_ij, the number of VMs the cluster places on node i.
func (a Allocation) VMsOnNode(i topology.NodeID) int {
	return model.Sum(a[i])
}

// TotalVMs returns the total VM count of the cluster.
func (a Allocation) TotalVMs() int {
	n := 0
	for i := range a {
		n += model.Sum(a[i])
	}
	return n
}

// Vector returns the per-type totals Σ_i C_ij, which must equal the request
// vector R for a valid allocation.
func (a Allocation) Vector() model.Request {
	if len(a) == 0 {
		return nil
	}
	out := make(model.Request, len(a[0]))
	for i := range a {
		for j, k := range a[i] {
			out[j] += k
		}
	}
	return out
}

// HostingNodes returns the IDs of nodes with at least one VM, in ID order.
func (a Allocation) HostingNodes() []topology.NodeID {
	var out []topology.NodeID
	for i := range a {
		if model.Sum(a[i]) > 0 {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// IsEmpty reports whether no VMs are placed.
func (a Allocation) IsEmpty() bool { return a.TotalVMs() == 0 }

// Satisfies reports whether the allocation delivers exactly the request r.
func (a Allocation) Satisfies(r model.Request) bool {
	v := a.Vector()
	if len(v) != len(r) {
		return false
	}
	for j := range r {
		if v[j] != r[j] {
			return false
		}
	}
	return true
}

// Fits reports whether the allocation respects a remaining-capacity matrix
// L, i.e. C_ij ≤ L_ij everywhere and entries are non-negative.
func (a Allocation) Fits(l [][]int) bool {
	if len(a) != len(l) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(l[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] < 0 || a[i][j] > l[i][j] {
				return false
			}
		}
	}
	return true
}

// Validate returns a descriptive error when the allocation does not satisfy
// the request or exceeds capacity.
func (a Allocation) Validate(r model.Request, l [][]int) error {
	if !a.Satisfies(r) {
		return fmt.Errorf("affinity: allocation delivers %v, request is %v", a.Vector(), r)
	}
	if !a.Fits(l) {
		return fmt.Errorf("affinity: allocation exceeds remaining capacity")
	}
	return nil
}

// DistanceFrom returns Σ_i (Σ_j C_ij) · D_ik for a fixed central node k:
// the inner sum of Definition 1 before minimization.
func (a Allocation) DistanceFrom(t *topology.Topology, k topology.NodeID) float64 {
	row := t.DistanceRow(k)
	var sum float64
	for i := range a {
		if v := model.Sum(a[i]); v > 0 {
			sum += float64(v) * row[i]
		}
	}
	return sum
}

// Distance computes DC(C) per Definition 1: the minimum over all candidate
// central nodes of DistanceFrom, together with the minimizing central node.
// Ties break toward the lowest node ID, making the result deterministic.
//
// The minimum over all n nodes is always attained at a hosting node: moving
// the candidate center onto any hosting node in the same rack can only
// remove that node's own contribution (Theorem 1's exchange argument), so
// the scan is restricted to hosting nodes. An empty allocation has distance
// 0 and central node -1.
//
// The matrix is reduced to per-node totals once, then evaluated through
// DistanceOf — O(n·m + hosts²) instead of O(hosts·n·m). Call sites that
// re-evaluate after single-VM mutations should use a DistanceEvaluator
// instead, which prices each move in O(hosts).
func (a Allocation) Distance(t *topology.Topology) (float64, topology.NodeID) {
	var hosts []topology.NodeID
	w := make([]int, len(a))
	for i := range a {
		if v := model.Sum(a[i]); v > 0 {
			w[i] = v
			hosts = append(hosts, topology.NodeID(i))
		}
	}
	return DistanceOf(t, hosts, w)
}

// DistanceValue is Distance without the central node, for call sites that
// only need the metric.
func (a Allocation) DistanceValue(t *topology.Topology) float64 {
	d, _ := a.Distance(t)
	return d
}

// CentralNode returns the minimizing central node of Definition 1, or -1
// for an empty allocation.
func (a Allocation) CentralNode(t *topology.Topology) topology.NodeID {
	_, k := a.Distance(t)
	return k
}

// PairwiseAffinity computes the cluster-affinity metric of the paper's
// experimental section: the sum of distances over all unordered VM pairs of
// the cluster. Two VMs on the same node contribute the SameNode tier (0),
// same rack contributes SameRack, and so on. This is the "distance of
// virtual clusters" axis of Figs. 7 and 8.
func (a Allocation) PairwiseAffinity(t *topology.Topology) float64 {
	hosts := a.HostingNodes()
	var sum float64
	for x := 0; x < len(hosts); x++ {
		vx := a.VMsOnNode(hosts[x])
		// Pairs within the same node.
		sum += float64(vx*(vx-1)/2) * t.Distances().SameNode
		for y := x + 1; y < len(hosts); y++ {
			vy := a.VMsOnNode(hosts[y])
			sum += float64(vx*vy) * t.Distance(hosts[x], hosts[y])
		}
	}
	return sum
}

// Add places one VM of type vt on node i.
func (a Allocation) Add(i topology.NodeID, vt model.VMTypeID) {
	a[i][vt]++
}

// Remove deletes one VM of type vt from node i. It panics if none is
// placed there, which always indicates a logic error in a transfer routine.
func (a Allocation) Remove(i topology.NodeID, vt model.VMTypeID) {
	if a[i][vt] <= 0 {
		panic(fmt.Sprintf("affinity: Remove(%d, %d) on empty cell", i, vt))
	}
	a[i][vt]--
}

// Sparse returns the allocation's non-zero cells as VMEntry values in
// row-major (node, then type) order — the canonical sparse form consumed
// by Inventory.AllocateList/ReleaseList. The entries are freshly
// allocated and do not alias the matrix.
func (a Allocation) Sparse() []VMEntry {
	var out []VMEntry
	for i, row := range a {
		for j, k := range row {
			if k != 0 {
				out = append(out, VMEntry{Node: topology.NodeID(i), Type: model.VMTypeID(j), Count: k})
			}
		}
	}
	return out
}

// MoveDelta returns the change in DistanceFrom(t, k) caused by moving one
// VM from node p to node q while keeping the central node k fixed:
// D_qk − D_pk. This is the quantity of Theorem 1 — negative when q is
// closer to the center than p.
func MoveDelta(t *topology.Topology, k, p, q topology.NodeID) float64 {
	return t.Distance(q, k) - t.Distance(p, k)
}

// String renders a compact description like "n0:[2 2 0] n1:[0 2 0]".
func (a Allocation) String() string {
	s := ""
	for i := range a {
		if model.Sum(a[i]) == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("n%d:%v", i, a[i])
	}
	if s == "" {
		return "(empty)"
	}
	return s
}
