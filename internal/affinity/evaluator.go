// Incremental evaluation of the paper's Definition 1. Every optimizer in
// this repo proposes single-VM moves and needs DC(C) after each candidate;
// recomputing it from the allocation matrix costs O(hosts²·m) per call.
//
// The tiered distance model (Definition 1: SameNode < SameRack < CrossRack
// < CrossCloud) makes DC(C) a function of per-rack and per-cloud VM
// aggregates only. For a candidate center k with w_k VMs, rack total
// R = Σ_{i∈rack(k)} w_i, cloud total B = Σ_{i∈cloud(k)} w_i and cluster
// total T:
//
//	S_k = w_k·d0 + (R−w_k)·d1 + (B−R)·d2 + (T−B)·d3
//
// so DistanceEvaluator maintains rack/cloud totals under Add/Remove/Move in
// O(1) and answers DistanceFrom in O(1). Minimizing S_k over a rack means
// maximizing w_k (d0 < d1), so DC(C) is found by ranking racks on the
// aggregate lower bound R·d0 + (B−R)·d2 + (T−B)·d3 (all rack VMs
// concentrated on the center) and scanning hosting nodes only inside racks
// whose bound can still beat the incumbent — O(racks) plus the pruned rack
// scans, instead of the O(hosts) per-center cached sums this file used to
// keep.
//
// Exactness: with integer-valued distance tiers (the paper's 0/1/2/4) and
// integer VM counts, every aggregate product is an exactly representable
// float64, so the tier-aggregated values are bit-for-bit identical to the
// from-scratch Allocation.Distance scan no matter how many updates have
// been applied, including the lowest-node-ID tie-break.
package affinity

import (
	"fmt"
	"math"
	"sort"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// DistanceEvaluator tracks one cluster's per-node VM totals together with
// the per-rack/per-cloud aggregates of the tiered distance model. It
// mirrors an Allocation the caller mutates in lockstep (or stands alone
// when only node totals matter). Not safe for concurrent mutation;
// independent evaluators may be used from different goroutines.
type DistanceEvaluator struct {
	t     *topology.Topology
	w     []int             // VMs per node
	hosts []topology.NodeID // ascending IDs of nodes with w > 0
	total int               // Σ w

	rackW     []int               // VMs per rack
	cloudW    []int               // VMs per cloud
	rackHosts [][]topology.NodeID // hosting nodes per rack, ascending
	active    []int               // racks with rackW > 0, unordered
	rackPos   []int               // index of rack in active, -1 when inactive

	// Sums of squared totals at each aggregation level, kept incrementally
	// for the O(1) pairwise-affinity closed form.
	ssNode  int // Σ_i w_i²
	ssRack  int // Σ_r rackW_r²
	ssCloud int // Σ_c cloudW_c²

	// Scan scratch, reused across Distance/MovePreview calls.
	scanRacks []int
	scanLB    []float64
	scanRW    []int
	scanCW    []int
}

// NewDistanceEvaluator builds an evaluator for allocation a (which may be
// nil for an initially empty cluster) on topology t. Cost: O(n·m) to read
// the matrix; the aggregates follow in O(hosts).
func NewDistanceEvaluator(t *topology.Topology, a Allocation) *DistanceEvaluator {
	e := &DistanceEvaluator{
		t:         t,
		w:         make([]int, t.Nodes()),
		rackW:     make([]int, t.Racks()),
		cloudW:    make([]int, t.Clouds()),
		rackHosts: make([][]topology.NodeID, t.Racks()),
		rackPos:   make([]int, t.Racks()),
		scanRacks: make([]int, 0, t.Racks()+1),
		scanLB:    make([]float64, 0, t.Racks()+1),
		scanRW:    make([]int, 0, t.Racks()+1),
		scanCW:    make([]int, 0, t.Racks()+1),
	}
	for r := range e.rackPos {
		e.rackPos[r] = -1
	}
	if a != nil {
		e.Reset(a)
	}
	return e
}

// Reset reloads the evaluator from allocation a, discarding all cached
// state.
func (e *DistanceEvaluator) Reset(a Allocation) {
	for _, i := range e.hosts {
		e.w[i] = 0
	}
	for _, r := range e.active {
		e.rackW[r] = 0
		e.rackHosts[r] = e.rackHosts[r][:0]
		e.rackPos[r] = -1
	}
	for c := range e.cloudW {
		e.cloudW[c] = 0
	}
	e.hosts = e.hosts[:0]
	e.active = e.active[:0]
	e.total = 0
	e.ssNode, e.ssRack, e.ssCloud = 0, 0, 0
	for i := range a {
		if v := model.Sum(a[i]); v > 0 {
			e.AddVMs(topology.NodeID(i), v)
		}
	}
}

// VMsOnNode returns the tracked VM total of node i.
func (e *DistanceEvaluator) VMsOnNode(i topology.NodeID) int { return e.w[i] }

// TotalVMs returns the tracked cluster size.
func (e *DistanceEvaluator) TotalVMs() int { return e.total }

// HostingNodes returns the ascending IDs of nodes with at least one VM.
// The returned slice is the evaluator's working storage: read-only, valid
// until the next mutation.
//
//lint:shared documented working-storage view: read-only, valid until the next mutation
func (e *DistanceEvaluator) HostingNodes() []topology.NodeID { return e.hosts }

// Add registers one more VM on node i in O(hosts) (the aggregate updates
// are O(1); the cost is keeping the hosting-node lists sorted).
func (e *DistanceEvaluator) Add(i topology.NodeID) { e.AddVMs(i, 1) }

// AddVMs registers count more VMs on node i.
func (e *DistanceEvaluator) AddVMs(i topology.NodeID, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("affinity: AddVMs(%d, %d) with non-positive count", i, count))
	}
	r := e.t.RackOf(i)
	c := e.t.CloudOf(i)
	e.ssNode += count * (2*e.w[i] + count)
	e.ssRack += count * (2*e.rackW[r] + count)
	e.ssCloud += count * (2*e.cloudW[c] + count)
	if e.w[i] == 0 {
		insertSorted(&e.hosts, i)
		insertSorted(&e.rackHosts[r], i)
	}
	if e.rackW[r] == 0 {
		e.rackPos[r] = len(e.active)
		e.active = append(e.active, r)
	}
	e.w[i] += count
	e.rackW[r] += count
	e.cloudW[c] += count
	e.total += count
}

// Remove deregisters one VM from node i. It panics when none is tracked
// there, which always indicates a desynchronized caller.
func (e *DistanceEvaluator) Remove(i topology.NodeID) {
	if e.w[i] <= 0 {
		panic(fmt.Sprintf("affinity: evaluator Remove(%d) on empty node", i))
	}
	r := e.t.RackOf(i)
	c := e.t.CloudOf(i)
	e.ssNode -= 2*e.w[i] - 1
	e.ssRack -= 2*e.rackW[r] - 1
	e.ssCloud -= 2*e.cloudW[c] - 1
	e.w[i]--
	e.rackW[r]--
	e.cloudW[c]--
	e.total--
	if e.w[i] == 0 {
		deleteSorted(&e.hosts, i)
		deleteSorted(&e.rackHosts[r], i)
	}
	if e.rackW[r] == 0 {
		// Swap-remove r from the active rack list.
		pos := e.rackPos[r]
		last := e.active[len(e.active)-1]
		e.active[pos] = last
		e.rackPos[last] = pos
		e.active = e.active[:len(e.active)-1]
		e.rackPos[r] = -1
	}
}

// Move relocates one VM from p to q.
func (e *DistanceEvaluator) Move(p, q topology.NodeID) {
	if p == q {
		return
	}
	e.Remove(p)
	e.Add(q)
}

func insertSorted(s *[]topology.NodeID, i topology.NodeID) {
	ids := *s
	pos := sort.Search(len(ids), func(x int) bool { return ids[x] >= i })
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = i
	*s = ids
}

func deleteSorted(s *[]topology.NodeID, i topology.NodeID) {
	ids := *s
	pos := sort.Search(len(ids), func(x int) bool { return ids[x] >= i })
	*s = append(ids[:pos], ids[pos+1:]...)
}

// TierSum prices S_k — the inner sum of Definition 1 — for a candidate
// center hosting wk VMs whose rack holds rackVMs and whose cloud holds
// cloudVMs of the cluster's totalVMs. Every tier-aggregated fast path in
// this repo (evaluator, one-shot DistanceOf, the placement rack probes)
// funnels through this one expression, so float comparisons between paths
// are deterministic and exact ties stay exact.
func TierSum(d topology.Distances, wk, rackVMs, cloudVMs, totalVMs int) float64 {
	return float64(wk)*d.SameNode + float64(rackVMs-wk)*d.SameRack +
		float64(cloudVMs-rackVMs)*d.CrossRack + float64(totalVMs-cloudVMs)*d.CrossCloud
}

// DistanceFrom returns Σ_i w_i·D_ik for candidate center k — the inner sum
// of Definition 1 before minimization — in O(1) from the aggregates.
func (e *DistanceEvaluator) DistanceFrom(k topology.NodeID) float64 {
	return TierSum(e.t.Distances(), e.w[k], e.rackW[e.t.RackOf(k)], e.cloudW[e.t.CloudOf(k)], e.total)
}

// Distance returns DC(C) per Definition 1 with the minimizing central
// node. Ties break toward the lowest node ID, matching Allocation.Distance.
// An empty cluster has distance 0 and central node -1. Cost: O(active
// racks) plus a hosting-node scan of the racks whose aggregate lower bound
// survives pruning.
func (e *DistanceEvaluator) Distance() (float64, topology.NodeID) {
	if e.total == 0 {
		return 0, -1
	}
	return e.bestCenter(-1, -1)
}

// MovePreview prices the hypothetical relocation of one VM from p to q:
// the exact DC(C) and central node the cluster would have after the move,
// computed without mutating the evaluator. It panics when p hosts no VM.
// MovePreview(p, p) is the current Distance.
func (e *DistanceEvaluator) MovePreview(p, q topology.NodeID) (float64, topology.NodeID) {
	if e.w[p] <= 0 {
		panic(fmt.Sprintf("affinity: MovePreview(%d, %d) from empty node", p, q))
	}
	if p == q {
		return e.Distance()
	}
	return e.bestCenter(p, q)
}

// AddPreview prices the hypothetical addition of one VM at node q: the
// exact DC(C) and central node the cluster would have with the extra VM,
// computed without mutating the evaluator. It is the evacuation planner's
// candidate probe (PlanReplacement tries every feasible host for each
// replacement VM); like bestCenter it scans hosting nodes only, in racks
// whose aggregate lower bound survives pruning, with the same tie-break
// as Allocation.Distance.
func (e *DistanceEvaluator) AddPreview(q topology.NodeID) (float64, topology.NodeID) {
	d := e.t.Distances()
	total := e.total + 1
	rq, cq := e.t.RackOf(q), e.t.CloudOf(q)
	racks := append(e.scanRacks[:0], e.active...)
	if e.rackW[rq] == 0 {
		racks = append(racks, rq)
	}
	lbs := e.scanLB[:0]
	rws := e.scanRW[:0]
	cws := e.scanCW[:0]
	seed := -1
	for idx, r := range racks {
		rw := e.rackW[r]
		cl := e.t.CloudOfRack(r)
		cw := e.cloudW[cl]
		if r == rq {
			rw++
		}
		if cl == cq {
			cw++
		}
		rws = append(rws, rw)
		cws = append(cws, cw)
		lb := TierSum(d, rw, rw, cw, total)
		lbs = append(lbs, lb)
		if seed < 0 || lb < lbs[seed] {
			seed = idx
		}
	}
	e.scanRacks, e.scanLB, e.scanRW, e.scanCW = racks, lbs, rws, cws

	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	scan := func(idx int) {
		r := racks[idx]
		maxW := 0
		maxID := topology.NodeID(-1)
		for _, h := range e.rackHosts[r] {
			wh := e.w[h]
			if h == q {
				wh++
			}
			if wh > maxW || (wh == maxW && h < maxID) {
				maxW, maxID = wh, h
			}
		}
		if r == rq && e.w[q] == 0 {
			// q becomes a hosting node only with the added VM.
			if 1 > maxW || (1 == maxW && q < maxID) {
				maxW, maxID = 1, q
			}
		}
		if maxW == 0 {
			return
		}
		if s := TierSum(d, maxW, rws[idx], cws[idx], total); s < best || (s == best && maxID < bestK) {
			best, bestK = s, maxID
		}
	}
	scan(seed)
	for idx := range racks {
		if idx == seed || lbs[idx] > best {
			continue
		}
		scan(idx)
	}
	return best, bestK
}

// RemovePreview prices the hypothetical removal of one VM from node p:
// the exact DC(C) and central node the cluster would have without that
// VM, computed without mutating the evaluator. It is the shrink
// planner's victim probe (placement.ReleaseSubset tries every hosting
// node for each VM it must give back); it panics when p hosts no VM.
// Removing the last VM yields (0, -1), matching Distance on an empty
// cluster.
func (e *DistanceEvaluator) RemovePreview(p topology.NodeID) (float64, topology.NodeID) {
	if e.w[p] <= 0 {
		panic(fmt.Sprintf("affinity: RemovePreview(%d) from empty node", p))
	}
	if e.total == 1 {
		return 0, -1
	}
	d := e.t.Distances()
	total := e.total - 1
	rp, cp := e.t.RackOf(p), e.t.CloudOf(p)
	racks := append(e.scanRacks[:0], e.active...)
	lbs := e.scanLB[:0]
	rws := e.scanRW[:0]
	cws := e.scanCW[:0]
	seed := -1
	for idx, r := range racks {
		rw := e.rackW[r]
		cl := e.t.CloudOfRack(r)
		cw := e.cloudW[cl]
		if r == rp {
			rw--
		}
		if cl == cp {
			cw--
		}
		rws = append(rws, rw)
		cws = append(cws, cw)
		if rw == 0 { // the removal drains this rack entirely
			lbs = append(lbs, math.Inf(1))
			continue
		}
		lb := TierSum(d, rw, rw, cw, total)
		lbs = append(lbs, lb)
		if seed < 0 || lb < lbs[seed] {
			seed = idx
		}
	}
	e.scanRacks, e.scanLB, e.scanRW, e.scanCW = racks, lbs, rws, cws

	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	scan := func(idx int) {
		r := racks[idx]
		maxW := 0
		maxID := topology.NodeID(-1)
		for _, h := range e.rackHosts[r] {
			wh := e.w[h]
			if h == p {
				wh--
			}
			if wh == 0 {
				continue
			}
			if wh > maxW || (wh == maxW && h < maxID) {
				maxW, maxID = wh, h
			}
		}
		if maxW == 0 {
			return
		}
		if s := TierSum(d, maxW, rws[idx], cws[idx], total); s < best || (s == best && maxID < bestK) {
			best, bestK = s, maxID
		}
	}
	scan(seed)
	for idx := range racks {
		if idx == seed || lbs[idx] > best {
			continue
		}
		scan(idx)
	}
	return best, bestK
}

// bestCenter minimizes S_k over the cluster's hosting nodes — the current
// ones when p < 0, or those after a hypothetical single-VM move p→q. The
// minimum over all n candidate centers is always attained at a hosting node
// (Theorem 1's exchange argument), so only hosting nodes are scanned.
//
// Pass 1 prices each candidate rack's lower bound (its whole rack total
// concentrated on one node); pass 2 scans hosting nodes only in racks whose
// bound ties or beats the incumbent, seeded from the tightest rack. The
// bound is computed by the same expression as the exact sum, so pruning on
// lb > best never discards an exact tie.
func (e *DistanceEvaluator) bestCenter(p, q topology.NodeID) (float64, topology.NodeID) {
	d := e.t.Distances()
	adj := p >= 0
	rp, rq, cp, cq := -1, -1, -1, -1
	racks := append(e.scanRacks[:0], e.active...)
	if adj {
		rp, rq = e.t.RackOf(p), e.t.RackOf(q)
		cp, cq = e.t.CloudOf(p), e.t.CloudOf(q)
		if e.rackW[rq] == 0 {
			racks = append(racks, rq)
		}
	}
	lbs := e.scanLB[:0]
	rws := e.scanRW[:0]
	cws := e.scanCW[:0]
	seed := -1
	for idx, r := range racks {
		rw := e.rackW[r]
		cl := e.t.CloudOfRack(r)
		cw := e.cloudW[cl]
		if adj {
			if r == rp {
				rw--
			}
			if r == rq {
				rw++
			}
			if cl == cp {
				cw--
			}
			if cl == cq {
				cw++
			}
		}
		rws = append(rws, rw)
		cws = append(cws, cw)
		if rw == 0 { // the move drains this rack entirely
			lbs = append(lbs, math.Inf(1))
			continue
		}
		lb := TierSum(d, rw, rw, cw, e.total)
		lbs = append(lbs, lb)
		if seed < 0 || lb < lbs[seed] {
			seed = idx
		}
	}
	e.scanRacks, e.scanLB, e.scanRW, e.scanCW = racks, lbs, rws, cws

	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	scan := func(idx int) {
		r := racks[idx]
		maxW := 0
		maxID := topology.NodeID(-1)
		for _, h := range e.rackHosts[r] {
			wh := e.w[h]
			if adj {
				if h == p {
					wh--
				}
				if h == q {
					wh++
				}
			}
			if wh == 0 {
				continue
			}
			if wh > maxW || (wh == maxW && h < maxID) {
				maxW, maxID = wh, h
			}
		}
		if adj && r == rq && e.w[q] == 0 {
			// q becomes a hosting node only after the move.
			if 1 > maxW || (1 == maxW && q < maxID) {
				maxW, maxID = 1, q
			}
		}
		if maxW == 0 {
			return
		}
		if s := TierSum(d, maxW, rws[idx], cws[idx], e.total); s < best || (s == best && maxID < bestK) {
			best, bestK = s, maxID
		}
	}
	scan(seed)
	for idx := range racks {
		if idx == seed || lbs[idx] > best {
			continue
		}
		scan(idx)
	}
	return best, bestK
}

// MoveDelta returns the exact change in DC(C) a single-VM relocation p→q
// would cause, without mutating. Negative means the move improves the
// cluster.
func (e *DistanceEvaluator) MoveDelta(p, q topology.NodeID) float64 {
	after, _ := e.MovePreview(p, q)
	before, _ := e.Distance()
	return after - before
}

// PairwiseAffinity computes the all-pairs distance metric of the paper's
// experimental section in O(1) from the aggregate square sums: the number
// of unordered VM pairs at each tier is a difference of squared totals.
func (e *DistanceEvaluator) PairwiseAffinity() float64 {
	d := e.t.Distances()
	tot := e.total
	return d.SameNode*float64(e.ssNode-tot)/2 +
		d.SameRack*float64(e.ssRack-e.ssNode)/2 +
		d.CrossRack*float64(e.ssCloud-e.ssRack)/2 +
		d.CrossCloud*float64(tot*tot-e.ssCloud)/2
}

// PairwiseMoveDelta returns the exact change in PairwiseAffinity caused by
// relocating one VM from p to q, in O(1) and without mutating: only the
// square sums of the touched node/rack/cloud totals shift.
func (e *DistanceEvaluator) PairwiseMoveDelta(p, q topology.NodeID) float64 {
	if e.w[p] <= 0 {
		panic(fmt.Sprintf("affinity: PairwiseMoveDelta(%d, %d) from empty node", p, q))
	}
	if p == q {
		return 0
	}
	d := e.t.Distances()
	// (x−1)²−x² = 1−2x and (x+1)²−x² = 2x+1 at each aggregation level.
	dNode := 2*(e.w[q]-e.w[p]) + 2
	dRack, dCloud := 0, 0
	if rp, rq := e.t.RackOf(p), e.t.RackOf(q); rp != rq {
		dRack = 2*(e.rackW[rq]-e.rackW[rp]) + 2
	}
	if cp, cq := e.t.CloudOf(p), e.t.CloudOf(q); cp != cq {
		dCloud = 2*(e.cloudW[cq]-e.cloudW[cp]) + 2
	}
	return d.SameNode*float64(dNode)/2 +
		d.SameRack*float64(dRack-dNode)/2 +
		d.CrossRack*float64(dCloud-dRack)/2 +
		d.CrossCloud*float64(-dCloud)/2
}

// DistanceOf computes Definition 1 once for per-node VM totals w restricted
// to the hosting nodes hosts (any order; ties still break toward the lowest
// node ID). It is the one-shot path for short-lived candidate placements:
// the hosts are folded into rack/cloud aggregates and only rack-level bests
// are compared — O(hosts + racks) instead of the former O(hosts²).
func DistanceOf(t *topology.Topology, hosts []topology.NodeID, w []int) (float64, topology.NodeID) {
	if len(hosts) == 0 {
		return 0, -1
	}
	d := t.Distances()
	rackW := make([]int, t.Racks())
	cloudW := make([]int, t.Clouds())
	bestW := make([]int, t.Racks())
	bestID := make([]topology.NodeID, t.Racks())
	active := make([]int, 0, len(hosts))
	total := 0
	for _, h := range hosts {
		r := t.RackOf(h)
		wh := w[h]
		if rackW[r] == 0 {
			active = append(active, r)
			bestW[r], bestID[r] = wh, h
		} else if wh > bestW[r] || (wh == bestW[r] && h < bestID[r]) {
			bestW[r], bestID[r] = wh, h
		}
		rackW[r] += wh
		cloudW[t.CloudOf(h)] += wh
		total += wh
	}
	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	for _, r := range active {
		s := TierSum(d, bestW[r], rackW[r], cloudW[t.CloudOfRack(r)], total)
		if s < best || (s == best && bestID[r] < bestK) {
			best, bestK = s, bestID[r]
		}
	}
	return best, bestK
}
