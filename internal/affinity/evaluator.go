// Incremental evaluation of the paper's Definition 1. Every optimizer in
// this repo proposes single-VM moves and needs DC(C) after each candidate;
// recomputing it from the allocation matrix costs O(hosts²·m) per call.
// DistanceEvaluator instead caches the per-candidate-center weighted sums
//
//	S_k = Σ_i w_i · D_ik   (w_i = Σ_j C_ij, k over hosting nodes)
//
// and maintains them under Add/Remove/Move in O(hosts) time, so DC(C) is a
// single scan over the cached sums and a candidate move can be priced
// exactly — value and central node — without mutating anything.
//
// Exactness: with integer-valued distance tiers (the paper's 0/1/2/4) and
// integer VM counts, every S_k is an exactly representable float64, so the
// incremental values are bit-for-bit identical to Allocation.Distance no
// matter how many updates have been applied.
package affinity

import (
	"fmt"
	"math"
	"sort"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// DistanceEvaluator tracks one cluster's per-node VM totals and the cached
// center sums S_k. It mirrors an Allocation the caller mutates in lockstep
// (or stands alone when only node totals matter). Not safe for concurrent
// mutation; independent evaluators may be used from different goroutines.
type DistanceEvaluator struct {
	t     *topology.Topology
	w     []int              // VMs per node
	s     []float64          // S_k, valid only where w[k] > 0
	hosts []topology.NodeID  // ascending IDs of nodes with w > 0
	total int                // Σ w
}

// NewDistanceEvaluator builds an evaluator for allocation a (which may be
// nil for an initially empty cluster) on topology t. Cost: O(hosts·n) to
// seed the cached sums.
func NewDistanceEvaluator(t *topology.Topology, a Allocation) *DistanceEvaluator {
	e := &DistanceEvaluator{
		t: t,
		w: make([]int, t.Nodes()),
		s: make([]float64, t.Nodes()),
	}
	if a != nil {
		e.Reset(a)
	}
	return e
}

// Reset reloads the evaluator from allocation a, discarding all cached
// state.
func (e *DistanceEvaluator) Reset(a Allocation) {
	for i := range e.w {
		e.w[i] = 0
		e.s[i] = 0
	}
	e.hosts = e.hosts[:0]
	e.total = 0
	for i := range a {
		if v := model.Sum(a[i]); v > 0 {
			e.w[i] = v
			e.total += v
			e.hosts = append(e.hosts, topology.NodeID(i))
		}
	}
	for _, k := range e.hosts {
		e.s[k] = e.sumAt(e.t.DistanceRow(k))
	}
}

// sumAt computes Σ_h w_h · row[h] over the current hosts: the cached sum
// for the node whose distance row is given.
func (e *DistanceEvaluator) sumAt(row []float64) float64 {
	var sum float64
	for _, h := range e.hosts {
		sum += float64(e.w[h]) * row[h]
	}
	return sum
}

// VMsOnNode returns the tracked VM total of node i.
func (e *DistanceEvaluator) VMsOnNode(i topology.NodeID) int { return e.w[i] }

// TotalVMs returns the tracked cluster size.
func (e *DistanceEvaluator) TotalVMs() int { return e.total }

// HostingNodes returns the ascending IDs of nodes with at least one VM.
// The returned slice is the evaluator's working storage: read-only, valid
// until the next mutation.
func (e *DistanceEvaluator) HostingNodes() []topology.NodeID { return e.hosts }

// Add registers one more VM on node i in O(hosts).
func (e *DistanceEvaluator) Add(i topology.NodeID) { e.AddVMs(i, 1) }

// AddVMs registers count more VMs on node i in O(hosts).
func (e *DistanceEvaluator) AddVMs(i topology.NodeID, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("affinity: AddVMs(%d, %d) with non-positive count", i, count))
	}
	row := e.t.DistanceRow(i)
	newHost := e.w[i] == 0
	e.w[i] += count
	e.total += count
	for _, k := range e.hosts {
		e.s[k] += float64(count) * row[k]
	}
	if newHost {
		pos := sort.Search(len(e.hosts), func(x int) bool { return e.hosts[x] >= i })
		e.hosts = append(e.hosts, 0)
		copy(e.hosts[pos+1:], e.hosts[pos:])
		e.hosts[pos] = i
		e.s[i] = e.sumAt(row)
	}
}

// Remove deregisters one VM from node i in O(hosts). It panics when none
// is tracked there, which always indicates a desynchronized caller.
func (e *DistanceEvaluator) Remove(i topology.NodeID) {
	if e.w[i] <= 0 {
		panic(fmt.Sprintf("affinity: evaluator Remove(%d) on empty node", i))
	}
	row := e.t.DistanceRow(i)
	e.w[i]--
	e.total--
	if e.w[i] == 0 {
		pos := sort.Search(len(e.hosts), func(x int) bool { return e.hosts[x] >= i })
		e.hosts = append(e.hosts[:pos], e.hosts[pos+1:]...)
	}
	for _, k := range e.hosts {
		e.s[k] -= row[k]
	}
}

// Move relocates one VM from p to q in O(hosts).
func (e *DistanceEvaluator) Move(p, q topology.NodeID) {
	if p == q {
		return
	}
	e.Remove(p)
	e.Add(q)
}

// DistanceFrom returns the cached S_k for a hosting node k — the inner sum
// of Definition 1 before minimization. For non-hosting candidates it is
// computed on the fly in O(hosts).
func (e *DistanceEvaluator) DistanceFrom(k topology.NodeID) float64 {
	if e.w[k] > 0 {
		return e.s[k]
	}
	return e.sumAt(e.t.DistanceRow(k))
}

// Distance returns DC(C) per Definition 1 with the minimizing central
// node, scanning only the cached hosting sums. Ties break toward the
// lowest node ID, matching Allocation.Distance. An empty cluster has
// distance 0 and central node -1.
func (e *DistanceEvaluator) Distance() (float64, topology.NodeID) {
	if e.total == 0 {
		return 0, -1
	}
	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	for _, k := range e.hosts { // ascending: first strict minimum wins ties
		if e.s[k] < best {
			best, bestK = e.s[k], k
		}
	}
	return best, bestK
}

// MovePreview prices the hypothetical relocation of one VM from p to q:
// the exact DC(C) and central node the cluster would have after the move,
// computed in O(hosts) without mutating the evaluator. It panics when p
// hosts no VM. MovePreview(p, p) is the current Distance.
func (e *DistanceEvaluator) MovePreview(p, q topology.NodeID) (float64, topology.NodeID) {
	if e.w[p] <= 0 {
		panic(fmt.Sprintf("affinity: MovePreview(%d, %d) from empty node", p, q))
	}
	if p == q {
		return e.Distance()
	}
	rowP := e.t.DistanceRow(p)
	rowQ := e.t.DistanceRow(q)
	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	// Candidate centers are the post-move hosting nodes, visited in
	// ascending ID order so ties resolve exactly as a from-scratch scan.
	consider := func(k topology.NodeID, sk float64) {
		if d := sk - rowP[k] + rowQ[k]; d < best {
			best, bestK = d, k
		}
	}
	qSeen := e.w[q] > 0 // q already in hosts: handled by the loop below
	for _, k := range e.hosts {
		if !qSeen && k > q {
			consider(q, e.sumAt(rowQ))
			qSeen = true
		}
		if k == p && e.w[p] == 1 {
			continue // p stops hosting after the move
		}
		consider(k, e.s[k])
	}
	if !qSeen {
		consider(q, e.sumAt(rowQ))
	}
	return best, bestK
}

// MoveDelta returns the exact change in DC(C) a single-VM relocation p→q
// would cause, without mutating. Negative means the move improves the
// cluster.
func (e *DistanceEvaluator) MoveDelta(p, q topology.NodeID) float64 {
	after, _ := e.MovePreview(p, q)
	before, _ := e.Distance()
	return after - before
}

// PairwiseAffinity computes the all-pairs distance metric of the paper's
// experimental section from the cached node totals in O(hosts²) — no
// allocation-matrix scan.
func (e *DistanceEvaluator) PairwiseAffinity() float64 {
	sameNode := e.t.Distances().SameNode
	var sum float64
	for x := 0; x < len(e.hosts); x++ {
		hx := e.hosts[x]
		vx := e.w[hx]
		sum += float64(vx*(vx-1)/2) * sameNode
		row := e.t.DistanceRow(hx)
		for y := x + 1; y < len(e.hosts); y++ {
			hy := e.hosts[y]
			sum += float64(vx*e.w[hy]) * row[hy]
		}
	}
	return sum
}

// PairwiseMoveDelta returns the exact change in PairwiseAffinity caused by
// relocating one VM from p to q, in O(hosts) and without mutating. With
// weights w and same-node tier d0 the closed form is
//
//	Δ = Σ_{h∉{p,q}} w_h·(D_hq − D_hp) + (w_p − w_q − 1)·D_pq + d0·(w_q − w_p + 1)
func (e *DistanceEvaluator) PairwiseMoveDelta(p, q topology.NodeID) float64 {
	if e.w[p] <= 0 {
		panic(fmt.Sprintf("affinity: PairwiseMoveDelta(%d, %d) from empty node", p, q))
	}
	if p == q {
		return 0
	}
	rowP := e.t.DistanceRow(p)
	rowQ := e.t.DistanceRow(q)
	var delta float64
	for _, h := range e.hosts {
		if h == p || h == q {
			continue
		}
		delta += float64(e.w[h]) * (rowQ[h] - rowP[h])
	}
	wp, wq := e.w[p], e.w[q]
	delta += float64(wp-wq-1) * rowP[q]
	delta += e.t.Distances().SameNode * float64(wq-wp+1)
	return delta
}

// DistanceOf computes Definition 1 once for per-node VM totals w restricted
// to the hosting nodes hosts (any order; ties still break toward the lowest
// node ID). It is the one-shot path used by center scans that build many
// short-lived candidate placements: O(hosts²) with flattened distance rows,
// versus O(hosts·n·m) for Allocation.Distance on the full matrix.
func DistanceOf(t *topology.Topology, hosts []topology.NodeID, w []int) (float64, topology.NodeID) {
	if len(hosts) == 0 {
		return 0, -1
	}
	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	for _, k := range hosts {
		row := t.DistanceRow(k)
		var sum float64
		for _, i := range hosts {
			sum += float64(w[i]) * row[i]
		}
		if sum < best || (sum == best && k < bestK) {
			best, bestK = sum, k
		}
	}
	return best, bestK
}
