// Sparse allocation results. A dense Allocation is n×m regardless of how
// many nodes actually host VMs, which makes every placement at a
// 1M-node plant a multi-megabyte copy. The churn-steady-state path
// (place, commit, release) instead carries only the non-zero cells.
package affinity

import (
	"fmt"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// VMEntry is one non-zero allocation cell: Count VMs of type Type on
// node Node.
type VMEntry struct {
	Node  topology.NodeID
	Type  model.VMTypeID
	Count int
}

// SparseAlloc is the sparse form of the paper's allocation matrix C for
// one virtual cluster. Entries hold the non-zero cells; the order is
// deterministic for a given placement but otherwise unspecified. A
// SparseAlloc is reusable: Reset and refill it instead of reallocating,
// so steady-state placement stays allocation-free once the Entries
// backing array has grown to its working size.
type SparseAlloc struct {
	NumNodes int
	NumTypes int
	Entries  []VMEntry
}

// Reset clears the entries (retaining capacity) and records the shape.
//
//lint:hotpath
func (s *SparseAlloc) Reset(nodes, types int) {
	s.NumNodes = nodes
	s.NumTypes = types
	s.Entries = s.Entries[:0]
}

// Add appends one non-zero cell.
//
//lint:hotpath
func (s *SparseAlloc) Add(node topology.NodeID, vt model.VMTypeID, count int) {
	s.Entries = append(s.Entries, VMEntry{Node: node, Type: vt, Count: count})
}

// TotalVMs sums the entry counts.
func (s *SparseAlloc) TotalVMs() int {
	n := 0
	for _, e := range s.Entries {
		n += e.Count
	}
	return n
}

// ToDense materializes the equivalent dense Allocation.
func (s *SparseAlloc) ToDense() Allocation {
	a := NewAllocation(s.NumNodes, s.NumTypes)
	for _, e := range s.Entries {
		a[e.Node][e.Type] += e.Count
	}
	return a
}

// Validate checks shape bounds and entry positivity.
func (s *SparseAlloc) Validate() error {
	for _, e := range s.Entries {
		if int(e.Node) < 0 || int(e.Node) >= s.NumNodes {
			return fmt.Errorf("affinity: sparse entry node %d outside [0,%d)", e.Node, s.NumNodes)
		}
		if int(e.Type) < 0 || int(e.Type) >= s.NumTypes {
			return fmt.Errorf("affinity: sparse entry type %d outside [0,%d)", e.Type, s.NumTypes)
		}
		if e.Count <= 0 {
			return fmt.Errorf("affinity: sparse entry count %d at node %d type %d must be positive", e.Count, e.Node, e.Type)
		}
	}
	return nil
}
