package affinity_test

import (
	"fmt"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/topology"
)

// The paper's worked example (Section III.A): a request for 2 V1, 4 V2,
// and 1 V3 placed on a two-rack plant, evaluated with d1 = 1, d2 = 2.
func ExampleAllocation_Distance() {
	plant, _ := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	// Node 0 hosts 2 V1 + 2 V2, node 1 hosts 2 V2, node 2 (other rack)
	// hosts 1 V3 — the paper's DC1 allocation.
	alloc := affinity.Allocation{
		{2, 2, 0},
		{0, 2, 0},
		{0, 0, 1},
		{0, 0, 0},
	}
	dc, center := alloc.Distance(plant)
	fmt.Printf("DC = %.0f (2·d1 + d2), central node N%d\n", dc, center)
	// Output:
	// DC = 4 (2·d1 + d2), central node N0
}

func ExampleAllocation_PairwiseAffinity() {
	plant, _ := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	packed := affinity.Allocation{{4, 0}, {0, 0}, {0, 0}, {0, 0}}
	spread := affinity.Allocation{{1, 0}, {1, 0}, {1, 0}, {1, 0}}
	fmt.Printf("packed: %.0f, spread: %.0f\n",
		packed.PairwiseAffinity(plant), spread.PairwiseAffinity(plant))
	// Output:
	// packed: 0, spread: 10
}
