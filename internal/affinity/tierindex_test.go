package affinity

import (
	"math/rand"
	"testing"

	"affinitycluster/internal/topology"
)

func buildPlant(t *testing.T, spec [][]int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(topology.DefaultDistances())
	for _, racks := range spec {
		b.AddCloud()
		for _, nodes := range racks {
			b.AddRack()
			b.AddNodes(nodes)
		}
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func tierTestPlant(t *testing.T, rng *rand.Rand) *topology.Topology {
	t.Helper()
	clouds := 1 + rng.Intn(3)
	spec := make([][]int, clouds)
	for c := range spec {
		racks := 1 + rng.Intn(4)
		spec[c] = make([]int, racks)
		for r := range spec[c] {
			spec[c][r] = 1 + rng.Intn(5)
		}
	}
	return buildPlant(t, spec)
}

// TestTierIndexApplyMatchesRebuild hammers Apply/ApplyRow with random
// cell mutations — including row zeroing and restore, the FailNode /
// RestoreNode shapes — and checks every aggregate against a fresh
// rebuild after each step.
func TestTierIndexApplyMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		topo := tierTestPlant(t, rng)
		n := topo.Nodes()
		m := 1 + rng.Intn(3)
		l := make([][]int, n)
		for i := range l {
			l[i] = make([]int, m)
			for j := range l[i] {
				l[i][j] = rng.Intn(6)
			}
		}
		idx, err := NewTierIndex(topo, l)
		if err != nil {
			t.Fatalf("trial %d: NewTierIndex: %v", trial, err)
		}
		saved := make([]int, m)
		deltas := make([]int, m)
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0, 1: // single-cell mutation, both signs
				i := topology.NodeID(rng.Intn(n))
				j := rng.Intn(m)
				d := rng.Intn(5) - 2
				if l[i][j]+d < 0 {
					d = -l[i][j]
				}
				l[i][j] += d
				idx.Apply(i, j, d)
			case 2: // zero a row (FailNode shape)
				i := topology.NodeID(rng.Intn(n))
				for j := 0; j < m; j++ {
					saved[j] = l[i][j]
					deltas[j] = -l[i][j]
					l[i][j] = 0
				}
				idx.ApplyRow(i, deltas)
			case 3: // restore a row to random values (RestoreNode shape)
				i := topology.NodeID(rng.Intn(n))
				for j := 0; j < m; j++ {
					nv := rng.Intn(6)
					deltas[j] = nv - l[i][j]
					l[i][j] = nv
				}
				idx.ApplyRow(i, deltas)
			}
			if err := idx.CheckConsistent(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
		_ = saved
	}
}

// TestTierIndexViews spot-checks the accessor views against direct
// recomputation on a fixed plant.
func TestTierIndexViews(t *testing.T) {
	topo := buildPlant(t, [][]int{{2, 3}, {4}})
	l := [][]int{
		{1, 0}, {2, 5}, // rack 0 (cloud 0)
		{0, 0}, {3, 1}, {0, 2}, // rack 1 (cloud 0)
		{7, 7}, {1, 1}, {0, 4}, {2, 2}, // rack 2 (cloud 1)
	}
	idx, err := NewTierIndex(topo, l)
	if err != nil {
		t.Fatalf("NewTierIndex: %v", err)
	}
	if got := idx.Avail(); got[0] != 16 || got[1] != 22 {
		t.Fatalf("Avail = %v", got)
	}
	if got := idx.RackRemain(1); got[0] != 3 || got[1] != 3 {
		t.Fatalf("RackRemain(1) = %v", got)
	}
	if got := idx.CloudRemain(1); got[0] != 10 || got[1] != 14 {
		t.Fatalf("CloudRemain(1) = %v", got)
	}
	if got := idx.RackMaxCol(0); got[0] != 2 || got[1] != 5 {
		t.Fatalf("RackMaxCol(0) = %v", got)
	}
	if got := idx.RackMaxTotal(2); got != 14 {
		t.Fatalf("RackMaxTotal(2) = %d", got)
	}
	if got := idx.RackTotalSum(2); got != 24 {
		t.Fatalf("RackTotalSum(2) = %d", got)
	}
	if got := idx.CloudMaxNodeTotal(0); got != 7 {
		t.Fatalf("CloudMaxNodeTotal(0) = %d", got)
	}
	if got := idx.CloudMaxRackSum(0); got != 8 {
		t.Fatalf("CloudMaxRackSum(0) = %d", got)
	}
	if got := idx.NodeTotal(4); got != 2 {
		t.Fatalf("NodeTotal(4) = %d", got)
	}
	idx.SetVersion(9)
	if idx.Version() != 9 {
		t.Fatalf("Version = %d", idx.Version())
	}
}

// TestSparseAllocRoundTrip checks the sparse form densifies correctly
// and validates its bounds.
func TestSparseAllocRoundTrip(t *testing.T) {
	var s SparseAlloc
	s.Reset(4, 2)
	s.Add(1, 0, 3)
	s.Add(1, 1, 1)
	s.Add(3, 0, 2)
	if s.TotalVMs() != 6 {
		t.Fatalf("TotalVMs = %d", s.TotalVMs())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d := s.ToDense()
	if d[1][0] != 3 || d[1][1] != 1 || d[3][0] != 2 || d[0][0] != 0 {
		t.Fatalf("ToDense = %v", d)
	}
	s.Add(9, 0, 1)
	if err := s.Validate(); err == nil {
		t.Fatalf("Validate accepted out-of-range node")
	}
	s.Reset(4, 2)
	if len(s.Entries) != 0 || s.NumNodes != 4 {
		t.Fatalf("Reset left %d entries", len(s.Entries))
	}
}
