package affinity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// twoRackPlant builds the Fig. 1 style plant: rack 0 holds nodes 0 and 1,
// rack 1 holds nodes 2 and 3, with the paper's experimental distances
// d0=0, d1=1, d2=2.
func twoRackPlant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestPaperWorkedExample(t *testing.T) {
	// Reproduces the DC computations below Definition 2: a request for
	// 2×V1, 4×V2, 1×V3 placed on a two-rack plant, evaluated with
	// d1 = SameRack, d2 = CrossRack. The paper reports allocations with
	// DC = 2d1+d2, 2d2, and d1+2d2.
	tp := twoRackPlant(t)
	d1 := tp.Distances().SameRack
	d2 := tp.Distances().CrossRack

	cases := []struct {
		name    string
		alloc   Allocation
		want    float64
		wantCtr topology.NodeID
	}{
		{
			// DC1: N0 gets 2 V1 + 2 V2, N1 gets 2 V2, N2 gets 1 V3.
			name:    "DC1 = 2d1 + d2",
			alloc:   Allocation{{2, 2, 0}, {0, 2, 0}, {0, 0, 1}, {0, 0, 0}},
			want:    2*d1 + d2,
			wantCtr: 0,
		},
		{
			// DC3: N0 gets 2 V1 + 3 V2, N2 gets 1 V2 + 1 V3.
			name:    "DC3 = 2d2",
			alloc:   Allocation{{2, 3, 0}, {0, 0, 0}, {0, 1, 1}, {0, 0, 0}},
			want:    2 * d2,
			wantCtr: 0,
		},
		{
			// DC4: N0 gets 2 V1 + 2 V2, N1 gets 1 V2, N2 gets 1 V2 + 1 V3.
			name:    "DC4 = d1 + 2d2",
			alloc:   Allocation{{2, 2, 0}, {0, 1, 0}, {0, 1, 1}, {0, 0, 0}},
			want:    d1 + 2*d2,
			wantCtr: 0,
		},
	}
	req := model.Request{2, 4, 1}
	for _, c := range cases {
		if !c.alloc.Satisfies(req) {
			t.Fatalf("%s: allocation does not satisfy request %v", c.name, req)
		}
		got, ctr := c.alloc.Distance(tp)
		if got != c.want {
			t.Errorf("%s: DC = %v, want %v", c.name, got, c.want)
		}
		if ctr != c.wantCtr {
			t.Errorf("%s: central node = %d, want %d", c.name, ctr, c.wantCtr)
		}
	}
}

func TestEmptyAllocation(t *testing.T) {
	tp := twoRackPlant(t)
	a := NewAllocation(4, 3)
	if !a.IsEmpty() {
		t.Error("new allocation not empty")
	}
	d, k := a.Distance(tp)
	if d != 0 || k != -1 {
		t.Errorf("empty Distance = (%v, %d), want (0, -1)", d, k)
	}
	if a.PairwiseAffinity(tp) != 0 {
		t.Error("empty PairwiseAffinity != 0")
	}
	if a.String() != "(empty)" {
		t.Errorf("String() = %q", a.String())
	}
}

func TestVectorSatisfiesFits(t *testing.T) {
	a := Allocation{{1, 2}, {0, 1}}
	v := a.Vector()
	if v[0] != 1 || v[1] != 3 {
		t.Errorf("Vector = %v", v)
	}
	if !a.Satisfies(model.Request{1, 3}) {
		t.Error("Satisfies false for exact match")
	}
	if a.Satisfies(model.Request{1, 2}) {
		t.Error("Satisfies true for mismatch")
	}
	if a.Satisfies(model.Request{1}) {
		t.Error("Satisfies true for wrong length")
	}
	if !a.Fits([][]int{{1, 2}, {1, 1}}) {
		t.Error("Fits false for fitting capacity")
	}
	if a.Fits([][]int{{1, 1}, {1, 1}}) {
		t.Error("Fits true for exceeded capacity")
	}
	if a.Fits([][]int{{1, 2}}) {
		t.Error("Fits true for wrong shape")
	}
	if err := a.Validate(model.Request{1, 3}, [][]int{{1, 2}, {1, 1}}); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := a.Validate(model.Request{9, 9}, [][]int{{1, 2}, {1, 1}}); err == nil {
		t.Error("Validate accepted wrong vector")
	}
	if err := a.Validate(model.Request{1, 3}, [][]int{{0, 0}, {0, 0}}); err == nil {
		t.Error("Validate accepted capacity violation")
	}
}

func TestAddRemove(t *testing.T) {
	a := NewAllocation(2, 2)
	a.Add(1, 0)
	if a[1][0] != 1 {
		t.Error("Add failed")
	}
	a.Remove(1, 0)
	if a[1][0] != 0 {
		t.Error("Remove failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Remove on empty cell did not panic")
		}
	}()
	a.Remove(1, 0)
}

func TestSparseRoundTrip(t *testing.T) {
	a := Allocation{{0, 2, 0}, {0, 0, 0}, {1, 0, 3}}
	ents := a.Sparse()
	want := []VMEntry{{Node: 0, Type: 1, Count: 2}, {Node: 2, Type: 0, Count: 1}, {Node: 2, Type: 2, Count: 3}}
	if len(ents) != len(want) {
		t.Fatalf("Sparse() = %v, want %v", ents, want)
	}
	for i := range want {
		if ents[i] != want[i] {
			t.Fatalf("Sparse()[%d] = %v, want %v", i, ents[i], want[i])
		}
	}
	sp := SparseAlloc{NumNodes: 3, NumTypes: 3, Entries: ents}
	back := sp.ToDense()
	for i := range a {
		for j := range a[i] {
			if back[i][j] != a[i][j] {
				t.Fatalf("round trip mismatch at (%d,%d): %d vs %d", i, j, back[i][j], a[i][j])
			}
		}
	}
	if got := NewAllocation(2, 2).Sparse(); got != nil {
		t.Fatalf("Sparse() of empty allocation = %v, want nil", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Allocation{{1, 2}, {3, 4}}
	b := a.Clone()
	b[0][0] = 99
	if a[0][0] != 1 {
		t.Error("Clone aliases")
	}
}

func TestHostingNodes(t *testing.T) {
	a := Allocation{{0, 0}, {1, 0}, {0, 0}, {0, 2}}
	hosts := a.HostingNodes()
	if len(hosts) != 2 || hosts[0] != 1 || hosts[1] != 3 {
		t.Errorf("HostingNodes = %v", hosts)
	}
	if a.TotalVMs() != 3 {
		t.Errorf("TotalVMs = %d", a.TotalVMs())
	}
	if a.VMsOnNode(3) != 2 {
		t.Errorf("VMsOnNode(3) = %d", a.VMsOnNode(3))
	}
}

// randomAllocation builds a random allocation on the plant with ~total VMs.
func randomAllocation(r *rand.Rand, n, m, total int) Allocation {
	a := NewAllocation(n, m)
	for v := 0; v < total; v++ {
		a[r.Intn(n)][r.Intn(m)]++
	}
	return a
}

// Property: the minimum of DistanceFrom over ALL nodes equals Distance,
// which only scans hosting nodes — validating the optimization argument in
// the Distance doc comment.
func TestQuickDistanceMinAttainedAtHostingNode(t *testing.T) {
	tp, err := topology.Uniform(2, 3, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAllocation(r, tp.Nodes(), 3, 1+r.Intn(12))
		got, _ := a.Distance(tp)
		best := math.Inf(1)
		for k := 0; k < tp.Nodes(); k++ {
			if d := a.DistanceFrom(tp, topology.NodeID(k)); d < best {
				best = d
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 1): moving one VM from node p to a node q closer to the
// fixed center changes the center-fixed distance by exactly D_qk − D_pk,
// and therefore strictly decreases it when D_qk < D_pk.
func TestQuickTheorem1Exchange(t *testing.T) {
	tp, err := topology.Uniform(1, 3, 5, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAllocation(r, tp.Nodes(), 2, 2+r.Intn(10))
		hosts := a.HostingNodes()
		p := hosts[r.Intn(len(hosts))]
		// Find a type present on p.
		var vt model.VMTypeID = -1
		for j, c := range a[p] {
			if c > 0 {
				vt = model.VMTypeID(j)
				break
			}
		}
		q := topology.NodeID(r.Intn(tp.Nodes()))
		k := topology.NodeID(r.Intn(tp.Nodes()))
		before := a.DistanceFrom(tp, k)
		b := a.Clone()
		b.Remove(p, vt)
		b.Add(q, vt)
		after := b.DistanceFrom(tp, k)
		delta := MoveDelta(tp, k, p, q)
		if math.Abs((after-before)-delta) > 1e-9 {
			return false
		}
		if tp.Distance(q, k) < tp.Distance(p, k) && after >= before {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DC(C) is invariant under relabeling VM types — only the
// per-node VM counts matter.
func TestQuickDistanceTypeInvariance(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 5, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAllocation(r, tp.Nodes(), 3, 1+r.Intn(10))
		// Collapse all types to type 0.
		b := NewAllocation(tp.Nodes(), 3)
		for i := range a {
			b[i][0] = model.Sum(a[i])
		}
		da, _ := a.Distance(tp)
		db, _ := b.Distance(tp)
		return da == db && a.PairwiseAffinity(tp) == b.PairwiseAffinity(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseAffinity(t *testing.T) {
	tp := twoRackPlant(t)
	// 2 VMs on node 0, 1 on node 1 (same rack), 1 on node 2 (other rack).
	a := Allocation{{2, 0, 0}, {1, 0, 0}, {1, 0, 0}, {0, 0, 0}}
	// Pairs: within node 0: 1 pair × 0. (n0,n1): 2×1×d1. (n0,n2): 2×1×d2.
	// (n1,n2): 1×1×d2.
	d := tp.Distances()
	want := 2*d.SameRack + 2*d.CrossRack + 1*d.CrossRack
	if got := a.PairwiseAffinity(tp); got != want {
		t.Errorf("PairwiseAffinity = %v, want %v", got, want)
	}
}

func TestPairwiseAffinityPackedIsMinimal(t *testing.T) {
	// Packing all VMs on one node gives affinity 0 with SameNode = 0; any
	// spread strictly increases it.
	tp := twoRackPlant(t)
	packed := Allocation{{4, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	if got := packed.PairwiseAffinity(tp); got != 0 {
		t.Errorf("packed affinity = %v, want 0", got)
	}
	spread := Allocation{{1, 0, 0}, {1, 0, 0}, {1, 0, 0}, {1, 0, 0}}
	if got := spread.PairwiseAffinity(tp); got <= 0 {
		t.Errorf("spread affinity = %v, want > 0", got)
	}
}

func TestStringRendering(t *testing.T) {
	a := Allocation{{1, 0}, {0, 0}, {0, 2}}
	if got := a.String(); got != "n0:[1 0] n2:[0 2]" {
		t.Errorf("String() = %q", got)
	}
}
