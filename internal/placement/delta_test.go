package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// deltaPlant is a fixed 2-cloud plant for the targeted delta tests.
func deltaPlant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(2, 3, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// randomRequest draws a per-type demand with at least one VM.
func randomRequest(rng *rand.Rand, m, scale int) model.Request {
	r := make(model.Request, m)
	total := 0
	for j := range r {
		r[j] = rng.Intn(scale)
		total += r[j]
	}
	if total == 0 {
		r[rng.Intn(m)] = 1
	}
	return r
}

// TestPlaceDeltaEmptyEqualsPlace: growing an empty cluster IS placing —
// PlaceDelta must reproduce Place bit for bit, center scan included.
func TestPlaceDeltaEmptyEqualsPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		tp := randomPlant(t, rng)
		n := tp.Nodes()
		m := 1 + rng.Intn(3)
		work := make([][]int, n)
		for i := range work {
			work[i] = make([]int, m)
			for j := range work[i] {
				work[i][j] = rng.Intn(4)
			}
		}
		h := &OnlineHeuristic{Policy: ScanAllCenters}
		r := randomRequest(rng, m, n)
		want, wantErr := h.Place(tp, work, r)
		empty := affinity.NewAllocation(n, m)
		entries, _, _, gotErr := h.PlaceDelta(tp, work, empty, r)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: PlaceDelta err %v, Place err %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		got := affinity.NewAllocation(n, m)
		for _, e := range entries {
			got[e.Node][e.Type] += e.Count
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: empty-cluster PlaceDelta differs from Place\ngot  %v\nwant %v", trial, got, want)
		}
		if !reflect.DeepEqual(empty, want) {
			t.Fatalf("trial %d: PlaceDelta did not extend alloc in place", trial)
		}
	}
}

// TestPlaceDeltaLockstepOracleProperty grows random clusters step by
// step and checks each delta against the dense reference: the greedy
// fill (buildBuffer.buildAround) of the delta around the cluster's
// current central node, with the merged DC/center recomputed from
// scratch. Entries, DC and center must match exactly — the
// tier-aggregated delta path must be invisible next to a full dense
// re-placement of the delta.
func TestPlaceDeltaLockstepOracleProperty(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		tp := randomPlant(t, rng)
		n := tp.Nodes()
		m := 1 + rng.Intn(3)
		work := make([][]int, n)
		for i := range work {
			work[i] = make([]int, m)
			for j := range work[i] {
				work[i][j] = rng.Intn(5)
			}
		}
		h := &OnlineHeuristic{Policy: ScanAllCenters}
		seed := randomRequest(rng, m, n/2+1)
		cluster, err := h.Place(tp, work, seed)
		if err != nil {
			continue
		}
		for i := range cluster {
			for j, k := range cluster[i] {
				work[i][j] -= k
			}
		}
		for step := 0; step < 8; step++ {
			delta := randomRequest(rng, m, 4)
			// Oracle: fill delta around the cluster's current center on a
			// private copy, merge, and rescore from scratch.
			_, center0 := cluster.Distance(tp)
			buf := newBuildBuffer(n, m)
			okOracle := buf.buildAround(tp, work, delta, center0)
			oracleDelta := buf.alloc.Clone()
			merged := cluster.Clone()
			for i := range oracleDelta {
				for j, k := range oracleDelta[i] {
					merged[i][j] += k
				}
			}
			wantDC, wantK := merged.Distance(tp)

			before := cluster.Clone()
			entries, dc, k, err := h.PlaceDelta(tp, work, cluster, delta)
			if err != nil {
				if okOracle {
					t.Fatalf("trial %d step %d: PlaceDelta failed (%v) where oracle built", trial, step, err)
				}
				if !reflect.DeepEqual(cluster, before) {
					t.Fatalf("trial %d step %d: failed PlaceDelta mutated the cluster", trial, step)
				}
				break
			}
			gotDelta := affinity.NewAllocation(n, m)
			for _, e := range entries {
				gotDelta[e.Node][e.Type] += e.Count
			}
			if !reflect.DeepEqual(gotDelta, oracleDelta) {
				t.Fatalf("trial %d step %d: delta build differs from dense oracle around center %d\ngot  %v\nwant %v\ndelta %v",
					trial, step, center0, gotDelta, oracleDelta, delta)
			}
			if dc != wantDC || k != wantK {
				t.Fatalf("trial %d step %d: merged score (%v, %d), scratch (%v, %d)", trial, step, dc, k, wantDC, wantK)
			}
			if !reflect.DeepEqual(cluster, merged) {
				t.Fatalf("trial %d step %d: in-place extension diverged from merge", trial, step)
			}
			for _, e := range entries {
				work[e.Node][e.Type] -= e.Count
			}
		}
	}
}

// TestReleaseSubsetGreedyVictims: for a single-VM shrink the greedy
// victim must be exactly the argmin over all possible removals, and any
// shrink must conserve the per-type vector while leaving victims that
// were really part of the cluster.
func TestReleaseSubsetGreedyVictims(t *testing.T) {
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		tp := randomPlant(t, rng)
		n := tp.Nodes()
		m := 1 + rng.Intn(3)
		a := affinity.NewAllocation(n, m)
		for v := 0; v < 6+rng.Intn(12); v++ {
			a.Add(topology.NodeID(rng.Intn(n)), model.VMTypeID(rng.Intn(m)))
		}
		// Brute force the best single removal of the lowest type with stock.
		j := 0
		for ; j < m; j++ {
			if a.Vector()[j] > 0 {
				break
			}
		}
		bestDC := -1.0
		bestNode := topology.NodeID(-1)
		for i := 0; i < n; i++ {
			if a[i][j] == 0 {
				continue
			}
			a.Remove(topology.NodeID(i), model.VMTypeID(j))
			dc, _ := a.Distance(tp)
			a.Add(topology.NodeID(i), model.VMTypeID(j))
			if bestNode < 0 || dc < bestDC {
				bestDC, bestNode = dc, topology.NodeID(i)
			}
		}
		delta := make(model.Request, m)
		delta[j] = 1
		got := a.Clone()
		victims, err := ReleaseSubset(tp, got, delta)
		if err != nil {
			t.Fatalf("trial %d: ReleaseSubset: %v", trial, err)
		}
		if len(victims) != 1 || victims[0].Count != 1 || victims[0].Type != model.VMTypeID(j) {
			t.Fatalf("trial %d: single-VM shrink returned %v", trial, victims)
		}
		gotDC, _ := got.Distance(tp)
		if gotDC != bestDC {
			t.Fatalf("trial %d: greedy victim %v leaves DC %v, best single removal (node %d) leaves %v",
				trial, victims, gotDC, bestNode, bestDC)
		}
	}
}

// TestReleaseSubsetConservesAndConcentrates: a multi-VM shrink returns
// exactly the per-type delta, and on a cluster straddling two racks it
// gives back the straggler VMs first, collapsing DC to the one-rack
// optimum.
func TestReleaseSubsetConservesAndConcentrates(t *testing.T) {
	tp := deltaPlant(t)
	a := affinity.NewAllocation(tp.Nodes(), 1)
	// 6 VMs on rack 0 (nodes 0, 1), 2 stragglers on rack 1 (node 4) and
	// rack 2 (node 8).
	a[0][0] = 4
	a[1][0] = 2
	a[4][0] = 1
	a[8][0] = 1
	victims, err := ReleaseSubset(tp, a, model.Request{2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range victims {
		total += v.Count
		if v.Node != 4 && v.Node != 8 {
			t.Errorf("shrink victimized core node %d instead of a straggler", v.Node)
		}
	}
	if total != 2 {
		t.Fatalf("shrink returned %d VMs, want 2", total)
	}
	if a.TotalVMs() != 6 {
		t.Fatalf("cluster holds %d VMs after shrink, want 6", a.TotalVMs())
	}
	dc, k := a.Distance(tp)
	if want := 2 * tp.Distances().SameRack; dc != want || k != 0 {
		t.Fatalf("post-shrink DC (%v, %d), want (%v, 0)", dc, k, want)
	}
	// Infeasible shrink: asks back more than the cluster holds.
	if _, err := ReleaseSubset(tp, a, model.Request{7}); err == nil {
		t.Fatal("oversized shrink accepted")
	}
}

// TestReleaseSubsetDoesNotAlias: the victims slice aliases neither the
// caller's entry slice nor anything that changes under later calls —
// mutating it must not perturb the inputs or a repeat run.
func TestReleaseSubsetDoesNotAlias(t *testing.T) {
	tp := deltaPlant(t)
	a := affinity.NewAllocation(tp.Nodes(), 2)
	a[0][0], a[0][1], a[5][0], a[9][1] = 2, 1, 1, 1
	cur := a.Sparse()
	curCopy := append([]affinity.VMEntry(nil), cur...)
	victims, err := ReleaseSubsetSparse(tp, cur, model.Request{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range victims {
		victims[i] = affinity.VMEntry{Node: -99, Type: -99, Count: -99}
	}
	if !reflect.DeepEqual(cur, curCopy) {
		t.Fatal("mutating victims changed the caller's entries; slices alias")
	}
	again, err := ReleaseSubsetSparse(tp, cur, model.Request{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range again {
		if v.Count <= 0 || v.Node < 0 {
			t.Fatalf("repeat run returned poisoned entry %v; internal state aliased", v)
		}
	}
}

// TestDeltaChurnTierIndexLockstep is the grow/shrink churn property test
// of the shrink-path audit: PlaceDeltaSparse, ReleaseSubsetSparse and
// FailNode interleave against a live inventory with an attached tier
// index, and after every mutation the index must agree with a from-
// scratch rebuild (CheckConsistent) and the inventory's conservation
// identities must hold. Tracked cluster state is kept in caller-owned
// entry slices, so any aliasing between the release path and the index
// would surface as divergence.
func TestDeltaChurnTierIndexLockstep(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7700 + trial)))
		tp := deltaPlant(t)
		n := tp.Nodes()
		const m = 2
		caps := make([][]int, n)
		for i := range caps {
			caps[i] = []int{2 + rng.Intn(3), 2 + rng.Intn(3)}
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			t.Fatal(err)
		}
		tidx, err := inv.AttachTierIndex(tp)
		if err != nil {
			t.Fatal(err)
		}
		h := &OnlineHeuristic{Policy: ScanAllCenters}
		var sp affinity.SparseAlloc
		type cluster struct{ entries []affinity.VMEntry }
		var clusters []*cluster
		failed := []topology.NodeID{}

		check := func(op string, step int) {
			t.Helper()
			if err := tidx.CheckConsistent(); err != nil {
				t.Fatalf("trial %d step %d after %s: tier index inconsistent: %v", trial, step, op, err)
			}
			if err := inv.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d after %s: inventory invariants: %v", trial, step, op, err)
			}
		}

		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // place a new cluster
				r := randomRequest(rng, m, 3)
				if _, _, err := h.PlaceSparse(tidx, r, &sp); err != nil {
					continue
				}
				entries := append([]affinity.VMEntry(nil), sp.Entries...)
				if err := inv.AllocateList(entries); err != nil {
					t.Fatalf("trial %d step %d: commit: %v", trial, step, err)
				}
				clusters = append(clusters, &cluster{entries: entries})
				check("place", step)
			case op < 6 && len(clusters) > 0: // grow one
				c := clusters[rng.Intn(len(clusters))]
				delta := randomRequest(rng, m, 2)
				dc, _, err := h.PlaceDeltaSparse(tidx, c.entries, delta, &sp)
				if err != nil {
					continue
				}
				grown := append([]affinity.VMEntry(nil), sp.Entries...)
				if err := inv.AllocateList(grown); err != nil {
					t.Fatalf("trial %d step %d: grow commit: %v", trial, step, err)
				}
				c.entries = append(c.entries, grown...)
				// The returned DC must price the merged cluster exactly.
				dense := affinity.NewAllocation(n, m)
				for _, e := range c.entries {
					dense[e.Node][e.Type] += e.Count
				}
				if want, _ := dense.Distance(tp); dc != want {
					t.Fatalf("trial %d step %d: grow DC %v, dense %v", trial, step, dc, want)
				}
				check("grow", step)
			case op < 8 && len(clusters) > 0: // shrink one
				ci := rng.Intn(len(clusters))
				c := clusters[ci]
				vec := make(model.Request, m)
				for _, e := range c.entries {
					vec[e.Type] += e.Count
				}
				delta := make(model.Request, m)
				some := false
				for j := range delta {
					if vec[j] > 0 {
						delta[j] = rng.Intn(vec[j] + 1)
						some = some || delta[j] > 0
					}
				}
				if !some {
					continue
				}
				victims, err := ReleaseSubsetSparse(tp, c.entries, delta)
				if err != nil {
					t.Fatalf("trial %d step %d: shrink: %v", trial, step, err)
				}
				if err := inv.ReleaseList(victims); err != nil {
					t.Fatalf("trial %d step %d: shrink release: %v", trial, step, err)
				}
				// Rebuild the tracked entries minus the victims.
				dense := affinity.NewAllocation(n, m)
				for _, e := range c.entries {
					dense[e.Node][e.Type] += e.Count
				}
				for _, v := range victims {
					dense[v.Node][v.Type] -= v.Count
					if dense[v.Node][v.Type] < 0 {
						t.Fatalf("trial %d step %d: victim %v exceeds cluster", trial, step, v)
					}
				}
				c.entries = dense.Sparse()
				if len(c.entries) == 0 {
					clusters = append(clusters[:ci], clusters[ci+1:]...)
				}
				check("shrink", step)
			case op == 8 && len(failed) < 3: // fail a node
				id := topology.NodeID(rng.Intn(n))
				lost, err := inv.FailNode(id)
				if err != nil {
					continue
				}
				failed = append(failed, id)
				_ = lost
				// Crashed VMs vanish from their clusters, like cloudsim's
				// degrade step.
				for ci := 0; ci < len(clusters); {
					c := clusters[ci]
					kept := c.entries[:0]
					for _, e := range c.entries {
						if e.Node != id {
							kept = append(kept, e)
						}
					}
					c.entries = kept
					if len(c.entries) == 0 {
						clusters = append(clusters[:ci], clusters[ci+1:]...)
						continue
					}
					ci++
				}
				check("fail", step)
			default: // repair
				if len(failed) == 0 {
					continue
				}
				id := failed[len(failed)-1]
				failed = failed[:len(failed)-1]
				if err := inv.RestoreNode(id); err != nil {
					t.Fatalf("trial %d step %d: restore: %v", trial, step, err)
				}
				check("restore", step)
			}
		}
		// Drain everything; the plant must come back fully free.
		for _, c := range clusters {
			if err := inv.ReleaseList(c.entries); err != nil {
				t.Fatalf("trial %d: final release: %v", trial, err)
			}
		}
		check("drain", -1)
	}
}

// TestPlaceDeltaZeroAllocs pins the hot-path contract: once the scratch
// and destination have reached working size, a grow/release cycle
// allocates nothing.
func TestPlaceDeltaZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate skipped under -race (instrumentation allocates)")
	}
	tp := deltaPlant(t)
	n := tp.Nodes()
	caps := make([][]int, n)
	for i := range caps {
		caps[i] = []int{4, 4}
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		t.Fatal(err)
	}
	tidx, err := inv.AttachTierIndex(tp)
	if err != nil {
		t.Fatal(err)
	}
	h := &OnlineHeuristic{Policy: ScanAllCenters}
	var sp, base affinity.SparseAlloc
	if _, _, err := h.PlaceSparse(tidx, model.Request{6, 3}, &base); err != nil {
		t.Fatal(err)
	}
	if err := inv.AllocateList(base.Entries); err != nil {
		t.Fatal(err)
	}
	delta := model.Request{3, 2}
	cycle := func() {
		if _, _, err := h.PlaceDeltaSparse(tidx, base.Entries, delta, &sp); err != nil {
			t.Fatal(err)
		}
		if err := inv.AllocateList(sp.Entries); err != nil {
			t.Fatal(err)
		}
		if err := inv.ReleaseList(sp.Entries); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the pools
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("PlaceDeltaSparse steady state allocates %.2f allocs/op, want 0", avg)
	}
}
