package placement

import (
	"math/rand"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// FuzzPlaceRequest drives Algorithm 1 with arbitrary plant shapes,
// capacity matrices, and requests. Invariants (DESIGN.md §10): Place
// never panics, never mutates the capacity snapshot L, and every
// successful allocation (a) satisfies the request within L, and (b) has a
// DC(C) on which the tier-aggregated DistanceEvaluator and the plain
// row-scan oracle Allocation.DistanceFrom agree exactly, including the
// lowest-ID center tie-break.
func FuzzPlaceRequest(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(3), uint8(10), uint8(4), []byte{3, 2})
	f.Add(int64(7), uint8(2), uint8(2), uint8(3), uint8(6), []byte{1, 0, 5})
	f.Add(int64(42), uint8(3), uint8(4), uint8(5), uint8(1), []byte{9})
	f.Add(int64(0), uint8(1), uint8(1), uint8(1), uint8(2), []byte{0, 0})

	f.Fuzz(func(t *testing.T, seed int64, clouds, racksPer, nodesPer, capMax uint8, reqBytes []byte) {
		nc := 1 + int(clouds)%3
		nr := 1 + int(racksPer)%4
		nn := 1 + int(nodesPer)%5
		tp, err := topology.Uniform(nc, nr, nn, topology.DefaultDistances())
		if err != nil {
			t.Fatalf("Uniform(%d,%d,%d): %v", nc, nr, nn, err)
		}
		n := tp.Nodes()
		if len(reqBytes) == 0 {
			reqBytes = []byte{0}
		}
		if len(reqBytes) > 4 {
			reqBytes = reqBytes[:4]
		}
		m := len(reqBytes)
		r := make(model.Request, m)
		for j, b := range reqBytes {
			r[j] = int(b % 11)
		}
		rng := rand.New(rand.NewSource(seed))
		l := make([][]int, n)
		snapshot := make([][]int, n)
		for i := range l {
			l[i] = make([]int, m)
			snapshot[i] = make([]int, m)
			for j := range l[i] {
				l[i][j] = rng.Intn(1 + int(capMax)%8)
				snapshot[i][j] = l[i][j]
			}
		}

		h := &OnlineHeuristic{Rand: rand.New(rand.NewSource(seed))}
		alloc, err := h.Place(tp, l, r)

		// L is a read-only snapshot in all outcomes.
		for i := range l {
			for j := range l[i] {
				if l[i][j] != snapshot[i][j] {
					t.Fatalf("Place mutated L[%d][%d]: %d -> %d", i, j, snapshot[i][j], l[i][j])
				}
			}
		}
		if err != nil {
			return // infeasible or rejected: acceptable
		}
		// (a) The allocation satisfies r without exceeding any L_ij.
		if verr := alloc.Validate(r, l); verr != nil {
			t.Fatalf("accepted allocation violates capacity/request: %v\nalloc %v\nreq %v", verr, alloc, r)
		}
		// (b) Tier-aggregated evaluator vs row-scan oracle. The DC(C)
		// value is Definition 1's minimum over every candidate center;
		// the reported center tie-breaks toward the lowest ID among
		// hosting nodes (where the minimum is always attained).
		ev := affinity.NewDistanceEvaluator(tp, alloc)
		bestD := 0.0
		for k := 0; k < n; k++ {
			id := topology.NodeID(k)
			oracle := alloc.DistanceFrom(tp, id)
			if got := ev.DistanceFrom(id); got != oracle {
				t.Fatalf("DistanceFrom(%d) = %v, row-scan oracle %v\nalloc %v", k, got, oracle, alloc)
			}
			if k == 0 || oracle < bestD {
				bestD = oracle
			}
		}
		bestK := topology.NodeID(-1)
		for _, id := range alloc.HostingNodes() {
			if alloc.DistanceFrom(tp, id) == bestD {
				bestK = id
				break
			}
		}
		if alloc.IsEmpty() {
			bestD, bestK = 0, -1
		}
		gotD, gotK := ev.Distance()
		if gotD != bestD || gotK != bestK {
			t.Fatalf("Distance() = (%v, %d), oracle (%v, %d)\nalloc %v", gotD, gotK, bestD, bestK, alloc)
		}
	})
}
