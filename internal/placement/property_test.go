package placement

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"affinitycluster/internal/topology"
)

// randomPlant builds an irregular topology (1–3 clouds × 1–4 racks × 1–5
// nodes) so the rack-probe scan faces uneven rack sizes and cloud splits.
func randomPlant(t *testing.T, rng *rand.Rand) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(topology.DefaultDistances())
	clouds := 1 + rng.Intn(3)
	for c := 0; c < clouds; c++ {
		b.AddCloud()
		racks := 1 + rng.Intn(4)
		for r := 0; r < racks; r++ {
			b.AddRack()
			b.AddNodes(1 + rng.Intn(5))
		}
	}
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestRackProbeMatchesExhaustiveProperty drives the pruned ScanAllCenters
// scan and the reference ExhaustiveCenters scan through identical random
// request streams on random plants, depleting capacity in lockstep. At
// every step both must return byte-identical allocations (hence the same
// DC and the same winning center under the lowest-ID tie-break) or the
// same admission failure — the pruning must be invisible, not just
// DC-preserving.
func TestRackProbeMatchesExhaustiveProperty(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		tp := randomPlant(t, rng)
		n := tp.Nodes()
		m := 1 + rng.Intn(3)
		work := make([][]int, n)
		for i := range work {
			work[i] = make([]int, m)
			for j := range work[i] {
				work[i][j] = rng.Intn(5)
			}
		}
		pruned := &OnlineHeuristic{Policy: ScanAllCenters}
		exhaustive := &OnlineHeuristic{Policy: ExhaustiveCenters}

		for step := 0; step < 12; step++ {
			r := make([]int, m)
			total := 0
			for j := range r {
				r[j] = rng.Intn(2 * n)
				total += r[j]
			}
			if total == 0 {
				r[rng.Intn(m)] = 1
			}
			got, gotErr := pruned.Place(tp, work, r)
			want, wantErr := exhaustive.Place(tp, work, r)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d step %d: pruned err %v, exhaustive err %v", trial, step, gotErr, wantErr)
			}
			if gotErr != nil {
				if !errors.Is(gotErr, ErrInsufficient) || !errors.Is(wantErr, ErrInsufficient) {
					t.Fatalf("trial %d step %d: unexpected errors %v / %v", trial, step, gotErr, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				gd, gk := got.Distance(tp)
				wd, wk := want.Distance(tp)
				t.Fatalf("trial %d step %d: allocations differ\npruned    (dc=%v center=%d): %v\nexhaustive (dc=%v center=%d): %v\nrequest %v",
					trial, step, gd, gk, got, wd, wk, want, r)
			}
			for i := range got {
				for j, k := range got[i] {
					work[i][j] -= k
				}
			}
		}
	}
}
