package placement

import (
	"math/rand"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// Random places each requested VM on a uniformly random node with spare
// capacity of its type — the affinity-oblivious strawman a generic IaaS
// scheduler approximates, used as the "random topology" arm of the
// MapReduce experiments.
type Random struct {
	// Rand supplies randomness; required. Not safe for concurrent Place.
	Rand *rand.Rand
}

// Name implements Placer.
func (p *Random) Name() string { return "random" }

// Place implements Placer.
func (p *Random) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	if err := admit(l, r); err != nil {
		return nil, err
	}
	n := t.Nodes()
	alloc := affinity.NewAllocation(n, len(r))
	remain := cloneMatrix(l)
	for j, count := range r {
		for v := 0; v < count; v++ {
			// Collect candidates with spare capacity for this type.
			var candidates []int
			for i := 0; i < n; i++ {
				if remain[i][j] > 0 {
					candidates = append(candidates, i)
				}
			}
			i := candidates[p.Rand.Intn(len(candidates))]
			alloc[i][j]++
			remain[i][j]--
		}
	}
	return alloc, nil
}

// FirstFit scans nodes in ID order and takes as much as possible from each
// — the classic Best-Fit/First-Fit family the related-work section cites
// for load-oriented VM scheduling.
type FirstFit struct{}

// Name implements Placer.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Placer.
func (FirstFit) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	if err := admit(l, r); err != nil {
		return nil, err
	}
	n := t.Nodes()
	alloc := affinity.NewAllocation(n, len(r))
	residual := r.Clone()
	for i := 0; i < n && !residual.IsZero(); i++ {
		grab := model.Min(l[i], residual)
		for j, k := range grab {
			alloc[i][j] += k
			residual[j] -= k
		}
	}
	return alloc, nil
}

// RoundRobinStripe spreads VMs one at a time across nodes in rotation —
// the anti-affinity extreme that maximizes the cluster's spread, included
// to bound the distance metric from above in the benchmarks.
type RoundRobinStripe struct{}

// Name implements Placer.
func (RoundRobinStripe) Name() string { return "round-robin" }

// Place implements Placer.
func (RoundRobinStripe) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	if err := admit(l, r); err != nil {
		return nil, err
	}
	n := t.Nodes()
	alloc := affinity.NewAllocation(n, len(r))
	remain := cloneMatrix(l)
	cursor := 0
	for j, count := range r {
		for v := 0; v < count; v++ {
			for probe := 0; probe < n; probe++ {
				i := (cursor + probe) % n
				if remain[i][j] > 0 {
					alloc[i][j]++
					remain[i][j]--
					cursor = (i + 1) % n
					break
				}
			}
		}
	}
	return alloc, nil
}

// PackBestFit fills nodes in descending order of how much of the request
// they can supply — a capacity-packing heuristic that is affinity-blind
// (it ignores racks entirely) yet tends to produce few fragments.
type PackBestFit struct{}

// Name implements Placer.
func (PackBestFit) Name() string { return "pack-best-fit" }

// Place implements Placer.
func (PackBestFit) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	if err := admit(l, r); err != nil {
		return nil, err
	}
	n := t.Nodes()
	alloc := affinity.NewAllocation(n, len(r))
	residual := r.Clone()
	for !residual.IsZero() {
		best, bestSupply := -1, 0
		for i := 0; i < n; i++ {
			free := model.Sub(l[i], alloc[i])
			if s := model.Sum(model.Min(free, residual)); s > bestSupply {
				best, bestSupply = i, s
			}
		}
		if best < 0 {
			break // cannot happen after admit; defensive
		}
		grab := model.Min(model.Sub(l[best], alloc[best]), residual)
		for j, k := range grab {
			alloc[best][j] += k
			residual[j] -= k
		}
	}
	return alloc, nil
}
