package placement_test

import (
	"fmt"

	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
)

// Algorithm 1 packs the request into one rack around the best center.
func ExampleOnlineHeuristic_Place() {
	plant, _ := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	remaining := [][]int{
		{3, 0}, {2, 0}, {0, 0}, // rack 0
		{2, 0}, {2, 0}, {1, 0}, // rack 1
	}
	h := &placement.OnlineHeuristic{}
	alloc, _ := h.Place(plant, remaining, model.Request{5, 0})
	d, center := alloc.Distance(plant)
	fmt.Printf("%v → distance %.0f, center N%d\n", alloc, d, center)
	// Output:
	// n0:[3 0] n1:[2 0] → distance 2, center N0
}

// Algorithm 2 serves a contended batch better than sequential placement.
func ExampleGlobalSubOpt_PlaceBatch() {
	plant, _ := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	remaining := [][]int{
		{0}, {1}, // rack 0
		{3}, {3}, // rack 1
	}
	// Served one by one, the 4-VM request grabs node 2 + node 3 and the
	// 3-VM request is left straddling racks; served together, the
	// exchange phase untangles them.
	reqs := []model.Request{{4}, {3}}
	seq, _ := placement.PlaceSequential(plant, remaining, reqs, &placement.OnlineHeuristic{})
	g := &placement.GlobalSubOpt{}
	batch, _ := g.PlaceBatch(plant, remaining, reqs)
	fmt.Printf("sequential total %.0f, global total %.0f\n", seq.Total, batch.Total)
	// Output:
	// sequential total 3, global total 2
}
