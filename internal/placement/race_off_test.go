//go:build !race

package placement

// raceEnabled reports whether the race detector instruments this build;
// allocation-regression gates skip under it, since the instrumentation
// itself allocates.
const raceEnabled = false
