// The tier-aggregated center scan over a persistent affinity.TierIndex —
// the successor of the per-call rack-probe scan. Instead of building one
// candidate allocation per rack, the scan prices every rack's best
// achievable DC in closed form from the index aggregates and only
// simulates builds inside the handful of racks that can define the
// winner.
//
// Derivation. Algorithm 1's greedy fill is order-independent at the
// aggregate level: whatever the center, rack ρ as a whole absorbs
// exactly min(Σ_{i∈ρ} L_ij, R_j) VMs of type j, its cloud absorbs
// min(Σ_{i∈cloud} L_ij, R_j), and the build totals T = Σ_j R_j. A
// center c therefore yields, for its own rack,
//
//	inS(c) = TierSum(maxLoad(c), rackTot_ρ, cloudTot_cl(ρ), T)
//
// where maxLoad(c) ≤ w_ρ = max_{i∈ρ} Σ_j min(L_ij, R_j), with equality
// when c is the rack's max-capacity node (the center always takes its
// full com(L_c, R)). Since TierSum is non-increasing in each count
// argument, the rack's best in-rack price is
//
//	S_probe(ρ) = TierSum(w_ρ, rackTot_ρ, cloudTot_cl(ρ), T)
//
// and every hosting node of every build — in ANY rack ρ', reached from
// ANY center — prices at least S_probe(ρ'): its load, rack take and
// cloud take are bounded by w_ρ', rackTot_ρ' and cloudTot_cl(ρ'). So
//
//	M = min over racks with rackTot > 0 of S_probe(ρ)
//
// is the exact optimum DC over all centers, computable from the index
// in O(racks·m) with zero builds. The same monotonicity gives a cloud-
// tier bound checked first: TierSum(ubW_c, ubRack_c, cloudTot_c, T)
// with ubRack_c = min(CloudMaxRackSum, T, cloudTot_c) and ubW_c =
// min(CloudMaxNodeTotal, ubRack_c) lower-bounds S_probe of every rack
// in cloud c, so whole clouds are skipped without touching their racks.
// Pruning always uses strict >, so exact ties are never discarded.
//
// The winner — the lowest-ID center achieving M, matching the
// exhaustive scan's first-strict-improvement semantics bit for bit —
// is found by walking racks in ascending lowest-node-ID order: the
// build around a rack's lowest node is simulated and scored (its DC is
// min(inS, out), and out, the best price over hosting nodes outside
// the center's rack, is center-independent within a rack because the
// post-rack-phase residual is); if that misses M and the rack ties
// S_probe(ρ) == M, later centers of the rack are tested by in-rack
// fill simulation alone, since out > M is already known. The walk
// stops as soon as no remaining rack can hold a lower-ID center.
//
// Three further devices keep the walk sub-linear in nodes on a loaded
// plant. Build simulations never scan the node population: the remote
// fill drains racks through a bound-ordered heap (drainBucket),
// expanding a rack to exact per-node supplies only when its aggregate
// bound could hold the next take, so a build touches O(active racks)
// instead of O(n). Saturated racks — the common prefix of the walk
// under churn — share one simulation per cloud: a center whose rack
// absorbs nothing produces a purely-remote build that is identical for
// every such center in its cloud, so its DC is memoized. And partially
// drained racks are skipped without any simulation when closed-form
// floors prove both their in-rack and out-of-rack hosting prices
// exceed M (see sweep).
package placement

import (
	"errors"
	"fmt"
	"math"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// PlaceSparse places request r against the persistent tier index idx,
// writing the allocation into dst (reset first; entries in take order)
// and returning the allocation's DC and central node — bitwise equal to
// Allocation.Distance of the dense form. The placer must use
// ScanAllCenters; the index must be current for the matrix it aliases.
// Steady-state calls are allocation-free once dst and the placer's
// pooled scratch have grown to their working sizes.
func (h *OnlineHeuristic) PlaceSparse(idx *affinity.TierIndex, r model.Request, dst *affinity.SparseAlloc) (float64, topology.NodeID, error) {
	if h.Policy != ScanAllCenters {
		return 0, -1, fmt.Errorf("placement: PlaceSparse requires ScanAllCenters, placer uses %q", h.Name())
	}
	return h.placeSparseMetered(idx, r, dst)
}

// placeSparseMetered runs the indexed core and maps the outcome onto
// the placer's metrics, mirroring placeWith's accounting.
func (h *OnlineHeuristic) placeSparseMetered(idx *affinity.TierIndex, r model.Request, dst *affinity.SparseAlloc) (float64, topology.NodeID, error) {
	om := h.obsHandles()
	om.calls.Inc()
	dc, center, fast, err := h.placeSparseCore(idx, r, dst)
	if err != nil {
		if errors.Is(err, ErrInsufficient) {
			om.infeasible.Inc()
		}
		return 0, -1, err
	}
	if fast {
		om.fastPath.Inc()
		om.dc.Observe(0)
	} else {
		om.dc.Observe(dc)
	}
	return dc, center, nil
}

// placeSparseCore runs admission, the single-node fast path and the
// tier-aggregated center scan. No metrics; callers map the returned
// fast flag and error onto their counters.
func (h *OnlineHeuristic) placeSparseCore(idx *affinity.TierIndex, r model.Request, dst *affinity.SparseAlloc) (float64, topology.NodeID, bool, error) {
	t := idx.Topology()
	m := idx.Types()
	if len(r) != m {
		return 0, -1, false, fmt.Errorf("placement: request has %d types, index has %d", len(r), m)
	}
	if err := admitAvail(idx.Avail(), r); err != nil {
		return 0, -1, false, err
	}
	dst.Reset(t.Nodes(), m)
	T := 0
	for _, v := range r {
		T += v
	}
	d := t.Distances()
	s := h.getScan(t, m)
	defer h.putScan(s)

	// Fast path (Algorithm 1, lines 9–14): the lowest-ID node covering R
	// outright, found rack-by-rack through the per-rack column maxima.
	if id, ok := s.fastCover(idx, r); ok {
		for j, v := range r {
			if v > 0 {
				dst.Add(id, model.VMTypeID(j), v)
			}
		}
		if T == 0 {
			return 0, -1, true, nil
		}
		return float64(T) * d.SameNode, id, true, nil
	}

	M := s.scanBound(idx, r, T)
	winner := s.sweep(idx, r, T, M)
	if winner < 0 {
		return 0, -1, false, fmt.Errorf("placement: internal error — no center achieves bound %g for request %v", M, r)
	}
	if !s.buildSim(idx, r, winner, dst, false) {
		return 0, -1, false, fmt.Errorf("placement: internal error — no allocation built for feasible request %v", r)
	}
	dc, center := s.score(t, d, T)
	return dc, center, false, nil
}

// scanScratch is the pooled working state of the indexed scan, sized to
// one topology and type count.
type scanScratch struct {
	t *topology.Topology
	m int

	resid   []int             // m: working residual of the current sim
	resid0  []int             // m: residual snapshot as the remote phase began
	nodeSup []int             // n, lazy: per-candidate supply (written before read)
	peers   []topology.NodeID // rack peers of the current center

	rkHeap []int             // rack max-heap of the current remote bucket
	rkUb   []int             // racks: supply upper bound keyed to resid0
	ndHeap []topology.NodeID // node max-heap of opened racks

	total     int               // VMs taken by the current sim
	rackTake  []int             // racks: VMs taken per rack
	rackMaxW  []int             // racks: largest single-node load
	rackBest  []topology.NodeID // racks: lowest ID achieving rackMaxW
	touched   []int             // racks with rackTake > 0
	cloudTake []int             // clouds: VMs taken per cloud
	tclouds   []int             // clouds with cloudTake > 0
	nodeLoad  []int             // n, lazy: cumulative VMs per node this sim
	lnodes    []topology.NodeID // nodes with nodeLoad > 0
	seedUniq  []topology.NodeID // distinct nodes of the seeded entries

	cloudDC0  []float64 // clouds: memoized DC of the purely-remote build
	cloudMemo []bool    // clouds: cloudDC0 valid for the current sweep
	memoList  []int     // clouds with cloudMemo set, for O(set) reset
}

func newScanScratch(t *topology.Topology, m int) *scanScratch {
	return &scanScratch{
		t:         t,
		m:         m,
		resid:     make([]int, 0, m),
		resid0:    make([]int, 0, m),
		rkUb:      make([]int, t.Racks()),
		rackTake:  make([]int, t.Racks()),
		rackMaxW:  make([]int, t.Racks()),
		rackBest:  make([]topology.NodeID, t.Racks()),
		touched:   make([]int, 0, 16),
		cloudTake: make([]int, t.Clouds()),
		tclouds:   make([]int, 0, t.Clouds()),
		cloudDC0:  make([]float64, t.Clouds()),
		cloudMemo: make([]bool, t.Clouds()),
		memoList:  make([]int, 0, t.Clouds()),
	}
}

// getScan pulls a scratch matching (t, m) from the pool or builds one.
func (h *OnlineHeuristic) getScan(t *topology.Topology, m int) *scanScratch {
	if v := h.scanPool.Get(); v != nil {
		if s := v.(*scanScratch); s.t == t && s.m == m {
			return s
		}
	}
	return newScanScratch(t, m)
}

func (h *OnlineHeuristic) putScan(s *scanScratch) { h.scanPool.Put(s) }

// sup returns the lazily-sized per-node supply scratch. It is only
// needed once a build leaves the fast path, so plants that never spill
// past their racks stay O(racks) in memory touched per request.
//
//lint:hotpath
func (s *scanScratch) sup() []int {
	if len(s.nodeSup) < s.t.Nodes() {
		s.nodeSup = make([]int, s.t.Nodes())
	}
	return s.nodeSup
}

// load returns the lazily-sized cumulative per-node load tally. In a
// fresh build every node is taken at most once, so the tally mirrors
// take's per-visit amounts; delta builds (placeDeltaCore) seed it with
// the existing cluster first, so a node both hosting C and taking delta
// VMs prices at its merged load.
//
//lint:hotpath
func (s *scanScratch) load() []int {
	if len(s.nodeLoad) < s.t.Nodes() {
		s.nodeLoad = make([]int, s.t.Nodes())
	}
	return s.nodeLoad
}

// fastCover finds the lowest-ID node whose row covers r, scanning racks
// in ascending lowest-node order and descending into a rack only when
// its per-type column maxima pass the covering test.
//
//lint:hotpath
func (s *scanScratch) fastCover(idx *affinity.TierIndex, r model.Request) (topology.NodeID, bool) {
	t := s.t
	l := idx.Matrix()
	best := topology.NodeID(-1)
	for _, rr := range t.RacksByLowestNode() {
		nodes := t.RackNodes(rr)
		if best >= 0 && nodes[0] > best {
			break
		}
		mc := idx.RackMaxCol(rr)
		ok := true
		for j, need := range r {
			if mc[j] < need {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, id := range nodes {
			if best >= 0 && id > best {
				break
			}
			if model.Covers(l[id], r) {
				best = id
				break
			}
		}
	}
	return best, best >= 0
}

// rackProbe returns rack ρ's absorbed total rackTot = Σ_j min(Σ_{i∈ρ}
// L_ij, R_j) and exact max single-node capacity w_ρ = max_{i∈ρ} Σ_j
// min(L_ij, R_j). When no column maximum exceeds its R_j the per-node
// minima are vacuous and w_ρ is the index's RackMaxTotal; otherwise the
// rack's nodes are scanned.
//
//lint:hotpath
func (s *scanScratch) rackProbe(idx *affinity.TierIndex, r model.Request, rho int) (rackTot, w int) {
	rr := idx.RackRemain(rho)
	mc := idx.RackMaxCol(rho)
	capped := false
	for j, need := range r {
		if v := rr[j]; v < need {
			rackTot += v
		} else {
			rackTot += need
		}
		if mc[j] > need {
			capped = true
		}
	}
	if !capped {
		return rackTot, idx.RackMaxTotal(rho)
	}
	l := idx.Matrix()
	for _, id := range s.t.RackNodes(rho) {
		if nc := nodeCapOf(l[id], r); nc > w {
			w = nc
		}
	}
	return rackTot, w
}

// nodeCapOf is Σ_j min(L_ij, R_j) — how much of R one node can absorb.
//
//lint:hotpath
func nodeCapOf(li []int, r model.Request) int {
	c := 0
	for j, need := range r {
		if k := li[j]; k < need {
			c += k
		} else {
			c += need
		}
	}
	return c
}

// rackTotOf is Σ_j min(Σ_{i∈ρ} L_ij, R_j) — rackProbe's rackTot without
// the exact max-capacity scan.
//
//lint:hotpath
func rackTotOf(idx *affinity.TierIndex, r model.Request, rho int) int {
	rr := idx.RackRemain(rho)
	tot := 0
	for j, need := range r {
		if v := rr[j]; v < need {
			tot += v
		} else {
			tot += need
		}
	}
	return tot
}

// cloudTot is Σ_j min(Σ_{i∈cloud} L_ij, R_j).
//
//lint:hotpath
func cloudTotOf(idx *affinity.TierIndex, r model.Request, c int) int {
	cr := idx.CloudRemain(c)
	tot := 0
	for j, need := range r {
		if v := cr[j]; v < need {
			tot += v
		} else {
			tot += need
		}
	}
	return tot
}

// scanBound computes M, the exact optimum DC, from the index alone:
// cloud-tier bounds first, rack-tier bounds inside surviving clouds,
// exact S_probe only for racks whose bound still ties or beats the
// incumbent. Strict-> pruning keeps exact ties alive.
//
//lint:hotpath
func (s *scanScratch) scanBound(idx *affinity.TierIndex, r model.Request, T int) float64 {
	t := s.t
	d := t.Distances()
	M := math.Inf(1)
	for c := 0; c < t.Clouds(); c++ {
		ct := cloudTotOf(idx, r, c)
		if ct == 0 {
			continue
		}
		ubRack := idx.CloudMaxRackSum(c)
		if ubRack > T {
			ubRack = T
		}
		if ubRack > ct {
			ubRack = ct
		}
		ubW := idx.CloudMaxNodeTotal(c)
		if ubW > ubRack {
			ubW = ubRack
		}
		if affinity.TierSum(d, ubW, ubRack, ct, T) > M {
			continue
		}
		for _, rho := range t.CloudRacks(c) {
			rr := idx.RackRemain(rho)
			mc := idx.RackMaxCol(rho)
			rackTot := 0
			wUb := 0
			for j, need := range r {
				if v := rr[j]; v < need {
					rackTot += v
				} else {
					rackTot += need
				}
				if v := mc[j]; v < need {
					wUb += v
				} else {
					wUb += need
				}
			}
			if rackTot == 0 {
				continue
			}
			if v := idx.RackMaxTotal(rho); v < wUb {
				wUb = v
			}
			if wUb > rackTot {
				wUb = rackTot
			}
			if affinity.TierSum(d, wUb, rackTot, ct, T) > M {
				continue
			}
			_, w := s.rackProbe(idx, r, rho)
			if S := affinity.TierSum(d, w, rackTot, ct, T); S < M {
				M = S
			}
		}
	}
	return M
}

// sweep finds the lowest-ID center whose build achieves DC == M. Racks
// are visited in ascending lowest-node order; each rack's lowest node
// is judged by a full build simulation (covering both the in-rack price
// and the center-independent out-of-rack price), and only racks tying
// S_probe == M scan further centers, by in-rack simulation alone.
//
// Racks that absorb nothing of R — common under churn, where the walk
// crosses a prefix of saturated racks before reaching free capacity —
// collapse to one simulation per cloud: such a center takes nothing at
// home (per-type rack remain and R meet in no column, so every node row
// meets R in no column either), its rack contributes only zero-supply
// candidates to everyone else, and the purely-remote fill that results
// is therefore identical for every empty-rack center of the cloud. Its
// DC is memoized per cloud for the duration of one sweep.
// A rack that absorbs some of R but prices S_probe above M can still
// host the winner only through an out-of-rack hosting node, and that
// node's price has a closed-form floor: it loads at most W* (the
// largest request-clamped node capacity anywhere), its rack takes at
// most amax = min(R*, T−h) VMs (R* the largest rack absorption
// anywhere; h = rackTot_ρ VMs stay home), and its cloud at most T. By
// TierSum's monotonicity — valid under the validated tier ordering —
// TierSum(min(W*, amax), amax, T, T) > M proves no remote host reaches
// M either, and the rack is skipped without simulating.
//
//lint:hotpath
func (s *scanScratch) sweep(idx *affinity.TierIndex, r model.Request, T int, M float64) topology.NodeID {
	t := s.t
	d := t.Distances()
	l := idx.Matrix()
	for _, c := range s.memoList {
		s.cloudMemo[c] = false
	}
	s.memoList = s.memoList[:0]
	mono := d.SameNode <= d.SameRack && d.SameRack <= d.CrossRack && d.CrossRack <= d.CrossCloud
	wStar, rStar := 0, 0
	if mono {
		for rho := 0; rho < t.Racks(); rho++ {
			mc := idx.RackMaxCol(rho)
			rr := idx.RackRemain(rho)
			wv, rv := 0, 0
			for j, need := range r {
				if v := mc[j]; v < need {
					wv += v
				} else {
					wv += need
				}
				if v := rr[j]; v < need {
					rv += v
				} else {
					rv += need
				}
			}
			if wv > wStar {
				wStar = wv
			}
			if rv > rStar {
				rStar = rv
			}
		}
	}
	winner := topology.NodeID(-1)
	for _, rho := range t.RacksByLowestNode() {
		nodes := t.RackNodes(rho)
		if winner >= 0 && nodes[0] > winner {
			break
		}
		h := rackTotOf(idx, r, rho)
		if h == 0 {
			cl := t.CloudOfRack(rho)
			if !s.cloudMemo[cl] {
				dc0 := math.Inf(1)
				if s.buildSim(idx, r, nodes[0], nil, false) {
					dc0, _ = s.score(t, d, T)
				}
				s.cloudDC0[cl] = dc0
				s.cloudMemo[cl] = true
				s.memoList = append(s.memoList, cl)
			}
			if s.cloudDC0[cl] == M {
				winner = nodes[0]
			}
			continue
		}
		if mono {
			// In-rack floor first: wUb ≥ w_ρ makes the TierSum a lower
			// bound on S_probe, so Slb > M certifies every in-rack host
			// prices above M without the exact max-capacity scan.
			mc := idx.RackMaxCol(rho)
			wUb := 0
			for j, need := range r {
				if v := mc[j]; v < need {
					wUb += v
				} else {
					wUb += need
				}
			}
			if v := idx.RackMaxTotal(rho); v < wUb {
				wUb = v
			}
			if wUb > h {
				wUb = h
			}
			ct := cloudTotOf(idx, r, t.CloudOfRack(rho))
			if affinity.TierSum(d, wUb, h, ct, T) > M {
				amax := T - h
				if rStar < amax {
					amax = rStar
				}
				wb := wStar
				if wb > amax {
					wb = amax
				}
				if affinity.TierSum(d, wb, amax, T, T) > M {
					continue
				}
			}
		}
		if !s.buildSim(idx, r, nodes[0], nil, false) {
			continue
		}
		if dc0, _ := s.score(t, d, T); dc0 == M {
			winner = nodes[0]
			continue
		}
		rackTot, w := s.rackProbe(idx, r, rho)
		ct := cloudTotOf(idx, r, t.CloudOfRack(rho))
		if affinity.TierSum(d, w, rackTot, ct, T) != M {
			continue
		}
		// S_probe ties M but the lowest node missed it, so out > M and a
		// center wins iff its in-rack fill concentrates w on one node. A
		// center whose own capacity is w proves that outright; the rack's
		// max-capacity node guarantees termination.
		for _, c := range nodes[1:] {
			if winner >= 0 && c > winner {
				break
			}
			if nodeCapOf(l[c], r) == w {
				winner = c
				break
			}
			s.buildSim(idx, r, c, nil, true)
			if affinity.TierSum(d, s.rackMaxW[rho], rackTot, ct, T) == M {
				winner = c
				break
			}
		}
	}
	return winner
}

// resetTallies clears only the cells the previous simulation touched.
//
//lint:hotpath
func (s *scanScratch) resetTallies() {
	for _, rr := range s.touched {
		s.rackTake[rr] = 0
	}
	for _, c := range s.tclouds {
		s.cloudTake[c] = 0
	}
	for _, i := range s.lnodes {
		s.nodeLoad[i] = 0
	}
	s.touched = s.touched[:0]
	s.tclouds = s.tclouds[:0]
	s.lnodes = s.lnodes[:0]
	s.total = 0
}

// credit folds w VMs on node i into the rack/cloud/node tallies. The
// rack's max-load compare uses the node's cumulative load, so a second
// credit to the same node re-ranks it at its merged total.
//
//lint:hotpath
func (s *scanScratch) credit(i topology.NodeID, w int) {
	loads := s.load()
	if loads[i] == 0 {
		s.lnodes = append(s.lnodes, i)
	}
	loads[i] += w
	lw := loads[i]
	rr := s.t.RackOf(i)
	if s.rackTake[rr] == 0 {
		s.touched = append(s.touched, rr)
		s.rackMaxW[rr], s.rackBest[rr] = lw, i
	} else if lw > s.rackMaxW[rr] || (lw == s.rackMaxW[rr] && i < s.rackBest[rr]) {
		s.rackMaxW[rr], s.rackBest[rr] = lw, i
	}
	s.rackTake[rr] += w
	cl := s.t.CloudOf(i)
	if s.cloudTake[cl] == 0 {
		s.tclouds = append(s.tclouds, cl)
	}
	s.cloudTake[cl] += w
	s.total += w
}

// take absorbs com(L_i, residual) into the tallies (and dst when
// non-nil), mirroring buildBuffer.take. Reports full coverage.
//
//lint:hotpath
func (s *scanScratch) take(l [][]int, i topology.NodeID, dst *affinity.SparseAlloc) bool {
	taken, left := 0, 0
	li := l[i]
	for j, need := range s.resid {
		if need > 0 {
			k := li[j]
			if k > need {
				k = need
			}
			if k > 0 {
				s.resid[j] = need - k
				if dst != nil {
					dst.Add(i, model.VMTypeID(j), k)
				}
				taken += k
			}
			left += need - k
		}
	}
	if taken > 0 {
		s.credit(i, taken)
	}
	return left == 0
}

// supplyOf is Σ_j min(L_ij, residual_j).
//
//lint:hotpath
func (s *scanScratch) supplyOf(li []int) int {
	v := 0
	for j, need := range s.resid {
		if k := li[j]; k < need {
			v += k
		} else {
			v += need
		}
	}
	return v
}

// buildSim replays Algorithm 1's greedy fill around center into the
// tallies (and dst when non-nil): center first, rack peers by
// descending supply then ID, then remote nodes bucketed by distance
// tier with all supplies keyed to the residual as the remote phase
// began — the exact take order of buildBuffer.buildAround. rackOnly
// stops after the rack phase (the caller only needs the in-rack load
// profile). Reports whether the residual was fully covered.
//
//lint:hotpath
func (s *scanScratch) buildSim(idx *affinity.TierIndex, r model.Request, center topology.NodeID, dst *affinity.SparseAlloc, rackOnly bool) bool {
	s.resetTallies()
	s.resid = append(s.resid[:0], r...)
	return s.fillFrom(idx, center, dst, rackOnly)
}

// fillFrom runs the greedy fill of the current residual around center on
// top of whatever the tallies already hold — nothing for buildSim, the
// existing cluster for placeDeltaCore, whose merged profile the fill
// then extends.
//
//lint:hotpath
func (s *scanScratch) fillFrom(idx *affinity.TierIndex, center topology.NodeID, dst *affinity.SparseAlloc, rackOnly bool) bool {
	t := s.t
	l := idx.Matrix()
	if s.take(l, center, dst) {
		return true
	}
	cRack := t.RackOf(center)
	sup := s.sup()
	s.peers = s.peers[:0]
	for _, id := range t.RackNodes(cRack) {
		if id != center {
			sup[id] = s.supplyOf(l[id])
			s.peers = append(s.peers, id)
		}
	}
	sortBySupply(s.peers, sup)
	for _, id := range s.peers {
		if s.take(l, id, dst) {
			return true
		}
	}
	if rackOnly {
		return false
	}
	// Remote phase. All candidate supplies are keyed to the residual as
	// this phase begins (buildAround computes every supply before the
	// first remote take), so snapshot it and drain the distance buckets
	// lazily: racks enter a bucket with a supply upper bound from the
	// index and are only expanded to exact per-node supplies when that
	// bound could beat the best opened node.
	s.resid0 = append(s.resid0[:0], s.resid...)
	cCloud := t.CloudOf(center)
	d := t.Distances()
	switch {
	case d.CrossCloud < d.CrossRack: // degenerate tiering: far is closer
		if s.gatherFar(idx, cCloud); s.drainBucket(idx, l, dst) {
			return true
		}
		if s.gatherNear(idx, cCloud, cRack); s.drainBucket(idx, l, dst) {
			return true
		}
	case d.CrossCloud == d.CrossRack: // one merged tier
		s.rkHeap = s.rkHeap[:0]
		for rho := 0; rho < t.Racks(); rho++ {
			if rho != cRack {
				s.pushRackUb(idx, rho)
			}
		}
		if s.drainBucket(idx, l, dst) {
			return true
		}
	default:
		if s.gatherNear(idx, cCloud, cRack); s.drainBucket(idx, l, dst) {
			return true
		}
		if s.gatherFar(idx, cCloud); s.drainBucket(idx, l, dst) {
			return true
		}
	}
	for _, need := range s.resid {
		if need > 0 {
			return false
		}
	}
	return true
}

// gatherNear loads the same-cloud bucket (minus the center's rack) into
// the rack heap; gatherFar loads every other cloud's racks, skipping
// clouds whose aggregate remain cannot supply anything. Bounds key to
// resid0, so a rack with ub == 0 holds only zero-supply nodes — the
// greedy never takes from those, so dropping them leaves the take
// sequence unchanged.
//
//lint:hotpath
func (s *scanScratch) gatherNear(idx *affinity.TierIndex, cCloud, cRack int) {
	s.rkHeap = s.rkHeap[:0]
	for _, rho := range s.t.CloudRacks(cCloud) {
		if rho != cRack {
			s.pushRackUb(idx, rho)
		}
	}
}

//lint:hotpath
func (s *scanScratch) gatherFar(idx *affinity.TierIndex, cCloud int) {
	s.rkHeap = s.rkHeap[:0]
	for c := 0; c < s.t.Clouds(); c++ {
		if c == cCloud {
			continue
		}
		cr := idx.CloudRemain(c)
		sup := 0
		for j, need := range s.resid0 {
			if v := cr[j]; v < need {
				sup += v
			} else {
				sup += need
			}
		}
		if sup == 0 {
			continue
		}
		for _, rho := range s.t.CloudRacks(c) {
			s.pushRackUb(idx, rho)
		}
	}
}

// pushRackUb appends rho to the rack heap (unordered; drainBucket
// heapifies) with its supply upper bound Σ_j min(RackMaxCol_j, resid0_j)
// unless that bound is zero.
//
//lint:hotpath
func (s *scanScratch) pushRackUb(idx *affinity.TierIndex, rho int) {
	mc := idx.RackMaxCol(rho)
	ub := 0
	for j, need := range s.resid0 {
		if v := mc[j]; v < need {
			ub += v
		} else {
			ub += need
		}
	}
	if ub > 0 {
		s.rkUb[rho] = ub
		s.rkHeap = append(s.rkHeap, rho)
	}
}

// drainBucket takes from the gathered racks in exactly the order the
// eager scan's global sort produces — supply descending, node ID
// ascending, supplies keyed to resid0 — expanding a rack only when its
// bound says it may hold the next node: any node in an unopened rack
// has supply ≤ ub < the open maximum, or ties it with a strictly higher
// ID (rack node IDs are contiguous and start at the rack's lowest), and
// so sorts after it. Reports whether the residual reached zero.
//
//lint:hotpath
func (s *scanScratch) drainBucket(idx *affinity.TierIndex, l [][]int, dst *affinity.SparseAlloc) bool {
	for root := len(s.rkHeap)/2 - 1; root >= 0; root-- {
		s.siftRack(root)
	}
	s.ndHeap = s.ndHeap[:0]
	sup := s.sup()
	for {
		for len(s.rkHeap) > 0 {
			top := s.rkHeap[0]
			if len(s.ndHeap) > 0 {
				h := s.ndHeap[0]
				if s.rkUb[top] < sup[h] || (s.rkUb[top] == sup[h] && s.t.RackNodes(top)[0] > h) {
					break
				}
			}
			s.popRack()
			for _, id := range s.t.RackNodes(top) {
				if v := s.supply0(l[id]); v > 0 {
					sup[id] = v
					s.pushNode(id)
				}
			}
		}
		if len(s.ndHeap) == 0 {
			return false
		}
		if s.take(l, s.popNode(), dst) {
			return true
		}
	}
}

// supply0 is Σ_j min(L_ij, resid0_j) — supplyOf against the remote
// phase's residual snapshot.
//
//lint:hotpath
func (s *scanScratch) supply0(li []int) int {
	v := 0
	for j, need := range s.resid0 {
		if k := li[j]; k < need {
			v += k
		} else {
			v += need
		}
	}
	return v
}

// rackBefore orders the rack heap: supply bound descending, ties by
// ascending lowest node ID (so a tied rack that could still supply a
// lower-ID node is opened before that node is taken).
//
//lint:hotpath
func (s *scanScratch) rackBefore(a, b int) bool {
	if s.rkUb[a] != s.rkUb[b] {
		return s.rkUb[a] > s.rkUb[b]
	}
	return s.t.RackNodes(a)[0] < s.t.RackNodes(b)[0]
}

//lint:hotpath
func (s *scanScratch) siftRack(root int) {
	h := s.rkHeap
	n := len(h)
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && s.rackBefore(h[c+1], h[c]) {
			c++
		}
		if !s.rackBefore(h[c], h[root]) {
			return
		}
		h[root], h[c] = h[c], h[root]
		root = c
	}
}

//lint:hotpath
func (s *scanScratch) popRack() int {
	h := s.rkHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.rkHeap = h[:last]
	s.siftRack(0)
	return top
}

// nodeBefore orders the node heap: exact supply descending, ties by
// ascending node ID — the same strict total order sortBySupply uses.
//
//lint:hotpath
func (s *scanScratch) nodeBefore(a, b topology.NodeID) bool {
	if s.nodeSup[a] != s.nodeSup[b] {
		return s.nodeSup[a] > s.nodeSup[b]
	}
	return a < b
}

//lint:hotpath
func (s *scanScratch) pushNode(id topology.NodeID) {
	s.ndHeap = append(s.ndHeap, id)
	h := s.ndHeap
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.nodeBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

//lint:hotpath
func (s *scanScratch) popNode() topology.NodeID {
	h := s.ndHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	s.ndHeap = h
	for root := 0; ; {
		c := 2*root + 1
		if c >= last {
			break
		}
		if c+1 < last && s.nodeBefore(h[c+1], h[c]) {
			c++
		}
		if !s.nodeBefore(h[c], h[root]) {
			break
		}
		h[root], h[c] = h[c], h[root]
		root = c
	}
	return top
}

// score prices the current tallies exactly as affinity.DistanceOf does:
// per touched rack the max-loaded (lowest-ID) node, min across racks
// with ties toward the lowest node ID.
//
//lint:hotpath
func (s *scanScratch) score(t *topology.Topology, d topology.Distances, total int) (float64, topology.NodeID) {
	best := math.Inf(1)
	bestK := topology.NodeID(-1)
	for _, rr := range s.touched {
		sv := affinity.TierSum(d, s.rackMaxW[rr], s.rackTake[rr], s.cloudTake[t.CloudOfRack(rr)], total)
		if sv < best || (sv == best && s.rackBest[rr] < bestK) {
			best, bestK = sv, s.rackBest[rr]
		}
	}
	return best, bestK
}

// sortBySupply orders ids by supply descending, ties by ascending ID —
// the same strict total order buildBuffer.bySupply defines, so any
// correct sort yields the same sequence. Heapsort keeps the scan
// allocation-free without leaning on closure escape analysis.
//
//lint:hotpath
func sortBySupply(ids []topology.NodeID, sup []int) {
	n := len(ids)
	for root := n/2 - 1; root >= 0; root-- {
		siftSupply(ids, sup, root, n)
	}
	for end := n - 1; end > 0; end-- {
		ids[0], ids[end] = ids[end], ids[0]
		siftSupply(ids, sup, 0, end)
	}
}

// supplyAfter reports whether a sorts after b: lower supply last, ties
// broken by higher ID last.
//
//lint:hotpath
func supplyAfter(sup []int, a, b topology.NodeID) bool {
	if sup[a] != sup[b] {
		return sup[a] < sup[b]
	}
	return a > b
}

//lint:hotpath
func siftSupply(ids []topology.NodeID, sup []int, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && supplyAfter(sup, ids[child+1], ids[child]) {
			child++
		}
		if !supplyAfter(sup, ids[child], ids[root]) {
			return
		}
		ids[root], ids[child] = ids[child], ids[root]
		root = child
	}
}
