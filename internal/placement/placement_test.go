package placement

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
)

func twoRacks(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func paperPlant(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.PaperSimPlant()
}

// randCapacity builds a random L on the plant.
func randCapacity(r *rand.Rand, n, m, maxPer int) [][]int {
	l := make([][]int, n)
	for i := range l {
		l[i] = make([]int, m)
		for j := range l[i] {
			l[i][j] = r.Intn(maxPer + 1)
		}
	}
	return l
}

func TestOnlineHeuristicSingleNodeFastPath(t *testing.T) {
	tp := twoRacks(t)
	l := randCapacity(rand.New(rand.NewSource(1)), tp.Nodes(), 2, 0)
	l[4] = []int{5, 5}
	h := &OnlineHeuristic{}
	alloc, err := h.Place(tp, l, model.Request{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := alloc.Distance(tp); d != 0 {
		t.Errorf("distance = %v, want 0", d)
	}
	if alloc.VMsOnNode(4) != 5 {
		t.Errorf("expected all VMs on node 4, got %v", alloc)
	}
}

func TestOnlineHeuristicAdmissionCheck(t *testing.T) {
	tp := twoRacks(t)
	l := randCapacity(rand.New(rand.NewSource(1)), tp.Nodes(), 2, 1)
	err := (&OnlineHeuristic{}).Place2Err(tp, l, model.Request{100, 0})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

// Place2Err is a test helper exercising the error path without caring
// about the allocation.
func (h *OnlineHeuristic) Place2Err(tp *topology.Topology, l [][]int, r model.Request) error {
	_, err := h.Place(tp, l, r)
	return err
}

func TestOnlineHeuristicBadShape(t *testing.T) {
	tp := twoRacks(t)
	if _, err := (&OnlineHeuristic{}).Place(tp, [][]int{{1, 1}}, model.Request{1, 0}); err == nil {
		t.Error("short capacity matrix accepted")
	}
}

func TestOnlineHeuristicPrefersRackLocality(t *testing.T) {
	tp := twoRacks(t)
	// Rack 0 (nodes 0,1,2) can host the request across two nodes; rack 1
	// would need three nodes. The heuristic must stay in rack 0.
	l := [][]int{
		{3, 0}, {2, 0}, {0, 0},
		{2, 0}, {2, 0}, {1, 0},
	}
	alloc, err := (&OnlineHeuristic{}).Place(tp, l, model.Request{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := alloc.Distance(tp)
	// 3+2 in rack 0, center = node 0: 2·d1 = 2.
	if d != 2 {
		t.Errorf("distance = %v, want 2 (alloc %v)", d, alloc)
	}
	if alloc.VMsOnNode(0) != 3 || alloc.VMsOnNode(1) != 2 {
		t.Errorf("allocation not rack-packed: %v", alloc)
	}
}

func TestOnlineHeuristicValidAllocations(t *testing.T) {
	tp := paperPlant(t)
	r := rand.New(rand.NewSource(42))
	h := &OnlineHeuristic{}
	for trial := 0; trial < 50; trial++ {
		l := randCapacity(r, tp.Nodes(), 3, 3)
		req := model.Request{r.Intn(5), r.Intn(5), r.Intn(3)}
		if model.Sum(req) == 0 {
			req[0] = 1
		}
		alloc, err := h.Place(tp, l, req)
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				continue
			}
			t.Fatal(err)
		}
		if verr := alloc.Validate(req, l); verr != nil {
			t.Fatalf("trial %d: %v", trial, verr)
		}
	}
}

// Property: the heuristic's distance is never better than the exact SD
// optimum, and never catastrophically worse on feasible instances (the
// greedy around the best-scanned center is within the worst single-tier
// factor).
func TestQuickHeuristicBoundedByExact(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	h := &OnlineHeuristic{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randCapacity(r, tp.Nodes(), 2, 3)
		req := model.Request{1 + r.Intn(6), r.Intn(4)}
		exact, errEx := sdexact.SolveSD(tp, l, req)
		alloc, errH := h.Place(tp, l, req)
		if errEx != nil || errH != nil {
			return errors.Is(errEx, sdexact.ErrInfeasible) == errors.Is(errH, ErrInsufficient)
		}
		d, _ := alloc.Distance(tp)
		return d >= exact.Distance-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The scan-all-centers policy weakly dominates the random-center policy.
func TestCenterPolicyDominance(t *testing.T) {
	tp := paperPlant(t)
	r := rand.New(rand.NewSource(7))
	scan := &OnlineHeuristic{Policy: ScanAllCenters}
	for trial := 0; trial < 30; trial++ {
		l := randCapacity(r, tp.Nodes(), 3, 3)
		req := model.Request{1 + r.Intn(4), r.Intn(4), r.Intn(2)}
		rnd := &OnlineHeuristic{Policy: RandomCenter, Rand: rand.New(rand.NewSource(int64(trial)))}
		a1, err1 := scan.Place(tp, l, req)
		a2, err2 := rnd.Place(tp, l, req)
		if err1 != nil || err2 != nil {
			if errors.Is(err1, ErrInsufficient) && errors.Is(err2, ErrInsufficient) {
				continue
			}
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		d1, _ := a1.Distance(tp)
		d2, _ := a2.Distance(tp)
		if d1 > d2+1e-9 {
			t.Errorf("trial %d: scan-all (%v) worse than random-center (%v)", trial, d1, d2)
		}
	}
}

func TestGlobalSubOptNeverWorseThanSequential(t *testing.T) {
	tp := paperPlant(t)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		l := randCapacity(r, tp.Nodes(), 3, 4)
		var reqs []model.Request
		for q := 0; q < 5; q++ {
			reqs = append(reqs, model.Request{1 + r.Intn(3), r.Intn(3), r.Intn(2)})
		}
		seq, err := PlaceSequential(tp, l, reqs, &OnlineHeuristic{})
		if err != nil {
			t.Fatal(err)
		}
		g := &GlobalSubOpt{}
		glob, err := g.PlaceBatch(tp, l, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if glob.Failed != seq.Failed {
			continue // different admission outcomes aren't comparable
		}
		if glob.Total > seq.Total+1e-9 {
			t.Errorf("trial %d: global %.2f worse than sequential %.2f", trial, glob.Total, seq.Total)
		}
	}
}

func TestGlobalSubOptRespectsCapacity(t *testing.T) {
	tp := twoRacks(t)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		l := randCapacity(r, tp.Nodes(), 2, 3)
		reqs := []model.Request{
			{1 + r.Intn(3), r.Intn(2)},
			{1 + r.Intn(3), r.Intn(2)},
			{1 + r.Intn(2), r.Intn(2)},
		}
		g := &GlobalSubOpt{}
		res, err := g.PlaceBatch(tp, l, reqs)
		if err != nil {
			t.Fatal(err)
		}
		// Combined occupancy per node/type must respect L, and each placed
		// request must be exactly satisfied.
		for i := 0; i < tp.Nodes(); i++ {
			for j := 0; j < 2; j++ {
				used := 0
				for _, a := range res.Allocs {
					if a != nil {
						used += a[i][j]
					}
				}
				if used > l[i][j] {
					t.Fatalf("trial %d: node %d type %d over capacity (%d > %d)", trial, i, j, used, l[i][j])
				}
			}
		}
		for q, a := range res.Allocs {
			if a != nil && !a.Satisfies(reqs[q]) {
				t.Fatalf("trial %d: request %d mutated to %v, want %v", trial, q, a.Vector(), reqs[q])
			}
		}
	}
}

func TestGlobalSubOptImprovesContendedBatch(t *testing.T) {
	tp := twoRacks(t)
	// Sequential greedy makes request A grab node 0 (3 slots) + node 1,
	// leaving B to straddle racks. The exchange phase must help.
	l := [][]int{
		{3, 0}, {1, 0}, {0, 0},
		{2, 0}, {2, 0}, {0, 0},
	}
	reqs := []model.Request{{4, 0}, {4, 0}}
	seq, err := PlaceSequential(tp, l, reqs, &OnlineHeuristic{})
	if err != nil {
		t.Fatal(err)
	}
	g := &GlobalSubOpt{}
	glob, err := g.PlaceBatch(tp, l, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if glob.Total > seq.Total {
		t.Fatalf("global %.2f > sequential %.2f", glob.Total, seq.Total)
	}
	// Exact optimum for reference: A in rack 0 (3+1 → d1), B in rack 1
	// (2+2 → 2·d1) → 3.
	exact, err := sdexact.SolveGSD(tp, l, reqs, sdexact.GSDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if glob.Total < exact.Total-1e-9 {
		t.Fatalf("global %.2f beats exact optimum %.2f — bookkeeping bug", glob.Total, exact.Total)
	}
}

// Property: global sub-optimization stays sandwiched between the exact GSD
// optimum and the sequential heuristic.
func TestQuickGlobalSandwich(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randCapacity(r, tp.Nodes(), 1, 4)
		reqs := []model.Request{{1 + r.Intn(3)}, {1 + r.Intn(3)}}
		total := 0
		for i := range l {
			total += l[i][0]
		}
		if reqs[0][0]+reqs[1][0] > total {
			return true
		}
		exact, errE := sdexact.SolveGSD(tp, l, reqs, sdexact.GSDOptions{})
		if errE != nil {
			return false
		}
		g := &GlobalSubOpt{}
		glob, errG := g.PlaceBatch(tp, l, reqs)
		if errG != nil || glob.Failed > 0 {
			return false
		}
		seq, errS := PlaceSequential(tp, l, reqs, &OnlineHeuristic{})
		if errS != nil || seq.Failed > 0 {
			return false
		}
		return glob.Total >= exact.Total-1e-9 && glob.Total <= seq.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGlobalSubOptSinglePassAblation(t *testing.T) {
	tp := paperPlant(t)
	r := rand.New(rand.NewSource(5))
	l := randCapacity(r, tp.Nodes(), 3, 3)
	var reqs []model.Request
	for q := 0; q < 8; q++ {
		reqs = append(reqs, model.Request{1 + r.Intn(3), r.Intn(3), r.Intn(2)})
	}
	one := &GlobalSubOpt{MaxPasses: 1}
	fix := &GlobalSubOpt{}
	r1, err := one.PlaceBatch(tp, l, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fix.PlaceBatch(tp, l, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Total > r1.Total+1e-9 {
		t.Errorf("fixpoint (%v) worse than single pass (%v)", rf.Total, r1.Total)
	}
	if r1.Passes != 1 {
		t.Errorf("single pass executed %d passes", r1.Passes)
	}
}

func TestBaselinesProduceValidAllocations(t *testing.T) {
	tp := paperPlant(t)
	r := rand.New(rand.NewSource(17))
	placers := []Placer{
		&Random{Rand: rand.New(rand.NewSource(23))},
		FirstFit{},
		RoundRobinStripe{},
		PackBestFit{},
		&OnlineHeuristic{},
	}
	for trial := 0; trial < 25; trial++ {
		l := randCapacity(r, tp.Nodes(), 3, 3)
		req := model.Request{1 + r.Intn(4), r.Intn(4), r.Intn(2)}
		for _, p := range placers {
			alloc, err := p.Place(tp, l, req)
			if err != nil {
				if errors.Is(err, ErrInsufficient) {
					continue
				}
				t.Fatalf("%s trial %d: %v", p.Name(), trial, err)
			}
			if verr := alloc.Validate(req, l); verr != nil {
				t.Fatalf("%s trial %d: %v (alloc %v)", p.Name(), trial, verr, alloc)
			}
		}
	}
}

func TestBaselinesRejectInfeasible(t *testing.T) {
	tp := twoRacks(t)
	l := randCapacity(rand.New(rand.NewSource(1)), tp.Nodes(), 2, 1)
	req := model.Request{1000, 0}
	for _, p := range []Placer{
		&Random{Rand: rand.New(rand.NewSource(2))},
		FirstFit{}, RoundRobinStripe{}, PackBestFit{},
	} {
		if _, err := p.Place(tp, l, req); !errors.Is(err, ErrInsufficient) {
			t.Errorf("%s: err = %v, want ErrInsufficient", p.Name(), err)
		}
	}
}

func TestPlacerNames(t *testing.T) {
	names := map[string]interface{ Name() string }{
		"online-heuristic":               &OnlineHeuristic{},
		"online-heuristic/random-center": &OnlineHeuristic{Policy: RandomCenter},
		"random":                         &Random{},
		"first-fit":                      FirstFit{},
		"round-robin":                    RoundRobinStripe{},
		"pack-best-fit":                  PackBestFit{},
		"global-subopt":                  &GlobalSubOpt{},
	}
	for want, p := range names {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// On average, affinity-aware placement must produce much shorter distances
// than the affinity-blind baselines — the core claim of the paper.
func TestHeuristicBeatsBaselinesOnAverage(t *testing.T) {
	tp := paperPlant(t)
	r := rand.New(rand.NewSource(99))
	h := &OnlineHeuristic{}
	rrob := RoundRobinStripe{}
	var sumH, sumRR float64
	trials := 0
	for trial := 0; trial < 40; trial++ {
		l := randCapacity(r, tp.Nodes(), 3, 3)
		req := model.Request{2 + r.Intn(4), 1 + r.Intn(4), r.Intn(2)}
		a1, err1 := h.Place(tp, l, req)
		a2, err2 := rrob.Place(tp, l, req)
		if err1 != nil || err2 != nil {
			continue
		}
		d1, _ := a1.Distance(tp)
		d2, _ := a2.Distance(tp)
		sumH += d1
		sumRR += d2
		trials++
	}
	if trials < 10 {
		t.Fatalf("only %d comparable trials", trials)
	}
	if !(sumH < sumRR*0.8) {
		t.Errorf("heuristic total %.1f not clearly better than round-robin %.1f", sumH, sumRR)
	}
}

func TestPlaceSequentialCountsFailures(t *testing.T) {
	tp := twoRacks(t)
	l := [][]int{{2, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}
	reqs := []model.Request{{2, 0}, {1, 0}}
	res, err := PlaceSequential(tp, l, reqs, &OnlineHeuristic{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Errorf("Failed = %d, want 1", res.Failed)
	}
	if res.Allocs[0] == nil || res.Allocs[1] != nil {
		t.Error("wrong request failed")
	}
}

// TestTheorem2Inequality verifies the paper's Theorem 2 statement on a
// concrete instance: two clusters with distinct centers N_x and N_y,
// where cluster 1 holds a VM on N_y (the other's center) and cluster 2
// holds one on a node N_k with D_xy + D_yk > D_xk; trading those VMs
// strictly decreases the summed distance.
func TestTheorem2Inequality(t *testing.T) {
	tp := twoRacks(t) // nodes 0-2 rack 0, nodes 3-5 rack 1
	// Cluster A: mass on node 0 (center x=0), stray on node 3 (=N_y).
	a := affinity.Allocation{{2, 0}, {0, 0}, {0, 0}, {1, 0}, {0, 0}, {0, 0}}
	// Cluster B: mass on node 3 (center y=3), stray on node 1 (=N_k,
	// rack 0). Triangle: D(0,3) + D(3,1) = 2 + 2 = 4 > D(0,1) = 1.
	b := affinity.Allocation{{0, 0}, {1, 0}, {0, 0}, {2, 0}, {0, 0}, {0, 0}}
	da0, ca := a.Distance(tp)
	db0, cb := b.Distance(tp)
	if ca == cb {
		t.Fatalf("precondition violated: same centers %d", ca)
	}
	sumBefore := da0 + db0
	// Execute the Theorem-2 exchange: A's VM on node 3 ↔ B's VM on node 1.
	a.Remove(3, 0)
	a.Add(1, 0)
	b.Remove(1, 0)
	b.Add(3, 0)
	da1, _ := a.Distance(tp)
	db1, _ := b.Distance(tp)
	if da1+db1 >= sumBefore {
		t.Errorf("exchange did not decrease the sum: %v → %v", sumBefore, da1+db1)
	}
}

func TestMoveDeltaScreenConsistency(t *testing.T) {
	// The movePass quick screen relies on MoveDelta agreeing in sign with
	// the true recomputed distance when the center does not change; verify
	// on a handcrafted case.
	tp := twoRacks(t)
	a := affinity.Allocation{{3, 0}, {0, 0}, {0, 0}, {1, 0}, {0, 0}, {0, 0}}
	d0, center := a.Distance(tp)
	if center != 0 {
		t.Fatalf("center = %d", center)
	}
	// Moving the stray VM from node 3 (cross rack) to node 1 (same rack)
	// must improve by d2−d1 = 1.
	b := a.Clone()
	b.Remove(3, 0)
	b.Add(1, 0)
	d1, _ := b.Distance(tp)
	if math.Abs((d1-d0)-affinity.MoveDelta(tp, center, 3, 1)) > 1e-9 {
		t.Errorf("delta mismatch: %v vs %v", d1-d0, affinity.MoveDelta(tp, center, 3, 1))
	}
}
