// Delta placement — growing and shrinking a live virtual cluster.
//
// The paper places a cluster once and holds it; the elastic job-driven
// extension (cloudsim's mid-job resize) needs two more primitives. Grow:
// extend an existing cluster C by a per-type delta, keeping the new VMs
// near C's current central node — Algorithm 1's greedy fill, started at
// that center with C's rack/cloud profile already on the tallies, so the
// merged DC(C′) is priced exactly and the fill order is the one a fresh
// build around that center would use. Shrink: give back a per-type delta
// by repeatedly removing the VM whose departure minimizes the resulting
// DC(C), probed through the evaluator's RemovePreview.
//
// Both grow forms reuse the pooled scanScratch of the tier-aggregated
// scan, so the sparse path stays allocation-free in steady state.
package placement

import (
	"errors"
	"fmt"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// PlaceDelta extends the cluster alloc by delta against free capacity l,
// filling greedily around the cluster's current central node. The new
// VMs are added to alloc in place and returned as sparse entries (a
// fresh slice, aliasing nothing), together with the merged cluster's
// DC and central node. l is read, never written: committing the delta
// against an inventory is the caller's step, exactly as with Place. An
// empty alloc degenerates to a full placement (center chosen by the
// scan), bit-identical to Place.
func (h *OnlineHeuristic) PlaceDelta(t *topology.Topology, l [][]int, alloc affinity.Allocation, delta model.Request) ([]affinity.VMEntry, float64, topology.NodeID, error) {
	if h.Policy != ScanAllCenters {
		return nil, 0, -1, fmt.Errorf("placement: PlaceDelta requires ScanAllCenters, placer uses %q", h.Name())
	}
	if len(l) != t.Nodes() {
		return nil, 0, -1, fmt.Errorf("placement: capacity matrix has %d rows, topology has %d nodes", len(l), t.Nodes())
	}
	ds, err := h.getDense(t, l)
	if err != nil {
		return nil, 0, -1, err
	}
	defer h.putDense(ds)
	cur := alloc.Sparse()
	dc, center, err := h.PlaceDeltaSparse(ds.idx, cur, delta, &ds.sp)
	if err != nil {
		return nil, 0, -1, err
	}
	entries := append([]affinity.VMEntry(nil), ds.sp.Entries...)
	for _, e := range entries {
		alloc[e.Node][e.Type] += e.Count
	}
	return entries, dc, center, nil
}

// PlaceDeltaSparse is PlaceDelta against a persistent tier index: cur
// holds the existing cluster's non-zero cells (it must describe VMs
// already committed against the inventory the index aliases, so they are
// absent from L), dst receives the delta's entries in take order, and
// the returned DC/center price the merged cluster. Steady-state calls
// are allocation-free once dst and the pooled scratch have grown to
// their working sizes. cur is only read.
func (h *OnlineHeuristic) PlaceDeltaSparse(idx *affinity.TierIndex, cur []affinity.VMEntry, delta model.Request, dst *affinity.SparseAlloc) (float64, topology.NodeID, error) {
	if h.Policy != ScanAllCenters {
		return 0, -1, fmt.Errorf("placement: PlaceDeltaSparse requires ScanAllCenters, placer uses %q", h.Name())
	}
	om := h.obsHandles()
	om.calls.Inc()
	dc, center, fast, err := h.placeDeltaCore(idx, cur, delta, dst)
	if err != nil {
		if errors.Is(err, ErrInsufficient) {
			om.infeasible.Inc()
		}
		return 0, -1, err
	}
	if fast {
		om.fastPath.Inc()
		om.dc.Observe(0)
	} else {
		om.dc.Observe(dc)
	}
	return dc, center, nil
}

// placeDeltaCore validates the inputs, seeds the scan tallies with the
// existing cluster, scores them for its current center, and replays the
// greedy fill of delta around that center on top of the seeded profile.
// The final score therefore prices the merged cluster exactly as
// affinity.DistanceOf would. fast reports the empty-cluster fall-through
// to the full placement's fast path. No metrics, mirroring
// placeSparseCore; the allocation-free tally work lives in the
// annotated seedEntries/fillFrom/score helpers.
func (h *OnlineHeuristic) placeDeltaCore(idx *affinity.TierIndex, cur []affinity.VMEntry, delta model.Request, dst *affinity.SparseAlloc) (float64, topology.NodeID, bool, error) {
	t := idx.Topology()
	m := idx.Types()
	if len(delta) != m {
		return 0, -1, false, fmt.Errorf("placement: delta has %d types, index has %d", len(delta), m)
	}
	curTotal := 0
	for _, e := range cur {
		if int(e.Node) < 0 || int(e.Node) >= t.Nodes() || int(e.Type) < 0 || int(e.Type) >= m {
			return 0, -1, false, fmt.Errorf("placement: cluster entry (%d, %d) outside %dx%d plant", e.Node, e.Type, t.Nodes(), m)
		}
		if e.Count < 0 {
			return 0, -1, false, fmt.Errorf("placement: cluster entry (%d, %d) has negative count %d", e.Node, e.Type, e.Count)
		}
		curTotal += e.Count
	}
	if curTotal == 0 {
		// Growing nothing is placing: let the scan pick the center.
		return h.placeSparseCore(idx, delta, dst)
	}
	if err := admitAvail(idx.Avail(), delta); err != nil {
		return 0, -1, false, err
	}
	dst.Reset(t.Nodes(), m)
	T := 0
	for _, v := range delta {
		T += v
	}
	d := t.Distances()
	s := h.getScan(t, m)
	defer h.putScan(s)
	s.resetTallies()
	s.seedEntries(cur)
	dc0, center := s.score(t, d, s.total)
	if T == 0 {
		return dc0, center, false, nil
	}
	s.resid = append(s.resid[:0], delta...)
	if !s.fillFrom(idx, center, dst, false) {
		return 0, -1, false, fmt.Errorf("placement: internal error — no delta built for feasible grow %v", delta)
	}
	dc, k := s.score(t, d, s.total)
	return dc, k, false, nil
}

// seedEntries folds an existing cluster's cells into the tallies so a
// subsequent fill extends its profile. The caller has validated the
// entries (in range, non-negative). Entries may repeat cells; each
// distinct node is credited once with its summed load, keeping the
// per-rack max-load tie-breaks order-independent.
//
//lint:hotpath
func (s *scanScratch) seedEntries(cur []affinity.VMEntry) {
	loads := s.load()
	s.seedUniq = s.seedUniq[:0]
	for _, e := range cur {
		if e.Count == 0 {
			continue
		}
		if loads[e.Node] == 0 {
			s.seedUniq = append(s.seedUniq, e.Node)
		}
		loads[e.Node] += e.Count
	}
	for _, i := range s.seedUniq {
		w := loads[i]
		loads[i] = 0 // credit re-accumulates it
		s.credit(i, w)
	}
}

// ReleaseSubset shrinks alloc by the per-type delta, choosing as victims
// the VMs whose removal keeps DC(C) lowest: one VM at a time, the
// hosting node with the best RemovePreview (ties toward the lowest node
// ID, then the lowest type ID still owed). The victims are removed from
// alloc in place and returned as aggregated sparse entries — a fresh
// slice the caller may keep or hand to Inventory.ReleaseList. The call
// fails, changing nothing, if alloc holds fewer VMs of some type than
// delta asks back.
func ReleaseSubset(t *topology.Topology, alloc affinity.Allocation, delta model.Request) ([]affinity.VMEntry, error) {
	victims, err := ReleaseSubsetSparse(t, alloc.Sparse(), delta)
	if err != nil {
		return nil, err
	}
	for _, e := range victims {
		alloc[e.Node][e.Type] -= e.Count
	}
	return victims, nil
}

// ReleaseSubsetSparse is ReleaseSubset over the cluster's sparse cells.
// cur is only read; the returned entries alias neither cur nor any
// internal state.
func ReleaseSubsetSparse(t *topology.Topology, cur []affinity.VMEntry, delta model.Request) ([]affinity.VMEntry, error) {
	K := 0
	for j, v := range delta {
		if v < 0 {
			return nil, fmt.Errorf("placement: negative shrink delta %d for type %d", v, j)
		}
		K += v
	}
	if K == 0 {
		return nil, nil
	}
	// Aggregate the cluster's cells (duplicates summed) into a private
	// working copy and check per-type feasibility.
	cells := make([]affinity.VMEntry, 0, len(cur))
	have := make([]int, len(delta))
	for _, e := range cur {
		if e.Count <= 0 {
			continue
		}
		if int(e.Node) < 0 || int(e.Node) >= t.Nodes() {
			return nil, fmt.Errorf("placement: cluster entry node %d outside %d-node plant", e.Node, t.Nodes())
		}
		if int(e.Type) < len(have) {
			have[e.Type] += e.Count
		}
		merged := false
		for i := range cells {
			if cells[i].Node == e.Node && cells[i].Type == e.Type {
				cells[i].Count += e.Count
				merged = true
				break
			}
		}
		if !merged {
			cells = append(cells, affinity.VMEntry{Node: e.Node, Type: e.Type, Count: e.Count})
		}
	}
	for j, v := range delta {
		if v > have[j] {
			return nil, fmt.Errorf("placement: shrink wants %d VMs of type %d back, cluster holds %d", v, j, have[j])
		}
	}
	ev := affinity.NewDistanceEvaluator(t, nil)
	for _, c := range cells {
		ev.AddVMs(c.Node, c.Count)
	}
	need := append([]int(nil), delta...)
	removable := func(i topology.NodeID) bool {
		for _, c := range cells {
			if c.Node == i && c.Count > 0 && int(c.Type) < len(need) && need[c.Type] > 0 {
				return true
			}
		}
		return false
	}
	victims := make([]affinity.VMEntry, 0, len(need))
	for k := 0; k < K; k++ {
		bestNode := topology.NodeID(-1)
		bestDC := 0.0
		for _, i := range ev.HostingNodes() {
			if !removable(i) {
				continue
			}
			dc, _ := ev.RemovePreview(i)
			if bestNode < 0 || dc < bestDC {
				bestNode, bestDC = i, dc
			}
		}
		if bestNode < 0 {
			return nil, fmt.Errorf("placement: internal error — no removable VM for shrink %v with %d owed", delta, K-k)
		}
		// Lowest owed type on the victim node.
		bestType := model.VMTypeID(-1)
		for _, c := range cells {
			if c.Node == bestNode && c.Count > 0 && int(c.Type) < len(need) && need[c.Type] > 0 {
				if bestType < 0 || c.Type < bestType {
					bestType = c.Type
				}
			}
		}
		for i := range cells {
			if cells[i].Node == bestNode && cells[i].Type == bestType {
				cells[i].Count--
				break
			}
		}
		need[bestType]--
		ev.Remove(bestNode)
		merged := false
		for i := range victims {
			if victims[i].Node == bestNode && victims[i].Type == bestType {
				victims[i].Count++
				merged = true
				break
			}
		}
		if !merged {
			victims = append(victims, affinity.VMEntry{Node: bestNode, Type: bestType, Count: 1})
		}
	}
	return victims, nil
}
