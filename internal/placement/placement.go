// Package placement implements the paper's two provisioning algorithms —
// the online heuristic VM placement (Algorithm 1) and the global
// sub-optimization over a batch of requests (Algorithm 2) — together with
// the baseline placers used in the evaluation.
//
// All placers consume a read-only snapshot of the remaining-capacity
// matrix L and produce an allocation matrix C; committing C to the live
// inventory is the caller's job (see package inventory).
package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// ErrInsufficient is returned when the request exceeds the available
// resources (the paper's admission test R_j ≤ A_j fails).
var ErrInsufficient = errors.New("placement: request exceeds available resources")

// Placer turns one request into one allocation against a capacity snapshot.
type Placer interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Place computes an allocation for r on topology t given remaining
	// capacities l. It must not mutate l.
	Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error)
}

// available computes A_j = Σ_i L_ij.
func available(l [][]int, m int) []int {
	a := make([]int, m)
	for i := range l {
		for j := 0; j < m; j++ {
			a[j] += l[i][j]
		}
	}
	return a
}

// admit implements the paper's first check: every R_j ≤ A_j.
func admit(l [][]int, r model.Request) error {
	a := available(l, len(r))
	for j := range r {
		if r[j] > a[j] {
			return fmt.Errorf("%w: type %d needs %d, %d available", ErrInsufficient, j, r[j], a[j])
		}
	}
	return nil
}

// CenterPolicy selects how Algorithm 1 picks candidate central nodes.
type CenterPolicy int

const (
	// ScanAllCenters tries every node as the center and keeps the best
	// allocation. Same O(n²m) complexity as the paper's loop, strictly
	// dominating results.
	ScanAllCenters CenterPolicy = iota
	// RandomCenter follows the paper's narration: pick one random center,
	// then keep scanning and switch only when an improvement appears.
	// With a nil Rand it degenerates to starting from node 0.
	RandomCenter
)

// OnlineHeuristic is the paper's Algorithm 1: greedy placement around a
// central node, packing the center first, then its rack peers in
// descending supply order, then remote nodes.
type OnlineHeuristic struct {
	// Policy selects the center scan strategy; default ScanAllCenters.
	Policy CenterPolicy
	// Rand seeds RandomCenter; ignored by ScanAllCenters. Not safe for
	// concurrent Place calls when set.
	Rand *rand.Rand
}

// Name implements Placer.
func (h *OnlineHeuristic) Name() string {
	if h.Policy == RandomCenter {
		return "online-heuristic/random-center"
	}
	return "online-heuristic"
}

// Place implements Placer with the paper's Algorithm 1.
func (h *OnlineHeuristic) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	n := t.Nodes()
	m := len(r)
	if len(l) != n {
		return nil, fmt.Errorf("placement: capacity matrix has %d rows, topology has %d nodes", len(l), n)
	}
	if err := admit(l, r); err != nil {
		return nil, err
	}

	// Fast path (Algorithm 1, lines 9–14): a single node covers R.
	for i := 0; i < n; i++ {
		if model.Covers(l[i], r) {
			alloc := affinity.NewAllocation(n, m)
			copy(alloc[i], r)
			return alloc, nil
		}
	}

	var (
		best     affinity.Allocation
		bestDist float64
	)
	order := h.centerOrder(n)
	for _, center := range order {
		alloc, ok := buildAround(t, l, r, center)
		if !ok {
			continue
		}
		d, _ := alloc.Distance(t)
		if best == nil || d < bestDist {
			best, bestDist = alloc, d
		}
		if h.Policy == RandomCenter && best != nil {
			// The paper breaks out of L1 once a full allocation improves
			// on the incumbent; with a random start that means the first
			// complete allocation wins unless a later center strictly
			// improves it. We keep scanning but the random start already
			// decided the tie-breaks, matching the published behaviour of
			// "random center, then local improvement".
			continue
		}
	}
	if best == nil {
		// admit() held, so aggregate capacity suffices; every center can
		// reach every node, so construction cannot fail.
		return nil, fmt.Errorf("placement: internal error — no allocation built for feasible request %v", r)
	}
	return best, nil
}

// centerOrder yields candidate centers: identity order for the full scan,
// or a random rotation for RandomCenter.
func (h *OnlineHeuristic) centerOrder(n int) []topology.NodeID {
	order := make([]topology.NodeID, n)
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	if h.Policy == RandomCenter && h.Rand != nil {
		start := h.Rand.Intn(n)
		rot := make([]topology.NodeID, 0, n)
		rot = append(rot, order[start:]...)
		rot = append(rot, order[:start]...)
		return rot
	}
	return order
}

// buildAround greedily builds an allocation centered on the given node:
// the center takes com(L[center], R); same-rack nodes follow, sorted by
// how much of the residual they can supply (descending, the paper's
// getList ordering); remote nodes close the remainder in ascending
// distance tiers.
func buildAround(t *topology.Topology, l [][]int, r model.Request, center topology.NodeID) (affinity.Allocation, bool) {
	n := t.Nodes()
	m := len(r)
	alloc := affinity.NewAllocation(n, m)
	residual := r.Clone()

	take := func(i topology.NodeID) bool {
		grab := model.Min(l[i], residual)
		if model.Sum(grab) == 0 {
			return false
		}
		for j, k := range grab {
			alloc[i][j] += k
			residual[j] -= k
		}
		return residual.IsZero()
	}

	if take(center) {
		return alloc, true
	}
	// Same rack, descending supply of the current residual; ties by ID.
	rackPeers := peersBySupply(t.RackNodes(t.RackOf(center)), l, residual, center)
	for _, i := range rackPeers {
		if take(i) {
			return alloc, true
		}
	}
	// Remote nodes: ascending distance from the center, then descending
	// supply within the same distance tier.
	remote := make([]topology.NodeID, 0, n)
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if t.RackOf(id) != t.RackOf(center) {
			remote = append(remote, id)
		}
	}
	sort.SliceStable(remote, func(a, b int) bool {
		da, db := t.Distance(remote[a], center), t.Distance(remote[b], center)
		if da != db {
			return da < db
		}
		sa, sb := model.Sum(model.Min(l[remote[a]], residual)), model.Sum(model.Min(l[remote[b]], residual))
		if sa != sb {
			return sa > sb
		}
		return remote[a] < remote[b]
	})
	for _, i := range remote {
		if take(i) {
			return alloc, true
		}
	}
	return alloc, residual.IsZero()
}

// peersBySupply sorts the center's rack peers by descending supply of the
// residual, excluding the center itself.
func peersBySupply(rack []topology.NodeID, l [][]int, residual model.Request, center topology.NodeID) []topology.NodeID {
	peers := make([]topology.NodeID, 0, len(rack))
	for _, id := range rack {
		if id != center {
			peers = append(peers, id)
		}
	}
	sort.SliceStable(peers, func(a, b int) bool {
		sa := model.Sum(model.Min(l[peers[a]], residual))
		sb := model.Sum(model.Min(l[peers[b]], residual))
		if sa != sb {
			return sa > sb
		}
		return peers[a] < peers[b]
	})
	return peers
}

// BatchResult is the outcome of placing a batch of requests.
type BatchResult struct {
	Allocs []affinity.Allocation // nil entry: request could not be placed
	Total  float64               // Σ DC over placed requests
	Failed int                   // requests that could not be placed
	Swaps  int                   // improving Theorem-2 exchanges applied
	Passes int                   // local-search sweeps executed
}

// GlobalSubOpt is the paper's Algorithm 2: place every admitted request
// with the online heuristic, then run a Theorem-2 exchange local search
// across allocation pairs to shrink the summed distance.
type GlobalSubOpt struct {
	// Online is the per-request placer of step 2; a zero-value
	// OnlineHeuristic is used when nil.
	Online *OnlineHeuristic
	// MaxPasses caps local-search sweeps (0 = run to fixpoint, bounded by
	// a safety limit). The paper performs a single pass; run-to-fixpoint
	// is the ablation variant.
	MaxPasses int
}

// Name identifies the strategy.
func (g *GlobalSubOpt) Name() string { return "global-subopt" }

// PlaceBatch provisions the whole batch against the shared capacity
// snapshot l (not mutated). Requests that no longer fit as capacity
// depletes get a nil allocation and count in Failed.
func (g *GlobalSubOpt) PlaceBatch(t *topology.Topology, l [][]int, reqs []model.Request) (*BatchResult, error) {
	online := g.Online
	if online == nil {
		online = &OnlineHeuristic{}
	}
	n := t.Nodes()
	if len(l) != n {
		return nil, fmt.Errorf("placement: capacity matrix has %d rows, topology has %d nodes", len(l), n)
	}
	work := cloneMatrix(l)
	res := &BatchResult{Allocs: make([]affinity.Allocation, len(reqs))}

	// Step 2: sequential online placement, depleting the working capacity.
	for qi, r := range reqs {
		alloc, err := online.Place(t, work, r)
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				res.Failed++
				continue
			}
			return nil, err
		}
		res.Allocs[qi] = alloc
		for i := range alloc {
			for j, k := range alloc[i] {
				work[i][j] -= k
			}
		}
	}

	// Step 3: Theorem-2 exchange local search. Two exchange kinds keep
	// per-node-per-type occupancy feasible:
	//   swap — clusters a and b trade one VM of the same type across two
	//          nodes (capacity neutral);
	//   move — cluster a shifts one VM into residual capacity.
	maxPasses := g.MaxPasses
	hardCap := 64 // fixpoint safety net; each pass monotonically improves
	if maxPasses <= 0 || maxPasses > hardCap {
		maxPasses = hardCap
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		if g.movePass(t, res, work) {
			improved = true
		}
		if g.swapPass(t, res) {
			improved = true
		}
		res.Passes++
		if !improved {
			break
		}
		if g.MaxPasses == 1 {
			break
		}
	}

	res.Total = 0
	for _, a := range res.Allocs {
		if a != nil {
			d, _ := a.Distance(t)
			res.Total += d
		}
	}
	return res, nil
}

// movePass relocates single VMs into residual capacity whenever that
// strictly lowers the owning cluster's DC. Returns true if anything moved.
func (g *GlobalSubOpt) movePass(t *topology.Topology, res *BatchResult, residual [][]int) bool {
	n := t.Nodes()
	improvedAny := false
	for _, a := range res.Allocs {
		if a == nil {
			continue
		}
		d0, center := a.Distance(t)
		for i := 0; i < n; i++ {
			for j := range a[i] {
				if a[i][j] == 0 {
					continue
				}
				from := topology.NodeID(i)
				for q := 0; q < n; q++ {
					to := topology.NodeID(q)
					if to == from || residual[q][j] == 0 {
						continue
					}
					// Quick screen using the current center (Theorem 1).
					if affinity.MoveDelta(t, center, from, to) >= 0 {
						continue
					}
					a.Remove(from, model.VMTypeID(j))
					a.Add(to, model.VMTypeID(j))
					d1, c1 := a.Distance(t)
					if d1 < d0-1e-12 {
						residual[i][j]++
						residual[q][j]--
						d0, center = d1, c1
						improvedAny = true
					} else {
						a.Remove(to, model.VMTypeID(j))
						a.Add(from, model.VMTypeID(j))
					}
					if a[i][j] == 0 {
						break
					}
				}
			}
		}
	}
	return improvedAny
}

// swapPass applies Theorem 2 across cluster pairs with distinct centers:
// trading one same-type VM between two nodes is capacity neutral and is
// kept whenever it shrinks DC(a)+DC(b).
func (g *GlobalSubOpt) swapPass(t *topology.Topology, res *BatchResult) bool {
	improvedAny := false
	allocs := res.Allocs
	for ai := 0; ai < len(allocs); ai++ {
		a := allocs[ai]
		if a == nil {
			continue
		}
		for bi := ai + 1; bi < len(allocs); bi++ {
			b := allocs[bi]
			if b == nil {
				continue
			}
			da, ca := a.Distance(t)
			db, cb := b.Distance(t)
			if ca == cb {
				continue // Theorem 2 precondition: distinct centers
			}
			if g.swapPair(t, a, b, da+db) {
				res.Swaps++
				improvedAny = true
			}
		}
	}
	return improvedAny
}

// swapPair greedily applies improving single-VM swaps between two
// allocations until none remains. Returns true if at least one applied.
func (g *GlobalSubOpt) swapPair(t *topology.Topology, a, b affinity.Allocation, sum0 float64) bool {
	n := len(a)
	m := len(a[0])
	improved := false
	for {
		found := false
		for p := 0; p < n && !found; p++ {
			for q := 0; q < n && !found; q++ {
				if p == q {
					continue
				}
				for j := 0; j < m; j++ {
					if a[p][j] == 0 || b[q][j] == 0 {
						continue
					}
					// Trade: a's VM p→q, b's VM q→p.
					a.Remove(topology.NodeID(p), model.VMTypeID(j))
					a.Add(topology.NodeID(q), model.VMTypeID(j))
					b.Remove(topology.NodeID(q), model.VMTypeID(j))
					b.Add(topology.NodeID(p), model.VMTypeID(j))
					da, _ := a.Distance(t)
					db, _ := b.Distance(t)
					if da+db < sum0-1e-12 {
						sum0 = da + db
						improved = true
						found = true
						break
					}
					// Revert.
					a.Remove(topology.NodeID(q), model.VMTypeID(j))
					a.Add(topology.NodeID(p), model.VMTypeID(j))
					b.Remove(topology.NodeID(p), model.VMTypeID(j))
					b.Add(topology.NodeID(q), model.VMTypeID(j))
				}
			}
		}
		if !found {
			return improved
		}
	}
}

// PlaceSequential places a batch with any single-request placer, depleting
// capacity between requests — the "online" arm of Figs. 5 and 6.
func PlaceSequential(t *topology.Topology, l [][]int, reqs []model.Request, p Placer) (*BatchResult, error) {
	work := cloneMatrix(l)
	res := &BatchResult{Allocs: make([]affinity.Allocation, len(reqs))}
	for qi, r := range reqs {
		alloc, err := p.Place(t, work, r)
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				res.Failed++
				continue
			}
			return nil, err
		}
		res.Allocs[qi] = alloc
		d, _ := alloc.Distance(t)
		res.Total += d
		for i := range alloc {
			for j, k := range alloc[i] {
				work[i][j] -= k
			}
		}
	}
	return res, nil
}

func cloneMatrix(src [][]int) [][]int {
	out := make([][]int, len(src))
	for i := range src {
		out[i] = append([]int(nil), src[i]...)
	}
	return out
}
