// Package placement implements the paper's two provisioning algorithms —
// the online heuristic VM placement (Algorithm 1) and the global
// sub-optimization over a batch of requests (Algorithm 2) — together with
// the baseline placers used in the evaluation.
//
// All placers consume a read-only snapshot of the remaining-capacity
// matrix L and produce an allocation matrix C; committing C to the live
// inventory is the caller's job (see package inventory).
package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/topology"
)

// ErrInsufficient is returned when the request exceeds the available
// resources (the paper's admission test R_j ≤ A_j fails).
var ErrInsufficient = errors.New("placement: request exceeds available resources")

// Placer turns one request into one allocation against a capacity snapshot.
type Placer interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Place computes an allocation for r on topology t given remaining
	// capacities l. It must not mutate l.
	Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error)
}

// available computes A_j = Σ_i L_ij.
func available(l [][]int, m int) []int {
	a := make([]int, m)
	for i := range l {
		for j := 0; j < m; j++ {
			a[j] += l[i][j]
		}
	}
	return a
}

// admit implements the paper's first check, every R_j ≤ A_j, against a
// fresh scan of L — the one-shot form the baseline placers use.
func admit(l [][]int, r model.Request) error {
	return admitAvail(available(l, len(r)), r)
}

// admitAvail is admit against precomputed column totals. Batch drivers
// maintain the totals across requests instead of rescanning the full L
// matrix per admission.
func admitAvail(avail []int, r model.Request) error {
	for j := range r {
		if r[j] > avail[j] {
			return fmt.Errorf("%w: type %d needs %d, %d available", ErrInsufficient, j, r[j], avail[j])
		}
	}
	return nil
}

// CenterPolicy selects how Algorithm 1 picks candidate central nodes.
type CenterPolicy int

const (
	// ScanAllCenters keeps the best allocation over every candidate center,
	// strictly dominating results. Since the build around any center in a
	// rack shares its per-rack tier profile with every other center of that
	// rack, the scan probes one representative center per rack (the
	// max-capacity node) and only re-builds inside racks that tie the best
	// DC — O(racks) builds instead of the paper's O(n), with bit-identical
	// output to ExhaustiveCenters including the lowest-ID tie-break.
	ScanAllCenters CenterPolicy = iota
	// RandomCenter follows the paper's narration: pick one random center,
	// then keep scanning and switch only when an improvement appears.
	// With a nil Rand it degenerates to starting from node 0.
	RandomCenter
	// ExhaustiveCenters is the pre-pruning reference scan: every node is
	// tried as the center, ascending ID, first strict improvement kept.
	// It exists as the equivalence oracle for ScanAllCenters and as the
	// baseline arm of the scale benchmarks; results are identical, cost is
	// O(n) builds per request.
	ExhaustiveCenters
)

// OnlineHeuristic is the paper's Algorithm 1: greedy placement around a
// central node, packing the center first, then its rack peers in
// descending supply order, then remote nodes.
type OnlineHeuristic struct {
	// Policy selects the center scan strategy; default ScanAllCenters.
	Policy CenterPolicy
	// Rand seeds RandomCenter; ignored by ScanAllCenters. Each Place call
	// derives its own generator from a single mutex-guarded draw, so one
	// placer is safe for concurrent Place calls.
	Rand *rand.Rand
	// Obs, when non-nil, receives placement metrics (call counts, fast-path
	// hits, DC of returned allocations). Handles are resolved once on first
	// Place; a nil Obs leaves the hot path with nil-receiver no-ops.
	Obs *obs.Registry

	randMu  sync.Mutex // guards Rand
	obsOnce sync.Once
	metrics placerMetrics

	// bufPool recycles buildBuffers across Place calls on this placer.
	// Buffers are keyed by the (nodes, types) shape; a pooled buffer whose
	// shape no longer matches is dropped rather than resized.
	bufPool sync.Pool
	// scanPool recycles the indexed-scan scratch (see tierscan.go), keyed
	// by topology identity and type count.
	scanPool sync.Pool
	// densePool recycles the transient tier index the dense entry points
	// rebuild over their caller's capacity matrix.
	densePool sync.Pool
}

// denseScratch is a pooled transient TierIndex plus sparse staging for
// dense ScanAllCenters calls that arrive without a persistent index.
type denseScratch struct {
	idx *affinity.TierIndex
	sp  affinity.SparseAlloc
}

// getDense returns a transient index rebound over l — a pooled rebuild
// when the shape matches, a fresh index otherwise.
func (h *OnlineHeuristic) getDense(t *topology.Topology, l [][]int) (*denseScratch, error) {
	if v := h.densePool.Get(); v != nil {
		ds := v.(*denseScratch)
		if ds.idx.Topology() == t && ds.idx.Types() == len(l[0]) {
			if err := ds.idx.Rebind(l); err == nil {
				return ds, nil
			}
		}
	}
	idx, err := affinity.NewTierIndex(t, l)
	if err != nil {
		return nil, err
	}
	return &denseScratch{idx: idx}, nil
}

func (h *OnlineHeuristic) putDense(ds *denseScratch) { h.densePool.Put(ds) }

// placerMetrics are the resolved obs handles of a placer. The zero value
// (all nil) is fully usable: every method is a nil-receiver no-op.
type placerMetrics struct {
	calls      *obs.Counter
	infeasible *obs.Counter
	fastPath   *obs.Counter
	dc         *obs.Histogram
}

func (h *OnlineHeuristic) obsHandles() *placerMetrics {
	h.obsOnce.Do(func() {
		if h.Obs == nil {
			return
		}
		h.metrics = placerMetrics{
			calls:      h.Obs.Counter("placement.place_calls"),
			infeasible: h.Obs.Counter("placement.infeasible"),
			fastPath:   h.Obs.Counter("placement.fastpath_hits"),
			dc:         h.Obs.Histogram("placement.dc", 0, 200, 20),
		}
	})
	return &h.metrics
}

// placeRand derives an independent per-call generator from the shared
// seed source. Only the one seed draw is serialized, so concurrent Place
// calls never share *rand.Rand state.
func (h *OnlineHeuristic) placeRand() *rand.Rand {
	if h.Rand == nil {
		return nil
	}
	h.randMu.Lock()
	seed := h.Rand.Int63()
	h.randMu.Unlock()
	return rand.New(rand.NewSource(seed))
}

// Name implements Placer.
func (h *OnlineHeuristic) Name() string {
	switch h.Policy {
	case RandomCenter:
		return "online-heuristic/random-center"
	case ExhaustiveCenters:
		return "online-heuristic/exhaustive"
	default:
		return "online-heuristic"
	}
}

// Place implements Placer with the paper's Algorithm 1.
func (h *OnlineHeuristic) Place(t *topology.Topology, l [][]int, r model.Request) (affinity.Allocation, error) {
	if len(l) != t.Nodes() {
		return nil, fmt.Errorf("placement: capacity matrix has %d rows, topology has %d nodes", len(l), t.Nodes())
	}
	return h.placeWith(t, l, r, available(l, len(r)))
}

// placeWith is Place against caller-maintained availability column totals
// A_j = Σ_i L_ij, so batch drivers amortize the O(n·m) admission rescan.
// avail is read-only here.
func (h *OnlineHeuristic) placeWith(t *topology.Topology, l [][]int, r model.Request, avail []int) (affinity.Allocation, error) {
	n := t.Nodes()
	m := len(r)
	om := h.obsHandles()
	om.calls.Inc()
	if len(l) != n {
		return nil, fmt.Errorf("placement: capacity matrix has %d rows, topology has %d nodes", len(l), n)
	}
	if err := admitAvail(avail, r); err != nil {
		om.infeasible.Inc()
		return nil, err
	}

	// ScanAllCenters runs on the tier-aggregated index: a transient one
	// is rebuilt over l here (cost comparable to the old per-call
	// aggregate scans); batch drivers and the inventory maintain
	// persistent indexes and call placeSparseCore directly. Shapes the
	// index cannot represent (request narrower than the matrix) fall
	// through to the exhaustive reference scan, which is result-identical.
	if h.Policy == ScanAllCenters && n > 0 && len(l[0]) == m {
		ds, err := h.getDense(t, l)
		if err == nil {
			defer h.putDense(ds)
			dc, _, fast, err := h.placeSparseCore(ds.idx, r, &ds.sp)
			if err != nil {
				return nil, err
			}
			if fast {
				om.fastPath.Inc()
				om.dc.Observe(0)
			} else {
				om.dc.Observe(dc)
			}
			return ds.sp.ToDense(), nil
		}
	}

	// Fast path (Algorithm 1, lines 9–14): a single node covers R.
	for i := 0; i < n; i++ {
		if model.Covers(l[i], r) {
			alloc := affinity.NewAllocation(n, m)
			copy(alloc[i], r)
			om.fastPath.Inc()
			om.dc.Observe(0)
			return alloc, nil
		}
	}

	buf := h.getBuffer(n, m)
	defer h.putBuffer(buf)
	best, bestDist := h.placeExhaustive(t, l, r, buf)
	if best == nil {
		// Admission held, so aggregate capacity suffices; every center can
		// reach every node, so construction cannot fail.
		return nil, fmt.Errorf("placement: internal error — no allocation built for feasible request %v", r)
	}
	om.dc.Observe(bestDist)
	return best, nil
}

// placeExhaustive is the reference center scan: build around every
// candidate center and keep the first strict improvement. RandomCenter
// rotates the scan order; ExhaustiveCenters walks ascending IDs.
func (h *OnlineHeuristic) placeExhaustive(t *topology.Topology, l [][]int, r model.Request, buf *buildBuffer) (affinity.Allocation, float64) {
	var (
		best     affinity.Allocation
		bestDist float64
	)
	order := h.centerOrder(t.Nodes(), h.placeRand())
	for _, center := range order {
		ok := buf.buildAround(t, l, r, center)
		if !ok {
			buf.reset()
			continue
		}
		d, _ := affinity.DistanceOf(t, buf.hosts, buf.w)
		if best == nil || d < bestDist {
			// The buffer is reused across centers; only a new incumbent is
			// materialized.
			best, bestDist = buf.alloc.Clone(), d
		}
		buf.reset()
	}
	return best, bestDist
}

// centerOrder yields candidate centers: identity order for the full scan,
// or a random rotation for RandomCenter driven by the per-call generator.
func (h *OnlineHeuristic) centerOrder(n int, rng *rand.Rand) []topology.NodeID {
	order := make([]topology.NodeID, n)
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	if h.Policy == RandomCenter && rng != nil {
		start := rng.Intn(n)
		rot := make([]topology.NodeID, 0, n)
		rot = append(rot, order[start:]...)
		rot = append(rot, order[:start]...)
		return rot
	}
	return order
}

// buildBuffer holds the scratch state of the center scan so a single
// allocation matrix, weight vector, and candidate lists are reused across
// all candidate centers — the scan itself allocates nothing per center.
type buildBuffer struct {
	n, m     int // shape, the pool key
	alloc    affinity.Allocation
	w        []int             // per-node VM totals of the current build
	hosts    []topology.NodeID // take-order hosting nodes
	supply   []int             // per-node supply of the current residual
	residual model.Request
	cand     []topology.NodeID // near candidate scratch (peers / same cloud)
	cand2    []topology.NodeID // far candidate scratch (cross cloud)
}

func newBuildBuffer(n, m int) *buildBuffer {
	return &buildBuffer{
		n:      n,
		m:      m,
		alloc:  affinity.NewAllocation(n, m),
		w:      make([]int, n),
		hosts:  make([]topology.NodeID, 0, 8),
		supply: make([]int, n),
		cand:   make([]topology.NodeID, 0, n),
		cand2:  make([]topology.NodeID, 0, n),
	}
}

// getBuffer pulls a shape-matching buffer from the pool or builds one.
func (h *OnlineHeuristic) getBuffer(n, m int) *buildBuffer {
	if v := h.bufPool.Get(); v != nil {
		if b := v.(*buildBuffer); b.n == n && b.m == m {
			return b
		}
	}
	return newBuildBuffer(n, m)
}

func (h *OnlineHeuristic) putBuffer(b *buildBuffer) { h.bufPool.Put(b) }

// reset clears only the cells the last build touched.
func (b *buildBuffer) reset() {
	for _, i := range b.hosts {
		row := b.alloc[i]
		for j := range row {
			row[j] = 0
		}
		b.w[i] = 0
	}
	b.hosts = b.hosts[:0]
}

// take grabs com(L[i], residual) into the build. Reports whether the
// residual is fully covered.
func (b *buildBuffer) take(l [][]int, i topology.NodeID) bool {
	taken := 0
	left := 0
	li := l[i]
	ai := b.alloc[i]
	for j, need := range b.residual {
		if need > 0 {
			k := li[j]
			if k > need {
				k = need
			}
			ai[j] += k
			b.residual[j] = need - k
			taken += k
			left += need - k
		}
	}
	if taken > 0 {
		if b.w[i] == 0 {
			b.hosts = append(b.hosts, i)
		}
		b.w[i] += taken
	}
	return left == 0
}

// supplyOf is Σ_j min(L[i][j], residual[j]) without materializing the
// com vector.
func (b *buildBuffer) supplyOf(li []int) int {
	s := 0
	for j, need := range b.residual {
		if k := li[j]; k < need {
			s += k
		} else {
			s += need
		}
	}
	return s
}

// bySupply orders candidates by supply of the residual descending, ties
// by node ID — a strict total order, so any correct sort produces the
// same sequence the old insertion sort did.
func (b *buildBuffer) bySupply(a, c topology.NodeID) int {
	if b.supply[a] != b.supply[c] {
		return b.supply[c] - b.supply[a]
	}
	return int(a) - int(c)
}

// buildAround greedily builds an allocation centered on the given node:
// the center takes com(L[center], R); same-rack nodes follow, sorted by
// how much of the residual they can supply (descending, the paper's
// getList ordering); remote nodes close the remainder in ascending
// distance tiers, ties by descending supply then node ID. On return
// b.alloc/b.hosts/b.w describe the build; the caller must reset() before
// the next center.
func (b *buildBuffer) buildAround(t *topology.Topology, l [][]int, r model.Request, center topology.NodeID) bool {
	n := t.Nodes()
	b.residual = append(b.residual[:0], r...)

	if b.take(l, center) {
		return true
	}
	// Same rack, descending supply of the current residual; ties by ID.
	cRack := t.RackOf(center)
	b.cand = b.cand[:0]
	for _, id := range t.RackNodes(cRack) {
		if id != center {
			b.cand = append(b.cand, id)
			b.supply[id] = b.supplyOf(l[id])
		}
	}
	slices.SortFunc(b.cand, b.bySupply)
	for _, i := range b.cand {
		if b.take(l, i) {
			return true
		}
	}
	// Remote nodes close the remainder in ascending distance tiers. The
	// center's distance row takes only two values outside its rack —
	// CrossRack inside its cloud, CrossCloud beyond — so instead of
	// comparison-sorting all n−|rack| hosts the candidates are bucketed by
	// tier and each bucket sorted alone (supply desc, then ID). Supplies
	// for BOTH buckets are computed before any take so every sort key
	// reflects the residual as it stood when the remote phase began,
	// exactly as the single-list sort saw it; only the far bucket's sort
	// is skipped when the near one covers the residual.
	cCloud := t.CloudOf(center)
	b.cand = b.cand[:0]
	b.cand2 = b.cand2[:0]
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if t.RackOf(id) == cRack {
			continue
		}
		b.supply[id] = b.supplyOf(l[id])
		if t.CloudOf(id) == cCloud {
			b.cand = append(b.cand, id)
		} else {
			b.cand2 = append(b.cand2, id)
		}
	}
	d := t.Distances()
	near, far := b.cand, b.cand2
	switch {
	case d.CrossCloud < d.CrossRack: // degenerate tiering: far is closer
		near, far = far, near
	case d.CrossCloud == d.CrossRack: // one merged tier
		near = append(near, far...)
		far = nil
	}
	slices.SortFunc(near, b.bySupply)
	for _, i := range near {
		if b.take(l, i) {
			return true
		}
	}
	if len(far) > 0 {
		slices.SortFunc(far, b.bySupply)
		for _, i := range far {
			if b.take(l, i) {
				return true
			}
		}
	}
	left := 0
	for _, need := range b.residual {
		left += need
	}
	return left == 0
}

// BatchResult is the outcome of placing a batch of requests.
type BatchResult struct {
	Allocs []affinity.Allocation // nil entry: request could not be placed
	Total  float64               // Σ DC over placed requests
	Failed int                   // requests that could not be placed
	Swaps  int                   // improving Theorem-2 exchanges applied
	Passes int                   // local-search sweeps executed
}

// GlobalSubOpt is the paper's Algorithm 2: place every admitted request
// with the online heuristic, then run a Theorem-2 exchange local search
// across allocation pairs to shrink the summed distance.
type GlobalSubOpt struct {
	// Online is the per-request placer of step 2; a zero-value
	// OnlineHeuristic is used when nil.
	Online *OnlineHeuristic
	// MaxPasses caps local-search sweeps (0 = run to fixpoint, bounded by
	// a safety limit). The paper performs a single pass; run-to-fixpoint
	// is the ablation variant.
	MaxPasses int
	// Obs, when non-nil, receives batch metrics (and is handed to the
	// implicit OnlineHeuristic when Online is nil).
	Obs *obs.Registry

	obsOnce sync.Once
	metrics batchMetrics
}

// batchMetrics are the resolved obs handles of the batch placer; the zero
// value is a usable no-op.
type batchMetrics struct {
	batches *obs.Counter
	failed  *obs.Counter
	swaps   *obs.Counter
	passes  *obs.Counter
}

func (g *GlobalSubOpt) obsHandles() *batchMetrics {
	g.obsOnce.Do(func() {
		if g.Obs == nil {
			return
		}
		g.metrics = batchMetrics{
			batches: g.Obs.Counter("placement.batches"),
			failed:  g.Obs.Counter("placement.batch_failed"),
			swaps:   g.Obs.Counter("placement.batch_swaps"),
			passes:  g.Obs.Counter("placement.batch_passes"),
		}
	})
	return &g.metrics
}

// Name identifies the strategy.
func (g *GlobalSubOpt) Name() string { return "global-subopt" }

// PlaceBatch provisions the whole batch against the shared capacity
// snapshot l (not mutated). Requests that no longer fit as capacity
// depletes get a nil allocation and count in Failed.
func (g *GlobalSubOpt) PlaceBatch(t *topology.Topology, l [][]int, reqs []model.Request) (*BatchResult, error) {
	online := g.Online
	if online == nil {
		online = &OnlineHeuristic{Obs: g.Obs}
	}
	n := t.Nodes()
	if len(l) != n {
		return nil, fmt.Errorf("placement: capacity matrix has %d rows, topology has %d nodes", len(l), n)
	}
	work := cloneMatrix(l)
	res := &BatchResult{Allocs: make([]affinity.Allocation, len(reqs))}

	// Step 2: sequential online placement, depleting the working capacity.
	// The default scan maintains one tier index across the batch, so each
	// accepted allocation folds back in O(affected tiers) and admission
	// reads the index's availability vector; other policies carry the
	// availability column totals across requests instead.
	if online.Policy == ScanAllCenters && uniformWidth(work, reqs) {
		idx, err := affinity.NewTierIndex(t, work)
		if err != nil {
			return nil, err
		}
		var sp affinity.SparseAlloc
		for qi, r := range reqs {
			if _, _, err := online.placeSparseMetered(idx, r, &sp); err != nil {
				if errors.Is(err, ErrInsufficient) {
					res.Failed++
					continue
				}
				return nil, err
			}
			res.Allocs[qi] = sp.ToDense()
			for _, e := range sp.Entries {
				work[e.Node][e.Type] -= e.Count
				idx.Apply(e.Node, int(e.Type), -e.Count)
			}
		}
	} else {
		var avail []int
		for qi, r := range reqs {
			if len(avail) != len(r) {
				avail = available(work, len(r))
			}
			alloc, err := online.placeWith(t, work, r, avail)
			if err != nil {
				if errors.Is(err, ErrInsufficient) {
					res.Failed++
					continue
				}
				return nil, err
			}
			res.Allocs[qi] = alloc
			for i := range alloc {
				for j, k := range alloc[i] {
					work[i][j] -= k
				}
			}
			for j := range r {
				avail[j] -= r[j]
			}
		}
	}

	// Step 3: Theorem-2 exchange local search. Two exchange kinds keep
	// per-node-per-type occupancy feasible:
	//   swap — clusters a and b trade one VM of the same type across two
	//          nodes (capacity neutral);
	//   move — cluster a shifts one VM into residual capacity.
	// One incremental evaluator per placed cluster carries DC(C) across
	// all passes; candidate exchanges are priced through O(hosts) previews
	// and allocations are only touched on accept.
	evs := make([]*affinity.DistanceEvaluator, len(res.Allocs))
	for qi, a := range res.Allocs {
		if a != nil {
			evs[qi] = affinity.NewDistanceEvaluator(t, a)
		}
	}
	maxPasses := g.MaxPasses
	hardCap := 64 // fixpoint safety net; each pass monotonically improves
	if maxPasses <= 0 || maxPasses > hardCap {
		maxPasses = hardCap
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		if g.movePass(t, res, work, evs) {
			improved = true
		}
		if g.swapPass(res, evs) {
			improved = true
		}
		res.Passes++
		if !improved {
			break
		}
		if g.MaxPasses == 1 {
			break
		}
	}

	res.Total = 0
	for _, ev := range evs {
		if ev != nil {
			d, _ := ev.Distance()
			res.Total += d
		}
	}
	om := g.obsHandles()
	om.batches.Inc()
	om.failed.Add(int64(res.Failed))
	om.swaps.Add(int64(res.Swaps))
	om.passes.Add(int64(res.Passes))
	return res, nil
}

// movePass relocates single VMs into residual capacity whenever that
// strictly lowers the owning cluster's DC. Candidate moves are priced via
// MovePreview; the allocation is only mutated on accept. Returns true if
// anything moved.
func (g *GlobalSubOpt) movePass(t *topology.Topology, res *BatchResult, residual [][]int, evs []*affinity.DistanceEvaluator) bool {
	n := t.Nodes()
	improvedAny := false
	for qi, a := range res.Allocs {
		if a == nil {
			continue
		}
		ev := evs[qi]
		d0, center := ev.Distance()
		for i := 0; i < n; i++ {
			for j := range a[i] {
				if a[i][j] == 0 {
					continue
				}
				from := topology.NodeID(i)
				for q := 0; q < n; q++ {
					to := topology.NodeID(q)
					if to == from || residual[q][j] == 0 {
						continue
					}
					// Quick screen using the current center (Theorem 1).
					if affinity.MoveDelta(t, center, from, to) >= 0 {
						continue
					}
					d1, c1 := ev.MovePreview(from, to)
					if d1 < d0-1e-12 {
						a.Remove(from, model.VMTypeID(j))
						a.Add(to, model.VMTypeID(j))
						ev.Move(from, to)
						residual[i][j]++
						residual[q][j]--
						d0, center = d1, c1
						improvedAny = true
					}
					if a[i][j] == 0 {
						break
					}
				}
			}
		}
	}
	return improvedAny
}

// swapPass applies Theorem 2 across cluster pairs with distinct centers:
// trading one same-type VM between two nodes is capacity neutral and is
// kept whenever it shrinks DC(a)+DC(b).
func (g *GlobalSubOpt) swapPass(res *BatchResult, evs []*affinity.DistanceEvaluator) bool {
	improvedAny := false
	allocs := res.Allocs
	for ai := 0; ai < len(allocs); ai++ {
		a := allocs[ai]
		if a == nil {
			continue
		}
		for bi := ai + 1; bi < len(allocs); bi++ {
			b := allocs[bi]
			if b == nil {
				continue
			}
			da, ca := evs[ai].Distance()
			db, cb := evs[bi].Distance()
			if ca == cb {
				continue // Theorem 2 precondition: distinct centers
			}
			if g.swapPair(a, b, evs[ai], evs[bi], da+db) {
				res.Swaps++
				improvedAny = true
			}
		}
	}
	return improvedAny
}

// swapPair greedily applies improving single-VM swaps between two
// allocations until none remains, pricing each trade with two move
// previews (no mutate-and-revert). Returns true if at least one applied.
func (g *GlobalSubOpt) swapPair(a, b affinity.Allocation, evA, evB *affinity.DistanceEvaluator, sum0 float64) bool {
	n := len(a)
	m := len(a[0])
	improved := false
	for {
		found := false
		for p := 0; p < n && !found; p++ {
			for q := 0; q < n && !found; q++ {
				if p == q {
					continue
				}
				for j := 0; j < m; j++ {
					if a[p][j] == 0 || b[q][j] == 0 {
						continue
					}
					// Trade: a's VM p→q, b's VM q→p.
					da, _ := evA.MovePreview(topology.NodeID(p), topology.NodeID(q))
					db, _ := evB.MovePreview(topology.NodeID(q), topology.NodeID(p))
					if da+db < sum0-1e-12 {
						a.Remove(topology.NodeID(p), model.VMTypeID(j))
						a.Add(topology.NodeID(q), model.VMTypeID(j))
						evA.Move(topology.NodeID(p), topology.NodeID(q))
						b.Remove(topology.NodeID(q), model.VMTypeID(j))
						b.Add(topology.NodeID(p), model.VMTypeID(j))
						evB.Move(topology.NodeID(q), topology.NodeID(p))
						sum0 = da + db
						improved = true
						found = true
						break
					}
				}
			}
		}
		if !found {
			return improved
		}
	}
}

// uniformWidth reports whether every request spans exactly the matrix's
// type dimension — the shape the persistent tier index covers.
func uniformWidth(l [][]int, reqs []model.Request) bool {
	if len(l) == 0 {
		return false
	}
	m := len(l[0])
	for _, r := range reqs {
		if len(r) != m {
			return false
		}
	}
	return true
}

// PlaceSequential places a batch with any single-request placer, depleting
// capacity between requests — the "online" arm of Figs. 5 and 6.
func PlaceSequential(t *topology.Topology, l [][]int, reqs []model.Request, p Placer) (*BatchResult, error) {
	// The default scan-all-centers heuristic runs over one persistent
	// tier index maintained across the whole batch: each accepted
	// allocation's cells are folded back in O(affected tiers), so no
	// request after the first pays an aggregate rebuild.
	if oh, ok := p.(*OnlineHeuristic); ok && oh.Policy == ScanAllCenters && uniformWidth(l, reqs) {
		return placeSequentialIndexed(t, l, reqs, oh)
	}
	work := cloneMatrix(l)
	res := &BatchResult{Allocs: make([]affinity.Allocation, len(reqs))}
	// The online heuristic admits against caller-maintained column totals;
	// other placers fall back to Place and its per-request rescan.
	oh, _ := p.(*OnlineHeuristic)
	var avail []int
	for qi, r := range reqs {
		var (
			alloc affinity.Allocation
			err   error
		)
		if oh != nil {
			if len(avail) != len(r) {
				avail = available(work, len(r))
			}
			alloc, err = oh.placeWith(t, work, r, avail)
		} else {
			alloc, err = p.Place(t, work, r)
		}
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				res.Failed++
				continue
			}
			return nil, err
		}
		res.Allocs[qi] = alloc
		d, _ := alloc.Distance(t)
		res.Total += d
		for i := range alloc {
			for j, k := range alloc[i] {
				work[i][j] -= k
			}
		}
		if oh != nil {
			for j := range r {
				avail[j] -= r[j]
			}
		}
	}
	return res, nil
}

// placeSequentialIndexed is PlaceSequential's indexed arm: one tier
// index over the working matrix, updated incrementally per accepted
// allocation. Results — allocations, totals, failure counts, metric
// accounting — are identical to the legacy per-request path; the dc the
// scan returns is bitwise the Allocation.Distance of the dense form, so
// Total needs no rescan.
func placeSequentialIndexed(t *topology.Topology, l [][]int, reqs []model.Request, oh *OnlineHeuristic) (*BatchResult, error) {
	work := cloneMatrix(l)
	res := &BatchResult{Allocs: make([]affinity.Allocation, len(reqs))}
	idx, err := affinity.NewTierIndex(t, work)
	if err != nil {
		return nil, err
	}
	var sp affinity.SparseAlloc
	for qi, r := range reqs {
		dc, _, err := oh.placeSparseMetered(idx, r, &sp)
		if err != nil {
			if errors.Is(err, ErrInsufficient) {
				res.Failed++
				continue
			}
			return nil, err
		}
		res.Allocs[qi] = sp.ToDense()
		res.Total += dc
		for _, e := range sp.Entries {
			work[e.Node][e.Type] -= e.Count
			idx.Apply(e.Node, int(e.Type), -e.Count)
		}
	}
	return res, nil
}

func cloneMatrix(src [][]int) [][]int {
	out := make([][]int, len(src))
	for i := range src {
		out[i] = append([]int(nil), src[i]...)
	}
	return out
}
