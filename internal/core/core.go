// Package core is the top-level API of the affinity-aware virtual cluster
// library — the paper's primary contribution packaged for use. A
// Provisioner owns a physical topology and a live inventory and serves
// virtual-cluster requests with an affinity-aware placement strategy:
//
//	prov, _ := core.NewProvisioner(topo, capacities, core.Options{})
//	vc, _ := prov.Provision(model.Request{2, 4, 1})
//	fmt.Println(vc.Distance, vc.Center)
//	defer vc.Release()
//
// Placement minimizes the paper's cluster-distance metric DC(C)
// (Definition 1) using the online heuristic (Algorithm 1); batches of
// requests can be served together with the global sub-optimization
// (Algorithm 2); and the exact ILP-grade optimum is available for
// validation via SolveExact.
package core

import (
	"errors"
	"fmt"
	"sync"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/jointopt"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
)

// Strategy selects the placement algorithm of a Provisioner.
type Strategy int

const (
	// OnlineHeuristic is the paper's Algorithm 1 (default).
	OnlineHeuristic Strategy = iota
	// FirstFit packs nodes in ID order, affinity-blind.
	FirstFit
	// RoundRobin stripes VMs across nodes, maximizing spread.
	RoundRobin
	// PackBestFit fills the highest-capacity node first.
	PackBestFit
)

func (s Strategy) String() string {
	switch s {
	case OnlineHeuristic:
		return "online-heuristic"
	case FirstFit:
		return "first-fit"
	case RoundRobin:
		return "round-robin"
	case PackBestFit:
		return "pack-best-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a Provisioner.
type Options struct {
	// Strategy selects the single-request placement algorithm.
	Strategy Strategy
	// Catalog documents the VM types; defaults to model.DefaultCatalog().
	// Its length must match the capacity matrix's column count.
	Catalog model.Catalog
}

// Provisioner serves virtual-cluster requests against a live inventory.
// It is safe for concurrent use: placement plans against a snapshot and
// commits atomically, retrying when a concurrent commit wins the race.
type Provisioner struct {
	topo    *topology.Topology
	inv     *inventory.Inventory
	placer  placement.Placer
	catalog model.Catalog

	mu     sync.Mutex // serializes plan+commit so retries are bounded
	global *placement.GlobalSubOpt
}

// Cluster is one provisioned virtual cluster.
type Cluster struct {
	// Alloc is the paper's allocation matrix C.
	Alloc affinity.Allocation
	// Distance is DC(C) under the minimizing central node.
	Distance float64
	// Center is the minimizing central node (the natural master /
	// JobTracker host for a MapReduce deployment).
	Center topology.NodeID

	prov     *Provisioner
	released bool
	relMu    sync.Mutex
}

// NewProvisioner builds a provisioner over a topology and a capacity
// matrix M (nodes × types).
func NewProvisioner(topo *topology.Topology, capacities [][]int, opts Options) (*Provisioner, error) {
	if topo == nil {
		return nil, errors.New("core: nil topology")
	}
	inv, err := inventory.NewFromMatrix(capacities)
	if err != nil {
		return nil, err
	}
	if inv.Nodes() != topo.Nodes() {
		return nil, fmt.Errorf("core: capacity matrix has %d rows, topology has %d nodes", inv.Nodes(), topo.Nodes())
	}
	catalog := opts.Catalog
	if catalog == nil {
		catalog = model.DefaultCatalog()
	}
	if catalog.Types() != inv.Types() {
		return nil, fmt.Errorf("core: catalog has %d types, capacity matrix has %d columns", catalog.Types(), inv.Types())
	}
	if err := catalog.Validate(); err != nil {
		return nil, err
	}
	var p placement.Placer
	switch opts.Strategy {
	case FirstFit:
		p = placement.FirstFit{}
	case RoundRobin:
		p = placement.RoundRobinStripe{}
	case PackBestFit:
		p = placement.PackBestFit{}
	default:
		p = &placement.OnlineHeuristic{}
	}
	return &Provisioner{
		topo:    topo,
		inv:     inv,
		placer:  p,
		catalog: catalog,
		global:  &placement.GlobalSubOpt{},
	}, nil
}

// Topology returns the physical plant.
//
//lint:shared the topology is immutable after construction and shared by design
func (p *Provisioner) Topology() *topology.Topology { return p.topo }

// Catalog returns the VM type catalog.
//
//lint:shared the catalog is immutable after construction and shared by design
func (p *Provisioner) Catalog() model.Catalog { return p.catalog }

// Available returns the current availability vector A.
func (p *Provisioner) Available() []int { return p.inv.Available() }

// Remaining returns a snapshot of the remaining capacity matrix L.
func (p *Provisioner) Remaining() [][]int { return p.inv.Remaining() }

// CanSatisfy reports whether the request fits the current availability.
func (p *Provisioner) CanSatisfy(r model.Request) bool { return p.inv.CanSatisfy(r) }

// ErrUnsatisfiable is returned when a request exceeds the current
// availability (callers may queue and retry after a Release).
var ErrUnsatisfiable = errors.New("core: request exceeds available resources")

// Provision places one request, commits it, and returns the cluster.
//
//lint:owner singlewriter
func (p *Provisioner) Provision(r model.Request) (*Cluster, error) {
	if err := r.Validate(p.catalog); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	alloc, err := p.placer.Place(p.topo, p.inv.Remaining(), r)
	if err != nil {
		if errors.Is(err, placement.ErrInsufficient) {
			return nil, fmt.Errorf("%w: %v", ErrUnsatisfiable, err)
		}
		return nil, err
	}
	if err := p.inv.Allocate([][]int(alloc)); err != nil {
		return nil, err
	}
	d, k := alloc.Distance(p.topo)
	return &Cluster{Alloc: alloc, Distance: d, Center: k, prov: p}, nil
}

// ProvisionBatch places a batch together using the global
// sub-optimization algorithm (Algorithm 2) and commits the successful
// allocations. The returned slice is parallel to reqs; entries whose
// request could not be placed are nil.
//
//lint:owner singlewriter
func (p *Provisioner) ProvisionBatch(reqs []model.Request) ([]*Cluster, error) {
	for _, r := range reqs {
		if err := r.Validate(p.catalog); err != nil {
			return nil, err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	res, err := p.global.PlaceBatch(p.topo, p.inv.Remaining(), reqs)
	if err != nil {
		return nil, err
	}
	out := make([]*Cluster, len(reqs))
	for i, alloc := range res.Allocs {
		if alloc == nil {
			continue
		}
		if err := p.inv.Allocate([][]int(alloc)); err != nil {
			// Cannot happen while p.mu is held; surface loudly if it does.
			return nil, fmt.Errorf("core: batch commit failed at request %d: %w", i, err)
		}
		d, k := alloc.Distance(p.topo)
		out[i] = &Cluster{Alloc: alloc, Distance: d, Center: k, prov: p}
	}
	return out, nil
}

// ProvisionForJob places a request with an objective tuned to the
// MapReduce job the cluster will run (shuffle-heavy jobs weight pairwise
// affinity, master-bound jobs weight DC) and commits it.
//
//lint:owner singlewriter
func (p *Provisioner) ProvisionForJob(r model.Request, job mapreduce.JobSpec) (*Cluster, error) {
	if err := r.Validate(p.catalog); err != nil {
		return nil, err
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	jp := &jointopt.Placer{Profile: jointopt.ProfileFor(job)}
	alloc, err := jp.Place(p.topo, p.inv.Remaining(), r)
	if err != nil {
		if errors.Is(err, placement.ErrInsufficient) {
			return nil, fmt.Errorf("%w: %v", ErrUnsatisfiable, err)
		}
		return nil, err
	}
	if err := p.inv.Allocate([][]int(alloc)); err != nil {
		return nil, err
	}
	d, k := alloc.Distance(p.topo)
	return &Cluster{Alloc: alloc, Distance: d, Center: k, prov: p}, nil
}

// SolveExact returns the provably optimal SD allocation for the request
// under the current availability without committing it — for validation
// and what-if analysis.
func (p *Provisioner) SolveExact(r model.Request) (affinity.Allocation, float64, error) {
	if err := r.Validate(p.catalog); err != nil {
		return nil, 0, err
	}
	res, err := sdexact.SolveSD(p.topo, p.inv.Remaining(), r)
	if err != nil {
		if errors.Is(err, sdexact.ErrInfeasible) {
			return nil, 0, ErrUnsatisfiable
		}
		return nil, 0, err
	}
	return res.Alloc, res.Distance, nil
}

// Release returns the cluster's resources to the pool. Releasing twice is
// a safe no-op.
//
//lint:owner singlewriter
func (c *Cluster) Release() error {
	c.relMu.Lock()
	defer c.relMu.Unlock()
	if c.released {
		return nil
	}
	if err := c.prov.inv.Release([][]int(c.Alloc)); err != nil {
		return err
	}
	c.released = true
	return nil
}

// PairwiseAffinity returns the experiment-metric affinity of the cluster
// (sum of pairwise VM distances).
func (c *Cluster) PairwiseAffinity() float64 {
	return c.Alloc.PairwiseAffinity(c.prov.topo)
}

// VMs returns the total VM count.
func (c *Cluster) VMs() int { return c.Alloc.TotalVMs() }
