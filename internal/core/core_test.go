package core

import (
	"errors"
	"sync"
	"testing"

	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func plantAndCaps(t *testing.T) (*topology.Topology, [][]int) {
	t.Helper()
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(11, tp.Nodes(), 3, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tp, caps
}

func TestNewProvisionerValidation(t *testing.T) {
	tp, caps := plantAndCaps(t)
	if _, err := NewProvisioner(nil, caps, Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewProvisioner(tp, [][]int{{1}}, Options{}); err == nil {
		t.Error("mismatched capacities accepted")
	}
	if _, err := NewProvisioner(tp, caps, Options{Catalog: model.Catalog{{Name: "x", MemoryGB: 1, ComputeUnits: 1, StorageGB: 1}}}); err == nil {
		t.Error("catalog/type mismatch accepted")
	}
	p, err := NewProvisioner(tp, caps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Catalog().Types() != 3 || p.Topology() != tp {
		t.Error("accessors wrong")
	}
}

func TestProvisionAndRelease(t *testing.T) {
	tp, caps := plantAndCaps(t)
	p, err := NewProvisioner(tp, caps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Available()
	req := model.Request{2, 3, 1}
	if !p.CanSatisfy(req) {
		t.Skip("random capacities cannot satisfy the request")
	}
	vc, err := p.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	if !vc.Alloc.Satisfies(req) {
		t.Error("allocation does not satisfy request")
	}
	if vc.VMs() != 6 {
		t.Errorf("VMs = %d", vc.VMs())
	}
	if vc.Distance < 0 || vc.Center < 0 {
		t.Errorf("distance %v center %d", vc.Distance, vc.Center)
	}
	if vc.PairwiseAffinity() < 0 {
		t.Error("negative affinity")
	}
	mid := p.Available()
	if mid[0] != before[0]-2 || mid[1] != before[1]-3 || mid[2] != before[2]-1 {
		t.Errorf("availability not debited: %v -> %v", before, mid)
	}
	if err := vc.Release(); err != nil {
		t.Fatal(err)
	}
	if err := vc.Release(); err != nil {
		t.Errorf("double release errored: %v", err)
	}
	after := p.Available()
	for j := range before {
		if after[j] != before[j] {
			t.Errorf("availability not restored: %v -> %v", before, after)
		}
	}
}

func TestProvisionValidatesRequest(t *testing.T) {
	tp, caps := plantAndCaps(t)
	p, _ := NewProvisioner(tp, caps, Options{})
	if _, err := p.Provision(model.Request{1, 2}); err == nil {
		t.Error("short request accepted")
	}
	if _, err := p.Provision(model.Request{0, 0, 0}); err == nil {
		t.Error("zero request accepted")
	}
	_, err := p.Provision(model.Request{10000, 0, 0})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestStrategies(t *testing.T) {
	tp, caps := plantAndCaps(t)
	for _, s := range []Strategy{OnlineHeuristic, FirstFit, RoundRobin, PackBestFit} {
		p, err := NewProvisioner(tp, caps, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		vc, err := p.Provision(model.Request{2, 1, 0})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !vc.Alloc.Satisfies(model.Request{2, 1, 0}) {
			t.Errorf("%v: request not satisfied", s)
		}
	}
	if OnlineHeuristic.String() != "online-heuristic" || Strategy(42).String() != "Strategy(42)" {
		t.Error("Strategy strings wrong")
	}
}

func TestProvisionBatch(t *testing.T) {
	tp, caps := plantAndCaps(t)
	p, _ := NewProvisioner(tp, caps, Options{})
	reqs := []model.Request{{1, 1, 0}, {2, 0, 1}, {0, 2, 0}}
	clusters, err := p.ProvisionBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	for i, vc := range clusters {
		if vc == nil {
			continue
		}
		if !vc.Alloc.Satisfies(reqs[i]) {
			t.Errorf("cluster %d wrong vector", i)
		}
		if err := vc.Release(); err != nil {
			t.Errorf("release %d: %v", i, err)
		}
	}
	if _, err := p.ProvisionBatch([]model.Request{{1}}); err == nil {
		t.Error("batch with short request accepted")
	}
}

func TestSolveExactDoesNotCommit(t *testing.T) {
	tp, caps := plantAndCaps(t)
	p, _ := NewProvisioner(tp, caps, Options{})
	before := p.Available()
	alloc, d, err := p.SolveExact(model.Request{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Satisfies(model.Request{2, 1, 0}) {
		t.Error("exact allocation wrong")
	}
	after := p.Available()
	for j := range before {
		if before[j] != after[j] {
			t.Error("SolveExact committed resources")
		}
	}
	// Heuristic can never beat the exact optimum.
	vc, err := p.Provision(model.Request{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if vc.Distance < d-1e-9 {
		t.Errorf("heuristic %v beat exact %v", vc.Distance, d)
	}
	if _, _, err := p.SolveExact(model.Request{10000, 0, 0}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := p.SolveExact(model.Request{1}); err == nil {
		t.Error("short request accepted")
	}
}

func TestProvisionForJob(t *testing.T) {
	tp, caps := plantAndCaps(t)
	p, _ := NewProvisioner(tp, caps, Options{})
	req := model.Request{3, 2, 0}
	vc, err := p.ProvisionForJob(req, mapreduce.TeraSort("input", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !vc.Alloc.Satisfies(req) {
		t.Error("job-aware placement wrong vector")
	}
	if err := vc.Release(); err != nil {
		t.Fatal(err)
	}
	// Bad inputs.
	if _, err := p.ProvisionForJob(model.Request{1}, mapreduce.Grep("f")); err == nil {
		t.Error("short request accepted")
	}
	if _, err := p.ProvisionForJob(req, mapreduce.JobSpec{}); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := p.ProvisionForJob(model.Request{10000, 0, 0}, mapreduce.Grep("f")); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentProvisionRelease(t *testing.T) {
	tp, caps := plantAndCaps(t)
	p, _ := NewProvisioner(tp, caps, Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vc, err := p.Provision(model.Request{1, 1, 0})
				if err != nil {
					if errors.Is(err, ErrUnsatisfiable) {
						continue
					}
					t.Error(err)
					return
				}
				if err := vc.Release(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Everything returned: a fresh provisioner over the same caps shows
	// the same availability.
	fresh, _ := NewProvisioner(tp, caps, Options{})
	a, b := p.Available(), fresh.Available()
	for j := range a {
		if a[j] != b[j] {
			t.Errorf("leaked resources: %v vs %v", a, b)
		}
	}
}
