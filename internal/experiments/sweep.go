package experiments

import (
	"fmt"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/dfs"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/netmodel"
	"affinitycluster/internal/stats"
	"affinitycluster/internal/vcluster"
)

// SweepRow is one point of the shuffle-selectivity sweep: how much a
// compact cluster beats a spread one as the job's shuffle volume grows.
type SweepRow struct {
	Selectivity   float64
	CompactSec    float64
	SpreadSec     float64
	SpeedupPct    float64 // (spread − compact) / compact × 100
	RemoteShuffle float64 // MB the spread cluster moved cross-rack
}

// SweepResult is the full sweep.
type SweepResult struct {
	Rows []SweepRow
}

// SelectivitySweep quantifies the paper's motivation quantitatively: the
// benefit of affinity-aware placement grows with the job's shuffle
// volume. It runs a parameterized job (WordCount shape with varying map
// selectivity, 4 reducers) on the most compact and the most spread of the
// four experiment clusters.
func SelectivitySweep(seed int64, selectivities []float64) (*SweepResult, error) {
	if len(selectivities) == 0 {
		selectivities = []float64{0.01, 0.25, 0.5, 1.0, 1.5}
	}
	tops, err := MRTopologies()
	if err != nil {
		return nil, err
	}
	compact := tops[0]
	spread := tops[len(tops)-1]
	cfg := DefaultMRExperimentConfig(seed)
	for _, sel := range selectivities {
		if sel < 0 {
			return nil, fmt.Errorf("experiments: negative selectivity %v", sel)
		}
	}
	// Sweep points are independent (each builds its own plant and
	// simulator), so they run on the shared worker pool, one row slot per
	// point.
	out := &SweepResult{Rows: make([]SweepRow, len(selectivities))}
	err = forEachIndex(len(selectivities), func(i int) error {
		sel := selectivities[i]
		job := mapreduce.WordCount("input")
		job.Name = fmt.Sprintf("sweep-%.2f", sel)
		job.MapSelectivity = sel
		job.NumReduces = 4
		cSec, _, err := runSweepJob(compact.Alloc, cfg, job)
		if err != nil {
			return err
		}
		sSec, remote, err := runSweepJob(spread.Alloc, cfg, job)
		if err != nil {
			return err
		}
		row := SweepRow{
			Selectivity:   sel,
			CompactSec:    cSec,
			SpreadSec:     sSec,
			RemoteShuffle: remote,
		}
		if cSec > 0 {
			row.SpeedupPct = (sSec - cSec) / cSec * 100
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func runSweepJob(alloc affinity.Allocation, cfg MRExperimentConfig, job mapreduce.JobSpec) (runtime, remoteMB float64, err error) {
	tp, err := mrPlant()
	if err != nil {
		return 0, 0, err
	}
	cluster, err := vcluster.FromAllocation(tp, alloc)
	if err != nil {
		return 0, 0, err
	}
	engine := eventsim.New()
	net, err := netmodel.NewFlowSim(engine, tp, cfg.Net)
	if err != nil {
		return 0, 0, err
	}
	fsys, err := dfs.New(cluster, cfg.DFS)
	if err != nil {
		return 0, 0, err
	}
	if _, err := fsys.WriteRotating("input", cfg.InputMB); err != nil {
		return 0, 0, err
	}
	sim, err := mapreduce.New(engine, net, cluster, fsys, cfg.Sim)
	if err != nil {
		return 0, 0, err
	}
	counters, err := sim.Run(job)
	if err != nil {
		return 0, 0, err
	}
	return counters.Runtime, counters.ShuffleRemoteMB, nil
}

// Render prints the sweep as a table.
func (r *SweepResult) Render() string {
	t := &stats.Table{Header: []string{"selectivity", "compact (s)", "spread (s)", "speedup %", "remote shuffle MB"}}
	for _, row := range r.Rows {
		t.Add(row.Selectivity, row.CompactSec, row.SpreadSec, row.SpeedupPct, row.RemoteShuffle)
	}
	return "Supplementary: affinity benefit vs shuffle selectivity\n" + t.String()
}
