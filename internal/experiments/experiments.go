// Package experiments reproduces the evaluation of the paper, one runner
// per table and figure. Each runner returns structured rows (so tests and
// benchmarks can assert on the shape of the result) plus a Render method
// producing terminal output in the spirit of the original figure.
//
// Simulation experiments (Figs. 2–6) use the paper's cloud: 3 racks × 10
// nodes, random per-node capacities over the three Table-I instance
// types, 20 random requests. Experimental-evaluation experiments
// (Figs. 7–8) replace the paper's UF HPC Hadoop deployment with the
// discrete-event MapReduce simulator (see DESIGN.md for the substitution
// argument) and run WordCount with 32 map tasks and 1 reduce task on four
// equal-capability virtual clusters of increasing distance.
package experiments

import (
	"fmt"
	"math/rand"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/dfs"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/netmodel"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/stats"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/vcluster"
	"affinitycluster/internal/workload"
)

// ---------------------------------------------------------------------------
// Tables I and II
// ---------------------------------------------------------------------------

// TableI renders the instance catalog of Table I.
func TableI() string {
	t := &stats.Table{Header: []string{"Instance type", "Memory (GB)", "CPU (compute unit)", "Storage (GB)", "Platform"}}
	for _, vt := range model.DefaultCatalog() {
		t.Add(vt.Name, vt.MemoryGB, vt.ComputeUnits, vt.StorageGB, vt.Platform)
	}
	return t.String()
}

// TableII renders the example capacity relationship of Table II.
func TableII() string {
	t := &stats.Table{Header: []string{"Rack", "Node", "VM type", "Number"}}
	t.Add("R1", "N1", "V1", 2)
	t.Add("R1", "N1", "V2", 3)
	t.Add("R1", "N2", "V1", 3)
	t.Add("R1", "N2", "V3", 1)
	t.Add("R2", "N3", "V2", 2)
	t.Add("R2", "N3", "V3", 1)
	return t.String()
}

// ---------------------------------------------------------------------------
// Simulation setup shared by Figs. 2–6
// ---------------------------------------------------------------------------

// SimSetup is a concrete instance of the paper's simulated cloud.
type SimSetup struct {
	Topo     *topology.Topology
	Caps     [][]int
	Requests []model.Request
}

// NewPaperSetup draws the Section V.A configuration: 3 racks × 10 nodes,
// random capacities, 20 random requests in the given scenario.
func NewPaperSetup(seed int64, sc workload.Scenario) (*SimSetup, error) {
	sim, err := workload.NewPaperSimulation(seed, sc)
	if err != nil {
		return nil, err
	}
	return &SimSetup{
		Topo:     topology.PaperSimPlant(),
		Caps:     sim.Capacities,
		Requests: sim.Requests,
	}, nil
}

// ---------------------------------------------------------------------------
// Fig. 2 — heuristic (best-center) distance vs random-center distance
// ---------------------------------------------------------------------------

// Fig2Row is one request's pair of distances: the allocation is the same,
// only the central node differs.
type Fig2Row struct {
	Request       int
	HeuristicDist float64 // DC with the minimizing central node
	RandomCtrDist float64 // same allocation, uniformly random central node
	CentralNode   int
	RandomCentral int
}

// Fig2Result is the figure's data plus totals.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 places the 20 requests sequentially with the online heuristic and
// evaluates each resulting cluster under its best central node versus a
// random one.
func Fig2(seed int64) (*Fig2Result, error) {
	setup, err := NewPaperSetup(seed, workload.Normal)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 100))
	res, err := placement.PlaceSequential(setup.Topo, setup.Caps, setup.Requests, &placement.OnlineHeuristic{})
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{}
	for qi, alloc := range res.Allocs {
		if alloc == nil {
			continue
		}
		d, ctr := alloc.Distance(setup.Topo)
		hosts := alloc.HostingNodes()
		randCtr := hosts[rng.Intn(len(hosts))]
		out.Rows = append(out.Rows, Fig2Row{
			Request:       qi,
			HeuristicDist: d,
			RandomCtrDist: alloc.DistanceFrom(setup.Topo, randCtr),
			CentralNode:   int(ctr),
			RandomCentral: int(randCtr),
		})
	}
	return out, nil
}

// Render prints the figure as two aligned series.
func (r *Fig2Result) Render() string {
	best := &stats.Series{Name: "heuristic (best center)"}
	rnd := &stats.Series{Name: "random center"}
	for _, row := range r.Rows {
		best.Append(float64(row.Request), row.HeuristicDist)
		rnd.Append(float64(row.Request), row.RandomCtrDist)
	}
	return "Fig 2. Distance by central-node strategy (same allocations)\n" +
		stats.RenderSeries("request", best, rnd)
}

// ---------------------------------------------------------------------------
// Fig. 3 — central node variation across requests
// ---------------------------------------------------------------------------

// Fig3Row records the chosen central node of one request's cluster.
type Fig3Row struct {
	Request     int
	CentralNode int
}

// Fig3Result is the figure's data.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 reports the central node the heuristic settles on per request.
func Fig3(seed int64) (*Fig3Result, error) {
	setup, err := NewPaperSetup(seed, workload.Normal)
	if err != nil {
		return nil, err
	}
	res, err := placement.PlaceSequential(setup.Topo, setup.Caps, setup.Requests, &placement.OnlineHeuristic{})
	if err != nil {
		return nil, err
	}
	out := &Fig3Result{}
	for qi, alloc := range res.Allocs {
		if alloc == nil {
			continue
		}
		_, ctr := alloc.Distance(setup.Topo)
		out.Rows = append(out.Rows, Fig3Row{Request: qi, CentralNode: int(ctr)})
	}
	return out, nil
}

// Render prints the central-node series.
func (r *Fig3Result) Render() string {
	s := &stats.Series{Name: "central node"}
	for _, row := range r.Rows {
		s.Append(float64(row.Request), float64(row.CentralNode))
	}
	return "Fig 3. Central node chosen per request\n" + stats.RenderSeries("request", s)
}

// ---------------------------------------------------------------------------
// Fig. 4 — distance of one allocation as the center sweeps every node
// ---------------------------------------------------------------------------

// Fig4Row is the distance of the fixed allocation under one candidate
// central node.
type Fig4Row struct {
	CentralNode int
	Distance    float64
}

// Fig4Result carries the sweep plus the optimum for reference.
type Fig4Result struct {
	Rows        []Fig4Row
	BestNode    int
	BestDist    float64
	RequestUsed model.Request
}

// Fig4 builds one cluster (the first request of the standard setup) and
// sweeps the central node over every hosting node.
func Fig4(seed int64) (*Fig4Result, error) {
	setup, err := NewPaperSetup(seed, workload.Normal)
	if err != nil {
		return nil, err
	}
	h := &placement.OnlineHeuristic{}
	alloc, err := h.Place(setup.Topo, setup.Caps, setup.Requests[0])
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{RequestUsed: setup.Requests[0]}
	best, bestK := -1.0, -1
	for _, k := range alloc.HostingNodes() {
		d := alloc.DistanceFrom(setup.Topo, k)
		out.Rows = append(out.Rows, Fig4Row{CentralNode: int(k), Distance: d})
		if best < 0 || d < best {
			best, bestK = d, int(k)
		}
	}
	out.BestDist, out.BestNode = best, bestK
	return out, nil
}

// Render prints the sweep as a bar chart.
func (r *Fig4Result) Render() string {
	labels := make([]string, len(r.Rows))
	values := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = fmt.Sprintf("node %d", row.CentralNode)
		values[i] = row.Distance
	}
	return fmt.Sprintf("Fig 4. Distance under different central nodes (request %v; best: node %d at %.1f)\n%s",
		r.RequestUsed, r.BestNode, r.BestDist, stats.BarChart(labels, values, 40))
}

// ---------------------------------------------------------------------------
// Figs. 5 and 6 — online heuristic vs global sub-optimization
// ---------------------------------------------------------------------------

// Fig56Row is one request's distance under each algorithm.
type Fig56Row struct {
	Request    int
	OnlineDist float64
	GlobalDist float64
}

// Fig56Result carries per-request distances plus the totals the paper
// quotes (global decreases the sum by ~2% in the Normal scenario and ~12%
// in the Small one).
type Fig56Result struct {
	Scenario       workload.Scenario
	Rows           []Fig56Row
	OnlineTotal    float64
	GlobalTotal    float64
	ImprovementPct float64
}

// Fig5 runs the Normal scenario.
func Fig5(seed int64) (*Fig56Result, error) { return fig56(seed, workload.Normal) }

// Fig6 runs the Small scenario.
func Fig6(seed int64) (*Fig56Result, error) { return fig56(seed, workload.Small) }

func fig56(seed int64, sc workload.Scenario) (*Fig56Result, error) {
	setup, err := NewPaperSetup(seed, sc)
	if err != nil {
		return nil, err
	}
	online, err := placement.PlaceSequential(setup.Topo, setup.Caps, setup.Requests, &placement.OnlineHeuristic{})
	if err != nil {
		return nil, err
	}
	g := &placement.GlobalSubOpt{}
	global, err := g.PlaceBatch(setup.Topo, setup.Caps, setup.Requests)
	if err != nil {
		return nil, err
	}
	out := &Fig56Result{Scenario: sc}
	for qi := range setup.Requests {
		var od, gd float64
		if online.Allocs[qi] != nil {
			od, _ = online.Allocs[qi].Distance(setup.Topo)
		}
		if global.Allocs[qi] != nil {
			gd, _ = global.Allocs[qi].Distance(setup.Topo)
		}
		out.Rows = append(out.Rows, Fig56Row{Request: qi, OnlineDist: od, GlobalDist: gd})
	}
	out.OnlineTotal = online.Total
	out.GlobalTotal = global.Total
	if out.OnlineTotal > 0 {
		out.ImprovementPct = (out.OnlineTotal - out.GlobalTotal) / out.OnlineTotal * 100
	}
	return out, nil
}

// Render prints both series and the totals.
func (r *Fig56Result) Render() string {
	fig := "Fig 5"
	if r.Scenario == workload.Small {
		fig = "Fig 6"
	}
	online := &stats.Series{Name: "online heuristic"}
	global := &stats.Series{Name: "global sub-opt"}
	for _, row := range r.Rows {
		online.Append(float64(row.Request), row.OnlineDist)
		global.Append(float64(row.Request), row.GlobalDist)
	}
	return fmt.Sprintf("%s. Online vs global sub-optimization (%s scenario)\n%stotal: online %.1f, global %.1f (−%.1f%%)\n",
		fig, r.Scenario, stats.RenderSeries("request", online, global),
		r.OnlineTotal, r.GlobalTotal, r.ImprovementPct)
}

// Fig56Averages runs Figs. 5 and 6 over n consecutive seeds and returns
// the mean improvement percentages (normal, small). A single draw of 20
// random requests is noisy; the averages are what EXPERIMENTS.md reports.
//
// Seeds run on the shared worker pool; each writes into its own slot and
// the sums are accumulated in seed order afterwards, so the result is
// bit-for-bit identical to a serial run for any worker count.
func Fig56Averages(seed int64, n int) (normalPct, smallPct float64, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("experiments: Fig56Averages needs a positive seed count")
	}
	normals := make([]float64, n)
	smalls := make([]float64, n)
	err = forEachIndex(n, func(i int) error {
		f5, err := Fig5(seed + int64(i))
		if err != nil {
			return err
		}
		f6, err := Fig6(seed + int64(i))
		if err != nil {
			return err
		}
		normals[i] = f5.ImprovementPct
		smalls[i] = f6.ImprovementPct
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		normalPct += normals[i]
		smallPct += smalls[i]
	}
	return normalPct / float64(n), smallPct / float64(n), nil
}

// ---------------------------------------------------------------------------
// Figs. 7 and 8 — WordCount on four clusters of increasing distance
// ---------------------------------------------------------------------------

// MRTopology is one of the four fixed virtual clusters of the experiment:
// same capability (8 VMs), different placements, hence different
// distances.
type MRTopology struct {
	Name  string
	Alloc affinity.Allocation
}

// Fig78Row is one cluster's measurements: the Fig. 7 runtime and the
// Fig. 8 locality counters.
type Fig78Row struct {
	Topology         string
	Distance         float64 // pairwise cluster affinity (the x-axis)
	RuntimeSec       float64
	MapsTotal        int
	NonDataLocalMaps int
	NonLocalShuffles int
	ShuffleRemoteMB  float64
}

// Fig78Result carries the four rows in distance order.
type Fig78Result struct {
	Rows []Fig78Row
}

// mrPlant is the four-rack, four-nodes-per-rack physical plant the
// experiment clusters are placed on.
func mrPlant() (*topology.Topology, error) {
	return topology.Uniform(1, 4, 4, topology.DefaultDistances())
}

// MRTopologies builds the four equal-capability clusters: 8 VMs, always
// two per node over four nodes (so per-node disk/NIC contention is
// identical), spread over one to four racks. With the experiment's
// distance configuration (same node 0, same rack 1, cross rack 2) their
// pairwise distances are 24, 36, 40, and 48 — like the paper's
// 10/14/16/20 series, the values are discrete because topology constrains
// what is achievable (the paper makes the same observation).
func MRTopologies() ([]MRTopology, error) {
	tp, err := mrPlant()
	if err != nil {
		return nil, err
	}
	n := tp.Nodes()
	mk := func(nodes ...int) affinity.Allocation {
		a := affinity.NewAllocation(n, 1)
		for _, node := range nodes {
			a[node][0] = 2
		}
		return a
	}
	return []MRTopology{
		// Four nodes of one rack: 6 cross-node pairs × 4 × d1 = 24.
		{Name: "dist-24", Alloc: mk(0, 1, 2, 3)},
		// Three nodes in rack 0, one in rack 1: 12×d1 + 12×d2 = 36.
		{Name: "dist-36", Alloc: mk(0, 1, 2, 4)},
		// Two nodes in each of two racks: 8×d1 + 16×d2 = 40.
		{Name: "dist-40", Alloc: mk(0, 1, 4, 5)},
		// One node in each of four racks: 24×d2 = 48.
		{Name: "dist-48", Alloc: mk(0, 4, 8, 12)},
	}, nil
}

// MRExperimentConfig sizes the WordCount run: the paper used 32 map tasks
// and 1 reduce task.
type MRExperimentConfig struct {
	InputMB float64
	Seed    int64
	Sim     mapreduce.SimConfig
	Net     netmodel.Config
	DFS     dfs.Config
	// SingleWriterInput loads the input through one VM instead of
	// balancing block ownership across the cluster. The resulting replica
	// skew starves some topologies of data locality — the mechanism
	// behind the paper's Fig. 7 anomaly, where the distance-14 cluster
	// ran slower than the distance-16 one because it suffered more
	// non-data-local maps (Fig. 8).
	SingleWriterInput bool
}

// DefaultMRExperimentConfig reproduces the paper's job shape: 32 × 64 MB
// blocks → 32 map tasks, 1 reducer.
func DefaultMRExperimentConfig(seed int64) MRExperimentConfig {
	d := dfs.DefaultConfig()
	d.Seed = seed
	// The testbed racks of the era were oversubscribed: the shared rack
	// uplink delivers less per-flow bandwidth than a node's access link,
	// which is what makes cross-rack shuffle traffic expensive.
	net := netmodel.DefaultConfig()
	net.RackUplinkMBps = 80
	return MRExperimentConfig{
		InputMB: 32 * 64,
		Seed:    seed,
		Sim:     mapreduce.DefaultSimConfig(),
		Net:     net,
		DFS:     d,
	}
}

// RunMRCluster executes WordCount on one cluster allocation and returns
// its row.
func RunMRCluster(name string, alloc affinity.Allocation, cfg MRExperimentConfig) (*Fig78Row, error) {
	return runMRClusterJob(name, alloc, cfg, mapreduce.WordCount("input"))
}

// newMRSim assembles the simulator stack (engine, network, DFS with the
// pre-loaded input, MapReduce scheduler) for one cluster.
func newMRSim(tp *topology.Topology, cluster *vcluster.Cluster, cfg MRExperimentConfig) (*mapreduce.Simulator, error) {
	engine := eventsim.New()
	net, err := netmodel.NewFlowSim(engine, tp, cfg.Net)
	if err != nil {
		return nil, err
	}
	fsys, err := dfs.New(cluster, cfg.DFS)
	if err != nil {
		return nil, err
	}
	// The input pre-exists in the DFS — balanced across the cluster as a
	// MapReduce input normally is, or skewed through a single writer when
	// the anomaly variant is requested.
	if cfg.SingleWriterInput {
		if _, err := fsys.Write("input", cfg.InputMB, 0); err != nil {
			return nil, err
		}
	} else if _, err := fsys.WriteRotating("input", cfg.InputMB); err != nil {
		return nil, err
	}
	return mapreduce.New(engine, net, cluster, fsys, cfg.Sim)
}

// runMRClusterJob executes an arbitrary job on one cluster allocation.
func runMRClusterJob(name string, alloc affinity.Allocation, cfg MRExperimentConfig, job mapreduce.JobSpec) (*Fig78Row, error) {
	tp, err := mrPlant()
	if err != nil {
		return nil, err
	}
	cluster, err := vcluster.FromAllocation(tp, alloc)
	if err != nil {
		return nil, err
	}
	sim, err := newMRSim(tp, cluster, cfg)
	if err != nil {
		return nil, err
	}
	if job.InputFile != "input" {
		return nil, fmt.Errorf("experiments: job must read %q, got %q", "input", job.InputFile)
	}
	counters, err := sim.Run(job)
	if err != nil {
		return nil, err
	}
	return &Fig78Row{
		Topology:         name,
		Distance:         cluster.PairwiseDistance(),
		RuntimeSec:       counters.Runtime,
		MapsTotal:        counters.MapsTotal,
		NonDataLocalMaps: counters.NonDataLocalMaps(),
		NonLocalShuffles: counters.NonLocalShuffles(),
		ShuffleRemoteMB:  counters.ShuffleRemoteMB,
	}, nil
}

// Fig7and8 runs WordCount on the four clusters with a balanced input:
// runtime grows with cluster distance.
func Fig7and8(seed int64) (*Fig78Result, error) {
	return fig78(DefaultMRExperimentConfig(seed))
}

// Fig7and8Skewed is the anomaly variant: a single-writer input skews
// replica ownership, some clusters lose data locality, and — exactly as
// the paper observed between its distance-14 and distance-16 clusters —
// a cluster with a *shorter* distance can run *slower* because it suffers
// more non-data-local maps.
func Fig7and8Skewed(seed int64) (*Fig78Result, error) {
	cfg := DefaultMRExperimentConfig(seed)
	cfg.SingleWriterInput = true
	return fig78(cfg)
}

func fig78(cfg MRExperimentConfig) (*Fig78Result, error) {
	return RunJobAcrossTopologies(cfg, mapreduce.WordCount)
}

// RunJobAcrossTopologies runs any job profile (given as a constructor
// taking the input file name) on the four experiment clusters — the
// generalization of Fig 7/8 to the other benchmark workloads.
func RunJobAcrossTopologies(cfg MRExperimentConfig, mk func(inputFile string) mapreduce.JobSpec) (*Fig78Result, error) {
	tops, err := MRTopologies()
	if err != nil {
		return nil, err
	}
	out := &Fig78Result{Rows: make([]Fig78Row, len(tops))}
	err = forEachIndex(len(tops), func(i int) error {
		mt := tops[i]
		row, err := runMRClusterJob(mt.Name, mt.Alloc, cfg, mk("input"))
		if err != nil {
			return fmt.Errorf("experiments: cluster %s: %w", mt.Name, err)
		}
		out.Rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// HasInversion reports whether some adjacent pair of rows (ascending
// distance) has the shorter-distance cluster running slower — the paper's
// Fig. 7 anomaly — and returns the first such pair.
func (r *Fig78Result) HasInversion() (bool, string, string) {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i-1].RuntimeSec > r.Rows[i].RuntimeSec {
			return true, r.Rows[i-1].Topology, r.Rows[i].Topology
		}
	}
	return false, "", ""
}

// RenderFig7 prints the runtime bar chart.
func (r *Fig78Result) RenderFig7() string {
	labels := make([]string, len(r.Rows))
	values := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = fmt.Sprintf("%s (D=%.0f)", row.Topology, row.Distance)
		values[i] = row.RuntimeSec
	}
	return "Fig 7. WordCount runtime by virtual cluster distance\n" + stats.BarChart(labels, values, 40)
}

// RenderFig8 prints the locality counters.
func (r *Fig78Result) RenderFig8() string {
	t := &stats.Table{Header: []string{"topology", "distance", "non-data-local maps", "non-local shuffles", "remote shuffle MB"}}
	for _, row := range r.Rows {
		t.Add(row.Topology, row.Distance, row.NonDataLocalMaps, row.NonLocalShuffles, row.ShuffleRemoteMB)
	}
	return "Fig 8. Data and shuffle locality by virtual cluster distance\n" + t.String()
}

// ---------------------------------------------------------------------------
// Supplementary: heuristic-vs-exact optimality gap
// ---------------------------------------------------------------------------

// ExactGapResult quantifies how far Algorithm 1 lands from the SD optimum.
type ExactGapResult struct {
	Instances  int
	OptimalHit int     // instances where the heuristic matched the optimum
	MeanGapPct float64 // mean (heuristic−opt)/opt over instances with opt>0
	MaxGapPct  float64
}

// ExactGap samples random instances on a small plant and compares the
// online heuristic against the exact SD solver.
func ExactGap(seed int64, instances int) (*ExactGapResult, error) {
	if instances <= 0 {
		return nil, fmt.Errorf("experiments: ExactGap needs positive instance count")
	}
	tp, err := topology.Uniform(1, 3, 4, topology.DefaultDistances())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	h := &placement.OnlineHeuristic{}
	out := &ExactGapResult{}
	var gapSum float64
	var gapN int
	for out.Instances < instances {
		caps, err := workload.RandomCapacities(rng.Int63(), tp.Nodes(), 2, workload.DefaultInventoryConfig())
		if err != nil {
			return nil, err
		}
		req := model.Request{1 + rng.Intn(6), rng.Intn(4)}
		exact, errE := sdexact.SolveSD(tp, caps, req)
		if errE != nil {
			continue // infeasible draw
		}
		alloc, errH := h.Place(tp, caps, req)
		if errH != nil {
			continue
		}
		out.Instances++
		d, _ := alloc.Distance(tp)
		if d <= exact.Distance+1e-9 {
			out.OptimalHit++
		}
		if exact.Distance > 0 {
			gap := (d - exact.Distance) / exact.Distance * 100
			gapSum += gap
			gapN++
			if gap > out.MaxGapPct {
				out.MaxGapPct = gap
			}
		}
	}
	if gapN > 0 {
		out.MeanGapPct = gapSum / float64(gapN)
	}
	return out, nil
}

// Render prints the gap study.
func (r *ExactGapResult) Render() string {
	return fmt.Sprintf("Heuristic vs exact SD over %d instances: optimal on %d (%.0f%%), mean gap %.2f%%, max gap %.2f%%\n",
		r.Instances, r.OptimalHit, float64(r.OptimalHit)/float64(r.Instances)*100, r.MeanGapPct, r.MaxGapPct)
}
