package experiments

import (
	"fmt"
	"math/rand"

	"affinitycluster/internal/placement"
	"affinitycluster/internal/stats"
	"affinitycluster/internal/workload"
)

// BaselineRow summarizes one placement strategy over the paper's 20
// sequential requests.
type BaselineRow struct {
	Strategy     string
	Placed       int
	Failed       int
	Total        float64 // Σ DC
	MeanPerReq   float64
	MeanAffinity float64 // mean pairwise affinity (the shuffle metric)
}

// BaselineResult compares every placer on one instance.
type BaselineResult struct {
	Rows []BaselineRow
}

// BaselineComparison runs the paper's simulation workload through the
// affinity-aware heuristic and every affinity-blind baseline,
// reporting the distance and affinity each produces — the evaluation a
// provider would use to justify adopting affinity-aware placement.
func BaselineComparison(seed int64) (*BaselineResult, error) {
	setup, err := NewPaperSetup(seed, workload.Normal)
	if err != nil {
		return nil, err
	}
	// Constructors, not shared instances: each worker gets a private
	// placer (Random carries a mutable rand.Rand), and every strategy
	// derives its randomness from the seed alone, so the comparison is
	// identical for any worker count.
	placers := []func() placement.Placer{
		func() placement.Placer { return &placement.OnlineHeuristic{} },
		func() placement.Placer { return placement.FirstFit{} },
		func() placement.Placer { return placement.PackBestFit{} },
		func() placement.Placer { return placement.RoundRobinStripe{} },
		func() placement.Placer {
			return &placement.Random{Rand: rand.New(rand.NewSource(seed + 7))}
		},
	}
	out := &BaselineResult{Rows: make([]BaselineRow, len(placers))}
	err = forEachIndex(len(placers), func(i int) error {
		p := placers[i]()
		res, err := placement.PlaceSequential(setup.Topo, setup.Caps, setup.Requests, p)
		if err != nil {
			return fmt.Errorf("experiments: baseline %s: %w", p.Name(), err)
		}
		row := BaselineRow{Strategy: p.Name(), Failed: res.Failed}
		var affSum float64
		for _, a := range res.Allocs {
			if a == nil {
				continue
			}
			row.Placed++
			d, _ := a.Distance(setup.Topo)
			row.Total += d
			affSum += a.PairwiseAffinity(setup.Topo)
		}
		if row.Placed > 0 {
			row.MeanPerReq = row.Total / float64(row.Placed)
			row.MeanAffinity = affSum / float64(row.Placed)
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the comparison table.
func (r *BaselineResult) Render() string {
	t := &stats.Table{Header: []string{"strategy", "placed", "failed", "total DC", "mean DC", "mean affinity"}}
	for _, row := range r.Rows {
		t.Add(row.Strategy, row.Placed, row.Failed, row.Total, row.MeanPerReq, row.MeanAffinity)
	}
	return "Baseline comparison over the paper's 20-request workload\n" + t.String()
}
