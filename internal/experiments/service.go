// Serving is the placement-service scenario: the ops workload (a
// saturated 3×10 plant) run with every placement commit and release
// routed through the concurrent placement front-end of internal/service
// instead of direct inventory mutation. The simulator drives the service
// synchronously from its event loop, so the scenario stays strictly
// serial and the obs event order (and hence the -trace output) remains a
// deterministic function of the seed — the service's wall-clock batching
// figures live in its Stats, outside the registry.

package experiments

import (
	"fmt"
	"io"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/service"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// ServingConfig sizes the placement-service scenario.
type ServingConfig struct {
	// Requests is the number of timed cluster requests.
	Requests int
	// QueueCap bounds the simulator's wait queue (0 = unbounded).
	QueueCap int
	// Arrival shapes the arrival/holding process.
	Arrival workload.ArrivalConfig
	// Serve carries the service's batching knobs (BatchSize, MaxWait,
	// IntakeCap); the simulator overrides everything else.
	Serve service.Config
}

// DefaultServingConfig mirrors the ops cloud half — same plant, same
// request process — so served and direct runs are directly comparable.
func DefaultServingConfig() ServingConfig {
	arr := workload.DefaultArrivalConfig()
	arr.MeanInterarrival = 5
	return ServingConfig{
		Requests: 40,
		QueueCap: 0,
		Arrival:  arr,
		Serve:    service.Config{BatchSize: 8},
	}
}

// ServingResult bundles the scenario's outputs: the registry, the cloud
// metrics, and the service's activity counters.
type ServingResult struct {
	Reg   *obs.Registry
	Cloud *cloudsim.Metrics
	Stats service.Stats
}

// Serving runs the placement-service scenario on a fresh registry. The
// workload and plant are generated exactly like Ops (same seed
// derivation), so any divergence from a direct run would be a service
// bug, not workload noise.
func Serving(seed int64, cfg ServingConfig) (*ServingResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("experiments: Serving needs a positive request count, got %d", cfg.Requests)
	}
	reg := obs.NewRegistry()

	const types = 3
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(seed, tp.Nodes(), types, workload.InventoryConfig{MaxPerType: 2})
	if err != nil {
		return nil, err
	}
	reqs, err := workload.RandomRequests(seed+1, cfg.Requests, types, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		return nil, err
	}
	timed, err := workload.TimedRequests(seed+2, reqs, cfg.Arrival)
	if err != nil {
		return nil, err
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		return nil, err
	}
	serveCfg := cfg.Serve
	cs, err := cloudsim.New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, cloudsim.Config{
		Policy:   queue.FIFO,
		QueueCap: cfg.QueueCap,
		Serve:    &serveCfg,
		Obs:      reg,
	})
	if err != nil {
		return nil, err
	}
	cloudMetrics, err := cs.Run(timed)
	if err != nil {
		return nil, err
	}
	stats, ok := cs.ServiceStats()
	if !ok {
		return nil, fmt.Errorf("experiments: Serving ran without a placement service")
	}
	return &ServingResult{Reg: reg, Cloud: cloudMetrics, Stats: stats}, nil
}

// Render prints the operator-facing report: serving headline, then the
// registry's metric summary.
func (r *ServingResult) Render() string {
	c := r.Cloud
	head := fmt.Sprintf(
		"Serving scenario. service: %d ops in %d batches (max batch %d), %d placed, %d released; cloud: served %d, rejected %d, unplaced %d, mean DC %.2f\n\n",
		r.Stats.Ops, r.Stats.Batches, r.Stats.MaxBatch, r.Stats.Placed, r.Stats.Released,
		c.Served, c.Rejected, c.Unplaced, meanDistance(c))
	return head + r.Reg.RenderSummary()
}

// meanDistance is the mean DC over served clusters (0 when none served).
func meanDistance(c *cloudsim.Metrics) float64 {
	if c.Served == 0 {
		return 0
	}
	return c.TotalDistance / float64(c.Served)
}

// WriteMetrics writes the registry's JSON metric snapshot.
func (r *ServingResult) WriteMetrics(w io.Writer) error { return r.Reg.WriteMetricsJSON(w) }

// WriteTrace writes the registry's JSONL event trace.
func (r *ServingResult) WriteTrace(w io.Writer) error { return r.Reg.WriteTraceJSONL(w) }
