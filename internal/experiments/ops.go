// Ops is the instrumented operational scenario: the full stack — queue,
// placement, migration, and one MapReduce job — run against a single
// obs.Registry so operators can inspect every layer's metrics and the
// decision trace of one simulated day in one snapshot.
//
// Unlike the figure runners, Ops executes strictly serially: the obs
// event log records events in append order, and only a single-threaded
// simulation makes that order (and hence the -trace output) a
// deterministic function of the seed.

package experiments

import (
	"fmt"
	"io"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/vcluster"
	"affinitycluster/internal/workload"
)

// OpsConfig sizes the operational scenario.
type OpsConfig struct {
	// Requests is the number of timed cluster requests fed through the
	// cloud (default 20, the paper's request count).
	Requests int
	// QueueCap bounds the wait queue (0 = unbounded).
	QueueCap int
	// Arrival shapes the arrival/holding process.
	Arrival workload.ArrivalConfig
	// MR configures the MapReduce job run on the first experiment
	// cluster after the cloud simulation completes.
	MR MRExperimentConfig
}

// DefaultOpsConfig sizes the scenario so every family sees real work:
// twice the paper's request count arriving six times as fast, which
// saturates the 3×10 plant — requests queue, batch placement drains
// them, and departures leave holes the migration planner tightens.
func DefaultOpsConfig(seed int64) OpsConfig {
	arr := workload.DefaultArrivalConfig()
	arr.MeanInterarrival = 5
	return OpsConfig{
		Requests: 40,
		QueueCap: 0,
		Arrival:  arr,
		MR:       DefaultMRExperimentConfig(seed),
	}
}

// OpsResult bundles the scenario's outputs: the registry holding every
// metric and event, plus the headline numbers of both halves.
type OpsResult struct {
	Reg   *obs.Registry
	Cloud *cloudsim.Metrics
	MR    *mapreduce.Counters
}

// Ops runs the operational scenario on a fresh registry: the cloud
// simulation (batch placement + migration, so the placement, queue, and
// migration families all populate) followed by one instrumented
// WordCount (the mapreduce family). Same seed, same snapshot — byte for
// byte.
func Ops(seed int64, cfg OpsConfig) (*OpsResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("experiments: Ops needs a positive request count, got %d", cfg.Requests)
	}
	reg := obs.NewRegistry()

	// --- Cloud half: queue + placement + migration. ---
	// The plant is the paper's 3×10 topology but with tighter per-node
	// capacities (at most 2 of each type instead of 4): Normal-scenario
	// requests then outstrip the plant, so arrivals genuinely queue and
	// batch drains and migration all have work to do.
	const types = 3
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(seed, tp.Nodes(), types, workload.InventoryConfig{MaxPerType: 2})
	if err != nil {
		return nil, err
	}
	reqs, err := workload.RandomRequests(seed+1, cfg.Requests, types, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		return nil, err
	}
	timed, err := workload.TimedRequests(seed+2, reqs, cfg.Arrival)
	if err != nil {
		return nil, err
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		return nil, err
	}
	cs, err := cloudsim.New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, cloudsim.Config{
		Policy:   queue.FIFO,
		QueueCap: cfg.QueueCap,
		Batch:    true,
		Migrate:  true,
		Obs:      reg,
	})
	if err != nil {
		return nil, err
	}
	cloudMetrics, err := cs.Run(timed)
	if err != nil {
		return nil, err
	}

	// --- MapReduce half: one WordCount on the densest experiment
	// cluster, instrumented into the same registry. ---
	mrCounters, err := opsMapReduce(reg, cfg.MR)
	if err != nil {
		return nil, err
	}
	return &OpsResult{Reg: reg, Cloud: cloudMetrics, MR: mrCounters}, nil
}

// opsMapReduce mirrors runMRClusterJob but threads the registry through
// mapreduce.Simulator.Instrument. It runs on the caller's goroutine —
// never on the worker pool — to keep the event order deterministic.
func opsMapReduce(reg *obs.Registry, cfg MRExperimentConfig) (*mapreduce.Counters, error) {
	tops, err := MRTopologies()
	if err != nil {
		return nil, err
	}
	tp, err := mrPlant()
	if err != nil {
		return nil, err
	}
	cluster, err := vcluster.FromAllocation(tp, tops[0].Alloc)
	if err != nil {
		return nil, err
	}
	sim, err := newMRSim(tp, cluster, cfg)
	if err != nil {
		return nil, err
	}
	sim.Instrument(reg)
	return sim.Run(mapreduce.WordCount("input"))
}

// Render prints the operator-facing report: headline numbers, then the
// registry's metric summary.
func (r *OpsResult) Render() string {
	head := fmt.Sprintf(
		"Ops scenario. cloud: served %d, rejected %d, migrations %d (%.0f MB); mapreduce: runtime %.1fs, %d/%d non-data-local maps\n\n",
		r.Cloud.Served, r.Cloud.Rejected, r.Cloud.Migrations, r.Cloud.MigrationMB,
		r.MR.Runtime, r.MR.NonDataLocalMaps(), r.MR.MapsTotal)
	return head + r.Reg.RenderSummary()
}

// WriteMetrics writes the registry's JSON metric snapshot.
func (r *OpsResult) WriteMetrics(w io.Writer) error { return r.Reg.WriteMetricsJSON(w) }

// WriteTrace writes the registry's JSONL event trace.
func (r *OpsResult) WriteTrace(w io.Writer) error { return r.Reg.WriteTraceJSONL(w) }
