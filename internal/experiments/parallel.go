package experiments

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the worker pool used by the experiment runners.
// 0 means GOMAXPROCS. Tests override it (e.g. to 1 and 8) to assert
// that results are identical regardless of worker count.
var maxWorkers = 0

func workerCount(n int) int {
	w := maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachIndex runs fn(0) … fn(n−1) on a bounded worker pool.
//
// Determinism contract: fn must write its result into a per-index slot
// (out[i] = …) and must not read other indices' slots or share mutable
// state across calls, so the assembled output is independent of worker
// count and goroutine scheduling. When several calls fail, the error for
// the lowest index is returned — again independent of scheduling.
func forEachIndex(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := workerCount(n)
	errs := make([]error, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
