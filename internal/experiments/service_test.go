package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The default serving scenario must do real work — every request served
// through the service, conservation holding, and the serving stats
// matching the cloud metrics (one place and one release per served
// cluster, since the saturated run drains completely).
func TestServingDefaultServesWorkload(t *testing.T) {
	cfg := DefaultServingConfig()
	res, err := Serving(2012, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cloud
	if got := c.Served + c.Rejected + c.Unplaced; got != cfg.Requests {
		t.Errorf("Served %d + Rejected %d + Unplaced %d = %d, want %d",
			c.Served, c.Rejected, c.Unplaced, got, cfg.Requests)
	}
	if c.Served == 0 {
		t.Fatal("no requests served")
	}
	if int(res.Stats.Placed) != c.Served {
		t.Errorf("service placed %d, cloud served %d", res.Stats.Placed, c.Served)
	}
	if res.Stats.Released != res.Stats.Placed {
		t.Errorf("service released %d of %d placements", res.Stats.Released, res.Stats.Placed)
	}
	if res.Stats.Batches == 0 || res.Stats.Ops < res.Stats.Placed+res.Stats.Released {
		t.Errorf("implausible serving stats: %+v", res.Stats)
	}
	out := res.Render()
	for _, want := range []string{"Serving scenario.", "cloudsim.served", "placement.place_calls"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

// Same seed, same config — byte-identical exports: routing commits
// through the service must not perturb the registry.
func TestServingDeterministic(t *testing.T) {
	var metrics, traces [2]bytes.Buffer
	for i := range metrics {
		res, err := Serving(2012, DefaultServingConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteMetrics(&metrics[i]); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(metrics[0].Bytes(), metrics[1].Bytes()) {
		t.Error("metric snapshots differ across identical serving runs")
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Error("event traces differ across identical serving runs")
	}
}
