// Faults is the fault-injection scenario: the ops cloud half (queue +
// batch placement + migration) run under a seeded crash/repair schedule,
// so every recovery path — in-place evacuation, retry-with-backoff
// re-placement, and the parked-victim drain after a repair — sees real
// work. Like Ops it executes strictly serially: only a single-threaded
// simulation keeps the obs event order (and hence the -trace output) a
// deterministic function of the seed.

package experiments

import (
	"fmt"
	"io"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/faults"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// FaultsConfig sizes the fault scenario.
type FaultsConfig struct {
	// Requests is the number of timed cluster requests.
	Requests int
	// QueueCap bounds the wait queue (0 = unbounded).
	QueueCap int
	// Arrival shapes the arrival/holding process.
	Arrival workload.ArrivalConfig
	// Faults parameterizes the crash/repair schedule (must be enabled).
	Faults faults.Config
	// Recovery tunes the requeue-with-backoff policy.
	Recovery cloudsim.RecoveryConfig
}

// DefaultFaultsConfig pairs the ops workload (a saturated 3×10 plant)
// with a fault process dense enough to exercise both recovery paths:
// single-node crashes usually leave enough residual capacity for
// in-place evacuation, while every second failure is a whole-rack
// outage that forces teardown and requeue until the repair restores the
// rack.
func DefaultFaultsConfig(seed int64) FaultsConfig {
	arr := workload.DefaultArrivalConfig()
	arr.MeanInterarrival = 5
	return FaultsConfig{
		Requests: 40,
		QueueCap: 0,
		Arrival:  arr,
		Faults: faults.Config{
			MTBF:      40,
			MTTR:      60,
			Horizon:   250,
			RackEvery: 2,
		},
		Recovery: cloudsim.RecoveryConfig{
			MaxAttempts: 3,
			Backoff:     10,
			Factor:      2,
		},
	}
}

// FaultsResult bundles the scenario's outputs: the registry holding
// every metric and event, the cloud metrics, and the injected schedule.
type FaultsResult struct {
	Reg   *obs.Registry
	Cloud *cloudsim.Metrics
	Plan  []faults.Event
}

// Faults runs the fault scenario on a fresh registry. The workload and
// plant are generated exactly like Ops (same seed derivation), so the
// only new force acting on the cloud is the fault schedule, which is
// seeded independently with seed+3.
func Faults(seed int64, cfg FaultsConfig) (*FaultsResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("experiments: Faults needs a positive request count, got %d", cfg.Requests)
	}
	if !cfg.Faults.Enabled() {
		return nil, fmt.Errorf("experiments: Faults needs an enabled fault config (MTBF > 0)")
	}
	reg := obs.NewRegistry()

	const types = 3
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(seed, tp.Nodes(), types, workload.InventoryConfig{MaxPerType: 2})
	if err != nil {
		return nil, err
	}
	reqs, err := workload.RandomRequests(seed+1, cfg.Requests, types, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		return nil, err
	}
	timed, err := workload.TimedRequests(seed+2, reqs, cfg.Arrival)
	if err != nil {
		return nil, err
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		return nil, err
	}
	faultSeed := seed + 3
	plan, err := faults.Plan(faultSeed, tp, cfg.Faults)
	if err != nil {
		return nil, err
	}
	cs, err := cloudsim.New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, cloudsim.Config{
		Policy:    queue.FIFO,
		QueueCap:  cfg.QueueCap,
		Batch:     true,
		Migrate:   true,
		Faults:    cfg.Faults,
		FaultSeed: faultSeed,
		Recovery:  cfg.Recovery,
		Obs:       reg,
	})
	if err != nil {
		return nil, err
	}
	cloudMetrics, err := cs.Run(timed)
	if err != nil {
		return nil, err
	}
	return &FaultsResult{Reg: reg, Cloud: cloudMetrics, Plan: plan}, nil
}

// Render prints the operator-facing report: the injected schedule's
// headline, the recovery outcome, then the registry's metric summary.
func (r *FaultsResult) Render() string {
	c := r.Cloud
	head := fmt.Sprintf(
		"Faults scenario. injected %d failures (%d VMs lost); recovered %d by evacuation, %d by requeue (%d torn down, %d retry budgets exhausted); cloud: served %d, rejected %d, unplaced %d, migrations %d\n\n",
		c.Failures, c.LostVMs, c.Evacuations, c.Replacements, c.Requeued, c.RetriesExhausted,
		c.Served, c.Rejected, c.Unplaced, c.Migrations)
	return head + r.Reg.RenderSummary()
}

// WriteMetrics writes the registry's JSON metric snapshot.
func (r *FaultsResult) WriteMetrics(w io.Writer) error { return r.Reg.WriteMetricsJSON(w) }

// WriteTrace writes the registry's JSONL event trace.
func (r *FaultsResult) WriteTrace(w io.Writer) error { return r.Reg.WriteTraceJSONL(w) }
