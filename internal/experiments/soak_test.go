package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// soakAt runs a sized-down soak and returns its result.
func soakAt(t *testing.T, seed int64, requests int) *SoakResult {
	t.Helper()
	cfg := DefaultSoakConfig()
	cfg.Requests = requests
	// Sample the heap often enough that short runs catch their plateau.
	cfg.MemEvery = 512
	res, err := Soak(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSoakConservesAndRenders(t *testing.T) {
	res := soakAt(t, 2012, 5000)
	c := res.Cloud
	if got := c.Served + c.Rejected + c.Unplaced; got != res.Requests {
		t.Errorf("conservation broken: served %d + rejected %d + unplaced %d = %d, want %d",
			c.Served, c.Rejected, c.Unplaced, got, res.Requests)
	}
	if c.Served == 0 {
		t.Fatal("nothing served")
	}
	if c.Distances != nil || c.Waits != nil {
		t.Error("soak retained exact samples; must run in streaming mode")
	}
	if got, want := c.WaitSketch.Count(), int64(c.Served); got != want {
		t.Errorf("wait sketch holds %d samples, want %d (served)", got, want)
	}
	if res.PeakHeapBytes == 0 {
		t.Error("heap peak not sampled")
	}
	out := res.Render()
	for _, want := range []string{"Soak scenario.", "distance:", "wait:", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSoakDeterministic: the rendered report is a pure function of seed
// and config (the machine-dependent heap peak stays out of it).
func TestSoakDeterministic(t *testing.T) {
	a := soakAt(t, 7, 4000)
	b := soakAt(t, 7, 4000)
	if a.Render() != b.Render() {
		t.Errorf("same-seed soak reports differ:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	if c := soakAt(t, 8, 4000); c.Render() == a.Render() {
		t.Error("different seeds produced identical reports")
	}
}

// TestSoakStreamsTrace: the soak is instrumented through a streaming
// registry — events reach the sink as JSONL without being retained, and
// the streamed bytes are a same-seed-deterministic function of the run.
func TestSoakStreamsTrace(t *testing.T) {
	runAt := func(seed int64) (*SoakResult, string) {
		cfg := DefaultSoakConfig()
		cfg.Requests = 2000
		var buf strings.Builder
		cfg.Trace = &buf
		res, err := Soak(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	res, trace := runAt(11)
	if res.Events == 0 {
		t.Fatal("instrumented soak streamed no events")
	}
	if got := strings.Count(trace, "\n"); got != res.Events {
		t.Errorf("sink holds %d JSONL lines, registry counted %d events", got, res.Events)
	}
	if res.Reg.Events() != nil {
		t.Error("soak registry retained events; must stream")
	}
	if _, again := runAt(11); again != trace {
		t.Error("same-seed soak traces differ")
	}
}

// TestSoakFaultsInjected: the derived fault horizon spans the run, so a
// default-config soak actually sees failures.
func TestSoakFaultsInjected(t *testing.T) {
	res := soakAt(t, 2012, 8000)
	if res.Cloud.Failures == 0 {
		t.Error("default soak injected no failures; horizon derivation broken?")
	}
}

func TestSoakRejectsBadConfig(t *testing.T) {
	cfg := DefaultSoakConfig()
	cfg.Requests = 0
	if _, err := Soak(1, cfg); err == nil {
		t.Error("zero request count accepted")
	}
	cfg = DefaultSoakConfig()
	cfg.Requests = 10
	cfg.Workload.BaseRate = -1
	if _, err := Soak(1, cfg); err == nil {
		t.Error("invalid workload accepted")
	}
}

// TestSoakMemoryBounded is the O(active)-memory claim as a test: the
// peak live heap of a replay must not scale with the trace length. An
// 8× longer trace is allowed at most ~2× the shorter run's peak — far
// below the 8× an O(requests) structure would show, while leaving slack
// for GC pacing noise.
func TestSoakMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-scaling soak skipped in -short")
	}
	runtime.GC()
	small := soakAt(t, 2012, 10_000)
	runtime.GC()
	large := soakAt(t, 2012, 80_000)
	if small.PeakHeapBytes == 0 || large.PeakHeapBytes == 0 {
		t.Fatal("heap peaks not sampled")
	}
	ratio := float64(large.PeakHeapBytes) / float64(small.PeakHeapBytes)
	t.Logf("peak heap: %d requests → %.1f MiB, %d requests → %.1f MiB (ratio %.2f)",
		small.Requests, float64(small.PeakHeapBytes)/(1<<20),
		large.Requests, float64(large.PeakHeapBytes)/(1<<20), ratio)
	if ratio > 2 {
		t.Errorf("peak heap grew %.2f× for an 8× longer trace; replay is not O(active)", ratio)
	}
}
