package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the pool width pinned, restoring it after.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	old := maxWorkers
	maxWorkers = w
	defer func() { maxWorkers = old }()
	fn()
}

// TestForEachIndexCoversAllAndOrdersErrors exercises the pool directly:
// every index runs exactly once, and the reported error is the
// lowest-index failure regardless of scheduling.
func TestForEachIndexCoversAllAndOrdersErrors(t *testing.T) {
	for _, w := range []int{1, 3, 16} {
		withWorkers(t, w, func() {
			var calls [40]int32
			if err := forEachIndex(len(calls), func(i int) error {
				atomic.AddInt32(&calls[i], 1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for i, c := range calls {
				if c != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
				}
			}
			errLow := errors.New("low")
			errHigh := errors.New("high")
			err := forEachIndex(len(calls), func(i int) error {
				switch i {
				case 7:
					return errLow
				case 31:
					return errHigh
				}
				return nil
			})
			if err != errLow {
				t.Fatalf("workers=%d: got %v, want lowest-index error", w, err)
			}
		})
	}
	if err := forEachIndex(0, func(int) error { t.Fatal("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRunnersDeterministic runs every parallelized experiment
// with 1 worker and with 8 and requires deeply equal results: the pool
// must not change any reported number.
func TestParallelRunnersDeterministic(t *testing.T) {
	const seed = 424242

	type outcome struct {
		normal, small float64
		sweep         *SweepResult
		base          *BaselineResult
		fig78         *Fig78Result
	}
	run := func() *outcome {
		o := &outcome{}
		var err error
		o.normal, o.small, err = Fig56Averages(seed, 4)
		if err != nil {
			t.Fatal(err)
		}
		o.sweep, err = SelectivitySweep(seed, []float64{0.01, 0.5, 1.2})
		if err != nil {
			t.Fatal(err)
		}
		o.base, err = BaselineComparison(seed)
		if err != nil {
			t.Fatal(err)
		}
		o.fig78, err = Fig7and8(seed)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}

	var serial, wide *outcome
	withWorkers(t, 1, func() { serial = run() })
	withWorkers(t, 8, func() { wide = run() })

	if serial.normal != wide.normal || serial.small != wide.small {
		t.Errorf("Fig56Averages differs: serial (%v, %v), 8 workers (%v, %v)",
			serial.normal, serial.small, wide.normal, wide.small)
	}
	if !reflect.DeepEqual(serial.sweep, wide.sweep) {
		t.Errorf("SelectivitySweep differs:\nserial %+v\n8 workers %+v", serial.sweep, wide.sweep)
	}
	if !reflect.DeepEqual(serial.base, wide.base) {
		t.Errorf("BaselineComparison differs:\nserial %+v\n8 workers %+v", serial.base, wide.base)
	}
	if !reflect.DeepEqual(serial.fig78, wide.fig78) {
		t.Errorf("Fig7and8 differs:\nserial %+v\n8 workers %+v", serial.fig78, wide.fig78)
	}
}
