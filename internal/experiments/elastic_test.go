package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The default elastic scenario must exercise the resize machinery end to
// end — grows served, shrinks fired at the boundary — and its ledger
// must conserve grow ops the way the request identity conserves
// requests.
func TestElasticDefaultExercisesResizePaths(t *testing.T) {
	cfg := DefaultElasticConfig()
	res, err := Elastic(2012, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Elastic
	t.Logf("growReqs=%d grows=%d vms=%d shrinks=%d rejected=%d deferred=%d",
		e.GrowRequests, e.Grows, e.GrowVMs, e.Shrinks, e.GrowRejected, e.Deferred)
	if !(res.MapFrac > 0 && res.MapFrac < 1) {
		t.Errorf("map fraction = %v", res.MapFrac)
	}
	if e.GrowRequests != e.Served {
		t.Errorf("grow requests = %d, want one per commission (%d served, no faults)", e.GrowRequests, e.Served)
	}
	if e.Grows == 0 || e.Shrinks != e.Grows {
		t.Errorf("grows=%d shrinks=%d, want equal and non-zero (no faults here)", e.Grows, e.Shrinks)
	}
	if got := e.Grows + e.GrowRejected + e.Deferred; got != e.GrowRequests {
		t.Errorf("resize conservation: %d+%d+%d = %d, want %d",
			e.Grows, e.GrowRejected, e.Deferred, got, e.GrowRequests)
	}
	if got := e.Served + e.Rejected + e.Unplaced; got != cfg.Requests {
		t.Errorf("request conservation: %d, want %d", got, cfg.Requests)
	}
	s := res.Static
	if got := s.Served + s.Rejected + s.Unplaced; got != cfg.Requests {
		t.Errorf("static request conservation: %d, want %d", got, cfg.Requests)
	}
	out := res.Render()
	for _, want := range []string{"Elastic scenario", "static", "elastic", "resize ledger", "cloudsim.resize_grows"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

// Same seed, same config — byte-identical report and exports. Run under
// -race by the elastic-race gate.
func TestElasticDeterministic(t *testing.T) {
	var metrics, traces [2]bytes.Buffer
	var renders [2]string
	for i := 0; i < 2; i++ {
		res, err := Elastic(7, DefaultElasticConfig())
		if err != nil {
			t.Fatal(err)
		}
		renders[i] = res.Render()
		if err := res.WriteMetrics(&metrics[i]); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if renders[0] != renders[1] {
		t.Error("reports differ between identical runs")
	}
	if !bytes.Equal(metrics[0].Bytes(), metrics[1].Bytes()) {
		t.Error("metric snapshots differ between identical runs")
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Error("traces differ between identical runs")
	}
}

func TestElasticRejectsBadConfig(t *testing.T) {
	cfg := DefaultElasticConfig()
	cfg.Requests = 0
	if _, err := Elastic(1, cfg); err == nil {
		t.Error("zero requests accepted")
	}
	cfg = DefaultElasticConfig()
	cfg.Job.InputFile = ""
	if _, err := Elastic(1, cfg); err == nil {
		t.Error("invalid job spec accepted")
	}
	cfg = DefaultElasticConfig()
	cfg.Job.MapSelectivity = 0 // shuffle-free job: PhaseSplit degenerates to 1
	if _, err := Elastic(1, cfg); err == nil {
		t.Error("degenerate map fraction accepted")
	}
}
