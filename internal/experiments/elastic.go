// Elastic is the static-vs-elastic comparison scenario: the same plant
// and the same timed workload run twice through the cloud simulator,
// once holding every cluster at its requested size (the paper's
// setting) and once with mid-job resizing — grow for the map phase,
// shrink into the shuffle — where the phase boundary comes from a
// representative MapReduce job spec (mapreduce.JobSpec.PhaseSplit). The
// report contrasts served DC(C), makespan, utilization, and the resize
// ledger, so the figure shows what the extra map-phase VMs cost in
// affinity and what the boundary shrink gives back.

package experiments

import (
	"fmt"
	"io"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// ElasticExperimentConfig sizes the comparison scenario.
type ElasticExperimentConfig struct {
	// Requests is the number of timed cluster requests.
	Requests int
	// QueueCap bounds the wait queue (0 = unbounded).
	QueueCap int
	// Arrival shapes the arrival/holding process.
	Arrival workload.ArrivalConfig
	// Job is the representative MapReduce job whose per-MB cost profile
	// places the map/shuffle boundary (MapFrac = Job.PhaseSplit()).
	Job mapreduce.JobSpec
	// GrowFactor, MinPayoff, and DeferBackoff tune the resize policy;
	// see cloudsim.ElasticConfig.
	GrowFactor   float64
	MinPayoff    float64
	DeferBackoff float64
}

// DefaultElasticConfig pairs the ops-style workload with a map-heavy
// wordcount profile (PhaseSplit ≈ 0.87, so clusters run grown for most
// of their hold) and a 50% map-phase boost.
func DefaultElasticConfig() ElasticExperimentConfig {
	arr := workload.DefaultArrivalConfig()
	arr.MeanInterarrival = 5
	return ElasticExperimentConfig{
		Requests:     60,
		QueueCap:     0,
		Arrival:      arr,
		Job:          mapreduce.WordCount("input"),
		GrowFactor:   0.5,
		MinPayoff:    1,
		DeferBackoff: 5,
	}
}

// ElasticResult bundles the comparison's outputs. Reg is the elastic
// run's registry (the one the -metrics/-trace exports stream); the
// static run is summarized by its metrics alone.
type ElasticResult struct {
	Reg     *obs.Registry
	Static  *cloudsim.Metrics
	Elastic *cloudsim.Metrics
	MapFrac float64
}

// Elastic runs the comparison. Both runs share the capacity seed (seed),
// request seed (seed+1), and timing seed (seed+2), so the elastic
// resize policy is the only force separating the two metric sets.
func Elastic(seed int64, cfg ElasticExperimentConfig) (*ElasticResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("experiments: Elastic needs a positive request count, got %d", cfg.Requests)
	}
	if err := cfg.Job.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: Elastic job spec: %w", err)
	}
	mapFrac := cfg.Job.PhaseSplit()
	if !(mapFrac > 0 && mapFrac < 1) {
		return nil, fmt.Errorf("experiments: job %q yields degenerate map fraction %v", cfg.Job.Name, mapFrac)
	}

	const types = 3
	tp := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(seed, tp.Nodes(), types, workload.InventoryConfig{MaxPerType: 2})
	if err != nil {
		return nil, err
	}
	reqs, err := workload.RandomRequests(seed+1, cfg.Requests, types, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		return nil, err
	}
	timed, err := workload.TimedRequests(seed+2, reqs, cfg.Arrival)
	if err != nil {
		return nil, err
	}

	run := func(reg *obs.Registry, elastic cloudsim.ElasticConfig) (*cloudsim.Metrics, error) {
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			return nil, err
		}
		cs, err := cloudsim.New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, cloudsim.Config{
			Policy:   queue.FIFO,
			QueueCap: cfg.QueueCap,
			Elastic:  elastic,
			Obs:      reg,
		})
		if err != nil {
			return nil, err
		}
		return cs.Run(append([]model.TimedRequest(nil), timed...))
	}

	static, err := run(obs.NewRegistry(), cloudsim.ElasticConfig{})
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	elastic, err := run(reg, cloudsim.ElasticConfig{
		Enabled:      true,
		GrowFactor:   cfg.GrowFactor,
		MapFrac:      mapFrac,
		MinPayoff:    cfg.MinPayoff,
		DeferBackoff: cfg.DeferBackoff,
	})
	if err != nil {
		return nil, err
	}
	return &ElasticResult{Reg: reg, Static: static, Elastic: elastic, MapFrac: mapFrac}, nil
}

// Render prints the static-vs-elastic comparison followed by the elastic
// run's metric summary. Output is a deterministic function of the seed.
func (r *ElasticResult) Render() string {
	s, e := r.Static, r.Elastic
	avg := func(m *cloudsim.Metrics) float64 {
		if m.Served == 0 {
			return 0
		}
		return m.TotalDistance / float64(m.Served)
	}
	head := fmt.Sprintf("Elastic scenario: map/shuffle resize at map fraction %.3f.\n\n", r.MapFrac)
	head += fmt.Sprintf("%-22s %14s %14s\n", "", "static", "elastic")
	row := func(name, format string, sv, ev any) string {
		return fmt.Sprintf("%-22s %14s %14s\n", name, fmt.Sprintf(format, sv), fmt.Sprintf(format, ev))
	}
	head += row("served", "%d", s.Served, e.Served)
	head += row("rejected", "%d", s.Rejected, e.Rejected)
	head += row("mean DC(C)", "%.3f", avg(s), avg(e))
	head += row("total DC(C)", "%.1f", s.TotalDistance, e.TotalDistance)
	head += row("makespan", "%.1f", s.MakeSpan, e.MakeSpan)
	head += row("utilization", "%.4f", s.UtilizationAvg, e.UtilizationAvg)
	head += fmt.Sprintf(
		"\nresize ledger: %d grow requests -> %d served (+%d VMs), %d shrinks, %d rejected by deadline, %d deferred for good\n\n",
		e.GrowRequests, e.Grows, e.GrowVMs, e.Shrinks, e.GrowRejected, e.Deferred)
	return head + r.Reg.RenderSummary()
}

// WriteMetrics writes the elastic run's JSON metric snapshot.
func (r *ElasticResult) WriteMetrics(w io.Writer) error { return r.Reg.WriteMetricsJSON(w) }

// WriteTrace writes the elastic run's JSONL event trace.
func (r *ElasticResult) WriteTrace(w io.Writer) error { return r.Reg.WriteTraceJSONL(w) }
