// Soak is the day-in-the-life endurance scenario: a large plant serving
// an open-loop arrival stream (diurnally modulated Poisson arrivals,
// heavy-tailed sizes and lifetimes) under a sparse crash/repair
// schedule, replayed through the cloud simulator's streaming run. It
// never materializes the request slice, and its instrumentation uses a
// streaming obs registry (events are written to a JSONL sink as they
// happen, io.Discard by default, instead of being retained), so its
// footprint is O(active clusters) no matter how many requests are
// replayed: one million requests fit in the same heap as ten thousand.
// Latency and distance distributions come from the simulator's
// constant-memory quantile sketches.

package experiments

import (
	"fmt"
	"io"
	"runtime"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/faults"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// SoakConfig sizes the soak scenario.
type SoakConfig struct {
	// Requests is the number of open-loop requests to replay.
	Requests int
	// Clouds × Racks × NodesPerRack shape the plant
	// (defaults 2 × 8 × 16 = 256 nodes).
	Clouds, Racks, NodesPerRack int
	// Workload shapes the open-loop arrival process.
	Workload workload.OpenLoopConfig
	// Faults parameterizes the crash/repair schedule; the zero value
	// disables injection. A zero Horizon is derived from the expected
	// run span (Requests / BaseRate) so the schedule covers the run.
	Faults faults.Config
	// Recovery tunes the requeue-with-backoff policy.
	Recovery cloudsim.RecoveryConfig
	// Sketch bounds the streaming wait/distance quantile sketches.
	Sketch cloudsim.SketchConfig
	// MemEvery samples the Go heap every N pulled requests to report the
	// replay's peak footprint (0 = 4096; negative disables sampling).
	MemEvery int
	// Trace receives the run's event trace as JSONL, streamed event by
	// event (never retained). Nil streams to io.Discard, so the run is
	// always instrumented at O(1) trace memory.
	Trace io.Writer
}

// DefaultSoakConfig is a 256-node plant at roughly 70% long-run
// utilization under the default open-loop workload, with a node failure
// every couple of simulated hours (every sixth a whole-rack outage).
func DefaultSoakConfig() SoakConfig {
	return SoakConfig{
		Requests:     100_000,
		Clouds:       2,
		Racks:        8,
		NodesPerRack: 16,
		Workload:     workload.DefaultOpenLoopConfig(),
		Faults: faults.Config{
			MTBF:      7200,
			MTTR:      900,
			RackEvery: 6,
		},
		Recovery: cloudsim.RecoveryConfig{MaxAttempts: 3, Backoff: 60, Factor: 2},
		// Waits can span a whole outage; widen the sketch accordingly.
		Sketch: cloudsim.SketchConfig{WaitMax: 14400, Buckets: 720},
	}
}

// SoakResult bundles the scenario's outputs.
type SoakResult struct {
	// Cloud is the simulator's aggregate metrics; its DistanceSketch and
	// WaitSketch carry the latency/distance distributions.
	Cloud *cloudsim.Metrics
	// Reg is the run's streaming obs registry: its metrics are live for
	// snapshotting, while its event trace went to SoakConfig.Trace (or
	// io.Discard) and is not retained.
	Reg *obs.Registry
	// Events is the number of events streamed to the trace sink.
	Events int
	// Requests and Nodes echo the scenario size.
	Requests, Nodes int
	// PeakHeapBytes is the largest sampled Go heap during the replay
	// (0 when sampling is disabled) — the number that demonstrates the
	// O(active) memory claim at any trace length.
	PeakHeapBytes uint64
}

// Soak runs the scenario. The capacity seed is seed, the workload seed
// seed+1, and the fault seed seed+2, mirroring the other scenarios'
// seed-derivation convention.
func Soak(seed int64, cfg SoakConfig) (*SoakResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("experiments: Soak needs a positive request count, got %d", cfg.Requests)
	}
	if cfg.Clouds == 0 {
		cfg.Clouds = 2
	}
	if cfg.Racks == 0 {
		cfg.Racks = 8
	}
	if cfg.NodesPerRack == 0 {
		cfg.NodesPerRack = 16
	}
	tp, err := topology.Uniform(cfg.Clouds, cfg.Racks, cfg.NodesPerRack, topology.DefaultDistances())
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewOpenLoop(seed+1, cfg.Requests, cfg.Workload)
	if err != nil {
		return nil, err
	}
	types := cfg.Workload.Types
	if types <= 0 {
		types = 3
	}
	caps, err := workload.RandomCapacities(seed, tp.Nodes(), types, workload.InventoryConfig{MaxPerType: 2})
	if err != nil {
		return nil, err
	}
	inv, err := inventory.NewFromMatrix(caps)
	if err != nil {
		return nil, err
	}
	if cfg.Faults.Enabled() && cfg.Faults.Horizon == 0 {
		// NewOpenLoop accepted the config, so BaseRate > 0.
		cfg.Faults.Horizon = float64(cfg.Requests) / cfg.Workload.BaseRate
	}
	sink := cfg.Trace
	if sink == nil {
		sink = io.Discard
	}
	reg := obs.NewStreamingRegistry(sink)
	cs, err := cloudsim.New(tp, inv, &placement.OnlineHeuristic{Obs: reg}, cloudsim.Config{
		Policy:    queue.FIFO,
		Faults:    cfg.Faults,
		FaultSeed: seed + 2,
		Recovery:  cfg.Recovery,
		Sketch:    cfg.Sketch,
		Obs:       reg,
	})
	if err != nil {
		return nil, err
	}
	src := &heapPeakSource{src: gen, every: cfg.MemEvery}
	if src.every == 0 {
		src.every = 4096
	}
	m, err := cs.RunStream(src)
	if err != nil {
		return nil, err
	}
	if err := reg.SinkErr(); err != nil {
		return nil, fmt.Errorf("experiments: soak trace sink: %w", err)
	}
	return &SoakResult{
		Cloud:         m,
		Reg:           reg,
		Events:        reg.EventCount(),
		Requests:      cfg.Requests,
		Nodes:         tp.Nodes(),
		PeakHeapBytes: src.peak,
	}, nil
}

// heapPeakSource decorates a request source, sampling the live Go heap
// every `every` pulls. ReadMemStats stops the world, so the stride keeps
// the overhead negligible while still catching the replay's plateau.
type heapPeakSource struct {
	src   model.RequestSource
	every int
	n     int
	peak  uint64
}

func (h *heapPeakSource) Next() (model.TimedRequest, bool, error) {
	if h.every > 0 && h.n%h.every == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > h.peak {
			h.peak = ms.HeapAlloc
		}
	}
	h.n++
	return h.src.Next()
}

// Render prints the operator-facing report. It is a deterministic
// function of the seed and config: the (machine-dependent) heap peak is
// deliberately left to the caller, so same-seed soak output stays
// byte-identical.
func (r *SoakResult) Render() string {
	c := r.Cloud
	head := fmt.Sprintf(
		"Soak scenario. replayed %d open-loop requests over %.0f simulated seconds on %d nodes\n",
		r.Requests, c.MakeSpan, r.Nodes)
	body := fmt.Sprintf(
		"cloud: served %d, rejected %d, unplaced %d; failures %d (%d VMs lost, %d evacuations, %d requeued); utilization %.1f%%\n",
		c.Served, c.Rejected, c.Unplaced,
		c.Failures, c.LostVMs, c.Evacuations, c.Requeued,
		c.UtilizationAvg*100)
	dist := fmt.Sprintf(
		"distance: mean %.2f, p50 %.2f, p90 %.2f, p99 %.2f (±%.2f)\n",
		c.DistanceSketch.Mean(),
		c.DistanceSketch.Value(50), c.DistanceSketch.Value(90), c.DistanceSketch.Value(99),
		c.DistanceSketch.ErrorBound())
	wait := fmt.Sprintf(
		"wait:     mean %.1fs, p50 %.1fs, p90 %.1fs, p99 %.1fs (±%.1fs)\n",
		c.WaitSketch.Mean(),
		c.WaitSketch.Value(50), c.WaitSketch.Value(90), c.WaitSketch.Value(99),
		c.WaitSketch.ErrorBound())
	return head + body + dist + wait
}
