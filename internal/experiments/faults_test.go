package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The default fault scenario must exercise both recovery paths: at
// least one cluster rebuilt in place, and at least one torn down and
// re-served through the requeue/backoff machinery.
func TestFaultsDefaultExercisesBothRecoveryPaths(t *testing.T) {
	res, err := Faults(2012, DefaultFaultsConfig(2012))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cloud
	t.Logf("failures=%d lost=%d evac=%d requeued=%d repl=%d exhausted=%d served=%d rejected=%d unplaced=%d",
		c.Failures, c.LostVMs, c.Evacuations, c.Requeued, c.Replacements, c.RetriesExhausted,
		c.Served, c.Rejected, c.Unplaced)
	if c.Failures == 0 {
		t.Error("no failures injected")
	}
	if c.Evacuations == 0 {
		t.Error("no cluster recovered by evacuation")
	}
	if c.Replacements == 0 {
		t.Error("no cluster recovered by requeue")
	}
	if c.Requeued < c.Replacements {
		t.Errorf("Requeued = %d < Replacements = %d", c.Requeued, c.Replacements)
	}
	if got := len(res.Plan); got == 0 {
		t.Error("empty fault plan")
	}
	out := res.Render()
	for _, want := range []string{"Faults scenario.", "cloudsim.faults", "cloudsim.recovery_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

// Conservation: every request is served, rejected, or still queued.
func TestFaultsConservation(t *testing.T) {
	cfg := DefaultFaultsConfig(2012)
	res, err := Faults(2012, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cloud
	if got := c.Served + c.Rejected + c.Unplaced; got != cfg.Requests {
		t.Errorf("Served %d + Rejected %d + Unplaced %d = %d, want %d",
			c.Served, c.Rejected, c.Unplaced, got, cfg.Requests)
	}
}

// Same seed, same config — byte-identical exports.
func TestFaultsDeterministic(t *testing.T) {
	var metrics, traces [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		res, err := Faults(7, DefaultFaultsConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteMetrics(&metrics[i]); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(metrics[0].Bytes(), metrics[1].Bytes()) {
		t.Error("metric snapshots differ between identical runs")
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Error("traces differ between identical runs")
	}
}

func TestFaultsRejectsBadConfig(t *testing.T) {
	cfg := DefaultFaultsConfig(1)
	cfg.Requests = 0
	if _, err := Faults(1, cfg); err == nil {
		t.Error("zero requests accepted")
	}
	cfg = DefaultFaultsConfig(1)
	cfg.Faults.MTBF = 0
	if _, err := Faults(1, cfg); err == nil {
		t.Error("disabled fault config accepted")
	}
}
