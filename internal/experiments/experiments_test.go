package experiments

import (
	"strings"
	"testing"

	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/workload"
)

const testSeed = 2012 // CLUSTER 2012

func TestTables(t *testing.T) {
	t1 := TableI()
	for _, want := range []string{"small", "medium", "large", "3.75", "850"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := TableII()
	for _, want := range []string{"R1", "N2", "V3"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	res, err := Fig2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	var betterOrEqual, strictly int
	for _, row := range res.Rows {
		if row.HeuristicDist > row.RandomCtrDist+1e-9 {
			t.Errorf("request %d: best-center %v worse than random-center %v",
				row.Request, row.HeuristicDist, row.RandomCtrDist)
		} else {
			betterOrEqual++
		}
		if row.HeuristicDist < row.RandomCtrDist-1e-9 {
			strictly++
		}
	}
	// The paper's point: the difference is "great" — at least some
	// requests must show a strict gap.
	if strictly == 0 {
		t.Error("random central node never worse — figure shape lost")
	}
	out := res.Render()
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "random center") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig3CentralNodesVary(t *testing.T) {
	res, err := Fig3(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	seen := map[int]bool{}
	for _, row := range res.Rows {
		seen[row.CentralNode] = true
	}
	// Different requests land on different central nodes (Fig 3's point).
	if len(seen) < 2 {
		t.Errorf("central node constant across requests: %v", seen)
	}
	if !strings.Contains(res.Render(), "Fig 3") {
		t.Error("render header missing")
	}
}

func TestFig4SweepContainsOptimum(t *testing.T) {
	res, err := Fig4(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	min := res.Rows[0].Distance
	for _, row := range res.Rows {
		if row.Distance < min {
			min = row.Distance
		}
		if row.Distance < res.BestDist {
			t.Errorf("row %v below reported best %v", row, res.BestDist)
		}
	}
	if min != res.BestDist {
		t.Errorf("best %v not the sweep minimum %v", res.BestDist, min)
	}
	if !strings.Contains(res.Render(), "Fig 4") {
		t.Error("render header missing")
	}
}

func TestFig5GlobalImproves(t *testing.T) {
	res, err := Fig5(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != workload.Normal {
		t.Error("wrong scenario")
	}
	if res.GlobalTotal > res.OnlineTotal+1e-9 {
		t.Errorf("global total %v worse than online %v", res.GlobalTotal, res.OnlineTotal)
	}
	if res.ImprovementPct < 0 {
		t.Errorf("negative improvement %v", res.ImprovementPct)
	}
	if !strings.Contains(res.Render(), "Fig 5") {
		t.Error("render header missing")
	}
}

func TestFig6SmallScenarioImprovesMore(t *testing.T) {
	// The paper reports ~2% (normal) vs ~12% (small): the small-request
	// scenario must benefit at least as much as the normal one.
	f5, err := Fig5(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f6.Scenario != workload.Small {
		t.Error("wrong scenario")
	}
	if f6.GlobalTotal > f6.OnlineTotal+1e-9 {
		t.Errorf("global total %v worse than online %v", f6.GlobalTotal, f6.OnlineTotal)
	}
	if !strings.Contains(f6.Render(), "Fig 6") {
		t.Error("render header missing")
	}
	_ = f5 // cross-scenario comparison is seed-dependent; asserted in the bench harness
}

func TestMRTopologiesDistances(t *testing.T) {
	tops, err := MRTopologies()
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 4 {
		t.Fatalf("topologies = %d", len(tops))
	}
	// Every cluster has 8 VMs (same capability) and the distances are the
	// documented ascending series 24, 36, 40, 48.
	wantDist := []float64{24, 36, 40, 48}
	tp, err := mrPlant()
	if err != nil {
		t.Fatal(err)
	}
	for i, mt := range tops {
		if got := mt.Alloc.TotalVMs(); got != 8 {
			t.Errorf("%s has %d VMs", mt.Name, got)
		}
		if got := mt.Alloc.PairwiseAffinity(tp); got != wantDist[i] {
			t.Errorf("%s distance = %v, want %v", mt.Name, got, wantDist[i])
		}
	}
}

func TestFig7and8Shape(t *testing.T) {
	res, err := Fig7and8(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MapsTotal != 32 {
			t.Errorf("%s ran %d maps, want 32 (paper's job)", row.Topology, row.MapsTotal)
		}
		if row.RuntimeSec <= 0 {
			t.Errorf("%s runtime %v", row.Topology, row.RuntimeSec)
		}
	}
	// Headline shape: the most compact cluster beats the most spread one.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.RuntimeSec >= last.RuntimeSec {
		t.Errorf("compact cluster (%v s) not faster than spread (%v s)", first.RuntimeSec, last.RuntimeSec)
	}
	// Locality counters grow with spread at the extremes too.
	if first.NonLocalShuffles > last.NonLocalShuffles {
		t.Errorf("compact cluster shuffles less locally (%d) than spread (%d)",
			first.NonLocalShuffles, last.NonLocalShuffles)
	}
	if !strings.Contains(res.RenderFig7(), "Fig 7") || !strings.Contains(res.RenderFig8(), "Fig 8") {
		t.Error("render headers missing")
	}
}

func TestFig7BalancedIsMonotone(t *testing.T) {
	res, err := Fig7and8(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].RuntimeSec > res.Rows[i].RuntimeSec {
			t.Errorf("balanced input: runtime not monotone at %s (%.2f) vs %s (%.2f)",
				res.Rows[i-1].Topology, res.Rows[i-1].RuntimeSec,
				res.Rows[i].Topology, res.Rows[i].RuntimeSec)
		}
	}
	if inv, _, _ := res.HasInversion(); inv {
		t.Error("HasInversion disagrees with the monotone check")
	}
}

func TestFig7SkewedReproducesAnomaly(t *testing.T) {
	res, err := Fig7and8Skewed(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	inv, slower, faster := res.HasInversion()
	if !inv {
		t.Fatal("skewed input did not produce the paper's runtime inversion")
	}
	// The inversion must be explained by locality, as in the paper: the
	// slower (shorter-distance) cluster has more non-data-local maps.
	var slowRow, fastRow *Fig78Row
	for i := range res.Rows {
		switch res.Rows[i].Topology {
		case slower:
			slowRow = &res.Rows[i]
		case faster:
			fastRow = &res.Rows[i]
		}
	}
	if slowRow == nil || fastRow == nil {
		t.Fatal("inversion rows not found")
	}
	if slowRow.NonDataLocalMaps <= fastRow.NonDataLocalMaps {
		t.Errorf("inversion not locality-explained: %s has %d non-local maps vs %s's %d",
			slower, slowRow.NonDataLocalMaps, faster, fastRow.NonDataLocalMaps)
	}
}

func TestExactGap(t *testing.T) {
	res, err := ExactGap(testSeed, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 30 {
		t.Fatalf("instances = %d", res.Instances)
	}
	if res.OptimalHit < res.Instances/2 {
		t.Errorf("heuristic optimal on only %d/%d instances", res.OptimalHit, res.Instances)
	}
	if res.MeanGapPct < 0 || res.MaxGapPct < res.MeanGapPct {
		t.Errorf("gap stats inconsistent: %+v", res)
	}
	if !strings.Contains(res.Render(), "instances") {
		t.Error("render missing")
	}
	if _, err := ExactGap(testSeed, 0); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestBaselineComparison(t *testing.T) {
	res, err := BaselineComparison(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var online, roundRobin *BaselineRow
	for i := range res.Rows {
		switch res.Rows[i].Strategy {
		case "online-heuristic":
			online = &res.Rows[i]
		case "round-robin":
			roundRobin = &res.Rows[i]
		}
		if res.Rows[i].Placed == 0 {
			t.Errorf("%s placed nothing", res.Rows[i].Strategy)
		}
	}
	if online == nil || roundRobin == nil {
		t.Fatal("expected strategies missing")
	}
	// The paper's headline at the batch level: the affinity-aware
	// heuristic's total distance and affinity beat the striping baseline.
	if online.Total >= roundRobin.Total {
		t.Errorf("online total %.1f not below round-robin %.1f", online.Total, roundRobin.Total)
	}
	if online.MeanAffinity >= roundRobin.MeanAffinity {
		t.Errorf("online affinity %.1f not below round-robin %.1f", online.MeanAffinity, roundRobin.MeanAffinity)
	}
	if !strings.Contains(res.Render(), "round-robin") {
		t.Error("render missing strategies")
	}
}

func TestFig56Averages(t *testing.T) {
	normal, small, err := Fig56Averages(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if normal < 0 || small < 0 {
		t.Errorf("negative averages: %v, %v", normal, small)
	}
	if _, _, err := Fig56Averages(1, 0); err == nil {
		t.Error("zero seed count accepted")
	}
}

func TestRunJobAcrossTopologiesRejectsWrongInput(t *testing.T) {
	cfg := DefaultMRExperimentConfig(testSeed)
	_, err := RunJobAcrossTopologies(cfg, func(string) mapreduce.JobSpec {
		return mapreduce.WordCount("other-file")
	})
	if err == nil {
		t.Error("job reading the wrong file accepted")
	}
}

func TestSelectivitySweepShape(t *testing.T) {
	res, err := SelectivitySweep(testSeed, []float64{0.01, 0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Remote shuffle volume grows with selectivity on the spread cluster,
	// and the spread cluster never beats the compact one.
	prev := -1.0
	for _, row := range res.Rows {
		if row.RemoteShuffle < prev {
			t.Errorf("remote shuffle not monotone at selectivity %v", row.Selectivity)
		}
		prev = row.RemoteShuffle
		if row.SpeedupPct < 0 {
			t.Errorf("spread faster than compact at selectivity %v (%.1f%%)", row.Selectivity, row.SpeedupPct)
		}
	}
	// The affinity benefit at the shuffle-heavy end exceeds the
	// shuffle-light end — the sweep's headline.
	if res.Rows[len(res.Rows)-1].SpeedupPct <= res.Rows[0].SpeedupPct {
		t.Errorf("benefit not growing with selectivity: %.1f%% vs %.1f%%",
			res.Rows[len(res.Rows)-1].SpeedupPct, res.Rows[0].SpeedupPct)
	}
	if !strings.Contains(res.Render(), "selectivity") {
		t.Error("render missing")
	}
	if _, err := SelectivitySweep(testSeed, []float64{-1}); err == nil {
		t.Error("negative selectivity accepted")
	}
	// Default sweep runs too.
	if _, err := SelectivitySweep(testSeed, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, err := Fig2(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
