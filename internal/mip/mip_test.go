package mip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/lp"
)

func solveOK(t *testing.T, m *Model) *Solution {
	t.Helper()
	s, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables: behaves like the LP solver.
	m := NewModel(2)
	_ = m.SetObjective([]float64{1, 2})
	_ = m.AddConstraint([]float64{1, 1}, lp.GE, 3)
	_ = m.AddConstraint([]float64{1, 0}, lp.LE, 2)
	s := solveOK(t, m)
	if s.Status != Optimal || math.Abs(s.Objective-4) > 1e-6 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x  s.t. 2x <= 5, x integer → x = 2 (LP gives 2.5).
	m := NewModel(1)
	_ = m.SetObjective([]float64{-1})
	_ = m.AddConstraint([]float64{2}, lp.LE, 5)
	_ = m.SetInteger(0)
	s := solveOK(t, m)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	x, err := s.IntValue(0)
	if err != nil {
		t.Fatal(err)
	}
	if x != 2 || math.Abs(s.Objective+2) > 1e-6 {
		t.Fatalf("x = %d obj %v, want 2 / -2", x, s.Objective)
	}
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c with 3a + 4b + 2c <= 6, binary.
	// Best: a + c (weight 5, value 17)? b + c = weight 6, value 20. → 20.
	m := NewModel(3)
	_ = m.SetObjective([]float64{-10, -13, -7})
	_ = m.AddConstraint([]float64{3, 4, 2}, lp.LE, 6)
	for v := 0; v < 3; v++ {
		if err := m.SetBinary(v); err != nil {
			t.Fatal(err)
		}
	}
	s := solveOK(t, m)
	if s.Status != Optimal || math.Abs(s.Objective+20) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal -20", s.Status, s.Objective)
	}
	a, _ := s.IntValue(0)
	b, _ := s.IntValue(1)
	c, _ := s.IntValue(2)
	if a != 0 || b != 1 || c != 1 {
		t.Fatalf("selection = %d %d %d, want 0 1 1", a, b, c)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 2x = 3 with x integer has a feasible LP (x=1.5) but no integer point.
	m := NewModel(1)
	_ = m.SetObjective([]float64{1})
	_ = m.AddConstraint([]float64{2}, lp.EQ, 3)
	_ = m.SetInteger(0)
	s := solveOK(t, m)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	m := NewModel(1)
	_ = m.AddConstraint([]float64{1}, lp.GE, 5)
	_ = m.AddConstraint([]float64{1}, lp.LE, 3)
	s := solveOK(t, m)
	if s.Status != Infeasible {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel(1)
	_ = m.SetObjective([]float64{-1})
	_ = m.SetInteger(0)
	s := solveOK(t, m)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestUpperBounds(t *testing.T) {
	// min -x0 - x1 with x0 <= 2.5, x1 <= 3, both integer → (2, 3).
	m := NewModel(2)
	_ = m.SetObjective([]float64{-1, -1})
	_ = m.SetUpperBound(0, 2.5)
	_ = m.SetUpperBound(1, 3)
	m.SetAllInteger()
	s := solveOK(t, m)
	if s.Status != Optimal || math.Abs(s.Objective+5) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal -5", s.Status, s.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	// Root LP gives x = 2.5 (fractional), so at least one branch is
	// needed; a 1-node budget must truncate.
	m := NewModel(1)
	_ = m.SetObjective([]float64{-1})
	_ = m.AddConstraint([]float64{2}, lp.LE, 5)
	m.SetAllInteger()
	s, err := m.SolveWithOptions(Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", s.Status)
	}
}

func TestAPIErrors(t *testing.T) {
	m := NewModel(2)
	if err := m.SetObjective([]float64{1}); err == nil {
		t.Error("short objective accepted")
	}
	if err := m.SetInteger(5); err == nil {
		t.Error("out-of-range SetInteger accepted")
	}
	if err := m.SetUpperBound(5, 1); err == nil {
		t.Error("out-of-range SetUpperBound accepted")
	}
	if err := m.SetUpperBound(0, -1); err == nil {
		t.Error("negative upper bound accepted")
	}
	if err := m.AddConstraint([]float64{1}, lp.LE, 0); err == nil {
		t.Error("short constraint accepted")
	}
	if err := m.AddSparseConstraint([]int{0}, []float64{1, 1}, lp.LE, 0); err == nil {
		t.Error("mismatched sparse accepted")
	}
	if err := m.AddSparseConstraint([]int{9}, []float64{1}, lp.LE, 0); err == nil {
		t.Error("out-of-range sparse index accepted")
	}
	var s Solution
	if _, err := s.IntValue(0); err == nil {
		t.Error("IntValue on empty solution accepted")
	}
	s2 := Solution{X: []float64{1.4}}
	if _, err := s2.IntValue(0); err == nil {
		t.Error("IntValue on fractional accepted")
	}
	if _, err := s2.IntValue(3); err == nil {
		t.Error("IntValue out of range accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewModel(0) did not panic")
		}
	}()
	NewModel(0)
}

// bruteKnapsack solves a 0/1 knapsack by enumeration.
func bruteKnapsack(values, weights []int, cap int) int {
	n := len(values)
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

// Property: branch & bound matches brute force on random small knapsacks.
func TestQuickKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		values := make([]int, n)
		weights := make([]int, n)
		obj := make([]float64, n)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = 1 + r.Intn(20)
			weights[i] = 1 + r.Intn(10)
			obj[i] = -float64(values[i])
			w[i] = float64(weights[i])
		}
		capW := 1 + r.Intn(25)
		m := NewModel(n)
		_ = m.SetObjective(obj)
		_ = m.AddConstraint(w, lp.LE, float64(capW))
		for v := 0; v < n; v++ {
			_ = m.SetBinary(v)
		}
		s, err := m.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		return math.Abs(-s.Objective-float64(bruteKnapsack(values, weights, capW))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: integer optimum is never below the LP relaxation optimum.
func TestQuickIntegerBoundDominance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = float64(1 + r.Intn(9))
		}
		rowCoef := make([]float64, n)
		for i := range rowCoef {
			rowCoef[i] = float64(1 + r.Intn(4))
		}
		rhs := float64(3 + r.Intn(17))

		mi := NewModel(n)
		_ = mi.SetObjective(obj)
		_ = mi.AddConstraint(rowCoef, lp.GE, rhs)
		mi.SetAllInteger()
		si, err := mi.Solve()
		if err != nil || si.Status != Optimal {
			return false
		}
		mc := lp.NewProblem(n)
		_ = mc.SetObjective(obj)
		_ = mc.AddConstraint(rowCoef, lp.GE, rhs)
		sc, err := mc.Solve()
		if err != nil || sc.Status != lp.Optimal {
			return false
		}
		return si.Objective >= sc.Objective-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", NodeLimit: "node-limit",
		Status(42): "Status(42)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min x + y, x integer, y continuous, x + y >= 2.5, x >= 1 via bound.
	// Best: x=1 (integer), y=1.5 → 2.5. Also x=0, y=2.5 → 2.5. Either way obj 2.5.
	m := NewModel(2)
	_ = m.SetObjective([]float64{1, 1})
	_ = m.AddConstraint([]float64{1, 1}, lp.GE, 2.5)
	_ = m.SetInteger(0)
	s := solveOK(t, m)
	if s.Status != Optimal || math.Abs(s.Objective-2.5) > 1e-6 {
		t.Fatalf("status %v obj %v", s.Status, s.Objective)
	}
	frac := s.X[0] - math.Floor(s.X[0])
	if math.Min(frac, 1-frac) > 1e-6 {
		t.Errorf("integer variable x0 = %v not integral", s.X[0])
	}
}
