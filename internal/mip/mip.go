// Package mip implements a branch-and-bound mixed-integer linear
// programming solver on top of package lp. It provides the "integer
// programming formulation" path that the paper uses to define the optimal
// shortest-distance (SD) and global shortest-distance (GSD) allocations
// (Section III.B/III.C).
//
// The solver handles minimization problems with non-negative variables, a
// subset of which are marked integer, optional per-variable upper bounds,
// and arbitrary ≤ / = / ≥ linear constraints. Branching is best-first on
// the LP bound with most-fractional variable selection, which is effective
// on the transportation-like polytopes of the SD problem (whose LP
// relaxations are usually integral already).
package mip

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"affinitycluster/internal/lp"
)

// Status is the outcome of a MIP solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit // search truncated; Incumbent (if any) is the best known
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Model is a MIP under construction.
type Model struct {
	numVars   int
	objective []float64
	integer   []bool
	upper     []float64 // +Inf when unbounded above
	rows      []row
}

type row struct {
	coeffs []float64
	rel    lp.Relation
	rhs    float64
}

// NewModel creates a model with n non-negative continuous variables.
func NewModel(n int) *Model {
	if n <= 0 {
		panic(fmt.Sprintf("mip: NewModel(%d) needs at least one variable", n))
	}
	m := &Model{
		numVars:   n,
		objective: make([]float64, n),
		integer:   make([]bool, n),
		upper:     make([]float64, n),
	}
	for i := range m.upper {
		m.upper[i] = math.Inf(1)
	}
	return m
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return m.numVars }

// SetObjective installs the minimization objective.
func (m *Model) SetObjective(c []float64) error {
	if len(c) != m.numVars {
		return fmt.Errorf("mip: objective has %d coefficients, want %d", len(c), m.numVars)
	}
	copy(m.objective, c)
	return nil
}

// SetInteger marks variable v as integral.
func (m *Model) SetInteger(v int) error {
	if v < 0 || v >= m.numVars {
		return fmt.Errorf("mip: variable %d out of range [0,%d)", v, m.numVars)
	}
	m.integer[v] = true
	return nil
}

// SetAllInteger marks every variable integral (a pure ILP).
func (m *Model) SetAllInteger() {
	for i := range m.integer {
		m.integer[i] = true
	}
}

// SetUpperBound installs x_v ≤ u.
func (m *Model) SetUpperBound(v int, u float64) error {
	if v < 0 || v >= m.numVars {
		return fmt.Errorf("mip: variable %d out of range [0,%d)", v, m.numVars)
	}
	if u < 0 {
		return fmt.Errorf("mip: negative upper bound %v on non-negative variable %d", u, v)
	}
	m.upper[v] = u
	return nil
}

// SetBinary marks v integral with upper bound 1.
func (m *Model) SetBinary(v int) error {
	if err := m.SetInteger(v); err != nil {
		return err
	}
	return m.SetUpperBound(v, 1)
}

// AddConstraint appends coeffs·x (rel) rhs.
func (m *Model) AddConstraint(coeffs []float64, rel lp.Relation, rhs float64) error {
	if len(coeffs) != m.numVars {
		return fmt.Errorf("mip: constraint has %d coefficients, want %d", len(coeffs), m.numVars)
	}
	m.rows = append(m.rows, row{append([]float64(nil), coeffs...), rel, rhs})
	return nil
}

// AddSparseConstraint appends a sparse row; repeated indices accumulate.
func (m *Model) AddSparseConstraint(vars []int, coeffs []float64, rel lp.Relation, rhs float64) error {
	if len(vars) != len(coeffs) {
		return fmt.Errorf("mip: sparse constraint has %d indices but %d coefficients", len(vars), len(coeffs))
	}
	r := make([]float64, m.numVars)
	for i, v := range vars {
		if v < 0 || v >= m.numVars {
			return fmt.Errorf("mip: variable %d out of range [0,%d)", v, m.numVars)
		}
		r[v] += coeffs[i]
	}
	m.rows = append(m.rows, row{r, rel, rhs})
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // integral within tolerance for integer variables
	Objective float64
	Nodes     int // branch-and-bound nodes explored
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = default
	// 200000). When hit, the best incumbent is returned with status
	// NodeLimit (or Infeasible if none was found).
	MaxNodes int
	// AbsGap stops the search when bestBound ≥ incumbent − AbsGap.
	// The default 1e-6 effectively requires proof of optimality; the SD
	// objective is integral for integer distance tiers, so 0.5 is safe
	// there and much faster.
	AbsGap float64
}

const intTol = 1e-6

// bnbNode is one subproblem: extra bounds layered on the root model.
type bnbNode struct {
	bound  float64   // LP relaxation value (lower bound)
	lower  []float64 // branching lower bounds per var (0 default)
	upper  []float64 // branching upper bounds per var
	weight int       // heap sequence for stable ordering
}

type nodeHeap []*bnbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].weight < h[j].weight
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bnbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs branch and bound with default options.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveWithOptions(Options{})
}

// SolveWithOptions runs branch and bound.
func (m *Model) SolveWithOptions(opt Options) (*Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	gap := opt.AbsGap
	if gap <= 0 {
		gap = 1e-6
	}

	root := &bnbNode{
		lower: make([]float64, m.numVars),
		upper: append([]float64(nil), m.upper...),
	}
	relax, status, err := m.solveRelaxation(root)
	if err != nil {
		return nil, err
	}
	switch status {
	case lp.Infeasible:
		return &Solution{Status: Infeasible}, nil
	case lp.Unbounded:
		return &Solution{Status: Unbounded}, nil
	}
	root.bound = relaxObjective(m, relax)

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
		nodes        = 0
		seq          = 0
	)
	open := &nodeHeap{root}
	heap.Init(open)
	relaxCache := map[*bnbNode][]float64{root: relax}

	for open.Len() > 0 {
		nodes++
		if nodes > maxNodes {
			if incumbent != nil {
				return &Solution{Status: NodeLimit, X: incumbent, Objective: incumbentObj, Nodes: nodes}, nil
			}
			return &Solution{Status: NodeLimit, Nodes: nodes}, nil
		}
		node := heap.Pop(open).(*bnbNode)
		if node.bound >= incumbentObj-gap {
			continue // pruned by bound
		}
		x := relaxCache[node]
		delete(relaxCache, node)
		if x == nil {
			var st lp.Status
			x, st, err = m.solveRelaxation(node)
			if err != nil {
				return nil, err
			}
			if st != lp.Optimal {
				continue
			}
			node.bound = relaxObjective(m, x)
			if node.bound >= incumbentObj-gap {
				continue
			}
		}
		frac := m.mostFractional(x)
		if frac < 0 {
			// Integral: candidate incumbent.
			obj := relaxObjective(m, x)
			if obj < incumbentObj {
				incumbentObj = obj
				incumbent = roundIntegral(m, x)
			}
			continue
		}
		v := x[frac]
		floorV := math.Floor(v + intTol)
		// Down child: x_frac ≤ floor(v).
		down := &bnbNode{
			lower:  append([]float64(nil), node.lower...),
			upper:  append([]float64(nil), node.upper...),
			bound:  node.bound,
			weight: seq,
		}
		seq++
		down.upper[frac] = floorV
		// Up child: x_frac ≥ floor(v)+1.
		up := &bnbNode{
			lower:  append([]float64(nil), node.lower...),
			upper:  append([]float64(nil), node.upper...),
			bound:  node.bound,
			weight: seq,
		}
		seq++
		up.lower[frac] = floorV + 1
		for _, child := range []*bnbNode{down, up} {
			if child.lower[frac] > child.upper[frac]+intTol {
				continue // empty box
			}
			cx, st, serr := m.solveRelaxation(child)
			if serr != nil {
				return nil, serr
			}
			if st != lp.Optimal {
				continue
			}
			child.bound = relaxObjective(m, cx)
			if child.bound >= incumbentObj-gap {
				continue
			}
			relaxCache[child] = cx
			heap.Push(open, child)
		}
	}
	if incumbent == nil {
		return &Solution{Status: Infeasible, Nodes: nodes}, nil
	}
	return &Solution{Status: Optimal, X: incumbent, Objective: incumbentObj, Nodes: nodes}, nil
}

// solveRelaxation solves the LP relaxation of the model inside a node's
// bound box.
func (m *Model) solveRelaxation(node *bnbNode) ([]float64, lp.Status, error) {
	p := lp.NewProblem(m.numVars)
	if err := p.SetObjective(m.objective); err != nil {
		return nil, 0, err
	}
	for _, r := range m.rows {
		if err := p.AddConstraint(r.coeffs, r.rel, r.rhs); err != nil {
			return nil, 0, err
		}
	}
	for v := 0; v < m.numVars; v++ {
		if node.lower[v] > 0 {
			if err := p.AddSparseConstraint([]int{v}, []float64{1}, lp.GE, node.lower[v]); err != nil {
				return nil, 0, err
			}
		}
		if !math.IsInf(node.upper[v], 1) {
			if err := p.AddSparseConstraint([]int{v}, []float64{1}, lp.LE, node.upper[v]); err != nil {
				return nil, 0, err
			}
		}
	}
	s, err := p.Solve()
	if err != nil {
		return nil, 0, err
	}
	if s.Status != lp.Optimal {
		return nil, s.Status, nil
	}
	return s.X, lp.Optimal, nil
}

func relaxObjective(m *Model, x []float64) float64 {
	obj := 0.0
	for i, c := range m.objective {
		obj += c * x[i]
	}
	return obj
}

// mostFractional returns the integer variable farthest from integrality,
// or -1 if all integer variables are integral within tolerance.
func (m *Model) mostFractional(x []float64) int {
	best := -1
	bestDist := intTol
	for v := 0; v < m.numVars; v++ {
		if !m.integer[v] {
			continue
		}
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best = v
			bestDist = dist
		}
	}
	return best
}

// roundIntegral snaps near-integral integer variables exactly.
func roundIntegral(m *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for v := range out {
		if m.integer[v] {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

// IntValue reads variable v of a solution as an int, erroring if it is not
// integral within tolerance.
func (s *Solution) IntValue(v int) (int, error) {
	if s.X == nil {
		return 0, errors.New("mip: solution has no variable values")
	}
	if v < 0 || v >= len(s.X) {
		return 0, fmt.Errorf("mip: variable %d out of range [0,%d)", v, len(s.X))
	}
	r := math.Round(s.X[v])
	if math.Abs(s.X[v]-r) > 1e-4 {
		return 0, fmt.Errorf("mip: variable %d = %v is not integral", v, s.X[v])
	}
	return int(r), nil
}
