// Package trace records and replays virtual-cluster request traces as
// JSON, so that simulation scenarios (the paper's "twenty requests ...
// generated randomly") can be archived, shared, and replayed exactly —
// including across implementations.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"affinitycluster/internal/model"
)

// FormatVersion is the trace schema version written by this package.
const FormatVersion = 1

// Trace is a replayable request sequence plus the context needed to
// interpret it.
type Trace struct {
	Version     int    `json:"version"`
	Description string `json:"description,omitempty"`
	// Types is the VM type count every request vector must match.
	Types int `json:"types"`
	// Requests are in arrival order.
	Requests []model.TimedRequest `json:"requests"`
}

// New builds a validated trace from timed requests.
func New(description string, types int, reqs []model.TimedRequest) (*Trace, error) {
	t := &Trace{
		Version:     FormatVersion,
		Description: description,
		Types:       types,
		Requests:    reqs,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks structural invariants: supported version, positive type
// count, per-request vector lengths, non-negative counts, unique IDs, and
// non-decreasing arrival times.
func (t *Trace) Validate() error {
	if t.Version != FormatVersion {
		return fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, FormatVersion)
	}
	if t.Types <= 0 {
		return errors.New("trace: non-positive type count")
	}
	seen := make(map[model.RequestID]bool, len(t.Requests))
	prev := -1.0
	for i, r := range t.Requests {
		if len(r.Vector) != t.Types {
			return fmt.Errorf("trace: request %d has %d types, trace declares %d", i, len(r.Vector), t.Types)
		}
		for j, k := range r.Vector {
			if k < 0 {
				return fmt.Errorf("trace: request %d has negative count for type %d", i, j)
			}
		}
		if r.Vector.IsZero() {
			return fmt.Errorf("trace: request %d asks for zero VMs", i)
		}
		if seen[r.ID] {
			return fmt.Errorf("trace: duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Arrival < prev {
			return fmt.Errorf("trace: request %d arrives at %v, before previous %v", i, r.Arrival, prev)
		}
		prev = r.Arrival
		if r.Hold < 0 {
			return fmt.Errorf("trace: request %d has negative hold %v", i, r.Hold)
		}
	}
	return nil
}

// Save writes the trace as indented JSON.
func Save(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load reads and validates a trace.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// SaveFile writes the trace to a path.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from a path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
