package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"affinitycluster/internal/model"
	"affinitycluster/internal/workload"
)

func sample(t *testing.T) *Trace {
	t.Helper()
	reqs, err := workload.RandomRequests(3, 10, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	timed, err := workload.TimedRequests(4, reqs, workload.DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New("test trace", 3, timed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRoundTrip(t *testing.T) {
	tr := sample(t)
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Description != tr.Description || back.Types != tr.Types || len(back.Requests) != len(tr.Requests) {
		t.Fatal("round trip changed metadata")
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], back.Requests[i]
		if a.ID != b.ID || a.Arrival != b.Arrival || a.Hold != b.Hold || a.Priority != b.Priority {
			t.Fatalf("request %d changed: %+v vs %+v", i, a, b)
		}
		for j := range a.Vector {
			if a.Vector[j] != b.Vector[j] {
				t.Fatalf("request %d vector changed", i)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := sample(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatal("file round trip lost requests")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mut func(*Trace)) *Trace {
		tr := sample(t)
		mut(tr)
		return tr
	}
	cases := map[string]*Trace{
		"bad version":    mk(func(tr *Trace) { tr.Version = 99 }),
		"zero types":     mk(func(tr *Trace) { tr.Types = 0 }),
		"short vector":   mk(func(tr *Trace) { tr.Requests[0].Vector = model.Request{1} }),
		"negative count": mk(func(tr *Trace) { tr.Requests[0].Vector = model.Request{-1, 1, 0} }),
		"zero request":   mk(func(tr *Trace) { tr.Requests[0].Vector = model.Request{0, 0, 0} }),
		"dup id":         mk(func(tr *Trace) { tr.Requests[1].ID = tr.Requests[0].ID }),
		"time warp":      mk(func(tr *Trace) { tr.Requests[1].Arrival = tr.Requests[0].Arrival - 5 }),
		"negative hold":  mk(func(tr *Trace) { tr.Requests[0].Hold = -1 }),
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
		var buf bytes.Buffer
		if err := Save(&buf, tr); err == nil {
			t.Errorf("%s saved", name)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON loaded")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"types":1,"unknown":true,"requests":[]}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New("x", 0, nil); err == nil {
		t.Error("New accepted zero types")
	}
}
