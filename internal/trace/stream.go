// Streaming JSONL traces: the whole-slice JSON format of trace.go keeps
// every request in memory on both ends, which caps replay at whatever
// fits in a []TimedRequest. The JSONL variant streams instead — a header
// line followed by one request per line — so gentrace can emit and the
// cloud simulator can replay multi-million-request traces in O(1) trace
// memory. Validation is incremental: the same invariants Trace.Validate
// enforces over a slice are checked request-by-request, with duplicate
// detection done in O(1) by requiring strictly increasing request IDs
// (a map of seen IDs would itself be O(history)).
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"affinitycluster/internal/model"
)

// StreamFormat is the format tag on a JSONL trace's header line,
// distinguishing it from the whole-slice JSON document format.
const StreamFormat = "jsonl"

// streamHeader is the first line of a JSONL trace.
type streamHeader struct {
	Version     int    `json:"version"`
	Format      string `json:"format"`
	Types       int    `json:"types"`
	Description string `json:"description,omitempty"`
}

// streamRecord is one request line. Field tags keep lines compact and the
// schema explicit rather than tied to model.TimedRequest's field names.
type streamRecord struct {
	ID       model.RequestID `json:"id"`
	Vector   model.Request   `json:"vec"`
	Arrival  float64         `json:"at"`
	Hold     float64         `json:"hold"`
	Priority int             `json:"prio,omitempty"`
}

// validateStreamed checks one request against the stream invariants:
// vector shape, finite non-negative times, strictly increasing IDs, and
// non-decreasing arrivals. prevID/prevArrival carry the running state
// (prevID −1 and prevArrival 0 before the first request).
func validateStreamed(r model.TimedRequest, types int, prevID model.RequestID, prevArrival float64) error {
	if len(r.Vector) != types {
		return fmt.Errorf("trace: request %d has %d types, trace declares %d", r.ID, len(r.Vector), types)
	}
	for j, k := range r.Vector {
		if k < 0 {
			return fmt.Errorf("trace: request %d has negative count for type %d", r.ID, j)
		}
	}
	if r.Vector.IsZero() {
		return fmt.Errorf("trace: request %d asks for zero VMs", r.ID)
	}
	for _, t := range []float64{r.Arrival, r.Hold} {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fmt.Errorf("trace: request %d has invalid time (arrival %v, hold %v)", r.ID, r.Arrival, r.Hold)
		}
	}
	if r.ID <= prevID {
		return fmt.Errorf("trace: request ID %d not strictly increasing (previous %d)", r.ID, prevID)
	}
	if r.Arrival < prevArrival {
		return fmt.Errorf("trace: request %d arrives at %v, before previous %v", r.ID, r.Arrival, prevArrival)
	}
	return nil
}

// Writer emits a JSONL trace incrementally. Create with NewWriter, feed
// requests with Write, and finish with Flush (or Close on a file-backed
// writer from CreateFile).
type Writer struct {
	bw          *bufio.Writer
	f           *os.File // non-nil only for CreateFile writers
	types       int
	prevID      model.RequestID
	prevArrival float64
}

// NewWriter writes the header line and returns a streaming writer.
func NewWriter(w io.Writer, description string, types int) (*Writer, error) {
	if types <= 0 {
		return nil, errors.New("trace: non-positive type count")
	}
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(streamHeader{
		Version:     FormatVersion,
		Format:      StreamFormat,
		Types:       types,
		Description: description,
	})
	if err != nil {
		return nil, err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, types: types, prevID: -1}, nil
}

// CreateFile creates path and returns a writer over it; Close finishes
// both the stream and the file.
func CreateFile(path, description string, types int) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, description, types)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.f = f
	return w, nil
}

// Write validates and appends one request line.
func (w *Writer) Write(r model.TimedRequest) error {
	if err := validateStreamed(r, w.types, w.prevID, w.prevArrival); err != nil {
		return err
	}
	line, err := json.Marshal(streamRecord{
		ID:       r.ID,
		Vector:   r.Vector,
		Arrival:  r.Arrival,
		Hold:     r.Hold,
		Priority: r.Priority,
	})
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(append(line, '\n')); err != nil {
		return err
	}
	w.prevID, w.prevArrival = r.ID, r.Arrival
	return nil
}

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Close flushes and, for CreateFile writers, closes the file.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		if w.f != nil {
			w.f.Close()
		}
		return err
	}
	if w.f != nil {
		return w.f.Close()
	}
	return nil
}

// Reader replays a JSONL trace incrementally; it implements
// model.RequestSource, so it plugs straight into the cloud simulator's
// streaming run. Each line is validated as it is read with the same
// invariants the writer enforced.
type Reader struct {
	sc          *bufio.Scanner
	f           *os.File // non-nil only for OpenFile readers
	hdr         streamHeader
	prevID      model.RequestID
	prevArrival float64
	line        int
}

// NewReader consumes the header line and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		return nil, errors.New("trace: empty stream")
	}
	var hdr streamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", hdr.Version, FormatVersion)
	}
	if hdr.Format != StreamFormat {
		return nil, fmt.Errorf("trace: header format %q, want %q", hdr.Format, StreamFormat)
	}
	if hdr.Types <= 0 {
		return nil, errors.New("trace: non-positive type count")
	}
	return &Reader{sc: sc, hdr: hdr, prevID: -1, line: 1}, nil
}

// OpenFile opens path for streaming replay; Close releases the file.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.f = f
	return r, nil
}

// Types returns the trace's declared VM type count.
func (r *Reader) Types() int { return r.hdr.Types }

// Description returns the trace's description.
func (r *Reader) Description() string { return r.hdr.Description }

// Next returns the next request; ok=false at a clean end of stream.
func (r *Reader) Next() (model.TimedRequest, bool, error) {
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue // tolerate a trailing blank line
		}
		var rec streamRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return model.TimedRequest{}, false, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		req := model.TimedRequest{
			ID:       rec.ID,
			Vector:   rec.Vector,
			Arrival:  rec.Arrival,
			Hold:     rec.Hold,
			Priority: rec.Priority,
		}
		if err := validateStreamed(req, r.hdr.Types, r.prevID, r.prevArrival); err != nil {
			return model.TimedRequest{}, false, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		r.prevID, r.prevArrival = req.ID, req.Arrival
		return req, true, nil
	}
	if err := r.sc.Err(); err != nil {
		return model.TimedRequest{}, false, err
	}
	return model.TimedRequest{}, false, nil
}

// Close releases the underlying file for OpenFile readers (no-op
// otherwise).
func (r *Reader) Close() error {
	if r.f != nil {
		return r.f.Close()
	}
	return nil
}

// CopySource drains src into w — the bridge from any request generator
// (e.g. workload.OpenLoop) to a JSONL trace file. It returns the number
// of requests written.
func CopySource(w *Writer, src model.RequestSource) (int, error) {
	n := 0
	for {
		r, ok, err := src.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		if err := w.Write(r); err != nil {
			return n, err
		}
		n++
	}
}
