package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"affinitycluster/internal/model"
)

func streamReqs() []model.TimedRequest {
	return []model.TimedRequest{
		{ID: 0, Vector: model.Request{1, 0, 2}, Arrival: 1.5, Hold: 10},
		{ID: 1, Vector: model.Request{0, 3, 0}, Arrival: 1.5, Hold: 5, Priority: 2},
		{ID: 5, Vector: model.Request{2, 2, 2}, Arrival: 9, Hold: 0},
	}
}

// TestStreamRoundTrip: write → read reproduces the requests exactly,
// header metadata included.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "round trip", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range streamReqs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Types() != 3 || rd.Description() != "round trip" {
		t.Errorf("header: types %d, description %q", rd.Types(), rd.Description())
	}
	var got []model.TimedRequest
	for {
		r, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	want := streamReqs()
	if len(got) != len(want) {
		t.Fatalf("got %d requests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Arrival != want[i].Arrival ||
			got[i].Hold != want[i].Hold || got[i].Priority != want[i].Priority {
			t.Errorf("request %d: got %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].Vector {
			if got[i].Vector[j] != want[i].Vector[j] {
				t.Errorf("request %d vector: got %v, want %v", i, got[i].Vector, want[i].Vector)
			}
		}
	}
}

// TestStreamFileRoundTrip covers the CreateFile/OpenFile pair and that
// Reader satisfies model.RequestSource.
func TestStreamFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	w, err := CreateFile(path, "file trip", 3)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := CopySource(w, model.NewSliceSource(streamReqs())); err != nil || n != 3 {
		t.Fatalf("CopySource = %d, %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rd.Close() }()
	var src model.RequestSource = rd
	n := 0
	for {
		_, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("replayed %d requests, want 3", n)
	}
}

// TestStreamWriterRejects pins the incremental validation: each invariant
// violation is refused at Write time.
func TestStreamWriterRejects(t *testing.T) {
	newW := func() *Writer {
		w, err := NewWriter(&bytes.Buffer{}, "", 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(model.TimedRequest{ID: 3, Vector: model.Request{1, 1}, Arrival: 5, Hold: 1}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	cases := []struct {
		name string
		r    model.TimedRequest
	}{
		{"duplicate ID", model.TimedRequest{ID: 3, Vector: model.Request{1, 1}, Arrival: 6, Hold: 1}},
		{"decreasing ID", model.TimedRequest{ID: 2, Vector: model.Request{1, 1}, Arrival: 6, Hold: 1}},
		{"earlier arrival", model.TimedRequest{ID: 4, Vector: model.Request{1, 1}, Arrival: 4, Hold: 1}},
		{"wrong vector size", model.TimedRequest{ID: 4, Vector: model.Request{1, 1, 1}, Arrival: 6, Hold: 1}},
		{"negative count", model.TimedRequest{ID: 4, Vector: model.Request{-1, 2}, Arrival: 6, Hold: 1}},
		{"zero VMs", model.TimedRequest{ID: 4, Vector: model.Request{0, 0}, Arrival: 6, Hold: 1}},
		{"negative hold", model.TimedRequest{ID: 4, Vector: model.Request{1, 1}, Arrival: 6, Hold: -1}},
	}
	for _, tc := range cases {
		if err := newW().Write(tc.r); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if _, err := NewWriter(&bytes.Buffer{}, "", 0); err == nil {
		t.Error("zero types accepted")
	}
}

// TestStreamReaderRejects: malformed headers and invalid lines fail with
// a line-numbered error instead of yielding garbage.
func TestStreamReaderRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"wrong format":   `{"version":1,"format":"csv","types":3}` + "\n",
		"wrong version":  `{"version":9,"format":"jsonl","types":3}` + "\n",
		"no types":       `{"version":1,"format":"jsonl"}` + "\n",
		"plain document": `{"version":1,"types":3,"requests":[]}` + "\n",
	} {
		if _, err := NewReader(strings.NewReader(in)); err == nil {
			t.Errorf("%s header accepted", name)
		}
	}
	hdr := `{"version":1,"format":"jsonl","types":2}` + "\n"
	for name, line := range map[string]string{
		"bad json":     "not json",
		"dup id":       `{"id":1,"vec":[1,0],"at":1,"hold":1}` + "\n" + `{"id":1,"vec":[1,0],"at":2,"hold":1}`,
		"time travel":  `{"id":1,"vec":[1,0],"at":5,"hold":1}` + "\n" + `{"id":2,"vec":[1,0],"at":4,"hold":1}`,
		"zero request": `{"id":1,"vec":[0,0],"at":1,"hold":1}`,
	} {
		rd, err := NewReader(strings.NewReader(hdr + line + "\n"))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", name, err)
		}
		ok := true
		for err == nil && ok {
			_, ok, err = rd.Next()
		}
		if err == nil {
			t.Errorf("%s accepted", name)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s error %q lacks line number", name, err)
		}
	}
}
