package dfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/vcluster"
)

// cluster builds an 8-VM cluster spread over two racks: 2 VMs on each of
// nodes 0,1 (rack 0) and 2,3 (rack 1).
func cluster(t *testing.T) *vcluster.Cluster {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	a := affinity.Allocation{{2, 0}, {2, 0}, {2, 0}, {2, 0}}
	c, err := vcluster.FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadConfig(t *testing.T) {
	c := cluster(t)
	if _, err := New(c, Config{BlockMB: 0, Replication: 3}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(c, Config{BlockMB: 64, Replication: 0}); err == nil {
		t.Error("zero replication accepted")
	}
}

func TestWriteSplitsIntoBlocks(t *testing.T) {
	c := cluster(t)
	fs, err := New(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids, err := fs.Write("input", 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 200 MB / 64 MB = 3 full + 8 MB remainder = 4 blocks.
	if len(ids) != 4 {
		t.Fatalf("blocks = %d, want 4", len(ids))
	}
	last, err := fs.Block(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if last.SizeMB != 8 {
		t.Errorf("last block size = %v, want 8", last.SizeMB)
	}
	if fs.TotalBlocks() != 4 {
		t.Errorf("TotalBlocks = %d", fs.TotalBlocks())
	}
	got, err := fs.Blocks("input")
	if err != nil || len(got) != 4 {
		t.Errorf("Blocks() = %v, %v", got, err)
	}
}

func TestWriteErrors(t *testing.T) {
	c := cluster(t)
	fs, _ := New(c, DefaultConfig())
	if _, err := fs.Write("f", 0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := fs.Write("f", 10, 99); err == nil {
		t.Error("bad writer accepted")
	}
	if _, err := fs.Write("f", 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("f", 10, 0); err == nil {
		t.Error("duplicate file accepted")
	}
	if _, err := fs.Blocks("missing"); err == nil {
		t.Error("missing file lookup succeeded")
	}
	if _, err := fs.Block(999); err == nil {
		t.Error("bad block lookup succeeded")
	}
}

func TestReplicaPolicy(t *testing.T) {
	c := cluster(t)
	fs, _ := New(c, DefaultConfig())
	ids, err := fs.Write("input", 640, 0) // 10 blocks, writer VM 0 (rack 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		b, _ := fs.Block(id)
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", id, len(b.Replicas))
		}
		if b.Replicas[0] != 0 {
			t.Errorf("block %d first replica on VM %d, want writer 0", id, b.Replicas[0])
		}
		// Replica 2 must be in a different rack from the writer.
		if c.SameRack(b.Replicas[0], b.Replicas[1]) {
			t.Errorf("block %d second replica co-racked with writer", id)
		}
		// Replica 3 must share replica 2's rack.
		if !c.SameRack(b.Replicas[1], b.Replicas[2]) {
			t.Errorf("block %d third replica not co-racked with second", id)
		}
		// All distinct.
		seen := map[vcluster.VMID]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Fatalf("block %d has duplicate replica %d", id, r)
			}
			seen[r] = true
		}
	}
}

func TestReplicationCappedByClusterSize(t *testing.T) {
	tp, err := topology.Uniform(1, 1, 1, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	a := affinity.Allocation{{2, 0}}
	c, err := vcluster.FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := New(c, Config{BlockMB: 64, Replication: 5, Seed: 1})
	ids, err := fs.Write("f", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fs.Block(ids[0])
	if len(b.Replicas) != 2 {
		t.Errorf("replicas = %d, want 2 (cluster size)", len(b.Replicas))
	}
}

func TestNearestReplicaAndLocality(t *testing.T) {
	c := cluster(t)
	fs, _ := New(c, DefaultConfig())
	ids, _ := fs.Write("input", 64, 0)
	id := ids[0]
	// Reader VM 0 holds the replica: node-local.
	if _, loc, err := fs.NearestReplica(id, 0); err != nil || loc != NodeLocal {
		t.Errorf("reader 0 locality = %v (%v)", loc, err)
	}
	// Reader VM 1 shares node 0 with VM 0: node-local too.
	if _, loc, _ := fs.NearestReplica(id, 1); loc != NodeLocal {
		t.Errorf("reader 1 locality = %v, want node-local", loc)
	}
	if !fs.HasLocalReplica(id, 1) {
		t.Error("HasLocalReplica(1) = false")
	}
	if fs.HasLocalReplica(999, 0) {
		t.Error("HasLocalReplica on bad block = true")
	}
	if _, _, err := fs.NearestReplica(999, 0); err == nil {
		t.Error("NearestReplica on bad block succeeded")
	}
	locals := fs.VMsWithReplica(id)
	if len(locals) < 3 {
		t.Errorf("VMsWithReplica = %v", locals)
	}
	if fs.VMsWithReplica(999) != nil {
		t.Error("VMsWithReplica on bad block non-nil")
	}
}

func TestLocalityString(t *testing.T) {
	if NodeLocal.String() != "node-local" || RackLocal.String() != "rack-local" || Remote.String() != "remote" {
		t.Error("Locality strings wrong")
	}
}

func TestSingleRackClusterAllRackLocal(t *testing.T) {
	// All VMs in one rack: replica 2 cannot go off-rack; the policy falls
	// back gracefully and every read is node- or rack-local.
	tp, err := topology.Uniform(1, 1, 4, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	a := affinity.Allocation{{1, 0}, {1, 0}, {1, 0}, {1, 0}}
	c, err := vcluster.FromAllocation(tp, a)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := New(c, DefaultConfig())
	ids, err := fs.Write("f", 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		for v := 0; v < c.Size(); v++ {
			_, loc, err := fs.NearestReplica(id, vcluster.VMID(v))
			if err != nil {
				t.Fatal(err)
			}
			if loc == Remote {
				t.Errorf("block %d reader %d remote in single-rack cluster", id, v)
			}
		}
	}
}

// Property: replica invariants hold for random cluster shapes and writers:
// correct count (min(replication, size)), all distinct, first on writer.
func TestQuickReplicaInvariants(t *testing.T) {
	tp, err := topology.Uniform(1, 3, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := affinity.NewAllocation(tp.Nodes(), 1)
		vms := 1 + r.Intn(8)
		for v := 0; v < vms; v++ {
			a[r.Intn(tp.Nodes())][0]++
		}
		c, err := vcluster.FromAllocation(tp, a)
		if err != nil {
			return false
		}
		fs, err := New(c, Config{BlockMB: 64, Replication: 3, Seed: seed})
		if err != nil {
			return false
		}
		writer := vcluster.VMID(r.Intn(c.Size()))
		ids, err := fs.Write("f", 64*float64(1+r.Intn(5)), writer)
		if err != nil {
			return false
		}
		want := 3
		if c.Size() < want {
			want = c.Size()
		}
		for _, id := range ids {
			b, err := fs.Block(id)
			if err != nil {
				return false
			}
			if len(b.Replicas) != want || b.Replicas[0] != writer {
				return false
			}
			seen := map[vcluster.VMID]bool{}
			for _, rep := range b.Replicas {
				if seen[rep] || int(rep) >= c.Size() {
					return false
				}
				seen[rep] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
