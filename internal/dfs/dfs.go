// Package dfs simulates the distributed file system underneath the
// MapReduce jobs of the paper's experiments (Section V.B): files are
// split into fixed-size blocks, each block is replicated across the
// virtual cluster's VMs with the rack-aware policy HDFS uses by default
// (first replica on the writer, second on a different rack, third
// co-racked with the second), and readers locate the nearest replica to
// decide whether a map task is data-local, rack-local, or remote.
package dfs

import (
	"fmt"
	"math/rand"

	"affinitycluster/internal/vcluster"
)

// Locality classifies how close a reader VM is to a block replica —
// exactly the categories of the paper's Fig. 8.
type Locality int

const (
	// NodeLocal: a replica lives on the reader's VM (or a co-located VM).
	NodeLocal Locality = iota
	// RackLocal: the nearest replica is in the reader's rack.
	RackLocal
	// Remote: every replica is in another rack (or cloud).
	Remote
)

func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	default:
		return "remote"
	}
}

// BlockID identifies one block within a file system.
type BlockID int

// Block is one replicated chunk of a file.
type Block struct {
	ID       BlockID
	File     string
	SizeMB   float64
	Replicas []vcluster.VMID // distinct VMs holding a copy
}

// FS is a simulated distributed file system over one virtual cluster.
type FS struct {
	cluster     *vcluster.Cluster
	blockMB     float64
	replication int
	rng         *rand.Rand
	blocks      []Block
	files       map[string][]BlockID
}

// Config parameterizes a file system.
type Config struct {
	// BlockMB is the block size (Hadoop default era: 64 MB).
	BlockMB float64
	// Replication is the target replica count (HDFS default 3); it is
	// capped at the number of distinct VMs.
	Replication int
	// Seed drives replica placement randomness.
	Seed int64
}

// DefaultConfig mirrors a 2012 Hadoop deployment: 64 MB blocks,
// replication 3.
func DefaultConfig() Config {
	return Config{BlockMB: 64, Replication: 3, Seed: 1}
}

// New creates an empty file system over the cluster.
func New(c *vcluster.Cluster, cfg Config) (*FS, error) {
	if cfg.BlockMB <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %v", cfg.BlockMB)
	}
	if cfg.Replication <= 0 {
		return nil, fmt.Errorf("dfs: replication must be positive, got %d", cfg.Replication)
	}
	return &FS{
		cluster:     c,
		blockMB:     cfg.BlockMB,
		replication: cfg.Replication,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		files:       make(map[string][]BlockID),
	}, nil
}

// BlockMB returns the configured block size.
func (fs *FS) BlockMB() float64 { return fs.blockMB }

// Write stores a file of the given size, splitting it into blocks and
// placing replicas with the rack-aware policy. writer is the VM producing
// the data (its node receives the first replica, modelling HDFS's
// write-local behaviour). It returns the new blocks' IDs.
func (fs *FS) Write(name string, sizeMB float64, writer vcluster.VMID) ([]BlockID, error) {
	if sizeMB <= 0 {
		return nil, fmt.Errorf("dfs: file size must be positive, got %v", sizeMB)
	}
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if int(writer) < 0 || int(writer) >= fs.cluster.Size() {
		return nil, fmt.Errorf("dfs: writer VM %d out of range [0,%d)", writer, fs.cluster.Size())
	}
	var ids []BlockID
	remaining := sizeMB
	for remaining > 0 {
		size := fs.blockMB
		if remaining < size {
			size = remaining
		}
		id := BlockID(len(fs.blocks))
		fs.blocks = append(fs.blocks, Block{
			ID:       id,
			File:     name,
			SizeMB:   size,
			Replicas: fs.placeReplicas(writer),
		})
		ids = append(ids, id)
		remaining -= size
	}
	fs.files[name] = ids
	// Return a copy: ids is now the file table's entry, and a caller
	// mutating the returned slice must not corrupt it (aliasret).
	return append([]BlockID(nil), ids...), nil
}

// WriteRotating stores a file like Write but rotates the first replica's
// holder round-robin across all VMs, block by block. This models a
// dataset bulk-loaded into the cluster (each DataNode ingesting a share)
// rather than produced by a single writer — the steady state a MapReduce
// input normally starts from, with block ownership balanced across the
// cluster.
func (fs *FS) WriteRotating(name string, sizeMB float64) ([]BlockID, error) {
	if sizeMB <= 0 {
		return nil, fmt.Errorf("dfs: file size must be positive, got %v", sizeMB)
	}
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	var ids []BlockID
	remaining := sizeMB
	writer := 0
	for remaining > 0 {
		size := fs.blockMB
		if remaining < size {
			size = remaining
		}
		id := BlockID(len(fs.blocks))
		fs.blocks = append(fs.blocks, Block{
			ID:       id,
			File:     name,
			SizeMB:   size,
			Replicas: fs.placeReplicas(vcluster.VMID(writer)),
		})
		ids = append(ids, id)
		remaining -= size
		writer = (writer + 1) % fs.cluster.Size()
	}
	fs.files[name] = ids
	// Same copy-on-return contract as Write: the stored entry must not
	// be reachable through the return value.
	return append([]BlockID(nil), ids...), nil
}

// placeReplicas implements the rack-aware policy: replica 1 on the
// writer; replica 2 on a VM in a different rack if one exists; replica 3
// in the same rack as replica 2; further replicas random. All replicas
// land on distinct VMs; the count is capped by cluster size.
func (fs *FS) placeReplicas(writer vcluster.VMID) []vcluster.VMID {
	n := fs.cluster.Size()
	want := fs.replication
	if want > n {
		want = n
	}
	used := map[vcluster.VMID]bool{writer: true}
	replicas := []vcluster.VMID{writer}

	pick := func(filter func(vcluster.VMID) bool) (vcluster.VMID, bool) {
		var candidates []vcluster.VMID
		for v := 0; v < n; v++ {
			id := vcluster.VMID(v)
			if !used[id] && (filter == nil || filter(id)) {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) == 0 {
			return 0, false
		}
		return candidates[fs.rng.Intn(len(candidates))], true
	}

	// Replica 2: different rack from the writer when possible.
	if len(replicas) < want {
		id, ok := pick(func(v vcluster.VMID) bool { return !fs.cluster.SameRack(v, writer) })
		if !ok {
			id, ok = pick(nil)
		}
		if ok {
			used[id] = true
			replicas = append(replicas, id)
		}
	}
	// Replica 3: same rack as replica 2 when possible.
	if len(replicas) < want && len(replicas) >= 2 {
		second := replicas[1]
		id, ok := pick(func(v vcluster.VMID) bool { return fs.cluster.SameRack(v, second) })
		if !ok {
			id, ok = pick(nil)
		}
		if ok {
			used[id] = true
			replicas = append(replicas, id)
		}
	}
	// Remaining replicas: anywhere.
	for len(replicas) < want {
		id, ok := pick(nil)
		if !ok {
			break
		}
		used[id] = true
		replicas = append(replicas, id)
	}
	return replicas
}

// Blocks returns the block IDs of a file in order.
func (fs *FS) Blocks(name string) ([]BlockID, error) {
	ids, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	return append([]BlockID(nil), ids...), nil
}

// Block returns a block's metadata.
func (fs *FS) Block(id BlockID) (Block, error) {
	if int(id) < 0 || int(id) >= len(fs.blocks) {
		return Block{}, fmt.Errorf("dfs: block %d out of range", id)
	}
	b := fs.blocks[id]
	b.Replicas = append([]vcluster.VMID(nil), b.Replicas...)
	return b, nil
}

// NearestReplica returns the replica closest to the reader VM and its
// locality class. Ties prefer the lowest VM ID for determinism.
func (fs *FS) NearestReplica(id BlockID, reader vcluster.VMID) (vcluster.VMID, Locality, error) {
	if int(id) < 0 || int(id) >= len(fs.blocks) {
		return 0, Remote, fmt.Errorf("dfs: block %d out of range", id)
	}
	b := fs.blocks[id]
	best := b.Replicas[0]
	bestD := fs.cluster.Distance(reader, best)
	for _, r := range b.Replicas[1:] {
		if d := fs.cluster.Distance(reader, r); d < bestD {
			best, bestD = r, d
		}
	}
	return best, fs.classify(reader, best), nil
}

// classify maps a reader/replica pair to its locality class.
func (fs *FS) classify(reader, replica vcluster.VMID) Locality {
	switch {
	case fs.cluster.SameNode(reader, replica):
		return NodeLocal
	case fs.cluster.SameRack(reader, replica):
		return RackLocal
	default:
		return Remote
	}
}

// HasLocalReplica reports whether the reader's node holds a replica.
func (fs *FS) HasLocalReplica(id BlockID, reader vcluster.VMID) bool {
	if int(id) < 0 || int(id) >= len(fs.blocks) {
		return false
	}
	for _, r := range fs.blocks[id].Replicas {
		if fs.cluster.SameNode(reader, r) {
			return true
		}
	}
	return false
}

// VMsWithReplica returns the readers for which the block is node-local.
func (fs *FS) VMsWithReplica(id BlockID) []vcluster.VMID {
	if int(id) < 0 || int(id) >= len(fs.blocks) {
		return nil
	}
	seen := make(map[vcluster.VMID]bool)
	var out []vcluster.VMID
	for v := 0; v < fs.cluster.Size(); v++ {
		reader := vcluster.VMID(v)
		if fs.HasLocalReplica(id, reader) && !seen[reader] {
			seen[reader] = true
			out = append(out, reader)
		}
	}
	return out
}

// TotalBlocks returns the number of blocks stored.
func (fs *FS) TotalBlocks() int { return len(fs.blocks) }
