package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Errorf("p50 = %v", got)
	}
}

// TestEmptySamples is the regression test for the empty-sample panic:
// cloudsim.Metrics.Waits legitimately has zero entries when nothing is
// served, and the stats layer must degrade, not crash.
func TestEmptySamples(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(nil, p); !math.IsNaN(got) {
			t.Errorf("Percentile(nil, %v) = %v, want NaN", p, got)
		}
		if got := Percentile([]float64{}, p); !math.IsNaN(got) {
			t.Errorf("Percentile([], %v) = %v, want NaN", p, got)
		}
	}
	z := Summarize(nil)
	if z != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero value", z)
	}
	if z = Summarize([]float64{}); z != (Summary{}) {
		t.Errorf("Summarize([]) = %+v, want zero value", z)
	}
	if Mean(nil) != 0 || Sum(nil) != 0 {
		t.Error("Mean/Sum of empty sample not 0")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw [10]float64, p1Raw, p2Raw uint8) bool {
		xs := raw[:]
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		sort.Float64s(xs)
		p1 := float64(p1Raw) / 255 * 100
		p2 := float64(p2Raw) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2 && v1 >= xs[0] && v2 <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumMean(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 11} {
		h.Observe(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	// Buckets of width 2: [0,2)→{0,1.9}, [2,4)→{2}, [4,6)→{5}, [8,10]→{9.9,10}.
	want := []int{2, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if !strings.Contains(h.String(), "[0.0, 2.0)") {
		t.Errorf("render:\n%s", h.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: every in-range sample lands in exactly one bucket.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw [20]float64) bool {
		h := NewHistogram(0, 1, 7)
		for _, x := range raw {
			if math.IsNaN(x) {
				x = 0
			}
			h.Observe(math.Abs(math.Mod(x, 2))) // spread over [0, 2): half out of range
		}
		return h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("alpha", 3.14159)
	tab.Add("b", 10)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: every line has the same position for column 2.
	if !strings.HasPrefix(lines[2], "alpha") || !strings.HasPrefix(lines[3], "b    ") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestTableWithoutHeader(t *testing.T) {
	tab := &Table{}
	tab.Add(1, 2)
	out := tab.String()
	if strings.Contains(out, "-") {
		t.Errorf("headerless table has a rule:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "bb"}, []float64{2, 4}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 8)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 4 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	// Zero and tiny values.
	out = BarChart([]string{"zero", "tiny", "big"}, []float64{0, 0.001, 100}, 10)
	if !strings.Contains(out, "tiny | # ") {
		t.Errorf("tiny value not rendered with minimal bar:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched BarChart did not panic")
		}
	}()
	BarChart([]string{"a"}, []float64{1, 2}, 10)
}

func TestSeriesRendering(t *testing.T) {
	s1 := &Series{Name: "online"}
	s2 := &Series{Name: "global"}
	for i := 0; i < 3; i++ {
		s1.Append(float64(i), float64(10+i))
		s2.Append(float64(i), float64(9+i))
	}
	out := RenderSeries("request", s1, s2)
	if !strings.Contains(out, "online") || !strings.Contains(out, "global") {
		t.Errorf("series output:\n%s", out)
	}
	if RenderSeries("x") != "" {
		t.Error("empty series list should render empty")
	}
	// Ragged series: missing Y renders empty, no panic.
	s3 := &Series{Name: "short"}
	s3.Append(0, 1)
	out = RenderSeries("x", s1, s3)
	if !strings.Contains(out, "short") {
		t.Errorf("ragged output:\n%s", out)
	}
}
