// Streaming quantile estimation for open-loop runs: the retained-sample
// Percentile path is exact but O(served) in memory, which the soak
// scenario (millions of requests) cannot afford. Quantile is the O(1)
// alternative — a fixed-bucket histogram sketch whose quantile estimates
// carry a documented, testable error bound.

package stats

import (
	"fmt"
	"math"
)

// Quantile is a streaming fixed-bucket quantile sketch over [Min, Max]:
// equal-width buckets count observations, and quantiles are read back by
// walking the cumulative distribution with linear interpolation inside
// the crossing bucket.
//
// Error bound: for samples inside [Min, Max], an estimated quantile is
// within one bucket width — (Max−Min)/buckets — of the exact sample
// quantile (pinned by TestQuantileErrorBound). Samples outside the range
// are counted as mass clamped to Min or Max, so quantiles that fall in
// the clamped mass are only bounded by the range itself; size the range
// to the data (Under/Over report how much escaped).
//
// Unlike obs.Histogram this sketch also supports Remove, the exact
// inverse of Observe — the cloud simulator needs it to roll back the
// served sample of a cluster torn down by a failure.
type Quantile struct {
	min, max float64
	width    float64
	counts   []int64
	under    int64 // observations below min (clamped to min for quantiles)
	over     int64 // observations above max (clamped to max for quantiles)
	sum      float64
	n        int64
}

// NewQuantile creates a sketch with the given bucket count; it panics on
// a non-positive count or an empty range, which are programming errors
// (mirroring NewHistogram).
func NewQuantile(min, max float64, buckets int) *Quantile {
	if buckets <= 0 || !(max > min) {
		panic(fmt.Sprintf("stats: NewQuantile(%v, %v, %d) invalid", min, max, buckets))
	}
	return &Quantile{
		min:    min,
		max:    max,
		width:  (max - min) / float64(buckets),
		counts: make([]int64, buckets),
	}
}

// bucket maps an in-range sample to its bucket index.
//
//lint:hotpath
func (q *Quantile) bucket(x float64) int {
	i := int((x - q.min) / (q.max - q.min) * float64(len(q.counts)))
	if i == len(q.counts) { // x == max lands in the last bucket
		i--
	}
	return i
}

// Observe adds one sample. NaN is ignored (it belongs to no bucket).
//
//lint:hotpath
func (q *Quantile) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	q.sum += x
	q.n++
	switch {
	case x < q.min:
		q.under++
	case x > q.max:
		q.over++
	default:
		q.counts[q.bucket(x)]++
	}
}

// Remove subtracts one previously observed sample — the exact inverse of
// Observe(x). Removing a value that was never observed corrupts the
// sketch; callers own that pairing.
//
//lint:hotpath
func (q *Quantile) Remove(x float64) {
	if math.IsNaN(x) {
		return
	}
	q.sum -= x
	q.n--
	switch {
	case x < q.min:
		q.under--
	case x > q.max:
		q.over--
	default:
		q.counts[q.bucket(x)]--
	}
}

// Count returns the number of live observations.
func (q *Quantile) Count() int64 { return q.n }

// Sum returns the sum of live observations.
func (q *Quantile) Sum() float64 { return q.sum }

// Mean returns the average of live observations (0 when empty).
func (q *Quantile) Mean() float64 {
	if q.n == 0 {
		return 0
	}
	return q.sum / float64(q.n)
}

// Under and Over report the clamped out-of-range mass.
func (q *Quantile) Under() int64 { return q.under }
func (q *Quantile) Over() int64  { return q.over }

// ErrorBound returns the worst-case estimation error for quantiles that
// land inside [Min, Max]: one bucket width.
func (q *Quantile) ErrorBound() float64 { return q.width }

// Value estimates the p-th percentile (0–100, matching Percentile). An
// empty sketch returns NaN, mirroring Percentile on an empty sample.
func (q *Quantile) Value(p float64) float64 {
	if q.n <= 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Nearest-rank target over the live count, like Percentile's
	// rank = p/100·(n−1), then walk the CDF: under-mass sits at min,
	// over-mass at max.
	rank := p / 100 * float64(q.n-1)
	target := int64(math.Floor(rank))
	cum := q.under
	if target < cum {
		return q.min
	}
	for i, c := range q.counts {
		if c <= 0 {
			continue
		}
		if target < cum+c {
			// Interpolate within the bucket by the rank's position in
			// the bucket's mass.
			lo := q.min + float64(i)*q.width
			frac := (float64(target) - float64(cum) + (rank - math.Floor(rank))) / float64(c)
			if frac > 1 {
				frac = 1
			}
			return lo + frac*q.width
		}
		cum += c
	}
	return q.max
}
