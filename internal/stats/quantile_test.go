package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileErrorBound is the sketch's contract: over seeded draws from
// several distributions, every estimated quantile of in-range data is
// within one bucket width (ErrorBound) of the exact sample percentile.
func TestQuantileErrorBound(t *testing.T) {
	draws := []struct {
		name string
		draw func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"exponential", func(r *rand.Rand) float64 { return -20 * math.Log(1-r.Float64()) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 5 + r.Float64()
			}
			return 90 + r.Float64()*5
		}},
		{"constant", func(r *rand.Rand) float64 { return 42 }},
	}
	for _, tc := range draws {
		name, draw := tc.name, tc.draw
		for seed := int64(1); seed <= 3; seed++ {
			r := rand.New(rand.NewSource(seed))
			q := NewQuantile(0, 200, 400)
			var xs []float64
			for i := 0; i < 5000; i++ {
				x := draw(r)
				if x > 200 {
					x = 200 // keep the draw in range; out-of-range is tested separately
				}
				q.Observe(x)
				xs = append(xs, x)
			}
			sorted := append([]float64(nil), xs...)
			sortFloats(sorted)
			for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
				exact := Percentile(sorted, p)
				got := q.Value(p)
				if math.Abs(got-exact) > q.ErrorBound()+1e-9 {
					t.Errorf("%s seed %d p%.0f: sketch %.4f, exact %.4f, bound %.4f",
						name, seed, p, got, exact, q.ErrorBound())
				}
			}
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestQuantileRemoveIsInverse: observing then removing a subset leaves the
// sketch identical to never having observed it.
func TestQuantileRemoveIsInverse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	keepOnly := NewQuantile(0, 100, 50)
	both := NewQuantile(0, 100, 50)
	var removed []float64
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 110 // some samples escape the range
		if i%3 == 0 {
			removed = append(removed, x)
			both.Observe(x)
			continue
		}
		keepOnly.Observe(x)
		both.Observe(x)
	}
	for _, x := range removed {
		both.Remove(x)
	}
	if keepOnly.Count() != both.Count() || keepOnly.Under() != both.Under() || keepOnly.Over() != both.Over() {
		t.Fatalf("counts diverge: keep %d/%d/%d, both %d/%d/%d",
			keepOnly.Count(), keepOnly.Under(), keepOnly.Over(),
			both.Count(), both.Under(), both.Over())
	}
	if math.Abs(keepOnly.Sum()-both.Sum()) > 1e-6 {
		t.Fatalf("sums diverge: %v vs %v", keepOnly.Sum(), both.Sum())
	}
	for _, p := range []float64{0, 50, 95, 100} {
		if a, b := keepOnly.Value(p), both.Value(p); a != b {
			t.Errorf("p%.0f diverges: %v vs %v", p, a, b)
		}
	}
}

// TestQuantileEdgeCases covers the empty sketch, out-of-range clamping,
// and invalid construction.
func TestQuantileEdgeCases(t *testing.T) {
	q := NewQuantile(0, 10, 10)
	if !math.IsNaN(q.Value(50)) {
		t.Error("empty sketch should return NaN")
	}
	q.Observe(math.NaN()) // ignored
	if q.Count() != 0 {
		t.Error("NaN was counted")
	}
	q.Observe(-5)
	q.Observe(15)
	if q.Under() != 1 || q.Over() != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", q.Under(), q.Over())
	}
	if v := q.Value(0); v != 0 {
		t.Errorf("p0 with clamped low mass = %v, want Min", v)
	}
	if v := q.Value(100); v != 10 {
		t.Errorf("p100 with clamped high mass = %v, want Max", v)
	}
	for _, f := range []func(){
		func() { NewQuantile(0, 0, 10) },
		func() { NewQuantile(0, 10, 0) },
		func() { NewQuantile(5, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewQuantile did not panic")
				}
			}()
			f()
		}()
	}
}

// TestQuantileMeanTracksExactly: sum/count are exact regardless of
// bucketing, including for out-of-range samples.
func TestQuantileMeanTracksExactly(t *testing.T) {
	q := NewQuantile(0, 10, 4)
	xs := []float64{-3, 2.5, 7.5, 40}
	var sum float64
	for _, x := range xs {
		q.Observe(x)
		sum += x
	}
	if got, want := q.Mean(), sum/float64(len(xs)); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}
