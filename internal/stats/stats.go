// Package stats provides the small statistics and rendering toolkit used
// by the experiment runners: summary statistics, histograms, and ASCII
// tables / bar charts for printing figure-shaped output in a terminal.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Stddev         float64
	P50, P90, P99  float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample using nearest-rank with linear interpolation. An empty sample
// has no percentiles: it returns NaN, mirroring Summarize's zero-value
// behaviour — empty samples are legitimate (e.g. a simulation that
// served zero requests) and must not crash the caller.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Sum adds a sample.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean averages a sample (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Histogram counts samples into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Under    int // samples below Min
	Over     int // samples above Max
}

// NewHistogram creates a histogram with the given bucket count; it panics
// on a non-positive count or an empty range, which are programming
// errors.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 || !(max > min) {
		panic(fmt.Sprintf("stats: NewHistogram(%v, %v, %d) invalid", min, max, buckets))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, buckets)}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x > h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Max lands in the last bucket
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observed samples, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// String renders the histogram as a bar chart with bucket-range labels.
func (h *Histogram) String() string {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	labels := make([]string, len(h.Counts))
	values := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		labels[i] = fmt.Sprintf("[%.1f, %.1f)", h.Min+float64(i)*width, h.Min+float64(i+1)*width)
		values[i] = float64(c)
	}
	return BarChart(labels, values, 30)
}

// Table renders rows as an aligned ASCII table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, stringifying each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if len(t.Header) > 0 {
		measure(t.Header)
	}
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// BarChart renders labeled values as a horizontal ASCII bar chart, the
// terminal stand-in for the paper's figures.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("stats: BarChart got %d labels but %d values", len(labels), len(values)))
	}
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s | %s %.2f\n", maxL, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// Series is a labeled sequence of points for figure-shaped output.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// RenderSeries prints aligned multi-series rows: x then one y per series.
// All series must share their x-axis.
func RenderSeries(xLabel string, series ...*Series) string {
	if len(series) == 0 {
		return ""
	}
	t := &Table{Header: append([]string{xLabel}, names(series)...)}
	for i := range series[0].Xs {
		row := make([]interface{}, 0, 1+len(series))
		row = append(row, series[0].Xs[i])
		for _, s := range series {
			if i < len(s.Ys) {
				row = append(row, s.Ys[i])
			} else {
				row = append(row, "")
			}
		}
		t.Add(row...)
	}
	return t.String()
}

func names(series []*Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
