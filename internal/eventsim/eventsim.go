// Package eventsim is a minimal discrete-event simulation engine shared by
// the cloud-level simulator (request arrivals and departures) and the
// MapReduce job simulator (task and transfer completions). Events carry a
// virtual timestamp and a callback; the engine pops them in time order,
// advancing a virtual clock. Callbacks may schedule further events.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is one scheduled callback.
type Event struct {
	Time  float64
	Fn    func(now float64)
	class int // timestamp tie-break before seq; At/After use class 0
	seq   int // FIFO tie-break among equal (Time, class)
	idx   int // heap index, -1 once popped or cancelled
}

// Engine owns the event queue and the virtual clock. It is single-
// goroutine by design: discrete-event simulation is inherently sequential
// in virtual time, and determinism matters more than parallel speed at the
// paper's scales.
type Engine struct {
	now    float64
	events eventHeap
	seq    int
	runs   int
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.runs }

// At schedules fn at absolute virtual time t, which must be finite and
// must not precede the current clock. It returns a handle usable with
// Cancel.
func (e *Engine) At(t float64, fn func(now float64)) (*Event, error) {
	return e.AtClass(t, 0, fn)
}

// AtClass schedules fn at time t in the given tie-break class: among
// events with equal timestamps, lower classes fire first regardless of
// insertion order, and equal classes fall back to FIFO insertion order.
// At and After schedule in class 0; a negative class lets an event
// scheduled late (e.g. a lazily-pulled trace arrival) still outrank
// same-timestamp events that entered the heap earlier.
func (e *Engine) AtClass(t float64, class int, fn func(now float64)) (*Event, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		// A NaN would slip past the ordering checks below (every
		// comparison is false) and silently corrupt the heap order.
		return nil, fmt.Errorf("eventsim: non-finite event time %v", t)
	}
	if t < e.now {
		return nil, fmt.Errorf("eventsim: cannot schedule at %v, clock is at %v", t, e.now)
	}
	if fn == nil {
		return nil, fmt.Errorf("eventsim: nil callback")
	}
	ev := &Event{Time: t, Fn: fn, class: class, seq: e.seq}
	e.seq++
	heap.Push(&e.events, ev)
	return ev, nil
}

// After schedules fn delay time units from now.
func (e *Engine) After(delay float64, fn func(now float64)) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("eventsim: negative delay %v", delay)
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a harmless no-op returning false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
	return true
}

// Step executes the single earliest event, advancing the clock. It
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	ev.idx = -1
	e.now = ev.Time
	e.runs++
	ev.Fn(e.now)
	return true
}

// Run drains the queue completely and returns the final clock value.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil processes events with Time ≤ deadline, then advances the clock
// to exactly the deadline (even if idle). Events scheduled later survive.
func (e *Engine) RunUntil(deadline float64) float64 {
	for len(e.events) > 0 && e.events[0].Time <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// eventHeap orders by (Time, class, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
//lint:hotpath
func (h *eventHeap) Push(x interface{}) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
//lint:hotpath
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
