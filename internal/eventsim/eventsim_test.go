package eventsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if _, err := e.At(at, func(now float64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final clock = %v", end)
	}
	if !sort.Float64sAreSorted(fired) || len(fired) != 5 {
		t.Errorf("fired = %v", fired)
	}
}

func TestFIFOWithinSameTimestamp(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		_, _ = e.At(1, func(float64) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := New()
	var at2, at5 float64
	_, _ = e.At(2, func(now float64) {
		at2 = now
		_, _ = e.After(3, func(now float64) { at5 = now })
	})
	e.Run()
	if at2 != 2 || at5 != 5 {
		t.Errorf("at2=%v at5=%v", at2, at5)
	}
	if e.Processed() != 2 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestSchedulingInPastRejected(t *testing.T) {
	e := New()
	_, _ = e.At(5, func(float64) {})
	e.Run()
	if _, err := e.At(3, func(float64) {}); err == nil {
		t.Error("past scheduling accepted")
	}
	if _, err := e.After(-1, func(float64) {}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := e.At(6, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev, _ := e.At(1, func(float64) { fired = true })
	if !e.Cancel(ev) {
		t.Error("Cancel returned false for live event")
	}
	if e.Cancel(ev) {
		t.Error("double Cancel returned true")
	}
	if e.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelAlreadyPoppedEvent(t *testing.T) {
	e := New()
	fired := 0
	ev, _ := e.At(1, func(float64) { fired++ })
	_, _ = e.At(2, func(float64) {})
	if !e.Step() { // pops and fires ev
		t.Fatal("Step returned false with events pending")
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The handle is stale now: cancelling it must be a no-op that does not
	// disturb the remaining heap.
	if e.Cancel(ev) {
		t.Error("Cancel of already-popped event returned true")
	}
	if e.Cancel(ev) {
		t.Error("double Cancel of popped event returned true")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d after stale cancel, want 1", e.Pending())
	}
	e.Run()
	if fired != 1 || e.Now() != 2 {
		t.Errorf("fired=%d now=%v", fired, e.Now())
	}
}

func TestCancelSelfInsideCallback(t *testing.T) {
	e := New()
	var ev *Event
	ok := true
	ev, _ = e.At(1, func(float64) {
		// By the time the callback runs, the event has been popped; a
		// self-cancel must report false and not corrupt the heap.
		ok = !e.Cancel(ev)
	})
	_, _ = e.At(2, func(float64) {})
	e.Run()
	if !ok {
		t.Error("self-cancel inside callback returned true")
	}
	if e.Now() != 2 {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestScheduleAtCurrentTimeFromCallback(t *testing.T) {
	e := New()
	var fired []string
	_, _ = e.At(3, func(now float64) {
		fired = append(fired, "outer")
		// Scheduling at exactly the current timestamp is legal (t is not
		// < now) and the new event fires within the same Run, after any
		// previously queued same-time events (FIFO by sequence).
		if _, err := e.At(now, func(float64) { fired = append(fired, "inner") }); err != nil {
			t.Errorf("At(now) from callback: %v", err)
		}
	})
	_, _ = e.At(3, func(float64) { fired = append(fired, "sibling") })
	end := e.Run()
	if end != 3 {
		t.Errorf("final clock = %v", end)
	}
	want := []string{"outer", "sibling", "inner"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var fired []float64
	var evs []*Event
	for _, at := range []float64{1, 2, 3, 4, 5} {
		ev, _ := e.At(at, func(now float64) { fired = append(fired, now) })
		evs = append(evs, ev)
	}
	e.Cancel(evs[2]) // cancel t=3
	e.Run()
	want := []float64{1, 2, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v", fired)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		_, _ = e.At(at, func(now float64) { fired = append(fired, now) })
	}
	now := e.RunUntil(5)
	if now != 5 {
		t.Errorf("clock = %v, want 5", now)
	}
	if len(fired) != 3 {
		t.Errorf("fired = %v", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 10 {
		t.Errorf("after full run: fired=%v now=%v", fired, e.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty returned true")
	}
	if e.Run() != 0 {
		t.Error("Run on empty advanced the clock")
	}
}

// Property: random schedules always fire in non-decreasing time order and
// the count matches.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		n := 1 + r.Intn(50)
		var fired []float64
		for i := 0; i < n; i++ {
			_, err := e.At(r.Float64()*100, func(now float64) { fired = append(fired, now) })
			if err != nil {
				return false
			}
		}
		e.Run()
		return len(fired) == n && sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: cascading events (each schedules a successor) run to
// completion with a monotone clock.
func TestQuickCascade(t *testing.T) {
	f := func(stepsRaw uint8) bool {
		steps := int(stepsRaw%20) + 1
		e := New()
		count := 0
		var schedule func()
		schedule = func() {
			_, _ = e.After(1, func(float64) {
				count++
				if count < steps {
					schedule()
				}
			})
		}
		schedule()
		end := e.Run()
		return count == steps && end == float64(steps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonFiniteTimesRejected(t *testing.T) {
	e := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := e.At(bad, func(float64) {}); err == nil {
			t.Errorf("At(%v) accepted", bad)
		}
		if _, err := e.After(bad, func(float64) {}); err == nil {
			t.Errorf("After(%v) accepted", bad)
		}
	}
	if e.Pending() != 0 {
		t.Errorf("heap polluted: %d pending", e.Pending())
	}
}

// TestClassBreaksTimestampTies pins the class ordering: at one timestamp,
// a negative-class event scheduled *after* class-0 events still fires
// first, classes tie-break before insertion order, and equal classes keep
// FIFO order.
func TestClassBreaksTimestampTies(t *testing.T) {
	e := New()
	var order []string
	log := func(name string) func(float64) {
		return func(float64) { order = append(order, name) }
	}
	if _, err := e.At(5, log("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AtClass(5, 1, log("late-class")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(5, log("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AtClass(5, -1, log("arrival")); err != nil {
		t.Fatal(err)
	}
	e.Run()
	want := []string{"arrival", "a", "b", "late-class"}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestClassZeroMatchesAt pins that At is exactly AtClass(..., 0, ...), so
// existing callers keep their (Time, seq) ordering bit for bit.
func TestClassZeroMatchesAt(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		var err error
		if i%2 == 0 {
			_, err = e.At(1, func(float64) { order = append(order, i) })
		} else {
			_, err = e.AtClass(1, 0, func(float64) { order = append(order, i) })
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}
