// Package service is the long-lived placement front-end of the simulated
// cloud: one Service owns the inventory (with its attached tier index),
// the online placer, and the wait queue, and serves placement and release
// requests from many concurrent callers.
//
// Requests enter through a bounded intake channel and are coalesced by a
// batcher goroutine, which flushes the pending batch once it reaches
// BatchSize or MaxWait after the first request (with MaxWait zero the
// batcher flushes opportunistically the moment the intake runs dry, so
// lone synchronous callers are never delayed). A single apply goroutine —
// the only writer the inventory ever sees — commits each batch: it is the
// one place RemainingView and the attached TierIndex may be read, which is
// what makes their lock-free aliasing safe (see the inventory package
// comment; the race-mode hammer test pins this). Every request carries its
// own response channel and the submitting caller blocks until the apply
// loop answers it.
//
// Two orderings are offered. In the default (unordered) mode the batcher
// stamps requests with arrival sequence numbers and the apply loop serves
// them in that order — the production mode, deterministic within a run but
// dependent on caller scheduling. In Ordered mode callers assign the
// sequence numbers themselves (contiguous from zero, each exactly once)
// and the apply loop holds early arrivals in a reorder buffer until their
// turn: the same request trace then yields byte-identical allocations,
// metrics, and traces at any client concurrency, because per-request
// placement depends only on inventory state, which depends only on the
// seq-ordered prefix of operations — batch boundaries cannot matter.
package service

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/queue"
	"affinitycluster/internal/topology"
)

// ErrClosed is returned for requests submitted to (or still pending in) a
// closed service.
var ErrClosed = errors.New("service: closed")

// Config describes one placement service.
type Config struct {
	// Topology and Inventory are required and must agree on node count.
	// The service takes ownership of the inventory: after New, all
	// mutations must go through Place/Release, and only the RLock'd
	// snapshots (Remaining, Available, CheckInvariants, ...) may be used
	// from other goroutines.
	Topology  *topology.Topology
	Inventory *inventory.Inventory
	// Online is the per-request placer; it must use ScanAllCenters (the
	// indexed scan). Nil gets a fresh default placer wired to Obs.
	Online *placement.OnlineHeuristic
	// BatchSize is the coalescing flush threshold (0 = 32).
	BatchSize int
	// MaxWait bounds how long the first request of a batch waits for
	// company. Zero means no timer: the batcher flushes as soon as the
	// intake is momentarily empty, which serves synchronous callers with
	// no added latency while still coalescing concurrent bursts.
	MaxWait time.Duration
	// IntakeCap bounds the intake channel (0 = 256). Submitters block
	// once the intake is full — admission back-pressure, not rejection.
	IntakeCap int
	// QueueCap configures the wait queue for placements that do not
	// currently fit: 0 = unbounded, > 0 = bounded, -1 = disabled (such
	// placements fail immediately with ErrInsufficient). A waiting
	// placement blocks its caller until a release frees enough capacity.
	QueueCap int
	// Policy orders the wait queue.
	Policy queue.Policy
	// Ordered switches to caller-assigned sequence numbers (PlaceAt /
	// ReleaseAt) with strict in-order apply; see the package comment.
	// Incompatible with GlobalOpt, whose results depend on batch
	// boundaries.
	Ordered bool
	// GlobalOpt places coalesced runs of placements together with the
	// global sub-optimization algorithm (Algorithm 2) instead of one by
	// one — larger batches buy lower summed DC.
	GlobalOpt bool
	// Obs, when non-nil, receives service telemetry. Events are stamped
	// with the operation's sequence number as virtual time, so Ordered
	// traces are reproducible; wall-clock batching behaviour (flush
	// counts, batch sizes) deliberately stays out of the registry and is
	// reported via Stats instead.
	Obs *obs.Registry
}

// Placement is one committed placement, returned to the caller.
type Placement struct {
	// Seq is the operation's sequence number (caller-assigned in Ordered
	// mode, arrival order otherwise).
	Seq uint64
	// Entries is the committed sparse allocation — the caller passes it
	// back to Release. The slice is the caller's to keep.
	Entries []affinity.VMEntry
	// DC is the allocation's data-center distance; Center its central
	// node.
	DC     float64
	Center topology.NodeID
}

// Stats is a point-in-time snapshot of service activity. Batching figures
// live here rather than in the obs registry because they depend on caller
// timing, which would break trace determinism.
type Stats struct {
	Ops      uint64 // operations applied
	Batches  uint64 // batches flushed
	MaxBatch uint64 // largest batch flushed
	Placed   uint64 // successful placements
	Released uint64 // successful releases
	Queued   uint64 // placements that waited in the queue
	Rejected uint64 // placements refused (queue disabled or full)
	Grown    uint64 // successful cluster grows
	Shrunk   uint64 // successful cluster shrinks
}

type opKind uint8

const (
	opPlace opKind = iota
	opRelease
	opGrow
	opShrink
)

// op is one in-flight request. The submitting goroutine blocks on done
// until the apply loop (or the close path) answers.
type op struct {
	kind    opKind
	seq     uint64
	req     model.Request
	entries []affinity.VMEntry
	done    chan result
}

type result struct {
	p   Placement
	err error
}

// Service is a concurrent placement front-end; create with New, stop with
// Close.
type Service struct {
	cfg    Config
	topo   *topology.Topology
	inv    *inventory.Inventory
	online *placement.OnlineHeuristic
	global *placement.GlobalSubOpt
	tidx   *affinity.TierIndex
	sp     affinity.SparseAlloc // apply-loop scratch

	intake chan *op
	applyC chan []*op
	done   chan struct{}

	closeMu sync.RWMutex
	closed  bool

	// batcher-owned state.
	arrSeq uint64

	// apply-loop-owned state.
	wait     *queue.Queue
	waiters  map[uint64]*op // seq → op parked in the wait queue
	park     map[uint64]*op // Ordered mode reorder buffer: seq → early op
	applySeq uint64         // Ordered mode: next seq to apply

	stOps, stBatches, stMaxBatch           atomic.Uint64
	stPlaced, stReleased                   atomic.Uint64
	stQueued, stRejected                   atomic.Uint64
	stGrown, stShrunk                      atomic.Uint64
	mPlaced, mReleased, mQueued, mRejected *obs.Counter
	mDC                                    *obs.Histogram
	// Delta-op counters are registered lazily on first use (apply loop
	// only), so services that never resize keep their exact metric
	// snapshots.
	mGrown, mShrunk *obs.Counter
}

// New validates the configuration, attaches a tier index to the
// inventory, and starts the batcher and apply goroutines. The returned
// service must be Closed to release them.
//
//lint:owner singlewriter
func New(cfg Config) (*Service, error) {
	if cfg.Topology == nil || cfg.Inventory == nil {
		return nil, errors.New("service: Topology and Inventory are required")
	}
	if cfg.Ordered && cfg.GlobalOpt {
		// Batch boundaries depend on caller timing, and global
		// sub-optimization results depend on batch boundaries — the
		// combination cannot honour Ordered's byte-identical guarantee.
		return nil, errors.New("service: Ordered and GlobalOpt are mutually exclusive")
	}
	online := cfg.Online
	if online == nil {
		online = &placement.OnlineHeuristic{Obs: cfg.Obs}
	}
	if online.Policy != placement.ScanAllCenters {
		return nil, fmt.Errorf("service: placer %q is not the indexed scan (ScanAllCenters)", online.Name())
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.IntakeCap <= 0 {
		cfg.IntakeCap = 256
	}
	tidx, err := cfg.Inventory.AttachTierIndex(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("service: attaching tier index: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		topo:    cfg.Topology,
		inv:     cfg.Inventory,
		online:  online,
		global:  &placement.GlobalSubOpt{Online: online, Obs: cfg.Obs},
		tidx:    tidx,
		intake:  make(chan *op, cfg.IntakeCap),
		applyC:  make(chan []*op),
		done:    make(chan struct{}),
		waiters: make(map[uint64]*op),
		park:    make(map[uint64]*op),
	}
	if cfg.QueueCap >= 0 {
		s.wait = queue.New(cfg.Policy, cfg.QueueCap)
		s.wait.Instrument(cfg.Obs)
	}
	s.mPlaced = cfg.Obs.Counter("service.placed")
	s.mReleased = cfg.Obs.Counter("service.released")
	s.mQueued = cfg.Obs.Counter("service.queued")
	s.mRejected = cfg.Obs.Counter("service.rejected")
	s.mDC = cfg.Obs.Histogram("service.dc", 0, 200, 20)
	go s.batcher()
	go s.applyLoop()
	return s, nil
}

// Place provisions one virtual cluster, blocking until the service commits
// (or refuses) it. The request vector must span the inventory's full type
// dimension. When the cluster does not currently fit and the wait queue is
// enabled, the call blocks until a release frees enough capacity; with the
// queue disabled or full it fails with placement.ErrInsufficient (test
// with errors.Is).
func (s *Service) Place(r model.Request) (Placement, error) {
	if s.cfg.Ordered {
		return Placement{}, errors.New("service: ordered service requires PlaceAt")
	}
	return s.roundTrip(&op{kind: opPlace, req: r})
}

// Release returns a placement's VMs to the inventory and wakes whatever
// queued placements now fit. Entries must be exactly the slice of a prior
// Placement (or its ToDense-equivalent sparse form).
func (s *Service) Release(entries []affinity.VMEntry) error {
	if s.cfg.Ordered {
		return errors.New("service: ordered service requires ReleaseAt")
	}
	_, err := s.roundTrip(&op{kind: opRelease, entries: entries})
	return err
}

// PlaceAt is Place with a caller-assigned sequence number (Ordered mode).
// Seqs must cover 0,1,2,... with each value submitted exactly once across
// Place and Release operations; the op is held until every lower seq has
// applied, so a gap stalls the service until Close.
func (s *Service) PlaceAt(seq uint64, r model.Request) (Placement, error) {
	if !s.cfg.Ordered {
		return Placement{}, errors.New("service: PlaceAt requires Ordered mode")
	}
	return s.roundTrip(&op{kind: opPlace, seq: seq, req: r})
}

// ReleaseAt is Release with a caller-assigned sequence number (Ordered
// mode).
func (s *Service) ReleaseAt(seq uint64, entries []affinity.VMEntry) error {
	if !s.cfg.Ordered {
		return errors.New("service: ReleaseAt requires Ordered mode")
	}
	_, err := s.roundTrip(&op{kind: opRelease, seq: seq, entries: entries})
	return err
}

// Grow extends a previously committed cluster by delta VMs per type,
// placed near the cluster's current center through the same single-writer
// apply loop as Place (placement.PlaceDelta semantics: the merged DC and
// center are returned, and the returned Entries cover only the added
// VMs — keep them, or fold them into the cluster's own entries, for the
// eventual Release). entries must describe VMs the service committed and
// still holds; the slice is only read and must not be mutated until the
// call returns. A grow that does not currently fit fails immediately
// with placement.ErrInsufficient — deadline-driven callers defer and
// retry rather than park in the wait queue.
func (s *Service) Grow(entries []affinity.VMEntry, delta model.Request) (Placement, error) {
	if s.cfg.Ordered {
		return Placement{}, errors.New("service: ordered service does not support Grow")
	}
	return s.roundTrip(&op{kind: opGrow, entries: entries, req: delta})
}

// Shrink gives back delta VMs per type from a previously committed
// cluster, picking the DC(C)-minimizing victims
// (placement.ReleaseSubset), and wakes whatever queued placements the
// freed capacity now fits. It returns the victim entries — the caller
// must subtract them from its record of the cluster. entries is only
// read and must not be mutated until the call returns.
func (s *Service) Shrink(entries []affinity.VMEntry, delta model.Request) ([]affinity.VMEntry, error) {
	if s.cfg.Ordered {
		return nil, errors.New("service: ordered service does not support Shrink")
	}
	p, err := s.roundTrip(&op{kind: opShrink, entries: entries, req: delta})
	return p.Entries, err
}

// Stats snapshots the service's activity counters.
func (s *Service) Stats() Stats {
	return Stats{
		Ops:      s.stOps.Load(),
		Batches:  s.stBatches.Load(),
		MaxBatch: s.stMaxBatch.Load(),
		Placed:   s.stPlaced.Load(),
		Released: s.stReleased.Load(),
		Queued:   s.stQueued.Load(),
		Rejected: s.stRejected.Load(),
		Grown:    s.stGrown.Load(),
		Shrunk:   s.stShrunk.Load(),
	}
}

// Close stops intake, drains every in-flight operation, fails still-parked
// ones with ErrClosed (in ascending seq order), and waits for both service
// goroutines to exit. Closing twice returns ErrClosed.
func (s *Service) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.intake)
	s.closeMu.Unlock()
	<-s.done
	return nil
}

// roundTrip submits one op and blocks for its answer. The RLock spans the
// intake send so Close cannot close the channel under a blocked sender;
// Close's Lock waits, and the batcher keeps draining the intake, so the
// send always completes.
func (s *Service) roundTrip(o *op) (Placement, error) {
	o.done = make(chan result, 1)
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return Placement{}, ErrClosed
	}
	s.intake <- o
	s.closeMu.RUnlock()
	r := <-o.done
	return r.p, r.err
}

// batcher coalesces intake ops into batches for the apply loop: flush at
// BatchSize, at MaxWait after the batch's first op, or — with no timer —
// the moment the intake runs dry.
func (s *Service) batcher() {
	defer close(s.applyC)
	var (
		pending []*op
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(pending) == 0 {
			return
		}
		s.stBatches.Add(1)
		if n := uint64(len(pending)); n > s.stMaxBatch.Load() {
			s.stMaxBatch.Store(n)
		}
		s.applyC <- pending
		pending = nil
	}
	for {
		var (
			o  *op
			ok bool
		)
		switch {
		case len(pending) == 0:
			o, ok = <-s.intake
		case s.cfg.MaxWait <= 0:
			select {
			case o, ok = <-s.intake:
			default:
				flush()
				continue
			}
		default:
			if timerC == nil {
				timer = time.NewTimer(s.cfg.MaxWait)
				timerC = timer.C
			}
			select {
			case o, ok = <-s.intake:
			case <-timerC:
				timer, timerC = nil, nil
				flush()
				continue
			}
		}
		if !ok {
			flush()
			return
		}
		if !s.cfg.Ordered {
			o.seq = s.arrSeq
			s.arrSeq++
		}
		pending = append(pending, o)
		if len(pending) >= s.cfg.BatchSize {
			flush()
		}
	}
}

// applyLoop is the inventory's single writer: it commits batches in order,
// then fails whatever is still parked once the batcher exits.
//
//lint:owner singlewriter
func (s *Service) applyLoop() {
	defer close(s.done)
	for batch := range s.applyC {
		switch {
		case s.cfg.Ordered:
			for _, o := range batch {
				s.park[o.seq] = o
			}
			for {
				o, ready := s.park[s.applySeq]
				if !ready {
					break
				}
				delete(s.park, s.applySeq)
				s.applySeq++
				s.applyOp(o)
			}
		case s.cfg.GlobalOpt:
			s.applyBatchGlobal(batch)
		default:
			for _, o := range batch {
				s.applyOp(o)
			}
		}
		s.stOps.Add(uint64(len(batch)))
	}
	s.failAll(s.park)
	s.failAll(s.waiters)
}

// failAll answers every parked op with ErrClosed, in ascending seq order
// so shutdown behaviour is reproducible.
func (s *Service) failAll(m map[uint64]*op) {
	seqs := make([]uint64, 0, len(m))
	for seq := range m {
		seqs = append(seqs, seq)
	}
	slices.Sort(seqs)
	for _, seq := range seqs {
		m[seq].done <- result{err: ErrClosed}
		delete(m, seq)
	}
}

func (s *Service) applyOp(o *op) {
	switch o.kind {
	case opRelease:
		s.applyRelease(o)
	case opGrow:
		s.applyGrow(o)
	case opShrink:
		s.applyShrink(o)
	default:
		s.applyPlace(o)
	}
}

// applyPlace runs the allocation-free hot path: indexed sparse placement,
// then an O(entries) commit. Only ErrInsufficient means "does not fit";
// anything else is reported to the caller as a hard error.
func (s *Service) applyPlace(o *op) {
	dc, center, err := s.online.PlaceSparse(s.tidx, o.req, &s.sp)
	if err != nil {
		if errors.Is(err, placement.ErrInsufficient) {
			s.parkWaiter(o)
			return
		}
		o.done <- result{err: err}
		return
	}
	if err := s.inv.AllocateList(s.sp.Entries); err != nil {
		o.done <- result{err: fmt.Errorf("service: committing placement %d: %w", o.seq, err)}
		return
	}
	s.finishPlace(o, append([]affinity.VMEntry(nil), s.sp.Entries...), dc, center)
}

// applyGrow extends a live cluster with the delta scan: indexed sparse
// delta placement around the cluster's current center, then the same
// O(entries) commit as a placement. Grows never park in the wait queue —
// they are deadline-driven at the caller, so "does not fit" is answered
// immediately with ErrInsufficient.
func (s *Service) applyGrow(o *op) {
	dc, center, err := s.online.PlaceDeltaSparse(s.tidx, o.entries, o.req, &s.sp)
	if err != nil {
		o.done <- result{err: fmt.Errorf("service: grow %d: %w", o.seq, err)}
		return
	}
	if err := s.inv.AllocateList(s.sp.Entries); err != nil {
		o.done <- result{err: fmt.Errorf("service: committing grow %d: %w", o.seq, err)}
		return
	}
	s.stGrown.Add(1)
	if s.mGrown == nil {
		s.mGrown = s.cfg.Obs.Counter("service.grown")
	}
	s.mGrown.Inc()
	s.mDC.Observe(dc)
	s.cfg.Obs.Emit("grow", float64(o.seq),
		obs.F("req", int(o.seq)),
		obs.F("center", int(center)),
		obs.F("dc", dc))
	o.done <- result{p: Placement{Seq: o.seq, Entries: append([]affinity.VMEntry(nil), s.sp.Entries...), DC: dc, Center: center}}
}

// applyShrink releases the DC-minimizing victims of a live cluster and
// offers the freed capacity to the wait queue, like a release.
func (s *Service) applyShrink(o *op) {
	victims, err := placement.ReleaseSubsetSparse(s.topo, o.entries, o.req)
	if err != nil {
		o.done <- result{err: fmt.Errorf("service: shrink %d: %w", o.seq, err)}
		return
	}
	if err := s.inv.ReleaseList(victims); err != nil {
		o.done <- result{err: fmt.Errorf("service: committing shrink %d: %w", o.seq, err)}
		return
	}
	s.stShrunk.Add(1)
	if s.mShrunk == nil {
		s.mShrunk = s.cfg.Obs.Counter("service.shrunk")
	}
	s.mShrunk.Inc()
	s.cfg.Obs.Emit("shrink", float64(o.seq), obs.F("req", int(o.seq)))
	o.done <- result{p: Placement{Seq: o.seq, Entries: victims}}
	s.drainWaiters()
}

// applyBatchGlobal serves a batch with Algorithm 2 over each maximal run
// of consecutive placements, falling back to per-request placement for
// singletons and runs the batch placer refuses. Planning against
// RemainingView is safe here: plan and commit both live on the single
// writer, so no mutation can interleave.
func (s *Service) applyBatchGlobal(batch []*op) {
	for i := 0; i < len(batch); {
		if batch[i].kind != opPlace {
			s.applyOp(batch[i])
			i++
			continue
		}
		j := i
		for j < len(batch) && batch[j].kind == opPlace {
			j++
		}
		run := batch[i:j]
		i = j
		if len(run) == 1 {
			s.applyPlace(run[0])
			continue
		}
		vecs := make([]model.Request, len(run))
		for k, o := range run {
			vecs[k] = o.req
		}
		res, err := s.global.PlaceBatch(s.topo, s.inv.RemainingView(), vecs)
		if err != nil {
			for _, o := range run {
				s.applyPlace(o)
			}
			continue
		}
		for k, o := range run {
			alloc := res.Allocs[k]
			if alloc == nil {
				s.parkWaiter(o)
				continue
			}
			entries := alloc.Sparse()
			if err := s.inv.AllocateList(entries); err != nil {
				o.done <- result{err: fmt.Errorf("service: committing placement %d: %w", o.seq, err)}
				continue
			}
			dc, center := alloc.Distance(s.topo)
			s.finishPlace(o, entries, dc, center)
		}
	}
}

// parkWaiter queues a placement that does not currently fit, or refuses it
// when the queue is disabled or full.
func (s *Service) parkWaiter(o *op) {
	if s.wait == nil {
		s.stRejected.Add(1)
		s.mRejected.Inc()
		o.done <- result{err: fmt.Errorf("service: request %d: %w", o.seq, placement.ErrInsufficient)}
		return
	}
	tr := model.TimedRequest{ID: model.RequestID(o.seq), Vector: o.req, Arrival: float64(o.seq)}
	if err := s.wait.Enqueue(tr); err != nil {
		s.stRejected.Add(1)
		s.mRejected.Inc()
		o.done <- result{err: fmt.Errorf("service: request %d refused: %w (%v)", o.seq, placement.ErrInsufficient, err)}
		return
	}
	s.waiters[o.seq] = o
	s.stQueued.Add(1)
	s.mQueued.Inc()
	s.cfg.Obs.Emit("queue_admit", float64(o.seq), obs.F("req", int(o.seq)))
}

func (s *Service) applyRelease(o *op) {
	if err := s.inv.ReleaseList(o.entries); err != nil {
		o.done <- result{err: fmt.Errorf("service: release %d: %w", o.seq, err)}
		return
	}
	s.stReleased.Add(1)
	s.mReleased.Inc()
	s.cfg.Obs.Emit("release", float64(o.seq), obs.F("req", int(o.seq)))
	o.done <- result{}
	s.drainWaiters()
}

// drainWaiters serves every queued placement the freed capacity can now
// admit. GetRequests only takes requests whose aggregate demand fits the
// current availability, and that is exactly the indexed scan's admission
// test, so placement here cannot fail for capacity reasons.
func (s *Service) drainWaiters() {
	if s.wait == nil || s.wait.Len() == 0 {
		return
	}
	for _, tr := range s.wait.GetRequests(s.inv.Available()) {
		seq := uint64(tr.ID)
		o := s.waiters[seq]
		delete(s.waiters, seq)
		if o == nil {
			continue
		}
		dc, center, err := s.online.PlaceSparse(s.tidx, o.req, &s.sp)
		if err == nil {
			err = s.inv.AllocateList(s.sp.Entries)
		}
		if err != nil {
			o.done <- result{err: fmt.Errorf("service: draining request %d: %w", seq, err)}
			continue
		}
		s.finishPlace(o, append([]affinity.VMEntry(nil), s.sp.Entries...), dc, center)
	}
}

// finishPlace records a committed placement and answers its caller. The
// event timestamp is the op's seq — virtual time, so Ordered traces are
// byte-reproducible at any concurrency.
func (s *Service) finishPlace(o *op, entries []affinity.VMEntry, dc float64, center topology.NodeID) {
	s.stPlaced.Add(1)
	s.mPlaced.Inc()
	s.mDC.Observe(dc)
	s.cfg.Obs.Emit("place", float64(o.seq),
		obs.F("req", int(o.seq)),
		obs.F("center", int(center)),
		obs.F("dc", dc))
	o.done <- result{p: Placement{Seq: o.seq, Entries: entries, DC: dc, Center: center}}
}
