package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
)

// mergeEntries folds grow entries into a cluster's record, the way a
// caller tracking its cluster across resizes would.
func mergeEntries(cur, add []affinity.VMEntry) []affinity.VMEntry {
	out := append([]affinity.VMEntry(nil), cur...)
next:
	for _, e := range add {
		for i := range out {
			if out[i].Node == e.Node && out[i].Type == e.Type {
				out[i].Count += e.Count
				continue next
			}
		}
		out = append(out, e)
	}
	return out
}

func subtractEntries(cur, victims []affinity.VMEntry) []affinity.VMEntry {
	out := append([]affinity.VMEntry(nil), cur...)
	for _, v := range victims {
		for i := range out {
			if out[i].Node == v.Node && out[i].Type == v.Type {
				out[i].Count -= v.Count
			}
		}
	}
	kept := out[:0]
	for _, e := range out {
		if e.Count > 0 {
			kept = append(kept, e)
		}
	}
	return kept
}

func TestServiceGrowShrink(t *testing.T) {
	topo, inv := plant(t, 2, 2)
	svc, err := New(Config{Topology: topo, Inventory: inv, QueueCap: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base, err := svc.Place(model.Request{4, 2})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	grow, err := svc.Grow(base.Entries, model.Request{2, 1})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if got := entriesTotal(grow.Entries); got != 3 {
		t.Fatalf("grow totals %d VMs, want 3", got)
	}
	if avail := inv.Available(); avail[0] != 60-6 || avail[1] != 60-3 {
		t.Fatalf("Available = %v after grow, want [54 57]", avail)
	}
	// The reported DC must price the merged cluster.
	merged := mergeEntries(base.Entries, grow.Entries)
	sp := affinity.SparseAlloc{NumNodes: topo.Nodes(), NumTypes: 2, Entries: merged}
	wantDC, wantK := sp.ToDense().Distance(topo)
	if grow.DC != wantDC || grow.Center != wantK {
		t.Fatalf("grow DC/center = %v/%d, want %v/%d", grow.DC, grow.Center, wantDC, wantK)
	}
	victims, err := svc.Shrink(merged, model.Request{2, 1})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if got := entriesTotal(victims); got != 3 {
		t.Fatalf("shrink returned %d VMs, want 3", got)
	}
	if avail := inv.Available(); avail[0] != 60-4 || avail[1] != 60-2 {
		t.Fatalf("Available = %v after shrink, want [56 58]", avail)
	}
	if err := svc.Release(subtractEntries(merged, victims)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if avail := inv.Available(); avail[0] != 60 || avail[1] != 60 {
		t.Fatalf("Available = %v after release, want [60 60]", avail)
	}
	if st := svc.Stats(); st.Grown != 1 || st.Shrunk != 1 {
		t.Fatalf("stats = %+v, want Grown=1 Shrunk=1", st)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestServiceGrowInsufficientAndShrinkInfeasible(t *testing.T) {
	topo, inv := plant(t, 1, 0)
	if err := inv.SetCapacity(0, 0, 4); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	svc, err := New(Config{Topology: topo, Inventory: inv, QueueCap: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = svc.Close() }()
	base, err := svc.Place(model.Request{3})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	// Only one slot left: a grow by 2 must fail fast, not park.
	if _, err := svc.Grow(base.Entries, model.Request{2}); !errors.Is(err, placement.ErrInsufficient) {
		t.Fatalf("oversized Grow error = %v, want ErrInsufficient", err)
	}
	// Shrinking more than the cluster holds is refused and changes nothing.
	if _, err := svc.Shrink(base.Entries, model.Request{4}); err == nil {
		t.Fatal("oversized Shrink accepted")
	}
	if avail := inv.Available(); avail[0] != 1 {
		t.Fatalf("Available = %v after failed delta ops, want [1]", avail)
	}
}

// A shrink's freed capacity must wake queued placements, exactly like a
// release does.
func TestServiceShrinkWakesWaiters(t *testing.T) {
	topo, inv := plant(t, 1, 0)
	if err := inv.SetCapacity(0, 0, 2); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	if err := inv.SetCapacity(1, 0, 2); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	svc, err := New(Config{Topology: topo, Inventory: inv})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base, err := svc.Place(model.Request{2})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	grow, err := svc.Grow(base.Entries, model.Request{2})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	merged := mergeEntries(base.Entries, grow.Entries)
	got := make(chan Placement, 1)
	go func() {
		p, err := svc.Place(model.Request{2})
		if err != nil {
			t.Errorf("queued Place: %v", err)
		}
		got <- p
	}()
	select {
	case <-got:
		t.Fatal("queued Place completed while the plant was full")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := svc.Shrink(merged, model.Request{2}); err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	select {
	case p := <-got:
		if entriesTotal(p.Entries) != 2 {
			t.Fatalf("woken placement totals %d VMs, want 2", entriesTotal(p.Entries))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued Place never woke after shrink")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// Concurrent resize churn through the single-writer apply loop: every
// client grows and shrinks its own cluster; the inventory must come back
// to full capacity and keep its invariants. Run with -race (the
// elastic-race gate) this pins the sharing discipline of the delta ops.
func TestServiceGrowShrinkHammer(t *testing.T) {
	topo, inv := plant(t, 2, 2)
	svc, err := New(Config{Topology: topo, Inventory: inv, BatchSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				base, err := svc.Place(model.Request{2, 1})
				if err != nil {
					t.Errorf("client %d: Place: %v", c, err)
					return
				}
				cluster := base.Entries
				g, err := svc.Grow(cluster, model.Request{1, 1})
				if err == nil {
					cluster = mergeEntries(cluster, g.Entries)
					victims, serr := svc.Shrink(cluster, model.Request{1, 1})
					if serr != nil {
						t.Errorf("client %d: Shrink: %v", c, serr)
						return
					}
					cluster = subtractEntries(cluster, victims)
				} else if !errors.Is(err, placement.ErrInsufficient) {
					t.Errorf("client %d: Grow: %v", c, err)
					return
				}
				if err := svc.Release(cluster); err != nil {
					t.Errorf("client %d: Release: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if avail := inv.Available(); avail[0] != 60 || avail[1] != 60 {
		t.Fatalf("Available = %v after churn, want [60 60]", avail)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
